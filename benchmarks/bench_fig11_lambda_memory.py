"""Benchmark: Figure 11 — terrain generation vs Lambda memory configuration.

Paper: a 10240 MB function generates a chunk in under a second on average, a
320 MB one takes more than three seconds; variability grows as memory shrinks;
the normalised performance-to-cost ratio favours small configurations, except
the smallest one.
"""

from repro.experiments.fig11_lambda_memory import format_fig11, run_fig11


def test_fig11_memory_scaling(benchmark, settings, report_sink):
    result = benchmark.pedantic(
        run_fig11, args=(settings,), kwargs={"invocations_per_config": 40}, rounds=1, iterations=1
    )
    report_sink.append(("Figure 11: terrain generation vs memory", format_fig11(result)))

    # Mean latency decreases monotonically with memory.
    means = [result.stats(memory).mean for memory in sorted(result.latency_samples_s)]
    assert means == sorted(means, reverse=True)
    assert result.stats(320).mean > 3.0
    assert result.stats(10240).mean < 1.0

    # Variability (IQR) is larger for the smallest configuration.
    small = result.stats(320)
    large = result.stats(10240)
    assert (small.p75 - small.p25) > (large.p75 - large.p25)

    # Performance-to-cost favours small memory configurations over large ones,
    # with the smallest (320 MB) configuration no better than 512 MB.
    ratios = result.performance_to_cost()
    assert ratios[512] > ratios[2048] > ratios[10240]
    assert ratios[320] <= ratios[512] * 1.05
