"""Benchmark: Figure 7b — tick-duration distributions at 200 constructs.

Paper: with 200 constructs the baselines' tick durations sit mostly above the
50 ms budget (bimodal: constructs are simulated every other tick) while
Servo's distribution is narrow and stays below 50 ms up to ~120 players.
"""

from repro.experiments.fig07_scalability import format_fig07b, run_fig07b


def test_fig07b_tick_duration_distributions(benchmark, settings, report_sink):
    player_counts = (50, 100)
    result = benchmark.pedantic(
        run_fig07b,
        args=(settings,),
        kwargs={"player_counts": player_counts, "constructs": 200},
        rounds=1,
        iterations=1,
    )
    report_sink.append(("Figure 7b: tick durations at 200 constructs", format_fig07b(result)))
    for players in player_counts:
        opencraft = result.distributions[("opencraft", players)]
        minecraft = result.distributions[("minecraft", players)]
        servo = result.distributions[("servo", players)]
        # The baselines blow the 50 ms budget; Servo stays below it.
        assert opencraft.p95 > 50.0
        assert minecraft.p95 > 50.0
        assert servo.p95 < 50.0
        # Servo's tick duration tracks the baselines' fast (non-construct) mode.
        assert servo.median < opencraft.median
        # The baselines are bimodal: their p95 is far above their median... or
        # the construct tick dominates both; either way the spread is wide.
        assert opencraft.p95 - opencraft.p5 > servo.p95 - servo.p5
