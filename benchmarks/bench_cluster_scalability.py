"""Benchmark: cluster scalability — aggregate capacity vs shard count.

This goes beyond the paper's single-server evaluation: the world is
partitioned into zones served by cooperating Servo shards that share one
simulation engine, FaaS platform and blob store.  Expected shape: aggregate
max players grows with shard count (a 4-shard cluster sustains at least twice
the single-shard maximum) while every shard's P99 tick duration stays within
the 50 ms budget, and boundary-spawned players migrate between shards with
their handoff latencies recorded.
"""

from repro.experiments.cluster_scalability import (
    format_cluster_scalability,
    run_cluster_scalability,
)
from repro.workload.scenarios import TICK_BUDGET_MS


def test_cluster_aggregate_capacity_scales_with_shards(benchmark, settings, report_sink):
    result = benchmark.pedantic(
        run_cluster_scalability,
        args=(settings,),
        kwargs={"game": "servo-cluster", "shard_counts": (1, 2, 4)},
        rounds=1,
        iterations=1,
    )
    report_sink.append(("Cluster scalability: max players vs shards", format_cluster_scalability(result)))

    single = result.row(1)
    quad = result.row(4)
    # A 4-shard cluster sustains at least twice the single-server population...
    assert single.max_players > 0
    assert quad.max_players >= 2 * single.max_players
    # ...with every shard inside the paper's 50 ms tick budget...
    assert quad.at_max is not None
    assert quad.at_max.worst_shard_p99_ms <= TICK_BUDGET_MS
    assert len(quad.at_max.per_shard_p99_ms) == 4
    # ...while players migrate between shards and the handoffs are measured.
    assert quad.at_max.migrations > 0
    assert quad.at_max.migration_latency_p50_ms > 0.0


def test_cluster_results_are_deterministic(settings, report_sink):
    tiny = settings.scaled(duration_s=3.0, player_step=100)
    first = run_cluster_scalability(tiny, game="servo-cluster", shard_counts=(2,))
    second = run_cluster_scalability(tiny, game="servo-cluster", shard_counts=(2,))
    assert first.rows[0].max_players == second.rows[0].max_players
    assert first.rows[0].evaluated == second.rows[0].evaluated
    assert first.rows[0].at_max == second.rows[0].at_max
