"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures at a reduced
scale (shorter virtual durations, coarser sweeps) so the whole suite runs in
minutes.  The printed report shows the same rows/series the paper reports;
absolute values are not expected to match the authors' testbed, but the shape
(who wins, by roughly what factor, where crossovers fall) should hold.  Set
``REPRO_BENCH_SCALE=paper`` to run closer to paper scale.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.harness import ExperimentSettings

_QUICK = ExperimentSettings(
    seed=42, duration_s=8.0, player_step=50, max_players=200, repetitions=2, latency_samples=1500
)
_PAPER = ExperimentSettings(
    seed=42, duration_s=60.0, player_step=10, max_players=200, repetitions=20, latency_samples=15000
)


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    """Benchmark-scale experiment settings (or paper scale when requested)."""
    if os.environ.get("REPRO_BENCH_SCALE", "quick").lower() == "paper":
        return _PAPER
    return _QUICK


@pytest.fixture(scope="session")
def report_sink():
    """Collects the formatted reports and prints them at the end of the session."""
    reports: list[tuple[str, str]] = []
    yield reports
    if reports:
        print("\n" + "=" * 78)
        print("Reproduced tables and figures (reduced scale)")
        print("=" * 78)
        for title, text in reports:
            print(f"\n--- {title} ---")
            print(text)
