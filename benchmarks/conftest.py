"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures at a reduced
scale (shorter virtual durations, coarser sweeps) so the whole suite runs in
minutes.  The printed report shows the same rows/series the paper reports;
absolute values are not expected to match the authors' testbed, but the shape
(who wins, by roughly what factor, where crossovers fall) should hold.  Set
``REPRO_BENCH_SCALE=paper`` to run closer to paper scale.
"""

from __future__ import annotations

import os

import pytest

from repro.api import ExperimentSettings, settings_for_scale

#: the benchmark suite runs slightly shorter but denser "quick" sweeps than
#: the shared quick scale (same code paths, same seed)
_QUICK_OVERRIDES = dict(duration_s=8.0, latency_samples=1500)


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    """Benchmark-scale experiment settings (or paper scale when requested)."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()
    if scale == "paper":
        return settings_for_scale("paper")
    return settings_for_scale("quick").scaled(**_QUICK_OVERRIDES)


@pytest.fixture(scope="session")
def report_sink():
    """Collects the formatted reports and prints them at the end of the session."""
    reports: list[tuple[str, str]] = []
    yield reports
    if reports:
        print("\n" + "=" * 78)
        print("Reproduced tables and figures (reduced scale)")
        print("=" * 78)
        for title, text in reports:
            print(f"\n--- {title} ---")
            print(text)
