#!/usr/bin/env python
"""Wall-clock benchmark for the simulator's hot paths.

Unlike the ``bench_fig*`` benchmarks, which reproduce the paper's *virtual
time* results, this benchmark measures how fast the simulator itself runs on
the host: wall-clock ticks per second for

* (a) a construct-heavy single server (a varied fleet of clock grids, wire
  lines, counter farms and large sized constructs — the
  ``ConstructSimulator`` hot path), and
* (b) the quick-scale Servo cluster (the full game-loop + speculation +
  metrics pipeline under player load).

Each scenario runs twice back to back; the run is rejected unless both runs
produce identical determinism hashes (tick-duration sequences plus final
construct state digests), which guards the invariant that wall-clock
optimisations never change virtual-time results.  A ``parallel`` series
additionally runs the cluster scenario at ``workers=1`` and ``workers=N``
(the :mod:`repro.cluster.parallel` round executor) and fails unless the two
hashes are identical.

The results are written to ``BENCH_core_hotpaths.json`` together with the
recorded pre-optimisation baseline, so the speedup trajectory of perf PRs is
kept in the repo.

Usage::

    PYTHONPATH=src python benchmarks/bench_core_hotpaths.py \
        --out BENCH_core_hotpaths.json

Exit status is non-zero if the determinism hashes of the two back-to-back
runs differ (used by the CI ``bench-smoke`` step).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time
from dataclasses import dataclass

from repro.constructs.library import (
    build_clock,
    build_counter_farm,
    build_lamp_grid,
    build_sized_construct,
    build_wire_line,
)
from repro.experiments.harness import build_game_server
from repro.server import GameConfig
from repro.sim import SimulationEngine
from repro.workload.behavior import behavior_by_code
from repro.workload.bots import BotSwarm, JoinSchedule
from repro.world.coords import BlockPos

#: ticks-per-second measured on this repository *before* the hot-path
#: overhaul (compiled circuits, quiescence skipping, streaming metrics), at
#: commit 479c82c, quick scale, on the machine that recorded this file.  The
#: determinism hashes of the optimised code must match the hashes recorded
#: by the pre-optimisation run: same seed, bit-identical virtual results.
PRE_PR_BASELINE = {
    "commit": "479c82c",
    "construct_heavy": {
        "ticks_per_s": 254.46,
        # quick scale, seed 42: the optimised code must reproduce this hash
        "determinism_hash": "fcec4b5eb07e8241581f28b65a436b73639e3940e84b6465bc0d9ce56876fd5c",
    },
    "cluster_quick": {
        "ticks_per_s": 65.07,
        "determinism_hash": "3d86e8733630e515d6069764a882cc92a185f54be7ccef47357a479b9947909a",
    },
}

SEED = 42


@dataclass
class HotPathResult:
    """One measured scenario run."""

    name: str
    ticks: int
    wall_s: float
    determinism_hash: str

    @property
    def ticks_per_s(self) -> float:
        return self.ticks / self.wall_s if self.wall_s > 0 else float("inf")

    def as_dict(self) -> dict:
        return {
            "ticks": self.ticks,
            "wall_s": round(self.wall_s, 4),
            "ticks_per_s": round(self.ticks_per_s, 2),
            "determinism_hash": self.determinism_hash,
        }


def _construct_fleet() -> list:
    """A varied construct fleet: no two structurally identical.

    Mixes always-active circuits (clock-driven lamp grids, counter farms,
    large sized constructs) with circuits that settle to a fixed point
    (power-source wire lines), so both the compiled step loop and quiescence
    skipping are exercised.
    """
    constructs = []
    index = 0

    def next_origin() -> BlockPos:
        nonlocal index
        origin = BlockPos((index % 8) * 64, 64, (index // 8) * 64)
        index += 1
        return origin

    for width in (4, 5, 6, 7, 8):
        for depth in (3, 4, 5):
            constructs.append(build_lamp_grid(width, depth, next_origin()))
    for period in (4, 6, 8, 10, 12, 16):
        constructs.append(build_clock(period=period, origin=next_origin(), lamps=6))
    for length in range(8, 40, 2):
        constructs.append(build_wire_line(length, next_origin(), powered=True))
    for hoppers in (2, 3, 4, 5):
        constructs.append(build_counter_farm(hoppers, next_origin()))
    for size in (120, 252):
        constructs.append(build_sized_construct(size, next_origin()))
    return constructs


def _swarm(players: int) -> BotSwarm:
    behaviors = [behavior_by_code("A", direction_index=i) for i in range(players)]
    return BotSwarm(behaviors, schedule=JoinSchedule.all_at_start())


def _hash_run(tick_durations_ms: list, constructs: list) -> str:
    """Hash the virtual-time results: tick durations + construct states."""
    hasher = hashlib.sha256()
    for duration in tick_durations_ms:
        hasher.update(repr(duration).encode("ascii"))
        hasher.update(b";")
    for construct in sorted(constructs, key=lambda c: c.construct_id):
        hasher.update(str(construct.step).encode("ascii"))
        hasher.update(construct.snapshot().digest().encode("ascii"))
        hasher.update(b"|")
    return hasher.hexdigest()


def run_construct_heavy(
    ticks: int, players: int = 25, interest_radius_chunks: int | None = None
) -> HotPathResult:
    """Scenario (a): one baseline server with a heavy, varied construct fleet.

    With ``interest_radius_chunks`` set the server routes broadcasts through
    the area-of-interest subscription index; ``None`` is the legacy full
    broadcast, whose virtual results must be bit-identical to the recorded
    pre-PR hash (the interest machinery must be invisible when off).
    """
    engine = SimulationEngine(seed=SEED)
    server = build_game_server(
        "opencraft",
        engine,
        GameConfig(world_type="flat", interest_radius_chunks=interest_radius_chunks),
    )
    server.chunks.preload_area(server.config.spawn_position, 96.0)
    for construct in _construct_fleet():
        server.place_construct(construct)
    driver = _swarm(players).install(server)

    begin = time.perf_counter()
    server.run_ticks(ticks, before_tick=driver)
    wall_s = time.perf_counter() - begin

    digest = _hash_run(
        [record.duration_ms for record in server.tick_records],
        server.constructs.constructs(),
    )
    name = (
        "construct_heavy"
        if interest_radius_chunks is None
        else f"interest_r{interest_radius_chunks}"
    )
    return HotPathResult(name=name, ticks=ticks, wall_s=wall_s, determinism_hash=digest)


def run_cluster_quick(
    rounds: int, players: int = 80, shards: int = 2, workers: int = 1
) -> HotPathResult:
    """Scenario (b): the quick-scale Servo cluster under player load.

    ``workers`` > 1 enables the parallel round executor; the resulting hash
    must be identical to the serial run's — that equality is asserted by the
    ``parallel`` series below and in CI.
    """
    engine = SimulationEngine(seed=SEED)
    cluster = build_game_server(
        "servo-cluster",
        engine,
        GameConfig(world_type="flat"),
        shards=shards,
        workers=workers,
    )
    cluster.chunks.preload_area(cluster.config.spawn_position, 96.0)
    fleet = _construct_fleet()[:12]
    for construct in fleet:
        cluster.place_construct(construct)
    driver = _swarm(players).install(cluster)

    begin = time.perf_counter()
    cluster.run_ticks(rounds, before_tick=driver)
    wall_s = time.perf_counter() - begin

    constructs = [c for shard in cluster.shards for c in shard.constructs.constructs()]
    digest = _hash_run(
        [record.duration_ms for record in cluster.tick_records], constructs
    )
    cluster.executor.close()
    return HotPathResult(
        name="cluster_quick", ticks=rounds, wall_s=wall_s, determinism_hash=digest
    )


def _measure_twice(runner, *args) -> tuple[HotPathResult, bool]:
    """Run a scenario back to back; the faster run is reported.

    Returns the result plus whether the two runs' determinism hashes match.
    """
    first = runner(*args)
    second = runner(*args)
    best = min(first, second, key=lambda r: r.wall_s)
    return best, first.determinism_hash == second.determinism_hash


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default="BENCH_core_hotpaths.json", help="output JSON path"
    )
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        metavar="FACTOR",
        help="fail unless construct-heavy ticks/s beats the recorded "
        "pre-PR baseline by FACTOR (only meaningful on comparable hardware)",
    )
    parser.add_argument(
        "--assert-identity",
        action="store_true",
        help="fail unless the determinism hashes match the recorded pre-PR "
        "hashes (quick scale only; proves virtual results are bit-identical)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="worker count for the parallel cluster series (default: 2; "
        "the series always runs workers=1 alongside for the hash gate)",
    )
    args = parser.parse_args(argv)

    scale = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()
    if scale == "paper":
        construct_ticks, cluster_rounds = 2000, 600
    else:
        construct_ticks, cluster_rounds = 600, 240

    results: dict[str, HotPathResult] = {}
    deterministic = True
    for name, runner, ticks in (
        ("construct_heavy", run_construct_heavy, construct_ticks),
        ("cluster_quick", run_cluster_quick, cluster_rounds),
    ):
        result, stable = _measure_twice(runner, ticks)
        results[name] = result
        deterministic = deterministic and stable
        marker = "ok" if stable else "HASH DRIFT"
        print(
            f"{name}: {result.ticks} ticks in {result.wall_s:.2f}s wall "
            f"-> {result.ticks_per_s:.1f} ticks/s [{marker}]"
        )

    # The parallel series: the cluster scenario at workers=1 and workers=N.
    # Parallel execution is wall-clock only, so the two hashes MUST be equal
    # — a divergence is a correctness bug, not a perf regression.
    serial = run_cluster_quick(cluster_rounds, workers=1)
    parallel = run_cluster_quick(cluster_rounds, workers=max(2, args.workers))
    parallel_identical = serial.determinism_hash == parallel.determinism_hash
    marker = "ok" if parallel_identical else "HASH DIVERGENCE"
    print(
        f"parallel: workers=1 {serial.ticks_per_s:.1f} t/s vs "
        f"workers={max(2, args.workers)} {parallel.ticks_per_s:.1f} t/s [{marker}]"
    )

    # The interest series: the same construct-heavy server with the
    # area-of-interest broadcast on.  The legacy run above doubles as its
    # baseline; at quick scale its hash is hard-gated against the recorded
    # pre-PR hash — radius None must keep the legacy path bit-identical.
    interest_on, interest_stable = _measure_twice(run_construct_heavy, construct_ticks, 25, 4)
    legacy_result = results["construct_heavy"]
    recorded_legacy_hash = PRE_PR_BASELINE["construct_heavy"]["determinism_hash"]
    legacy_hash_ok = (
        scale != "quick" or legacy_result.determinism_hash == recorded_legacy_hash
    )
    if not legacy_hash_ok:
        marker = "LEGACY HASH DRIFT"
    elif not interest_stable:
        marker = "HASH DRIFT"
    else:
        marker = "ok"
    print(
        f"interest: legacy {legacy_result.ticks_per_s:.1f} t/s vs "
        f"radius=4 {interest_on.ticks_per_s:.1f} t/s [{marker}]"
    )

    report = {
        "benchmark": "core_hotpaths",
        "scale": scale,
        "seed": SEED,
        "baseline_pre_pr": PRE_PR_BASELINE,
        "current": {name: result.as_dict() for name, result in results.items()},
        "deterministic": deterministic,
        "parallel": {
            "workers": max(2, args.workers),
            "cluster_quick_workers_1": serial.as_dict(),
            "cluster_quick_workers_n": parallel.as_dict(),
            "hashes_identical": parallel_identical,
        },
        "interest": {
            "legacy": legacy_result.as_dict(),
            "radius_4": interest_on.as_dict(),
            "legacy_matches_pre_pr": legacy_hash_ok,
        },
        "speedup_vs_pre_pr": {},
    }
    matches_pre_pr: dict[str, bool] = {}
    for name, result in results.items():
        base = PRE_PR_BASELINE.get(name, {}).get("ticks_per_s")
        if base:
            report["speedup_vs_pre_pr"][name] = round(result.ticks_per_s / base, 2)
        recorded_hash = PRE_PR_BASELINE.get(name, {}).get("determinism_hash")
        if scale == "quick" and recorded_hash:
            matches_pre_pr[name] = result.determinism_hash == recorded_hash
    report["matches_pre_pr_virtual_results"] = matches_pre_pr

    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")

    if not deterministic:
        print("FAIL: determinism hashes drifted between back-to-back runs")
        return 1
    if not parallel_identical:
        print("FAIL: workers=1 and workers=N produced different virtual results")
        return 1
    if not legacy_hash_ok:
        print("FAIL: legacy broadcast drifted from the recorded pre-PR hash")
        return 1
    if not interest_stable:
        print("FAIL: interest-enabled runs drifted between back-to-back runs")
        return 1
    if args.assert_identity and not all(matches_pre_pr.values()):
        print(f"FAIL: virtual results drifted from pre-PR hashes: {matches_pre_pr}")
        return 1
    if args.assert_speedup is not None:
        speedup = report["speedup_vs_pre_pr"].get("construct_heavy")
        if speedup is None or speedup < args.assert_speedup:
            print(f"FAIL: construct-heavy speedup {speedup} < {args.assert_speedup}")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
