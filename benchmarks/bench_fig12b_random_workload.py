"""Benchmark: Figure 12b — supported players under the randomised workload R.

Paper: over twenty repetitions of the randomised behaviour, Servo supports
more players than Opencraft (median +17 %) with somewhat larger spread.
Expected shape: Servo's median supported-player count is at least Opencraft's.
"""

from repro.experiments.fig12_terrain_scalability import format_fig12b, run_fig12b


def test_fig12b_random_workload_supported_players(benchmark, settings, report_sink):
    result = benchmark.pedantic(
        run_fig12b,
        args=(settings,),
        kwargs={"players": 12, "join_interval_s": 4.0, "duration_s": 70.0},
        rounds=1,
        iterations=1,
    )
    report_sink.append(("Figure 12b: supported players (R workload)", format_fig12b(result)))
    assert result.median("servo") >= result.median("opencraft")
    assert min(result.supported["servo"]) >= 0
    assert len(result.supported["servo"]) == len(result.supported["opencraft"])
