#!/usr/bin/env python
"""Chaos smoke test: fault injection recovers fully and deterministically.

Three gates, all at quick scale with a fixed seed (used by the CI
``chaos-smoke`` job):

1. **Shard kill** — the ``shard_kill_at_peak`` scenario runs twice with the
   same seed.  Both runs must recover 100% of the killed shard's sessions,
   and must produce identical fault timelines, recovery records and final
   counters (bit-reproducible chaos).
2. **Offload brownout** — the ``offload_brownout`` scenario runs twice.
   Faults must actually fire (failures > 0) and be answered (retries > 0),
   and both runs must agree on every counter.
3. **Zero-fault identity** — the core hot-path scenarios from
   ``bench_core_hotpaths`` are re-run with the fault subsystem present but
   no plan installed; their determinism hashes must equal the recorded
   pre-PR baseline, proving an empty fault plan changes nothing.

Exit status is non-zero on any violation.

Usage::

    PYTHONPATH=src python benchmarks/chaos_smoke.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_core_hotpaths import (  # noqa: E402
    PRE_PR_BASELINE,
    run_cluster_quick,
    run_construct_heavy,
)

from repro.api.run import run_spec  # noqa: E402

SEED = 42

SHARD_KILL_SPEC = {
    "host": {"game": "servo-cluster", "shards": 2},
    "workload": {
        "scenario": "shard_kill_at_peak",
        "params": {
            "players": 16,
            "constructs": 8,
            "duration_s": 16.0,
            "kill_at_s": 8.0,
            "respawn_after_s": 2.0,
            "shard": 0,
        },
    },
    "seed": SEED,
}

BROWNOUT_SPEC = {
    "host": {"game": "servo"},
    "workload": {
        "scenario": "offload_brownout",
        "params": {
            "players": 10,
            "constructs": 12,
            "duration_s": 10.0,
            "failure_rate": 0.25,
            "throttle_rate": 0.1,
            "timeout_rate": 0.05,
        },
    },
    "seed": SEED,
}


def _fingerprint(result) -> tuple:
    """Everything two same-seed runs must agree on."""
    host = result.host
    timeline = host.fault_injector.timeline.digest() if host.fault_injector else None
    records = tuple(getattr(host, "recovery_records", ()))
    return (timeline, records, tuple(sorted(result.counters.items())), result.end_virtual_ms)


def check_shard_kill() -> list[str]:
    failures = []
    first, second = run_spec(SHARD_KILL_SPEC), run_spec(SHARD_KILL_SPEC)
    records = first.host.recovery_records
    if len(records) != 1:
        failures.append(f"shard-kill: expected exactly 1 recovery record, got {len(records)}")
    for record in records:
        if record.sessions_lost != 0:
            failures.append(f"shard-kill: {record.sessions_lost} sessions lost: {record}")
        if record.sessions_recovered <= 0:
            failures.append(f"shard-kill: no sessions recovered: {record}")
        if record.downtime_rounds <= 0:
            failures.append(f"shard-kill: non-positive MTTR: {record}")
    if _fingerprint(first) != _fingerprint(second):
        failures.append("shard-kill: same-seed reruns diverged (timeline/records/counters)")
    if not failures:
        record = records[0]
        print(
            f"shard-kill: recovered {record.sessions_recovered}/"
            f"{record.sessions_recovered + record.sessions_lost} sessions, "
            f"MTTR {record.downtime_rounds} rounds, deterministic [ok]"
        )
    return failures


def check_brownout() -> list[str]:
    failures = []
    first, second = run_spec(BROWNOUT_SPEC), run_spec(BROWNOUT_SPEC)
    injected = sum(
        first.counters.get(name, 0.0)
        for name in ("faas_failures", "faas_throttles", "faas_forced_timeouts")
    )
    if injected <= 0:
        failures.append("brownout: no FaaS faults were injected")
    if first.counters.get("faas_retries", 0.0) <= 0:
        failures.append("brownout: faults fired but no retries happened")
    if _fingerprint(first) != _fingerprint(second):
        failures.append("brownout: same-seed reruns diverged")
    if not failures:
        print(
            f"brownout: {injected:.0f} faults injected, "
            f"{first.counters['faas_retries']:.0f} retries, deterministic [ok]"
        )
    return failures


def check_zero_fault_identity() -> list[str]:
    failures = []
    for name, runner, ticks in (
        ("construct_heavy", run_construct_heavy, 600),
        ("cluster_quick", run_cluster_quick, 240),
    ):
        expected = PRE_PR_BASELINE[name]["determinism_hash"]
        actual = runner(ticks).determinism_hash
        if actual != expected:
            failures.append(
                f"zero-fault: {name} hash drifted from pre-PR baseline "
                f"({actual} != {expected})"
            )
        else:
            print(f"zero-fault: {name} hash matches pre-PR baseline [ok]")
    return failures


def main() -> int:
    failures = check_shard_kill() + check_brownout() + check_zero_fault_identity()
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
