"""Benchmark: Figure 12a — supported players under the S3 and S8 workloads.

Paper: with players joining every ten seconds and walking away from spawn,
Opencraft supports 12 (S3) and 9 (S8) players before its 95th-percentile tick
duration exceeds 50 ms; Servo supports 18 and 15.  Expected shape: Servo
sustains at least as many players as Opencraft, and the faster workload (S8)
supports fewer players than S3 on both games.
"""

from repro.experiments.fig12_terrain_scalability import format_fig12a, run_fig12a


def test_fig12a_supported_players_s3_s8(benchmark, settings, report_sink):
    result = benchmark.pedantic(
        run_fig12a,
        args=(settings,),
        kwargs={"players": 14, "join_interval_s": 4.0},
        rounds=1,
        iterations=1,
    )
    report_sink.append(("Figure 12a: supported players (S3/S8)", format_fig12a(result)))

    opencraft_s3 = result.runs[("opencraft", "S3")].supported_players
    opencraft_s8 = result.runs[("opencraft", "S8")].supported_players
    servo_s3 = result.runs[("servo", "S3")].supported_players
    servo_s8 = result.runs[("servo", "S8")].supported_players

    assert servo_s3 >= opencraft_s3
    assert servo_s8 + 1 >= opencraft_s8
    assert opencraft_s8 <= opencraft_s3
    assert servo_s8 <= servo_s3
    assert servo_s3 > 0
