"""Benchmark: Figure 13 — terrain retrieval latency with and without caching.

Paper: local disk serves 99.9 % of terrain loads within ~16 ms; raw serverless
storage has a 99.9th percentile of 226 ms (unusable for a 50 ms tick); Servo's
cache + prefetcher brings the 99.9th percentile down to 34 ms — below one
simulation step — with only a handful of cold-start outliers.
"""

from repro.experiments.fig13_cache_latency import format_fig13, run_fig13

TICK_BUDGET_MS = 50.0


def test_fig13_cache_removes_the_latency_tail(benchmark, settings, report_sink):
    result = benchmark.pedantic(
        run_fig13, args=(settings,), kwargs={"duration_s": 90.0}, rounds=1, iterations=1
    )
    report_sink.append(("Figure 13: terrain retrieval latency", format_fig13(result)))

    local_999 = result.percentile("local", 99.9)
    serverless_999 = result.percentile("serverless", 99.9)
    cached_999 = result.percentile("serverless+cache", 99.9)

    # Raw serverless storage is far too slow for the 50 ms tick budget.
    assert serverless_999 > TICK_BUDGET_MS
    # The cache brings the tail below one simulation step.
    assert cached_999 < TICK_BUDGET_MS
    # Local disk is also comfortably fast.
    assert local_999 < 2 * TICK_BUDGET_MS
    # The cache removes most of the serverless tail (paper: ~7x improvement).
    assert cached_999 < serverless_999 / 3
