"""Benchmark: Table I — the experiment overview.

Renders the experiment overview table from the scenario registry and checks
that a representative Table I scenario is runnable end to end on both a
baseline server and Servo.
"""

from repro.core import build_servo_server
from repro.experiments.tab01_overview import format_tab01, run_tab01, scenario_for
from repro.server import GameConfig, make_opencraft
from repro.sim import SimulationEngine


def _run_iv_b_scaled():
    """Run a scaled-down version of the Table I / Section IV-B scenario."""
    results = {}
    for game, factory in (("opencraft", make_opencraft), ("servo", build_servo_server)):
        engine = SimulationEngine(seed=7)
        server = factory(engine, GameConfig(world_type="flat"))
        scenario = scenario_for("IV-B")
        scaled = type(scenario)(
            name=scenario.name, players=20, behavior_code=scenario.behavior_code,
            world_type=scenario.world_type, constructs=25, duration_s=6.0,
        )
        results[game] = scaled.run(server)
    return results


def test_tab01_overview_and_representative_scenario(benchmark, report_sink):
    overview = run_tab01()
    report_sink.append(("Table I: experiment overview", format_tab01(overview)))
    assert len(overview.rows) == 6

    results = benchmark.pedantic(_run_iv_b_scaled, rounds=1, iterations=1)
    assert set(results) == {"opencraft", "servo"}
    for result in results.values():
        assert len(result.tick_durations_ms) > 100
        assert result.meets_qos()
