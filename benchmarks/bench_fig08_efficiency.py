"""Benchmark: Figure 8 — efficiency of speculative execution.

Paper: median efficiency is 84 % with no tick lead and 100 % with a lead of 10,
20 or 40 ticks; efficiency stays at 100 % for 50- and 100-step simulations and
drops below 100 % for 200 steps (the function latency exceeds the lead).
"""

from repro.experiments.fig08_efficiency import format_fig08, run_fig08


def test_fig08_speculation_efficiency(benchmark, settings, report_sink):
    result = benchmark.pedantic(
        run_fig08,
        args=(settings,),
        kwargs={"tick_leads": (0, 10, 20), "lengths": (50, 200)},
        rounds=1,
        iterations=1,
    )
    report_sink.append(("Figure 8: speculation efficiency", format_fig08(result)))

    lead0 = result.by_tick_lead[0].efficiency_stats()
    lead10 = result.by_tick_lead[10].efficiency_stats()
    lead20 = result.by_tick_lead[20].efficiency_stats()
    # No lead: most of each batch is still useful, but not all of it.
    assert 0.6 <= lead0.median <= 0.95
    # A lead of >=10 ticks hides the function latency completely (median 100%).
    assert lead10.median >= 0.99
    assert lead20.median >= 0.99

    short = result.by_length[50].efficiency_stats()
    long = result.by_length[200].efficiency_stats()
    # 50-step simulations finish within the lead; 200-step ones do not.
    assert short.median >= 0.99
    assert long.median < 0.99
