"""Benchmark: Figure 9 — offload latency, invocation rate and cost.

Paper: function latency grows with the simulation length (~1459 ms mean at 200
steps); the invocation rate halves when the length doubles (1200/min at 50
steps for 50 constructs); the resulting cost is of the same order of magnitude
as one c5n.xlarge VM ($0.216/hour).
"""

from repro.experiments.fig09_latency_invocations import (
    C5N_XLARGE_USD_PER_HOUR,
    PAPER_MEAN_LATENCY_200_STEPS_MS,
    format_fig09,
    run_fig09,
)


def test_fig09_latency_invocations_and_cost(benchmark, settings, report_sink):
    result = benchmark.pedantic(
        run_fig09,
        args=(settings,),
        kwargs={"lengths": (50, 100, 200), "construct_count": 25},
        rounds=1,
        iterations=1,
    )
    report_sink.append(("Figure 9: offload latency / invocations / cost", format_fig09(result)))

    # Latency grows with simulation length and lands near the paper's 1.46 s
    # mean for 200-step simulations.
    assert result.mean_latency_ms(50) < result.mean_latency_ms(100) < result.mean_latency_ms(200)
    assert 0.5 * PAPER_MEAN_LATENCY_200_STEPS_MS < result.mean_latency_ms(200) < 2.0 * PAPER_MEAN_LATENCY_200_STEPS_MS

    # The invocation rate roughly halves as the length doubles.
    ratio = result.invocations_per_minute(50) / max(result.invocations_per_minute(100), 1e-9)
    assert 1.5 < ratio < 3.0

    # Cost is within an order of magnitude of one VM.
    cost = result.cost_per_hour_usd(100)
    assert cost < 10 * C5N_XLARGE_USD_PER_HOUR
    assert cost > 0
