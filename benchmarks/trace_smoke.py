#!/usr/bin/env python
"""Trace smoke test: the telemetry pipeline is complete and deterministic.

Four gates, all at quick scale with a fixed seed (used by the CI
``trace-smoke`` job):

1. **Coverage** — a traced Servo-cluster run (constructs offloading under an
   injected FaaS failure rate) must emit every span category the unified
   trace promises: ticks, rounds, migrations, FaaS invocations and fault
   instants, and the written file must validate against the Chrome
   trace-event schema.
2. **Determinism** — two same-seed runs must produce byte-identical trace
   files once the wall-clock-only ``wallProfile`` section is stripped (the
   virtual clock is a pure function of the seed; the embedded metric
   snapshot rides along, so this also pins run-wide metrics).
3. **Report** — ``repro report`` must render the per-subsystem breakdown
   from the written trace (exit 0).
4. **No observer effect** — the same spec with telemetry disabled must
   produce the identical deterministic summary: recording is observation,
   never perturbation.

Exit status is non-zero on any violation.

Usage::

    PYTHONPATH=src python benchmarks/trace_smoke.py
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

from repro.api.cli import main as repro_main
from repro.api.run import run_spec
from repro.obs.export import strip_wall_clock, trace_json
from repro.obs.report import load_trace, trace_breakdown, validate_chrome_trace

#: chosen so this quick run exercises every category: at this seed the
#: wandering players cross the shard split (migrations) and the injected
#: failure rate actually fires (fault instants)
SEED = 7

#: every category the unified trace must cover in this scenario
REQUIRED_SPANS = {"tick", "round", "migration", "faas"}
REQUIRED_INSTANTS = {"fault"}

TRACED_SPEC = {
    "host": {
        "game": "servo-cluster",
        "shards": 2,
        "game_config": {"world_type": "flat"},
    },
    "workload": {
        "scenario": "behaviour_a",
        "params": {"players": 12, "constructs": 6},
    },
    "faults": {"faas": {"failure_rate": 0.3}},
    "seed": SEED,
    "duration_s": 6.0,
    "warmup_s": 1.0,
    "telemetry": {"enabled": True, "profile": True},
}


def _run_traced(workdir: Path, tag: str) -> tuple[Path, dict]:
    """One traced run via the CLI; returns the trace path and the summary."""
    spec_path = workdir / f"spec_{tag}.json"
    trace_path = workdir / f"trace_{tag}.json"
    result_path = workdir / f"result_{tag}.json"
    spec_path.write_text(json.dumps(TRACED_SPEC))
    code = repro_main(
        ["run", str(spec_path), "--trace", str(trace_path), "--json", str(result_path)]
    )
    if code != 0:
        raise SystemExit(f"traced run {tag!r} failed with exit code {code}")
    summary = json.loads(result_path.read_text())["summary"]
    return trace_path, summary


def check_coverage(trace_path: Path) -> list[str]:
    failures = []
    trace = load_trace(str(trace_path))
    problems = validate_chrome_trace(trace)
    for problem in problems[:10]:
        failures.append(f"coverage: schema problem: {problem}")
    rows, instants = trace_breakdown(trace)
    spans_seen = {row.category for row in rows}
    missing_spans = REQUIRED_SPANS - spans_seen
    missing_instants = REQUIRED_INSTANTS - set(instants)
    if missing_spans:
        failures.append(f"coverage: no spans for {sorted(missing_spans)}")
    if missing_instants:
        failures.append(f"coverage: no instants for {sorted(missing_instants)}")
    if "wallProfile" not in trace:
        failures.append("coverage: --profile run is missing the wallProfile section")
    if not failures:
        total = sum(row.count for row in rows)
        print(
            f"coverage: {total} spans across {sorted(spans_seen)}, "
            f"instants {dict(sorted(instants.items()))} [ok]"
        )
    return failures


def check_determinism(first: Path, second: Path) -> list[str]:
    failures = []
    stripped = [
        json.dumps(strip_wall_clock(load_trace(str(path))), sort_keys=True)
        for path in (first, second)
    ]
    if stripped[0] != stripped[1]:
        failures.append("determinism: same-seed traces differ after wall-clock strip")
    else:
        print("determinism: same-seed traces byte-identical (virtual clock) [ok]")
    return failures


def check_report(trace_path: Path) -> list[str]:
    code = repro_main(["report", str(trace_path)])
    if code != 0:
        return [f"report: `repro report` exited {code}"]
    print("report: breakdown rendered [ok]")
    return []


def check_no_observer_effect(traced_summary: dict) -> list[str]:
    plain_spec = {k: v for k, v in TRACED_SPEC.items() if k != "telemetry"}
    plain = run_spec(plain_spec).summary()
    if plain != traced_summary:
        return ["observer: telemetry changed the deterministic summary"]
    print("observer: telemetry off == telemetry on (virtual results) [ok]")
    return []


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="trace_smoke_") as tmp:
        workdir = Path(tmp)
        first_trace, first_summary = _run_traced(workdir, "a")
        second_trace, second_summary = _run_traced(workdir, "b")
        failures = check_coverage(first_trace)
        failures += check_determinism(first_trace, second_trace)
        if first_summary != second_summary:
            failures.append("determinism: same-seed summaries differ")
        failures += check_report(first_trace)
        failures += check_no_observer_effect(first_summary)
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
