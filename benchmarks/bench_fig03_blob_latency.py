"""Benchmark: Figure 3 — blob storage download latency for game data.

Paper: downloads of player/terrain data from Azure Blob Storage take hundreds
of milliseconds with high variability; most samples exceed the ~100 ms network
budget of first-person games, motivating Servo's caching design.
"""

from repro.experiments.fig03_storage_latency import format_fig03, run_fig03


def test_fig03_download_latency_distributions(benchmark, settings, report_sink):
    result = benchmark.pedantic(run_fig03, args=(settings,), rounds=1, iterations=1)
    report_sink.append(("Figure 3: blob download latency", format_fig03(result)))
    # Premium is faster than standard for both data kinds.
    assert result.stats("player", "premium").median < result.stats("player", "standard").median
    assert result.stats("terrain", "premium").median < result.stats("terrain", "standard").median
    # Terrain objects are slower to fetch than player records.
    assert result.stats("terrain", "standard").median > result.stats("player", "standard").median
    # Most downloads exceed the FPS latency budget (the paper's motivation).
    assert result.exceeds_fps_budget_fraction("terrain", "standard") > 0.9
