"""Benchmark: Figure 1 — headline maximum supported players (100 constructs).

Paper: Servo 150, Minecraft 90, Opencraft 10 supported players.
Expected shape: Servo > Minecraft > Opencraft.
"""

from repro.experiments.fig01_headline import PAPER_VALUES, format_fig01, run_fig01


def test_fig01_headline_max_players(benchmark, settings, report_sink):
    result = benchmark.pedantic(run_fig01, args=(settings,), rounds=1, iterations=1)
    report_sink.append(("Figure 1: headline max players", format_fig01(result)))
    measured = result.max_players
    assert measured["servo"] > measured["minecraft"]
    assert measured["minecraft"] >= measured["opencraft"]
    assert measured["servo"] >= PAPER_VALUES["opencraft"]
