#!/usr/bin/env python
"""Interest-management smoke test: the player ceiling lifts and bounds hold.

Three gates, all at quick scale with a fixed seed (used by the CI
``interest-smoke`` job):

1. **Player ceiling** — a quick fig07a-style max-players search runs on the
   opencraft baseline twice: once with the legacy observe-everything
   broadcast and once with area-of-interest broadcast enabled
   (``interest_radius_chunks=4``).  Interest management must sustain at least
   ``MIN_CEILING_RATIO`` (1.5x) the legacy player ceiling at the same P99
   tick budget.
2. **Staleness bounds** — an interest-enabled run is inspected through the
   ``consistency_error`` metric: the largest staleness observed at any flush
   must never exceed the configured ``interest_max_staleness_ticks`` budget.
3. **Determinism** — the interest-enabled run executes twice with the same
   seed and must produce bit-identical tick durations and flush counters.

Exit status is non-zero on any violation.

Usage::

    PYTHONPATH=src python benchmarks/interest_smoke.py
"""

from __future__ import annotations

import sys

from repro.experiments.harness import ExperimentSettings, build_game_server
from repro.experiments.max_players import find_max_players
from repro.server import GameConfig
from repro.sim import SimulationEngine
from repro.sim.metrics import CONSISTENCY_ERROR_HISTOGRAM, metric_name
from repro.workload.scenarios import behaviour_a

SEED = 42
INTEREST_RADIUS = 4
MIN_CEILING_RATIO = 1.5

SWEEP_SETTINGS = ExperimentSettings(
    seed=SEED, duration_s=8.0, player_step=50, max_players=600
)


def check_player_ceiling() -> list[str]:
    failures = []
    legacy = find_max_players("opencraft", 0, SWEEP_SETTINGS)
    interest = find_max_players(
        "opencraft",
        0,
        SWEEP_SETTINGS,
        game_config=GameConfig(
            world_type="flat", interest_radius_chunks=INTEREST_RADIUS
        ),
    )
    if legacy.max_players <= 0:
        failures.append("ceiling: legacy search found no supported player count")
        return failures
    ratio = interest.max_players / legacy.max_players
    if ratio < MIN_CEILING_RATIO:
        failures.append(
            f"ceiling: interest sustains only {ratio:.2f}x the legacy ceiling "
            f"({interest.max_players} vs {legacy.max_players}), "
            f"need >= {MIN_CEILING_RATIO}x"
        )
    else:
        print(
            f"ceiling: legacy {legacy.max_players} -> interest "
            f"{interest.max_players} players ({ratio:.1f}x) [ok]"
        )
    return failures


def _interest_run() -> tuple[list, float, dict]:
    """One interest-enabled run; returns (tick durations, staleness max, counters)."""
    engine = SimulationEngine(seed=SEED)
    config = GameConfig(world_type="flat", interest_radius_chunks=INTEREST_RADIUS)
    server = build_game_server("opencraft", engine, config)
    scenario = behaviour_a(players=60, constructs=20, duration_s=8.0)
    result = scenario.run(server)
    histogram = engine.metrics.histogram(metric_name(CONSISTENCY_ERROR_HISTOGRAM))
    staleness_max = histogram.maximum() if len(histogram) else 0.0
    counters = {
        name: engine.metrics.counter(name)
        for name in ("interest_entries_flushed", "interest_flushes")
    }
    return result.tick_durations_ms, staleness_max, counters


def check_staleness_and_determinism() -> list[str]:
    failures = []
    bound = GameConfig().interest_max_staleness_ticks
    first = _interest_run()
    second = _interest_run()
    durations, staleness_max, counters = first
    if staleness_max > bound:
        failures.append(
            f"staleness: observed max {staleness_max:.0f} ticks exceeds the "
            f"configured bound of {bound}"
        )
    else:
        print(f"staleness: max {staleness_max:.0f} <= bound {bound} ticks [ok]")
    if counters["interest_flushes"] <= 0:
        failures.append("staleness: interest mode flushed nothing")
    if first != second:
        failures.append("determinism: same-seed interest reruns diverged")
    else:
        print(
            f"determinism: {counters['interest_flushes']:.0f} flushes, "
            f"{counters['interest_entries_flushed']:.0f} entries, "
            "bit-identical rerun [ok]"
        )
    return failures


def main() -> int:
    failures = check_player_ceiling() + check_staleness_and_determinism()
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
