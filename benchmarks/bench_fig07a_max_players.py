"""Benchmark: Figure 7a — maximum supported players vs construct count.

Paper (players supported at 0/100/200 constructs):
  Opencraft 200/10/0, Minecraft 110/90/0, Servo 190/150/120.
Expected shape: all games degrade as constructs increase; the baselines
collapse to zero at 200 constructs while Servo still supports >=100 players.
"""

from repro.experiments.fig07_scalability import format_fig07a, run_fig07a


def test_fig07a_max_players_vs_constructs(benchmark, settings, report_sink):
    result = benchmark.pedantic(
        run_fig07a,
        args=(settings,),
        kwargs={"construct_counts": (0, 100, 200)},
        rounds=1,
        iterations=1,
    )
    report_sink.append(("Figure 7a: max players vs constructs", format_fig07a(result)))
    measured = result.max_players
    # The baselines cannot support players at 200 constructs; Servo can.
    assert measured[("opencraft", 200)] == 0
    assert measured[("minecraft", 200)] == 0
    assert measured[("servo", 200)] >= 100
    # At 100 constructs Servo supports the most players.
    assert measured[("servo", 100)] > measured[("minecraft", 100)]
    assert measured[("servo", 100)] > measured[("opencraft", 100)]
    # Without constructs every game supports a large population.
    assert measured[("opencraft", 0)] >= 100
    assert measured[("servo", 0)] >= 100
