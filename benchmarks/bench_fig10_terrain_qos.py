"""Benchmark: Figure 10 — QoS of serverless terrain generation (Sinc workload).

Paper: Opencraft keeps the 128-block view distance only while players move at
1 block/s and collapses below 16 blocks as the speed grows; Servo maintains
the full view distance throughout, at the cost of slightly higher tick
durations (loading the extra terrain it actually generates).
"""

from repro.experiments.fig10_terrain_qos import format_fig10, run_fig10


def test_fig10_terrain_generation_qos(benchmark, settings, report_sink):
    result = benchmark.pedantic(
        run_fig10,
        args=(settings,),
        kwargs={"duration_s": 120.0, "speed_increase_interval_s": 24.0},
        rounds=1,
        iterations=1,
    )
    report_sink.append(("Figure 10: terrain generation QoS", format_fig10(result)))

    opencraft = result.runs["opencraft"]
    servo = result.runs["servo"]
    # Opencraft's local generation falls behind: terrain gets close to the players.
    assert opencraft.final_view_range() < 64.0
    # Servo keeps (nearly) the full 128-block view distance.
    assert servo.final_view_range() > 100.0
    assert servo.minimum_view_range() > opencraft.minimum_view_range()
    # Both games keep ticking; Servo pays a visible price for loading the
    # terrain it actually generates (see EXPERIMENTS.md for the known deviation
    # in how this compares to Opencraft's interference-dominated ticks).
    late = result.duration_s * 0.6
    assert servo.tick_p95_after(late) > 10.0
    assert opencraft.tick_p95_after(late) > 10.0
