"""Benchmark: Section IV-G — speculative simulation rate by construct size.

Paper: at least 95 % of 100-step offloaded simulations reach 488 updates/s for
a 252-block construct and 105 updates/s for a 484-block construct — 24.4x and
5.3x faster than the 20 Hz simulation rate.  Expected shape: both sizes
simulate much faster than 20 Hz, and the smaller construct is several times
faster than the larger one.
"""

from repro.experiments.sec4g_construct_perf import SIMULATION_RATE_HZ, format_sec4g, run_sec4g


def test_sec4g_simulation_rates_by_construct_size(benchmark, settings, report_sink):
    result = benchmark.pedantic(
        run_sec4g, args=(settings,), kwargs={"samples_per_size": 30}, rounds=1, iterations=1
    )
    report_sink.append(("Section IV-G: construct simulation rates", format_sec4g(result)))

    small = result.p5_rate(252)
    medium = result.p5_rate(484)
    assert small > 5 * SIMULATION_RATE_HZ
    assert medium > 2 * SIMULATION_RATE_HZ
    assert small > 2.5 * medium
