"""Packaging for the Servo (ICDCS'23) reproduction.

Installs the ``repro`` package from ``src/`` and the ``repro`` console script
(the same CLI as ``python -m repro``).  Works with plain ``setup.py`` installs
on offline hosts without ``wheel``/PEP 517.
"""

import os
import re

from setuptools import find_packages, setup


def read_version() -> str:
    here = os.path.dirname(os.path.abspath(__file__))
    with open(os.path.join(here, "src", "repro", "version.py"), encoding="utf-8") as handle:
        match = re.search(r"__version__\s*=\s*['\"]([^'\"]+)['\"]", handle.read())
    if match is None:
        raise RuntimeError("could not parse __version__ from src/repro/version.py")
    return match.group(1)


setup(
    name="servo-repro",
    version=read_version(),
    description=(
        "Deterministic reproduction of Servo (ICDCS 2023): serverless MVE "
        "backends, grown into a sharded cluster, with a declarative run API"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "repro = repro.api.cli:main",
        ]
    },
)
