"""Setup shim for environments without the ``wheel`` package.

The project is fully described by ``pyproject.toml``; this file only enables
``pip install -e . --no-use-pep517`` on machines where PEP 517 editable builds
are unavailable (e.g. offline hosts without ``wheel``).
"""

from setuptools import setup

setup()
