"""Anatomy of Servo's speculative execution for one construct.

Registers a single aperiodic construct (a hopper farm, whose state never
loops) and a periodic clock circuit with the speculative backend, runs a few
hundred ticks and shows:

* how the server falls back to local simulation until the first reply arrives,
* how speculative states are merged afterwards,
* how loop detection collapses the periodic construct to a single invocation,
* how a player edit invalidates in-flight speculation via the logical timestamp.

This example drives the backend below the :mod:`repro.api` run layer on
purpose — it dissects one service rather than running a scenario.  (For the
spec-driven equivalent of a full Servo run, see ``examples/quickstart.py``.)

Run with:  python examples/speculative_execution_demo.py
"""

from repro.constructs.library import build_clock, build_counter_farm
from repro.core import ServoConfig
from repro.core.offload import SC_SIMULATION_FUNCTION, make_simulation_handler
from repro.core.speculative import SpeculativeConstructBackend
from repro.faas import AWS_LAMBDA, FaasPlatform, FunctionDefinition
from repro.sim import SimulationEngine


def run_ticks(engine, backend, count, start_tick=0):
    for tick in range(start_tick, start_tick + count):
        backend.tick(tick)
        engine.advance_by(50.0)


def main(ticks: int = 400, post_edit_ticks: int = 100) -> SpeculativeConstructBackend:
    engine = SimulationEngine(seed=3)
    platform = FaasPlatform(engine, provider=AWS_LAMBDA)
    platform.register(
        FunctionDefinition(
            name=SC_SIMULATION_FUNCTION, handler=make_simulation_handler(), memory_mb=1769
        )
    )
    backend = SpeculativeConstructBackend(
        engine, platform, ServoConfig(tick_lead=20, steps_per_invocation=100)
    )

    farm = build_counter_farm(hoppers=4)          # aperiodic: must be re-invoked
    clock = build_clock(period=8, lamps=2)        # periodic: one invocation suffices
    backend.register_construct(farm)
    backend.register_construct(clock)

    run_ticks(engine, backend, ticks)

    farm_record = backend.record_for(farm.construct_id)
    clock_record = backend.record_for(clock.construct_id)
    print(f"After {ticks} ticks ({ticks * 50 / 1000:g} virtual seconds):")
    print(f"  farm   : merged={farm_record.merged_steps:4d} fallback={farm_record.fallback_steps:3d} "
          f"invocations={farm_record.invocations_issued}")
    print(f"  clock  : merged={clock_record.merged_steps:4d} fallback={clock_record.fallback_steps:3d} "
          f"invocations={clock_record.invocations_issued} (loop detected -> no re-invocation)")
    efficiency = backend.efficiency_samples()
    print(f"  speculation efficiency samples: {[round(sample, 2) for sample in efficiency[:6]]} ...")

    # A player toggles a block next to the farm: the logical timestamp advances
    # and the buffered speculative states are discarded.
    backend.on_player_modify(farm.construct_id, farm.positions[0])
    print("\nPlayer modified the farm: buffered speculation invalidated "
          f"(counter={farm.modification_counter}).")
    run_ticks(engine, backend, post_edit_ticks, start_tick=ticks)
    print(f"  farm keeps advancing one step per tick: step={farm.step} "
          f"after {ticks + post_edit_ticks} ticks total")
    print(f"  stale replies discarded so far: {engine.metrics.counter('speculation_discarded'):.0f}")
    return backend


if __name__ == "__main__":
    main()
