"""Cost analysis of Servo's serverless offloading.

Estimates the hourly cost of construct offloading for different simulation
lengths and function memory configurations, the trade-off the paper discusses
in Section IV-C (it compares the cost to one c5n.xlarge VM at $0.216/hour).

Run with:  python examples/cost_analysis.py
"""

from repro.constructs.library import build_sized_construct
from repro.core.offload import SC_SIMULATION_FUNCTION, OffloadRequest, make_simulation_handler
from repro.experiments.harness import format_table
from repro.faas import AWS_LAMBDA, FaasPlatform, FunctionDefinition
from repro.sim import SimulationEngine
from repro.world.coords import BlockPos

C5N_XLARGE_USD_PER_HOUR = 0.216


def cost_per_hour(steps: int, memory_mb: int, constructs: int = 50) -> float:
    """Hourly cost of keeping ``constructs`` constructs offloaded."""
    engine = SimulationEngine(seed=1)
    platform = FaasPlatform(engine, provider=AWS_LAMBDA)
    platform.register(
        FunctionDefinition(
            name=SC_SIMULATION_FUNCTION, handler=make_simulation_handler(), memory_mb=memory_mb
        )
    )
    construct = build_sized_construct(430, origin=BlockPos(0, 64, 0), looping=False)
    # One invocation covers `steps` ticks of 50 ms; simulate ten minutes of game time.
    game_time_ms = 10 * 60 * 1000.0
    invocations_per_construct = int(game_time_ms / (steps * 50.0))
    for index in range(invocations_per_construct):
        request = OffloadRequest.from_construct(construct, steps=steps, detect_loops=False)
        invocation = platform.invoke(SC_SIMULATION_FUNCTION, request)
        construct.apply_state(invocation.result.sequence.state_at(construct.step + steps))
        engine.advance_by(steps * 50.0)
    single_construct_cost = platform.billing.cost_per_hour_usd(game_time_ms)
    return single_construct_cost * constructs


def main() -> None:
    rows = []
    for memory_mb in (512, 1024, 1769):
        for steps in (50, 100, 200):
            cost = cost_per_hour(steps=steps, memory_mb=memory_mb)
            rows.append(
                [
                    str(memory_mb),
                    str(steps),
                    f"${cost:.3f}",
                    f"{cost / C5N_XLARGE_USD_PER_HOUR:.1f}x",
                ]
            )
    print("Hourly cost of offloading 50 medium constructs (10 minutes simulated):\n")
    print(format_table(
        ["function memory MB", "steps per invocation", "cost per hour", "vs one c5n.xlarge"], rows
    ))
    print("\nLonger simulations per invocation amortise the per-request overhead;")
    print("smaller memory configurations trade latency for cost.")


if __name__ == "__main__":
    main()
