"""Cost analysis of Servo's serverless offloading.

Estimates the hourly cost of construct offloading for different simulation
lengths and function memory configurations, the trade-off the paper discusses
in Section IV-C (it compares the cost to one c5n.xlarge VM at $0.216/hour).
The table rendering comes from :mod:`repro.api`; the offload plumbing is
driven directly because this example prices invocations, not game runs.

Run with:  python examples/cost_analysis.py
"""

from repro.api import format_table
from repro.constructs.library import build_sized_construct
from repro.core.offload import SC_SIMULATION_FUNCTION, OffloadRequest, make_simulation_handler
from repro.faas import AWS_LAMBDA, FaasPlatform, FunctionDefinition
from repro.sim import SimulationEngine
from repro.world.coords import BlockPos

C5N_XLARGE_USD_PER_HOUR = 0.216


def cost_per_hour(steps: int, memory_mb: int, constructs: int = 50,
                  game_time_minutes: float = 10.0) -> float:
    """Hourly cost of keeping ``constructs`` constructs offloaded."""
    engine = SimulationEngine(seed=1)
    platform = FaasPlatform(engine, provider=AWS_LAMBDA)
    platform.register(
        FunctionDefinition(
            name=SC_SIMULATION_FUNCTION, handler=make_simulation_handler(), memory_mb=memory_mb
        )
    )
    construct = build_sized_construct(430, origin=BlockPos(0, 64, 0), looping=False)
    # One invocation covers `steps` ticks of 50 ms.
    game_time_ms = game_time_minutes * 60 * 1000.0
    invocations_per_construct = int(game_time_ms / (steps * 50.0))
    for index in range(invocations_per_construct):
        request = OffloadRequest.from_construct(construct, steps=steps, detect_loops=False)
        invocation = platform.invoke(SC_SIMULATION_FUNCTION, request)
        construct.apply_state(invocation.result.sequence.state_at(construct.step + steps))
        engine.advance_by(steps * 50.0)
    single_construct_cost = platform.billing.cost_per_hour_usd(game_time_ms)
    return single_construct_cost * constructs


def main(memory_configs_mb: tuple[int, ...] = (512, 1024, 1769),
         steps_options: tuple[int, ...] = (50, 100, 200),
         constructs: int = 50,
         game_time_minutes: float = 10.0) -> list[list[str]]:
    rows = []
    for memory_mb in memory_configs_mb:
        for steps in steps_options:
            cost = cost_per_hour(
                steps=steps, memory_mb=memory_mb,
                constructs=constructs, game_time_minutes=game_time_minutes,
            )
            rows.append(
                [
                    str(memory_mb),
                    str(steps),
                    f"${cost:.3f}",
                    f"{cost / C5N_XLARGE_USD_PER_HOUR:.1f}x",
                ]
            )
    print(f"Hourly cost of offloading {constructs} medium constructs "
          f"({game_time_minutes:g} minutes simulated):\n")
    print(format_table(
        ["function memory MB", "steps per invocation", "cost per hour", "vs one c5n.xlarge"], rows
    ))
    print("\nLonger simulations per invocation amortise the per-request overhead;")
    print("smaller memory configurations trade latency for cost.")
    return rows


if __name__ == "__main__":
    main()
