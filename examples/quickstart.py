"""Quickstart: run a Servo server with a small construct workload.

Builds a Servo game server (flat world, AWS provider), connects 20 emulated
players, places 25 player-built constructs, runs 30 virtual seconds and prints
the tick-duration statistics plus the serverless offloading summary.

Run with:  python examples/quickstart.py
"""

from repro.core import ServoConfig, build_servo_server
from repro.server import GameConfig
from repro.sim import SimulationEngine
from repro.workload import Scenario


def main() -> None:
    engine = SimulationEngine(seed=7)
    server = build_servo_server(
        engine,
        GameConfig(world_type="flat"),
        ServoConfig(provider="aws", tick_lead=20, steps_per_invocation=100),
    )

    scenario = Scenario.behaviour_a(players=20, constructs=25, duration_s=30.0)
    result = scenario.run(server)

    stats = result.tick_stats()
    print("Tick durations (ms)")
    print(f"  median {stats.median:6.2f}   p95 {stats.p95:6.2f}   max {stats.maximum:6.2f}")
    print(f"  ticks over the 50 ms budget: {100 * result.fraction_over_budget():.2f} %")
    print(f"  QoS met (paper criterion, <5% over budget): {result.meets_qos()}")

    runtime = server.servo
    efficiency = engine.metrics.histogram("speculation_efficiency")
    print("\nServerless offloading")
    print(f"  function invocations:      {runtime.billing.invocation_count}")
    print(f"  construct loops detected:  {engine.metrics.counter('loops_detected'):.0f}")
    if len(efficiency):
        print(f"  median speculation efficiency: {efficiency.percentile(50):.2f}")
    print(f"  estimated cost per hour:   ${runtime.cost_per_hour_usd(engine.now_ms):.3f}")


if __name__ == "__main__":
    main()
