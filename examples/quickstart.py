"""Quickstart: run a Servo server with a small construct workload.

Declares the whole run as a :class:`repro.api.RunSpec` — host topology,
workload, seed and duration — executes it through :func:`repro.api.run_spec`
and prints the tick-duration statistics plus the serverless offloading
summary.  The same spec as JSON lives in ``examples/specs/servo_quick.json``
and runs via ``python -m repro run examples/specs/servo_quick.json``.

Run with:  python examples/quickstart.py
"""

from repro.api import RunResult, RunSpec, run_spec


def build_spec(players: int = 20, constructs: int = 25, duration_s: float = 30.0,
               warmup_s: float | None = None, seed: int = 7) -> RunSpec:
    spec = {
        "host": {
            "game": "servo",
            "game_config": {"world_type": "flat"},
            "servo_config": {"provider": "aws", "tick_lead": 20, "steps_per_invocation": 100},
        },
        "workload": {
            "scenario": "behaviour_a",
            "params": {"players": players, "constructs": constructs, "duration_s": duration_s},
        },
        "seed": seed,
    }
    if warmup_s is not None:
        spec["warmup_s"] = warmup_s
    return RunSpec.from_dict(spec)


def main(players: int = 20, constructs: int = 25, duration_s: float = 30.0,
         warmup_s: float | None = None) -> RunResult:
    result = run_spec(build_spec(players, constructs, duration_s, warmup_s))

    print(result.format_summary())

    server = result.host
    runtime = server.servo
    efficiency = server.engine.metrics.histogram("speculation_efficiency")
    print("\nServerless offloading")
    print(f"  function invocations:      {runtime.billing.invocation_count}")
    print(f"  construct loops detected:  {result.counters.get('loops_detected', 0):.0f}")
    if len(efficiency):
        print(f"  median speculation efficiency: {efficiency.percentile(50):.2f}")
    print(f"  estimated cost per hour:   ${runtime.cost_per_hour_usd(result.end_virtual_ms):.3f}")
    return result


if __name__ == "__main__":
    main()
