"""Compare the scalability of Opencraft, Minecraft and Servo (mini Figure 7).

For a few construct counts, finds the maximum number of players each game
supports (fewer than 5 % of ticks over the 50 ms budget) and prints the
comparison table next to the paper's values.  Everything is imported through
:mod:`repro.api`, the public front door.

Run with:  python examples/scalability_comparison.py
"""

from repro.api import ExperimentSettings, find_max_players, format_table


def main(games: tuple[str, ...] = ("opencraft", "minecraft", "servo"),
         construct_counts: tuple[int, ...] = (0, 100, 200),
         settings: ExperimentSettings | None = None) -> list[list[str]]:
    from repro.experiments.fig07_scalability import PAPER_FIG07A

    settings = settings or ExperimentSettings(duration_s=10.0, player_step=50, max_players=200)

    rows = []
    for game in games:
        for constructs in construct_counts:
            print(f"searching max players for {game} with {constructs} constructs ...")
            search = find_max_players(game, constructs, settings)
            paper = PAPER_FIG07A.get((game, constructs), "-")
            rows.append([game, str(constructs), str(paper), str(search.max_players)])

    print()
    print(format_table(["game", "constructs", "paper max players", "measured (coarse)"], rows))
    print("\nThe search uses a coarse 50-player grid to stay fast; run the")
    print("fig07a benchmark (or lower ExperimentSettings.player_step) for finer results.")
    return rows


if __name__ == "__main__":
    main()
