"""Compare the scalability of Opencraft, Minecraft and Servo (mini Figure 7).

For a few construct counts, finds the maximum number of players each game
supports (fewer than 5 % of ticks over the 50 ms budget) and prints the
comparison table next to the paper's values.

Run with:  python examples/scalability_comparison.py
"""

from repro.experiments import ExperimentSettings
from repro.experiments.fig07_scalability import PAPER_FIG07A
from repro.experiments.max_players import find_max_players
from repro.experiments.harness import format_table


def main() -> None:
    settings = ExperimentSettings(duration_s=10.0, player_step=50, max_players=200)
    construct_counts = (0, 100, 200)
    games = ("opencraft", "minecraft", "servo")

    rows = []
    for game in games:
        for constructs in construct_counts:
            print(f"searching max players for {game} with {constructs} constructs ...")
            search = find_max_players(game, constructs, settings)
            paper = PAPER_FIG07A.get((game, constructs), "-")
            rows.append([game, str(constructs), str(paper), str(search.max_players)])

    print()
    print(format_table(["game", "constructs", "paper max players", "measured (coarse)"], rows))
    print("\nThe search uses a coarse 50-player grid to stay fast; run the")
    print("fig07a benchmark (or lower ExperimentSettings.player_step) for finer results.")


if __name__ == "__main__":
    main()
