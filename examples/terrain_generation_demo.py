"""Serverless versus local terrain generation under fast exploration.

Five players walk away from spawn with increasing speed (behaviour Sinc).
Opencraft generates terrain on local worker threads and falls behind; Servo
generates every chunk in its own serverless function invocation and keeps the
full 128-block view distance.  The experiment is run through the
:mod:`repro.api` experiment front door (``run_experiment("fig10", ...)``).

Run with:  python examples/terrain_generation_demo.py
"""

from repro.api import ExperimentSettings, format_table, run_experiment


def main(duration_s: float = 120.0, speed_increase_interval_s: float = 24.0,
         settings: ExperimentSettings | None = None) -> list[list[str]]:
    settings = settings or ExperimentSettings(duration_s=10.0)
    result, _ = run_experiment(
        "fig10", settings,
        duration_s=duration_s, speed_increase_interval_s=speed_increase_interval_s,
    )

    rows = []
    for game, run in sorted(result.runs.items()):
        rows.append(
            [
                game,
                f"{run.minimum_view_range():.0f}",
                f"{run.final_view_range():.0f}",
                f"{run.tick_p95_after(result.duration_s * 0.5):.1f}",
            ]
        )
    print("Players speed up over the run; view range shows who keeps terrain loaded.\n")
    print(
        format_table(
            ["game", "min view range (blocks)", "view range at end", "late-run p95 tick (ms)"],
            rows,
        )
    )
    print("\nA view range near 128 means terrain is always generated before players")
    print("reach it; a collapsing view range means the world fails to load in time.")
    return rows


if __name__ == "__main__":
    main()
