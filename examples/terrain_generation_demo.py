"""Serverless versus local terrain generation under fast exploration.

Five players walk away from spawn with increasing speed (behaviour Sinc).
Opencraft generates terrain on local worker threads and falls behind; Servo
generates every chunk in its own serverless function invocation and keeps the
full 128-block view distance.

Run with:  python examples/terrain_generation_demo.py
"""

from repro.experiments import ExperimentSettings
from repro.experiments.fig10_terrain_qos import run_fig10
from repro.experiments.harness import format_table


def main() -> None:
    settings = ExperimentSettings(duration_s=10.0)
    result = run_fig10(settings, duration_s=120.0, speed_increase_interval_s=24.0)

    rows = []
    for game, run in sorted(result.runs.items()):
        rows.append(
            [
                game,
                f"{run.minimum_view_range():.0f}",
                f"{run.final_view_range():.0f}",
                f"{run.tick_p95_after(result.duration_s * 0.5):.1f}",
            ]
        )
    print("Players speed up from 1 to 5 blocks/s over two virtual minutes.\n")
    print(
        format_table(
            ["game", "min view range (blocks)", "view range at end", "late-run p95 tick (ms)"],
            rows,
        )
    )
    print("\nA view range near 128 means terrain is always generated before players")
    print("reach it; a collapsing view range means the world fails to load in time.")


if __name__ == "__main__":
    main()
