"""Runtime contract of the ``@pure_kernel``-marked pool-boundary functions.

DET004 checks purity statically; this suite exercises the same contract at
runtime: calling each kernel twice on (copies of) the same inputs must
return identical results and leave every argument bit-identical.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.parallel import _advance_batch_task, _generate_chunk_task
from repro.constructs.batched import CircuitBatchLayout, advance_states
from repro.constructs.compiled import compile_circuit
from repro.constructs.library import build_clock, build_counter_farm, build_wire_line
from repro.lint.markers import is_pure_kernel, pure_kernel


def test_pool_boundary_functions_carry_the_marker():
    assert is_pure_kernel(advance_states)
    assert is_pure_kernel(_generate_chunk_task)
    assert is_pure_kernel(_advance_batch_task)


def test_marker_is_a_transparent_decorator():
    def plain(x):
        return x + 1

    assert not is_pure_kernel(plain)
    marked = pure_kernel(plain)
    assert marked is plain  # no wrapper: pickling by reference keeps working
    assert is_pure_kernel(marked)
    assert marked(2) == 3


def _batch_inputs():
    fleet = [
        build_clock(period=6, lamps=2),
        build_wire_line(length=7, powered=True),
        build_counter_farm(),
    ]
    circuits = [compile_circuit(construct) for construct in fleet]
    layout = CircuitBatchLayout(circuits)
    states = np.fromiter(
        (cell.state for circuit in circuits for cell in circuit._cells),
        dtype=np.int64,
        count=layout.total,
    )
    return layout, states


def _layout_snapshot(layout: CircuitBatchLayout) -> dict[str, np.ndarray]:
    return {
        name: np.array(getattr(layout, name), copy=True)
        for name in CircuitBatchLayout.__slots__
        if isinstance(getattr(layout, name), np.ndarray)
    }


def _advance_twice_asserting_purity(kernel):
    layout, states = _batch_inputs()
    states_before = states.copy()
    arrays_before = _layout_snapshot(layout)

    first = kernel(layout, states.copy())
    second = kernel(layout, states.copy())

    assert (first == second).all(), "same inputs must give the same step"
    assert first is not states
    assert (states == states_before).all(), "the state vector must not be mutated"
    for name, before in arrays_before.items():
        assert (getattr(layout, name) == before).all(), f"layout.{name} was mutated"


def test_advance_states_double_call_no_argument_mutation():
    _advance_twice_asserting_purity(advance_states)


def test_advance_batch_task_double_call_no_argument_mutation():
    _advance_twice_asserting_purity(_advance_batch_task)


def test_generate_chunk_task_is_pure_in_its_arguments():
    spec = ("default", 1234, 3, -2)
    first = _generate_chunk_task(*spec)
    second = _generate_chunk_task(*spec)
    assert first is not second
    assert (first.blocks == second.blocks).all()
    assert first.content_hash() == second.content_hash()
    assert first.position == second.position
