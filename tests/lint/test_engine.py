"""Pragmas, config loading, JSON schema, and the whole-tree clean gate."""

from __future__ import annotations

from pathlib import Path

import pytest

import repro
from repro.lint.config import (
    DEFAULT_KERNEL_ROOTS,
    LintConfig,
    load_config,
)
from repro.lint.engine import KNOWN_RULES, META_RULE, RULE_TABLE, lint_tree
from repro.lint.findings import SCHEMA_VERSION


# -- pragmas --------------------------------------------------------------------------


def test_pragma_with_reason_suppresses_and_carries_the_reason(lint_snippets):
    report = lint_snippets({
        "mod.py": """
            import time

            def tick():
                return time.time()  # det: allow[DET001] startup banner only, never fed to results
        """
    })
    assert report.clean
    (finding,) = report.suppressed
    assert finding.rule == "DET001"
    assert finding.reason == "startup banner only, never fed to results"


def test_pragma_without_reason_is_rejected_and_does_not_suppress(lint_snippets):
    report = lint_snippets({
        "mod.py": """
            import time

            def tick():
                return time.time()  # det: allow[DET001]
        """
    })
    rules = sorted(finding.rule for finding in report.unsuppressed)
    assert rules == [META_RULE, "DET001"]
    assert not report.suppressed
    meta = next(f for f in report.unsuppressed if f.rule == META_RULE)
    assert "mandatory reason" in meta.message


def test_pragma_with_unknown_rule_id_raises_a_meta_finding(lint_snippets):
    report = lint_snippets({
        "mod.py": """
            def tick():
                return 0  # det: allow[DET999] no such rule
        """
    })
    (finding,) = report.unsuppressed
    assert finding.rule == META_RULE
    assert "DET999" in finding.message


def test_pragma_for_a_different_rule_does_not_suppress(lint_snippets):
    report = lint_snippets({
        "mod.py": """
            import time

            def tick():
                return time.time()  # det: allow[DET002] wrong rule entirely
        """
    })
    assert [f.rule for f in report.unsuppressed] == ["DET001"]


def test_pragma_can_cover_multiple_rules(lint_snippets):
    report = lint_snippets({
        "mod.py": """
            import time
            import random

            def tick():
                return time.time() + random.random()  # det: allow[DET001, DET002] fixture exercising both rules at once
        """
    })
    assert report.clean
    assert sorted(f.rule for f in report.suppressed) == ["DET001", "DET002"]


def test_unparsable_file_is_reported_not_skipped_silently(lint_snippets):
    report = lint_snippets({"mod.py": "def broken(:\n"})
    (finding,) = report.unsuppressed
    assert finding.rule == META_RULE
    assert "does not parse" in finding.message


# -- config ---------------------------------------------------------------------------


def test_load_config_defaults_when_no_file_exists(tmp_path):
    config = load_config(search_from=tmp_path)
    assert config.source == "<defaults>"
    assert config.kernel_roots == DEFAULT_KERNEL_ROOTS
    assert config.is_path_allowed("DET001", "obs/profiling.py")


def test_load_config_file_entries_extend_the_defaults(tmp_path):
    (tmp_path / "lint.toml").write_text(
        '[lint.allow]\nDET001 = ["bench/*.py"]\n'
        '[lint.kernels]\nroots = ["pkg.mod.extra_kernel"]\n',
        encoding="utf-8",
    )
    nested = tmp_path / "src" / "pkg"
    nested.mkdir(parents=True)
    config = load_config(search_from=nested)  # found by upward search
    assert config.source == str(tmp_path / "lint.toml")
    # extends, never replaces: the in-package quarantine survives
    assert config.is_path_allowed("DET001", "obs/profiling.py")
    assert config.is_path_allowed("DET001", "bench/run.py")
    assert "pkg.mod.extra_kernel" in config.kernel_roots
    assert all(root in config.kernel_roots for root in DEFAULT_KERNEL_ROOTS)


def test_load_config_missing_explicit_path_is_an_error(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_config(explicit_path=tmp_path / "nope.toml")


def test_repo_lint_toml_is_found_and_matches_defaults():
    package_dir = Path(repro.__file__).parent
    config = load_config(search_from=package_dir)
    assert config.source.endswith("lint.toml")
    assert config.is_path_allowed("DET001", "obs/profiling.py")
    assert set(DEFAULT_KERNEL_ROOTS) <= set(config.kernel_roots)


# -- JSON schema ----------------------------------------------------------------------


def test_report_json_schema(lint_snippets):
    report = lint_snippets({
        "mod.py": """
            import time

            def tick():
                a = time.time()
                b = time.perf_counter()  # det: allow[DET001] fixture suppression
                return a, b
        """
    })
    payload = report.to_dict()
    assert payload["version"] == SCHEMA_VERSION
    assert set(payload) == {"version", "target", "config", "rules", "findings", "summary"}
    assert set(payload["rules"]) == {META_RULE, *KNOWN_RULES}
    for meta in payload["rules"].values():
        assert meta.keys() == {"title", "hint"}
    assert len(payload["findings"]) == 2
    for entry in payload["findings"]:
        assert set(entry) == {
            "rule", "path", "line", "col", "message", "hint", "suppressed", "reason",
        }
    summary = payload["summary"]
    assert summary["files"] == 1
    assert summary["findings"] == 1
    assert summary["suppressed"] == 1
    assert summary["by_rule"] == {"DET001": 1}
    assert summary["clean"] is False


def test_format_text_marks_a_clean_tree(lint_snippets):
    report = lint_snippets({"mod.py": "x = 1\n"})
    text = report.format_text()
    assert "determinism contract: CLEAN" in text
    assert "0 finding(s)" in text


def test_rule_table_covers_every_known_rule():
    assert set(RULE_TABLE) == {META_RULE, *KNOWN_RULES}


# -- the tier-1 gate: the shipped tree must be clean ----------------------------------


def test_repro_package_tree_is_lint_clean():
    """The determinism contract over ``src/repro`` itself: zero unsuppressed
    findings, and every suppression carries a written reason."""
    package_dir = Path(repro.__file__).parent
    report = lint_tree(package_dir)
    assert report.clean, report.format_text()
    assert report.files > 100  # the whole package, not a subset
    for finding in report.suppressed:
        assert finding.reason.strip(), f"reasonless suppression: {finding.format()}"
