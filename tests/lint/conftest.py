"""Shared fixture-tree helper for the determinism-linter suite."""

from __future__ import annotations

import textwrap

import pytest

from repro.lint.config import LintConfig
from repro.lint.engine import LintReport, lint_tree


@pytest.fixture
def lint_snippets(tmp_path):
    """Write a {relative path: source} mapping and lint it as package ``pkg``."""

    def _lint(
        files: dict[str, str], config: LintConfig | None = None
    ) -> LintReport:
        package_dir = tmp_path / "pkg"
        for rel, source in files.items():
            path = package_dir / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source), encoding="utf-8")
        return lint_tree(package_dir, config=config or LintConfig(), package_name="pkg")

    return _lint
