"""One minimal positive and negative fixture per determinism rule."""

from __future__ import annotations

from repro.lint.config import LintConfig
from repro.lint.engine import LintReport


def rules_of(report: LintReport, suppressed: bool = False) -> list[str]:
    """The rule ids of a report's (un)suppressed findings, in report order."""
    findings = report.suppressed if suppressed else report.unsuppressed
    return [finding.rule for finding in findings]


# -- DET001: wall clock ---------------------------------------------------------------


def test_det001_flags_wall_clock_reads(lint_snippets):
    report = lint_snippets({
        "mod.py": """
            import time
            from time import perf_counter
            from datetime import datetime

            def tick():
                a = time.time()
                b = perf_counter()
                c = datetime.now()
                return a, b, c
        """
    })
    assert rules_of(report) == ["DET001", "DET001", "DET001"]
    assert "time.time()" in report.unsuppressed[0].message


def test_det001_ignores_virtual_clocks_and_unrelated_attributes(lint_snippets):
    report = lint_snippets({
        "mod.py": """
            def tick(engine, record):
                record.time = engine.now_ms  # attribute named 'time' is not the module
                return engine.clock.advance(50.0)
        """
    })
    assert report.clean


def test_det001_quarantine_allowlist_suppresses_with_reason(lint_snippets):
    config = LintConfig(allowlist={"DET001": ("quarantine/*.py",)})
    report = lint_snippets({
        "quarantine/profiling.py": """
            import time

            def section():
                return time.perf_counter()
        """,
    }, config=config)
    assert report.clean
    assert rules_of(report, suppressed=True) == ["DET001"]
    assert "allowlisted" in report.suppressed[0].reason


# -- DET002: ambient randomness -------------------------------------------------------


def test_det002_flags_ambient_randomness(lint_snippets):
    report = lint_snippets({
        "mod.py": """
            import os
            import random
            import numpy as np

            def roll():
                a = random.randint(1, 6)
                b = np.random.rand(3)
                c = np.random.default_rng()  # unseeded: seeds itself from the OS
                d = os.urandom(8)
                return a, b, c, d
        """
    })
    assert rules_of(report) == ["DET002"] * 4
    assert "unseeded" in report.unsuppressed[2].message


def test_det002_allows_named_streams_and_seeded_construction(lint_snippets):
    report = lint_snippets({
        "mod.py": """
            import numpy as np

            def sample(engine, seed: int):
                rng = engine.rng("storage")  # the named-stream surface
                explicit = np.random.default_rng(seed)
                return rng.normal(), explicit.normal()
        """
    })
    assert report.clean


# -- DET003: unordered-set iteration --------------------------------------------------


def test_det003_flags_set_iteration_into_ordered_sinks(lint_snippets):
    report = lint_snippets({
        "mod.py": """
            def emit(items: set[int], sink):
                out = []
                for item in items:
                    out.append(item)
                listed = [item * 2 for item in items]
                joined = ",".join(str(item) for item in items)
                return out, listed, joined
        """
    })
    assert rules_of(report) == ["DET003"] * 3


def test_det003_accepts_sorted_and_order_insensitive_consumers(lint_snippets):
    report = lint_snippets({
        "mod.py": """
            def emit(items: set[int]):
                out = []
                for item in sorted(items):
                    out.append(item)
                total = sum(item for item in items)
                biggest = max(item for item in items)
                a_set = {item * 2 for item in items}
                return out, total, biggest, a_set
        """
    })
    assert report.clean


def test_det003_tracks_assignments_attributes_and_set_algebra(lint_snippets):
    report = lint_snippets({
        "mod.py": """
            class Tracker:
                def __init__(self):
                    self._pending = set()

                def drain(self, done: frozenset):
                    for item in self._pending - done:
                        yield item

            def local_flow():
                seen = set()
                return [item for item in seen]
        """
    })
    assert rules_of(report) == ["DET003", "DET003"]
    assert "self._pending - done" in report.unsuppressed[0].message


# -- DET004: kernel purity ------------------------------------------------------------


def test_det004_flags_parameter_mutation_global_state_and_io(lint_snippets):
    report = lint_snippets({
        "mod.py": """
            def pure_kernel(func):
                return func

            _CACHE = {}

            @pure_kernel
            def bad_kernel(layout, states):
                states[0] = 1
                layout.total = 2
                states.sort()
                _CACHE["k"] = states
                print("debug")
                return states
        """
    })
    messages = [finding.message for finding in report.unsuppressed]
    assert rules_of(report) == ["DET004"] * 5
    assert any("writes element of parameter 'states'" in m for m in messages)
    assert any("writes attribute of parameter 'layout'" in m for m in messages)
    assert any("mutates parameter 'states' via .sort()" in m for m in messages)
    assert any("module-level state '_CACHE'" in m for m in messages)
    assert any("performs I/O: print()" in m for m in messages)


def test_det004_transitive_through_intra_package_calls(lint_snippets):
    report = lint_snippets({
        "mod.py": """
            def pure_kernel(func):
                return func

            STATE = []

            def helper(x):
                STATE.append(x)
                return x

            @pure_kernel
            def kernel(x):
                return helper(x) + 1
        """
    })
    assert rules_of(report) == ["DET004"]
    assert "calls impure" in report.unsuppressed[0].message


def test_det004_accepts_pure_compute_and_vetted_callees(lint_snippets):
    report = lint_snippets({
        "mod.py": """
            def pure_kernel(func):
                return func

            _MEMO = {}

            def warm(key):
                value = _MEMO.get(key)
                if value is None:
                    value = _MEMO[key] = key * 2  # det: allow[DET004] per-process memo; value is a pure function of the key
                return value

            @pure_kernel
            def kernel(states):
                fresh = states.copy()
                fresh += 1
                local = []
                local.append(warm(3))
                return fresh, local
        """
    })
    # The vetted callee is cleared silently: no findings at all, suppressed
    # or otherwise (the pragma applies inside `warm`, which is not a root).
    assert report.clean
    assert not report.findings


def test_det004_config_roots_cover_undetected_kernels(lint_snippets):
    config = LintConfig(kernel_roots=("pkg.mod.registered",))
    report = lint_snippets({
        "mod.py": """
            def registered(out):
                out.append(1)
        """
    }, config=config)
    assert rules_of(report) == ["DET004"]


# -- DET005: address dependence -------------------------------------------------------


def test_det005_flags_id_hash_and_key_id(lint_snippets):
    report = lint_snippets({
        "mod.py": """
            def keys(obj, values):
                a = id(obj)
                b = hash(obj)
                c = sorted(values, key=id)
                return a, b, c
        """
    })
    assert rules_of(report) == ["DET005"] * 3


def test_det005_accepts_content_digests(lint_snippets):
    report = lint_snippets({
        "mod.py": """
            import hashlib

            def digest(payload: bytes) -> int:
                raw = hashlib.sha256(payload).digest()
                return int.from_bytes(raw[:8], "little")
        """
    })
    assert report.clean
