"""The ``repro lint`` subcommand: exit codes, text and JSON output."""

from __future__ import annotations

import json
import textwrap

from repro.api.cli import main
from repro.lint.findings import SCHEMA_VERSION


def _write_violation_tree(tmp_path):
    package_dir = tmp_path / "pkg"
    package_dir.mkdir()
    (package_dir / "mod.py").write_text(
        textwrap.dedent(
            """
            import time

            def tick():
                return time.time()
            """
        ),
        encoding="utf-8",
    )
    return package_dir


def test_lint_default_target_is_clean_and_exits_zero(capsys):
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "determinism contract: CLEAN" in out
    assert "0 finding(s)" in out


def test_lint_json_output_is_machine_readable(capsys):
    assert main(["lint", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == SCHEMA_VERSION
    assert payload["summary"]["clean"] is True
    assert payload["summary"]["findings"] == 0
    assert "DET001" in payload["rules"]


def test_lint_violations_exit_one_with_findings_printed(tmp_path, capsys):
    package_dir = _write_violation_tree(tmp_path)
    assert main(["lint", str(package_dir)]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out
    assert "time.time" in out


def test_lint_json_reports_violations(tmp_path, capsys):
    package_dir = _write_violation_tree(tmp_path)
    assert main(["lint", str(package_dir), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["clean"] is False
    assert payload["summary"]["by_rule"] == {"DET001": 1}
    (finding,) = payload["findings"]
    assert finding["rule"] == "DET001"
    assert finding["path"] == "mod.py"
    assert finding["suppressed"] is False


def test_lint_show_suppressed_prints_reasons(capsys):
    assert main(["lint", "--show-suppressed"]) == 0
    out = capsys.readouterr().out
    # The repo tree carries suppressions, each with a written reason.
    assert "allowed DET" in out
    assert "(reason: " in out


def test_lint_missing_path_exits_two(capsys):
    assert main(["lint", "/nonexistent/package/dir"]) == 2


def test_lint_missing_explicit_config_exits_two(tmp_path, capsys):
    package_dir = _write_violation_tree(tmp_path)
    assert main(["lint", str(package_dir), "--config", str(tmp_path / "no.toml")]) == 2
