"""Tests for noise and terrain generation."""

import numpy as np
import pytest

from repro.world.block import BlockType
from repro.world.chunk import CHUNK_HEIGHT
from repro.world.coords import ChunkPos
from repro.world.noise import LayeredNoise, ValueNoise2D
from repro.world.serialization import (
    ChunkFormatError,
    chunk_from_bytes,
    chunk_to_bytes,
    serialized_size_bytes,
)
from repro.world.terrain import (
    DefaultTerrainGenerator,
    FlatTerrainGenerator,
    make_terrain_generator,
)


def test_value_noise_is_deterministic_and_bounded():
    noise = ValueNoise2D(seed=5, scale=16.0)
    xs = np.arange(0, 100, dtype=float)
    zs = np.arange(0, 100, dtype=float)
    first = noise.sample(xs, zs)
    second = noise.sample(xs, zs)
    assert np.array_equal(first, second)
    assert float(first.min()) >= 0.0
    assert float(first.max()) < 1.0


def test_layered_noise_changes_with_seed():
    a = LayeredNoise(seed=1).sample(np.arange(50.0), np.zeros(50))
    b = LayeredNoise(seed=2).sample(np.arange(50.0), np.zeros(50))
    assert not np.array_equal(a, b)


def test_layered_noise_rejects_zero_octaves():
    with pytest.raises(ValueError):
        LayeredNoise(seed=1, octaves=0).sample(1.0, 1.0)


def test_flat_generator_produces_plain_surface():
    chunk = FlatTerrainGenerator(seed=0).generate_chunk(ChunkPos(3, -2))
    assert chunk.get_block(chunk_pos_block(chunk, 0, 64, 0)) == BlockType.GRASS
    assert chunk.get_block(chunk_pos_block(chunk, 5, 0, 5)) == BlockType.BEDROCK
    assert chunk.get_block(chunk_pos_block(chunk, 5, 200, 5)) == BlockType.AIR


def chunk_pos_block(chunk, lx, y, lz):
    from repro.world.coords import chunk_origin

    origin = chunk_origin(chunk.position)
    return origin.offset(dx=lx, dy=y, dz=lz)


def test_default_generator_is_deterministic_per_seed():
    generator_a = DefaultTerrainGenerator(seed=42)
    generator_b = DefaultTerrainGenerator(seed=42)
    chunk_a = generator_a.generate_chunk(ChunkPos(2, 2))
    chunk_b = generator_b.generate_chunk(ChunkPos(2, 2))
    assert np.array_equal(chunk_a.blocks, chunk_b.blocks)


def test_default_generator_differs_across_seeds():
    chunk_a = DefaultTerrainGenerator(seed=1).generate_chunk(ChunkPos(0, 0))
    chunk_b = DefaultTerrainGenerator(seed=2).generate_chunk(ChunkPos(0, 0))
    assert not np.array_equal(chunk_a.blocks, chunk_b.blocks)


def test_default_generator_has_bedrock_floor_and_bounded_heights():
    chunk = DefaultTerrainGenerator(seed=7).generate_chunk(ChunkPos(5, 5))
    assert chunk.block_count(BlockType.BEDROCK) == 256
    for lx in range(0, 16, 5):
        for lz in range(0, 16, 5):
            origin_x = chunk.position.cx * 16 + lx
            origin_z = chunk.position.cz * 16 + lz
            assert 1 <= chunk.surface_height(origin_x, origin_z) < CHUNK_HEIGHT


def test_make_terrain_generator_dispatch():
    assert isinstance(make_terrain_generator("flat"), FlatTerrainGenerator)
    assert isinstance(make_terrain_generator("default"), DefaultTerrainGenerator)
    with pytest.raises(ValueError):
        make_terrain_generator("moon")


def test_generation_work_units_ordering():
    assert FlatTerrainGenerator(0).generation_work_units() < DefaultTerrainGenerator(0).generation_work_units()


def test_chunk_serialization_round_trip():
    chunk = DefaultTerrainGenerator(seed=9).generate_chunk(ChunkPos(-3, 4))
    data = chunk_to_bytes(chunk)
    restored = chunk_from_bytes(data)
    assert restored.position == chunk.position
    assert np.array_equal(restored.blocks, chunk.blocks)
    assert serialized_size_bytes(chunk) == len(data)


def test_chunk_deserialization_rejects_garbage():
    with pytest.raises(ChunkFormatError):
        chunk_from_bytes(b"not a chunk")
    chunk = FlatTerrainGenerator(0).generate_chunk(ChunkPos(0, 0))
    data = chunk_to_bytes(chunk)
    with pytest.raises(ChunkFormatError):
        chunk_from_bytes(data[: len(data) // 2])
