"""Tests for chunks and the in-memory world."""

import numpy as np
import pytest

from repro.world.block import BlockType, is_solid, is_stateful
from repro.world.chunk import CHUNK_HEIGHT, Chunk
from repro.world.coords import BlockPos, ChunkPos
from repro.world.world import ChunkNotLoadedError, VoxelWorld


def test_block_type_statefulness():
    assert is_stateful(BlockType.WIRE)
    assert is_stateful(BlockType.LAMP)
    assert not is_stateful(BlockType.STONE)
    assert is_solid(BlockType.STONE)
    assert not is_solid(BlockType.AIR)


def test_chunk_get_set_block_round_trip():
    chunk = Chunk(position=ChunkPos(0, 0))
    pos = BlockPos(5, 70, 9)
    assert chunk.get_block(pos) == BlockType.AIR
    chunk.set_block(pos, BlockType.LAMP)
    assert chunk.get_block(pos) == BlockType.LAMP
    assert chunk.dirty is True


def test_chunk_rejects_out_of_bounds_access():
    chunk = Chunk(position=ChunkPos(0, 0))
    with pytest.raises(KeyError):
        chunk.get_block(BlockPos(16, 70, 0))
    with pytest.raises(KeyError):
        chunk.get_block(BlockPos(0, CHUNK_HEIGHT, 0))


def test_chunk_contains_respects_world_position():
    chunk = Chunk(position=ChunkPos(1, 1))
    assert chunk.contains(BlockPos(16, 0, 16))
    assert not chunk.contains(BlockPos(0, 0, 0))


def test_chunk_surface_height_and_counts():
    chunk = Chunk(position=ChunkPos(0, 0))
    chunk.set_block(BlockPos(3, 10, 3), BlockType.STONE)
    chunk.set_block(BlockPos(3, 20, 3), BlockType.GRASS)
    assert chunk.surface_height(3, 3) == 20
    assert chunk.block_count(BlockType.STONE) == 1
    assert chunk.non_air_count() == 2


def test_chunk_stateful_positions_lists_construct_blocks():
    chunk = Chunk(position=ChunkPos(0, 0))
    chunk.set_block(BlockPos(1, 64, 1), BlockType.WIRE)
    chunk.set_block(BlockPos(2, 64, 1), BlockType.LAMP)
    chunk.set_block(BlockPos(3, 64, 1), BlockType.STONE)
    assert chunk.stateful_positions() == [BlockPos(1, 64, 1), BlockPos(2, 64, 1)]


def test_chunk_copy_is_independent():
    chunk = Chunk(position=ChunkPos(0, 0))
    clone = chunk.copy()
    clone.set_block(BlockPos(0, 1, 0), BlockType.STONE)
    assert chunk.get_block(BlockPos(0, 1, 0)) == BlockType.AIR


def test_chunk_validates_array_shape():
    with pytest.raises(ValueError):
        Chunk(position=ChunkPos(0, 0), blocks=np.zeros((2, 2, 2), dtype=np.uint8))


def test_world_add_get_remove_chunk():
    world = VoxelWorld()
    chunk = Chunk(position=ChunkPos(0, 0))
    world.add_chunk(chunk)
    assert world.is_loaded(ChunkPos(0, 0))
    assert world.get_chunk(ChunkPos(0, 0)) is chunk
    assert world.loaded_chunk_count == 1
    removed = world.remove_chunk(ChunkPos(0, 0))
    assert removed is chunk
    assert not world.is_loaded(ChunkPos(0, 0))


def test_world_block_access_requires_loaded_chunk():
    world = VoxelWorld()
    with pytest.raises(ChunkNotLoadedError):
        world.get_block(BlockPos(0, 64, 0))
    with pytest.raises(ChunkNotLoadedError):
        world.set_block(BlockPos(0, 64, 0), BlockType.STONE)
    world.add_chunk(Chunk(position=ChunkPos(0, 0)))
    world.set_block(BlockPos(0, 64, 0), BlockType.STONE)
    assert world.get_block(BlockPos(0, 64, 0)) == BlockType.STONE


def test_world_dirty_chunks_and_missing_chunks():
    world = VoxelWorld()
    world.add_chunk(Chunk(position=ChunkPos(0, 0)))
    world.add_chunk(Chunk(position=ChunkPos(1, 0)))
    world.set_block(BlockPos(0, 64, 0), BlockType.STONE)
    assert [chunk.position for chunk in world.dirty_chunks()] == [ChunkPos(0, 0)]
    missing = world.missing_chunks([ChunkPos(0, 0), ChunkPos(5, 5)])
    assert missing == [ChunkPos(5, 5)]
