"""Regression: ``Chunk.content_hash`` must be stable across processes.

The original implementation hashed ``(position, blocks.tobytes())`` with the
builtin ``hash()``.  CPython salts ``str``/``bytes`` hashes per process
(``PYTHONHASHSEED``), so the value silently differed between processes while
the docstring claimed stability — exactly the bug class DET005 exists to
catch.  The digest-based replacement is pinned here under explicit, distinct
hash seeds.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

from repro.world.coords import BlockPos, ChunkPos
from repro.world.terrain import FlatTerrainGenerator

_SNIPPET = """
from repro.world.coords import ChunkPos
from repro.world.terrain import FlatTerrainGenerator

chunk = FlatTerrainGenerator(seed=7).generate_chunk(ChunkPos(3, -2))
print(chunk.content_hash())
"""


def _hash_in_subprocess(hash_seed: str) -> int:
    src_dir = Path(__file__).resolve().parents[2] / "src"
    result = subprocess.run(
        [sys.executable, "-c", _SNIPPET],
        capture_output=True,
        text=True,
        check=True,
        env={"PYTHONPATH": str(src_dir), "PYTHONHASHSEED": hash_seed},
    )
    return int(result.stdout.strip())


def test_content_hash_identical_across_hash_randomized_processes():
    assert _hash_in_subprocess("1") == _hash_in_subprocess("2") == _hash_in_subprocess("random")


def test_content_hash_matches_the_in_process_value():
    chunk = FlatTerrainGenerator(seed=7).generate_chunk(ChunkPos(3, -2))
    assert chunk.content_hash() == _hash_in_subprocess("1")


def test_content_hash_tracks_content_and_position():
    generator = FlatTerrainGenerator(seed=7)
    chunk = generator.generate_chunk(ChunkPos(0, 0))
    twin = generator.generate_chunk(ChunkPos(0, 0))
    assert chunk.content_hash() == twin.content_hash()
    # Position is part of the identity...
    assert chunk.content_hash() != generator.generate_chunk(ChunkPos(0, 1)).content_hash()
    # ...and so is every block.
    before = twin.content_hash()
    origin = BlockPos(twin.position.cx * 16, 0, twin.position.cz * 16)
    twin.set_block(origin, type(twin.get_block(origin))(1))
    assert twin.content_hash() != before
