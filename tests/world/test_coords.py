"""Tests for block/chunk coordinates."""

import pytest
from hypothesis import given, strategies as st

from repro.world.coords import (
    BlockPos,
    ChunkPos,
    block_to_chunk,
    chunk_origin,
    chunks_within_blocks,
)


def test_block_to_chunk_uses_floor_division():
    assert block_to_chunk(BlockPos(0, 0, 0)) == ChunkPos(0, 0)
    assert block_to_chunk(BlockPos(15, 70, 15)) == ChunkPos(0, 0)
    assert block_to_chunk(BlockPos(16, 70, 0)) == ChunkPos(1, 0)
    assert block_to_chunk(BlockPos(-1, 70, -1)) == ChunkPos(-1, -1)


def test_chunk_origin_is_minimum_corner():
    assert chunk_origin(ChunkPos(0, 0)) == BlockPos(0, 0, 0)
    assert chunk_origin(ChunkPos(2, -1)) == BlockPos(32, 0, -16)


def test_block_neighbours_are_six_axis_aligned():
    neighbours = BlockPos(1, 2, 3).neighbours()
    assert len(neighbours) == 6
    assert BlockPos(2, 2, 3) in neighbours
    assert BlockPos(1, 1, 3) in neighbours


def test_horizontal_distance_ignores_height():
    a = BlockPos(0, 0, 0)
    b = BlockPos(3, 200, 4)
    assert a.horizontal_distance_to(b) == pytest.approx(5.0)


def test_manhattan_distance():
    assert BlockPos(0, 0, 0).manhattan_distance_to(BlockPos(1, 2, 3)) == 6


def test_chunk_neighbours_excludes_self():
    centre = ChunkPos(0, 0)
    ring = centre.neighbours(radius=1)
    assert len(ring) == 8
    assert centre not in ring


def test_chunk_key_is_stable():
    assert ChunkPos(3, -4).key() == "chunk_3_-4"


def test_chunks_within_blocks_contains_center_chunk():
    positions = chunks_within_blocks(BlockPos(8, 64, 8), 1.0)
    assert ChunkPos(0, 0) in positions


def test_chunks_within_blocks_radius_grows_set():
    small = set(chunks_within_blocks(BlockPos(0, 64, 0), 16.0))
    large = set(chunks_within_blocks(BlockPos(0, 64, 0), 128.0))
    assert small < large


def test_chunks_within_blocks_rejects_negative_radius():
    with pytest.raises(ValueError):
        chunks_within_blocks(BlockPos(0, 0, 0), -1.0)


@given(st.integers(-10 ** 6, 10 ** 6), st.integers(0, 255), st.integers(-10 ** 6, 10 ** 6))
def test_block_always_inside_its_chunk(x, y, z):
    pos = BlockPos(x, y, z)
    chunk = block_to_chunk(pos)
    origin = chunk_origin(chunk)
    assert origin.x <= pos.x < origin.x + 16
    assert origin.z <= pos.z < origin.z + 16
