"""Tests for the network model and protocol messages."""

import pytest

from repro.net.latency import GENRE_LATENCY_THRESHOLDS_MS, NetworkModel, NetworkPath
from repro.net.message import Message, MessageKind
from repro.sim.latency import ConstantLatency


def test_genre_thresholds_match_the_paper():
    assert GENRE_LATENCY_THRESHOLDS_MS["fps"] == 100.0
    assert GENRE_LATENCY_THRESHOLDS_MS["rpg"] == 500.0
    assert GENRE_LATENCY_THRESHOLDS_MS["rts"] == 1000.0


def test_round_trip_is_twice_the_one_way_latency(rng):
    path = NetworkPath(name="test", latency=ConstantLatency(10.0))
    assert path.sample_one_way_ms(rng) == 10.0
    assert path.sample_round_trip_ms(rng) == 20.0


def test_response_time_adds_network_and_server_time(rng):
    model = NetworkModel(
        client_server=NetworkPath(name="cs", latency=ConstantLatency(15.0)),
    )
    assert model.response_time_ms(tick_duration_ms=40.0, rng=rng) == pytest.approx(70.0)


def test_default_network_model_is_fps_compatible(rng):
    model = NetworkModel()
    samples = [model.client_server.sample_round_trip_ms(rng) for _ in range(500)]
    assert sum(samples) / len(samples) < GENRE_LATENCY_THRESHOLDS_MS["fps"]


def test_message_validation():
    message = Message(MessageKind.MOVE, 3, {"x": 1, "y": 2, "z": 3})
    assert message.kind is MessageKind.MOVE
    with pytest.raises(ValueError):
        Message(MessageKind.MOVE, -1, {})
