"""Tier-1 smoke tests: every example's main path runs at quick settings.

Each example module is loaded from ``examples/`` by path (they are scripts,
not package members) and its ``main`` is invoked with tiny knobs, so the
examples cannot rot while staying fast enough for the tier-1 suite.
"""

import importlib.util
from pathlib import Path

import pytest

from repro.api import ExperimentSettings

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(f"examples_{name}", EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_directory_is_complete():
    names = sorted(path.stem for path in EXAMPLES_DIR.glob("*.py"))
    assert names == [
        "cost_analysis",
        "quickstart",
        "scalability_comparison",
        "speculative_execution_demo",
        "terrain_generation_demo",
    ]


def test_quickstart_main(capsys):
    result = load_example("quickstart").main(
        players=3, constructs=2, duration_s=2.0, warmup_s=0.5
    )
    out = capsys.readouterr().out
    assert len(result.scenario.tick_durations_ms) == 40
    assert "Serverless offloading" in out
    assert "function invocations" in out


def test_scalability_comparison_main(capsys):
    rows = load_example("scalability_comparison").main(
        games=("opencraft",),
        construct_counts=(0,),
        settings=ExperimentSettings(duration_s=2.0, player_step=100, max_players=100),
    )
    assert len(rows) == 1
    assert rows[0][0] == "opencraft"
    assert int(rows[0][3]) >= 100
    assert "max players" in capsys.readouterr().out


def test_cost_analysis_main(capsys):
    rows = load_example("cost_analysis").main(
        memory_configs_mb=(1769,), steps_options=(100,), constructs=5, game_time_minutes=1.0
    )
    assert len(rows) == 1
    assert rows[0][2].startswith("$")
    assert "cost per hour" in capsys.readouterr().out


def test_speculative_execution_demo_main(capsys):
    backend = load_example("speculative_execution_demo").main(ticks=60, post_edit_ticks=20)
    out = capsys.readouterr().out
    assert "loop detected" in out
    assert "speculation invalidated" in out
    assert backend.efficiency_samples()


def test_terrain_generation_demo_main(capsys):
    rows = load_example("terrain_generation_demo").main(
        duration_s=6.0,
        speed_increase_interval_s=2.0,
        settings=ExperimentSettings(duration_s=6.0),
    )
    assert sorted(row[0] for row in rows) == ["opencraft", "servo"]
    assert "view range" in capsys.readouterr().out


@pytest.mark.parametrize("spec_name", ["servo_quick.json"])
def test_checked_in_specs_are_valid(spec_name):
    from repro.api import RunSpec

    spec = RunSpec.from_file(EXAMPLES_DIR / "specs" / spec_name)
    assert RunSpec.from_dict(spec.to_dict()) == spec
