"""Shard crash-recovery: kill, limbo, respawn, evacuation."""

import pytest

from repro.cluster import build_opencraft_cluster
from repro.faults import FaultPlan, install_faults
from repro.server import GameConfig
from repro.sim import SimulationEngine


def make_cluster(engine, shards=2):
    cluster = build_opencraft_cluster(engine, GameConfig(world_type="flat"), shards=shards)
    cluster.chunks.preload_area(cluster.config.spawn_position, 96.0)
    return cluster


def kill_plan(at_ms, shard=0, respawn_after_ms=500.0):
    return FaultPlan.from_dict(
        {"shards": [{"at_ms": at_ms, "shard": shard, "respawn_after_ms": respawn_after_ms}]}
    )


def run_rounds(cluster, rounds):
    for _ in range(rounds):
        cluster.tick()


def test_killed_shard_recovers_every_session(engine):
    cluster = make_cluster(engine)
    install_faults(cluster, kill_plan(at_ms=200.0, shard=0))
    for index in range(8):
        cluster.connect_player(f"bot-{index}")
    on_zero = [p for p in cluster.sessions.values() if p.shard_index == 0]
    assert on_zero
    run_rounds(cluster, 40)

    assert len(cluster.recovery_records) == 1
    record = cluster.recovery_records[0]
    assert record.shard_index == 0
    assert record.sessions_lost == 0
    assert record.sessions_recovered == len(on_zero)
    assert record.downtime_rounds > 0
    assert record.respawned_ms >= record.killed_ms + 500.0
    # Every evacuated session is alive on the replacement shard.
    for proxy in on_zero:
        assert not proxy.disconnected
        assert proxy.shard_index == 0
        assert not proxy._session.disconnected
    assert cluster.player_count == 8
    assert engine.metrics.counter("shard_kills") == 1.0
    assert engine.metrics.counter("shards_recovered") == 1.0
    assert engine.metrics.counter("sessions_recovered") == len(on_zero)


def test_downtime_accumulates_lost_player_ticks(engine):
    cluster = make_cluster(engine)
    install_faults(cluster, kill_plan(at_ms=100.0, shard=0, respawn_after_ms=1000.0))
    for index in range(6):
        cluster.connect_player(f"bot-{index}")
    players_on_zero = sum(1 for p in cluster.sessions.values() if p.shard_index == 0)
    run_rounds(cluster, 40)
    record = cluster.recovery_records[0]
    assert record.lost_player_ticks == record.downtime_rounds * players_on_zero
    assert engine.metrics.counter("lost_player_ticks") == record.lost_player_ticks


def test_respawned_shard_gets_a_generation_suffix_and_constructs_back(engine):
    from repro.constructs.library import build_wire_line
    from repro.world.coords import BlockPos

    cluster = make_cluster(engine)
    install_faults(cluster, kill_plan(at_ms=100.0, shard=0))
    construct = build_wire_line(8, BlockPos(0, 64, 0), powered=True)
    cluster.place_construct(construct)
    assert construct in cluster.shards[0].constructs.constructs()
    original_name = cluster.shards[0].name
    run_rounds(cluster, 30)
    assert cluster.shards[0].name == f"{original_name}-r1"
    assert cluster.recovery_records[0].constructs_recovered == 1
    # The same live construct object keeps ticking on the replacement.
    assert construct in cluster.shards[0].constructs.constructs()
    assert construct.step > 0


def test_connects_during_downtime_land_on_an_alive_shard(engine):
    cluster = make_cluster(engine)
    install_faults(cluster, kill_plan(at_ms=100.0, shard=0, respawn_after_ms=5000.0))
    run_rounds(cluster, 5)  # the kill has fired, shard 0 is down
    assert len(cluster.recovery_records) == 0
    session = cluster.connect_player("latecomer")
    assert session.shard_index == 1
    run_rounds(cluster, 3)
    assert not session.disconnected


def test_killing_the_last_alive_shard_is_refused(engine):
    cluster = make_cluster(engine)
    plan = FaultPlan.from_dict(
        {
            "shards": [
                {"at_ms": 100.0, "shard": 0, "respawn_after_ms": 60_000.0},
                {"at_ms": 200.0, "shard": 1, "respawn_after_ms": 60_000.0},
            ]
        }
    )
    injector = install_faults(cluster, plan)
    cluster.connect_player("alice")
    run_rounds(cluster, 20)
    # The second kill was ignored: one shard must always survive.
    assert engine.metrics.counter("shard_kills") == 1.0
    assert injector.timeline.count("shard.kill.ignored") == 1
    assert cluster.player_count == 1


def test_two_same_seed_chaos_runs_are_bit_identical():
    def run(seed):
        engine = SimulationEngine(seed=seed)
        cluster = make_cluster(engine)
        install_faults(cluster, kill_plan(at_ms=300.0, shard=0))
        for index in range(6):
            cluster.connect_player(f"bot-{index}")
        run_rounds(cluster, 40)
        return (
            cluster.fault_injector.timeline.digest(),
            cluster.recovery_records,
            [record.duration_ms for record in cluster.tick_records],
            engine.now_ms,
        )

    assert run(42) == run(42)
    assert run(42) != run(43)


def test_kills_without_a_shard_factory_are_rejected(engine):
    from repro.cluster import ClusterCoordinator, WorldPartitioner

    cluster = make_cluster(engine)
    bare = ClusterCoordinator(
        engine=engine,
        shards=cluster.shards,
        partitioner=WorldPartitioner(2),
        config=cluster.config,
    )
    with pytest.raises(ValueError):
        install_faults(bare, kill_plan(at_ms=100.0))
