"""The fault injector: seeded streams, timelines, reproducibility."""

from repro.faults import FaultInjector, FaultPlan, make_injector
from repro.sim import SimulationEngine

BROWNOUT = {
    "faas": {"failure_rate": 0.2, "throttle_rate": 0.1, "timeout_rate": 0.1}
}


def test_make_injector_returns_none_for_empty_plans(engine):
    assert make_injector(engine, None) is None
    assert make_injector(engine, FaultPlan.empty()) is None
    assert make_injector(engine, FaultPlan.from_dict(BROWNOUT)) is not None


def test_same_seed_same_plan_makes_identical_decisions():
    def outcomes(seed):
        engine = SimulationEngine(seed=seed)
        injector = FaultInjector(engine, FaultPlan.from_dict(BROWNOUT))
        return [injector.faas_outcome("fn") for _ in range(200)]

    assert outcomes(7) == outcomes(7)
    assert outcomes(7) != outcomes(8)


def test_all_outcomes_occur_at_their_configured_rates():
    engine = SimulationEngine(seed=3)
    injector = FaultInjector(engine, FaultPlan.from_dict(BROWNOUT))
    drawn = [injector.faas_outcome("fn") for _ in range(2000)]
    fraction = {kind: drawn.count(kind) / len(drawn) for kind in set(drawn)}
    assert abs(fraction["failure"] - 0.2) < 0.05
    assert abs(fraction["throttled"] - 0.1) < 0.05
    assert abs(fraction["timeout"] - 0.1) < 0.05
    assert abs(fraction["ok"] - 0.6) < 0.05


def test_fault_draws_do_not_perturb_other_streams():
    # The decisions an unrelated named stream produces must be identical
    # whether or not the injector drew from its own streams in between.
    quiet = SimulationEngine(seed=11)
    noisy = SimulationEngine(seed=11)
    injector = FaultInjector(noisy, FaultPlan.from_dict(BROWNOUT))
    before = quiet.rng("gameplay").random(5).tolist()
    for _ in range(100):
        injector.faas_outcome("fn")
    after = noisy.rng("gameplay").random(5).tolist()
    assert before == after


def test_timeline_records_faults_and_digest_is_stable(engine):
    injector = FaultInjector(engine, FaultPlan.from_dict({"faas": {"failure_rate": 1.0}}))
    assert injector.faas_outcome("fn") == "failure"
    injector.record("shard.kill", "shard-1")
    assert len(injector.timeline) == 2
    assert injector.timeline.count("faas.") == 1
    assert injector.timeline.count("shard.") == 1
    digest = injector.timeline.digest()
    assert digest == injector.timeline.digest()
    injector.faas_outcome("fn")
    assert injector.timeline.digest() != digest


def test_shard_kills_pop_once_in_time_order(engine):
    plan = FaultPlan.from_dict(
        {"shards": [{"at_ms": 100.0, "shard": 0}, {"at_ms": 300.0, "shard": 1}]}
    )
    injector = FaultInjector(engine, plan)
    assert injector.shard_kills_due(50.0) == []
    first = injector.shard_kills_due(150.0)
    assert [kill.shard for kill in first] == [0]
    # Already-delivered kills never fire again.
    assert injector.shard_kills_due(150.0) == []
    assert [kill.shard for kill in injector.shard_kills_due(1000.0)] == [1]


def test_jitter_draws_nothing_when_disabled(engine):
    injector = FaultInjector(engine, FaultPlan.from_dict({"faas": {"failure_rate": 0.5}}))
    state_before = injector._faas_rng.bit_generator.state
    assert injector.retry_jitter_ms() == 0.0
    assert injector._faas_rng.bit_generator.state == state_before
