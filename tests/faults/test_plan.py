"""Validation and round-trip tests for fault plans."""

import pytest

from repro.faults import FaultPlan, RetryPolicy


def test_empty_plan_is_empty():
    assert FaultPlan.empty().is_empty
    assert FaultPlan.from_dict({}).is_empty
    assert FaultPlan.from_dict({}).to_dict() == {}


def test_zero_rate_sections_still_count_as_empty():
    # A plan whose probabilities are all zero installs nothing.
    plan = FaultPlan.from_dict(
        {"faas": {"failure_rate": 0.0}, "net": {"drop_rate": 0.0}}
    )
    assert plan.is_empty


def test_full_plan_round_trips_through_dict_and_json():
    data = {
        "faas": {
            "failure_rate": 0.1,
            "throttle_rate": 0.05,
            "timeout_rate": 0.02,
            "retry": {
                "max_attempts": 4,
                "backoff_base_ms": 25.0,
                "backoff_multiplier": 3.0,
                "jitter_ms": 10.0,
            },
        },
        "net": {
            "drop_rate": 0.03,
            "duplicate_rate": 0.02,
            "delay_rate": 0.1,
            "delay_ms_min": 10.0,
            "delay_ms_max": 100.0,
        },
        "shards": [
            {"at_ms": 5000.0, "shard": 1, "respawn_after_ms": 1500.0},
            {"at_ms": 2000.0, "shard": 0, "respawn_after_ms": 2000.0},
        ],
        "degradation": {"budget_ms": 60.0, "shed_fraction": 0.25},
    }
    plan = FaultPlan.from_dict(data)
    assert not plan.is_empty
    assert FaultPlan.from_dict(plan.to_dict()) == plan
    assert FaultPlan.from_json(plan.to_json()) == plan
    # Kills are sorted by (at_ms, shard) regardless of input order.
    assert [kill.at_ms for kill in plan.shards] == [2000.0, 5000.0]


@pytest.mark.parametrize(
    "bad",
    [
        {"bogus": {}},
        {"faas": {"failure_rate": 1.5}},
        {"faas": {"failure_rate": -0.1}},
        {"faas": {"failure_rate": 0.6, "throttle_rate": 0.6}},
        {"faas": {"retry": {"max_attempts": 0}}},
        {"faas": {"retry": {"backoff_multiplier": 0.5}}},
        {"net": {"drop_rate": "lots"}},
        {"net": {"delay_ms_min": 100.0, "delay_ms_max": 10.0}},
        {"shards": [{"shard": 0}]},
        {"shards": [{"at_ms": -1.0, "shard": 0}]},
        {"shards": [{"at_ms": 1.0, "shard": -1}]},
        {"shards": {"at_ms": 1.0, "shard": 0}},
        {"degradation": {"budget_ms": 0.0}},
        {"degradation": {"shed_fraction": 2.0}},
    ],
)
def test_malformed_plans_are_rejected_eagerly(bad):
    with pytest.raises(ValueError):
        FaultPlan.from_dict(bad)


def test_retry_backoff_is_exponential():
    policy = RetryPolicy(backoff_base_ms=50.0, backoff_multiplier=2.0)
    assert policy.backoff_ms(1) == 50.0
    assert policy.backoff_ms(2) == 100.0
    assert policy.backoff_ms(3) == 200.0
