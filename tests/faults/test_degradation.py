"""Graceful degradation: shedding broadcast work after budget overruns."""

from repro.faults import DegradationController, DegradationPolicy
from repro.server import GameConfig, make_opencraft
from repro.server.costmodel import TickWork


def make_controller(engine, budget_ms=50.0, shed_fraction=0.5):
    return DegradationController(
        DegradationPolicy(budget_ms=budget_ms, shed_fraction=shed_fraction),
        engine.metrics,
    )


def test_no_shedding_while_under_budget(engine):
    controller = make_controller(engine)
    controller.observe(30.0)
    assert not controller.shedding
    assert controller.shed_count(100) == 0
    assert engine.metrics.counter("broadcast_updates_shed") == 0.0


def test_overrun_sheds_the_configured_fraction_next_tick(engine):
    controller = make_controller(engine, budget_ms=50.0, shed_fraction=0.5)
    controller.observe(80.0)
    assert controller.shedding
    assert controller.shed_count(100) == 50
    assert engine.metrics.counter("broadcast_updates_shed") == 50.0
    # A tick back under budget stops the shedding.
    controller.observe(40.0)
    assert controller.shed_count(100) == 0
    assert controller.shedding_ticks == 1
    assert controller.updates_shed == 50


def test_shed_broadcasts_reduce_the_tick_cost():
    import numpy as np

    from repro.server.costmodel import OPENCRAFT_COST_MODEL as model

    full = model.duration_ms(TickWork(players=100), np.random.default_rng(0))
    shed = model.duration_ms(
        TickWork(players=100, broadcast_players_shed=50), np.random.default_rng(0)
    )
    zero_shed = model.duration_ms(
        TickWork(players=100, broadcast_players_shed=0), np.random.default_rng(0)
    )
    assert shed < full
    # Shedding zero players is bit-identical to the original cost.
    assert zero_shed == full


def test_gameloop_sheds_after_an_overlong_tick(engine):
    from repro.constructs.library import standard_construct

    server = make_opencraft(engine, GameConfig(world_type="flat"))
    server.chunks.preload_area(server.config.spawn_position, 96.0)
    server.degradation = make_controller(engine, budget_ms=50.0, shed_fraction=0.5)
    for index in range(60):
        server.connect_player(f"bot-{index}")
    # 200 constructs push ticks over the 50 ms budget.
    for index in range(200):
        server.place_construct(standard_construct(index))
    for _ in range(10):
        server.tick()
    assert engine.metrics.counter("broadcast_updates_shed") > 0.0
    assert server.degradation.shedding_ticks > 0
    assert server.degradation.updates_shed >= 30  # 0.5 * 60 players per shed tick
