"""FaaS fault injection: outcome semantics, retry/backoff, fallback."""

import pytest

from repro.faas import AWS_LAMBDA, FaasPlatform, FunctionDefinition, FunctionOutput
from repro.faults import FaultInjector, FaultPlan
from repro.sim import SimulationEngine

CALLS = []


def echo_handler(payload):
    CALLS.append(payload)
    return FunctionOutput(value={"echo": payload}, work_ms_single_vcpu=100.0)


def make_platform(engine, plan=None, timeout_ms=30_000.0):
    platform = FaasPlatform(engine, provider=AWS_LAMBDA)
    platform.register(
        FunctionDefinition(
            name="echo", handler=echo_handler, memory_mb=1769, timeout_ms=timeout_ms
        )
    )
    if plan is not None:
        platform.fault_injector = FaultInjector(engine, FaultPlan.from_dict(plan))
    return platform


@pytest.fixture(autouse=True)
def _reset_calls():
    CALLS.clear()


def test_injected_failure_runs_handler_but_loses_result(engine):
    platform = make_platform(engine, {"faas": {"failure_rate": 1.0}})
    invocation = platform.invoke("echo", 1)
    assert invocation.status == "failure"
    assert invocation.result is None
    assert CALLS == [1]  # the function executed; only its reply is lost
    assert platform.billing.invocation_count == 1  # failures are billed
    assert engine.metrics.counter("faas_failures") == 1.0


def test_throttled_invocation_never_reaches_the_handler(engine):
    platform = make_platform(engine, {"faas": {"throttle_rate": 1.0}})
    invocation = platform.invoke("echo", 1)
    assert invocation.status == "throttled"
    assert invocation.result is None
    assert invocation.execution_ms == 0.0
    assert CALLS == []  # rejected at the control plane
    assert platform.billing.invocation_count == 0  # throttles are not billed
    assert platform.pool("echo").cold_starts == 0  # no environment reserved
    assert engine.metrics.counter("faas_throttles") == 1.0


def test_forced_timeout_clamps_to_the_function_deadline(engine):
    platform = make_platform(engine, {"faas": {"timeout_rate": 1.0}}, timeout_ms=5000.0)
    invocation = platform.invoke("echo", 1)
    definition_timeout = 5000.0
    assert invocation.status == "timeout"
    assert invocation.timed_out
    assert invocation.result is None
    assert invocation.execution_ms == definition_timeout
    assert engine.metrics.counter("faas_forced_timeouts") == 1.0


def test_retry_resubmits_with_exponential_backoff(engine):
    platform = make_platform(
        engine,
        {
            "faas": {
                "failure_rate": 1.0,
                "retry": {"max_attempts": 3, "backoff_base_ms": 50.0, "backoff_multiplier": 2.0},
            }
        },
    )
    aggregate = platform.invoke_with_retry("echo", 1)
    raw = platform.invocations
    assert len(raw) == 3  # every raw attempt is kept
    assert aggregate.attempts == 3
    assert aggregate.status == "failure"  # all attempts failed
    # Attempt n+1 is submitted at attempt n's completion plus the backoff.
    assert raw[1].submitted_ms == pytest.approx(raw[0].completed_ms + 50.0)
    assert raw[2].submitted_ms == pytest.approx(raw[1].completed_ms + 100.0)
    # The aggregate spans the whole ordeal from the first submission.
    assert aggregate.submitted_ms == raw[0].submitted_ms
    assert aggregate.latency_ms == pytest.approx(
        raw[2].completed_ms - raw[0].submitted_ms
    )
    assert engine.metrics.counter("faas_retries") == 2.0
    assert engine.metrics.counter("faas_giveups") == 1.0


def test_retry_stops_at_first_success():
    # failure_rate 0.5: with this seed some attempts fail, and every
    # aggregate either succeeded or exhausted its attempts.
    engine = SimulationEngine(seed=5)
    platform = make_platform(
        engine, {"faas": {"failure_rate": 0.5, "retry": {"max_attempts": 4}}}
    )
    results = [platform.invoke_with_retry("echo", n) for n in range(30)]
    assert any(r.status == "ok" and r.attempts > 1 for r in results)
    for aggregate in results:
        assert aggregate.status == "ok" or aggregate.attempts == 4


def test_invoke_with_retry_without_injector_is_exactly_invoke():
    via_invoke = make_platform(SimulationEngine(seed=77), None).invoke("echo", 1)
    via_retry = make_platform(SimulationEngine(seed=77), None).invoke_with_retry("echo", 1)
    assert via_retry == via_invoke


def test_speculative_offload_falls_back_to_local_on_giveup(engine):
    # With every invocation failing, speculation must still make progress:
    # each construct tick falls back to local simulation.
    from repro.core.servo import build_servo_server
    from repro.server import GameConfig

    server = build_servo_server(engine, GameConfig(world_type="flat"))
    server.chunks.preload_area(server.config.spawn_position, 96.0)
    server.runtime.platform.fault_injector = FaultInjector(
        engine,
        FaultPlan.from_dict(
            {"faas": {"failure_rate": 1.0, "retry": {"max_attempts": 2}}}
        ),
    )
    from repro.constructs.library import build_wire_line
    from repro.world.coords import BlockPos

    server.place_construct(build_wire_line(8, BlockPos(0, 64, 0), powered=True))
    # The first (failed) reply lands after ~3 s virtual; tick past it.
    for _ in range(80):
        server.tick()
    assert engine.metrics.counter("offload_local_fallbacks") > 0
    assert engine.metrics.counter("faas_giveups") > 0
    # The construct still advanced (locally) despite the dead platform.
    assert all(c.step > 0 for c in server.constructs.constructs())
