"""Serverless terrain under faults: bounded retries, then local fallback."""

from repro.core.terrain_service import (
    TERRAIN_GENERATION_FUNCTION,
    ServerlessTerrainProvider,
    make_terrain_handler,
)
from repro.faas import AWS_LAMBDA, FaasPlatform, FunctionDefinition
from repro.faults import FaultInjector, FaultPlan
from repro.world.coords import ChunkPos
from repro.world.terrain import make_terrain_generator


def make_provider(engine, plan=None, max_attempts=3):
    platform = FaasPlatform(engine, provider=AWS_LAMBDA)
    platform.register(
        FunctionDefinition(
            name=TERRAIN_GENERATION_FUNCTION,
            handler=make_terrain_handler(),
            memory_mb=1769,
        )
    )
    if plan is not None:
        platform.fault_injector = FaultInjector(engine, FaultPlan.from_dict(plan))
    return ServerlessTerrainProvider(
        engine, platform, world_type="flat", seed=7, max_attempts=max_attempts
    )


def collect(provider, engine, position=ChunkPos(3, 4), horizon_ms=60_000.0):
    delivered = []
    provider.request(position, lambda chunk, result: delivered.append((chunk, result)))
    engine.advance_by(horizon_ms)
    return delivered


def test_dead_platform_falls_back_to_local_generation(engine):
    provider = make_provider(engine, {"faas": {"failure_rate": 1.0}}, max_attempts=3)
    delivered = collect(provider, engine)
    assert len(delivered) == 1
    chunk, result = delivered[0]
    assert result.source == "local-fallback"
    assert result.consumed_local_cpu
    # Generation is pure: the fallback chunk equals the serverless one.
    reference = make_terrain_generator("flat", seed=7).generate_chunk(ChunkPos(3, 4))
    assert (chunk.blocks == reference.blocks).all()
    assert engine.metrics.counter("terrain_generation_failures") == 3.0
    assert engine.metrics.counter("terrain_generation_retries") == 2.0
    assert engine.metrics.counter("terrain_local_fallbacks") == 1.0
    assert provider.pending_count() == 0


def test_flaky_platform_usually_recovers_without_fallback():
    from repro.sim import SimulationEngine

    engine = SimulationEngine(seed=21)
    provider = make_provider(engine, {"faas": {"failure_rate": 0.3}}, max_attempts=4)
    delivered = []
    for index in range(10):
        provider.request(
            ChunkPos(index, 0), lambda chunk, result: delivered.append(result)
        )
    engine.advance_by(120_000.0)
    assert len(delivered) == 10
    assert sum(1 for r in delivered if r.source == "faas-generation") > 0
    # Either path, terrain always arrives.
    assert all(r.source in ("faas-generation", "local-fallback") for r in delivered)


def test_healthy_platform_is_unaffected(engine):
    provider = make_provider(engine, plan=None)
    delivered = collect(provider, engine)
    assert len(delivered) == 1
    assert delivered[0][1].source == "faas-generation"
    assert engine.metrics.counter("terrain_generation_failures") == 0.0
