"""Wiring fault plans into hosts, and the empty-plan no-op guarantee."""

import pytest

from repro.cluster import build_servo_cluster
from repro.faults import FaultPlan, install_faults
from repro.server import GameConfig, make_opencraft
from repro.sim import SimulationEngine


def test_empty_plan_installs_nothing(engine):
    server = make_opencraft(engine, GameConfig(world_type="flat"))
    assert install_faults(server, None) is None
    assert install_faults(server, FaultPlan.empty()) is None
    assert install_faults(server, FaultPlan.from_dict({})) is None
    assert server.fault_injector is None
    assert server.message_channel is None
    assert server.degradation is None


def test_empty_plan_run_is_bit_identical_to_no_plan():
    def run(install):
        engine = SimulationEngine(seed=9)
        server = make_opencraft(engine, GameConfig(world_type="flat"))
        server.chunks.preload_area(server.config.spawn_position, 96.0)
        if install:
            install_faults(server, FaultPlan.empty())
        session = server.connect_player("alice")
        for step in range(20):
            session.move(step, 64, step)
            server.tick()
        return [record.duration_ms for record in server.tick_records]

    assert run(install=False) == run(install=True)


def test_faas_section_requires_a_platform(engine):
    server = make_opencraft(engine, GameConfig(world_type="flat"))
    with pytest.raises(ValueError):
        install_faults(server, FaultPlan.from_dict({"faas": {"failure_rate": 0.5}}))


def test_shard_kills_require_a_cluster(engine):
    server = make_opencraft(engine, GameConfig(world_type="flat"))
    with pytest.raises(ValueError):
        install_faults(
            server, FaultPlan.from_dict({"shards": [{"at_ms": 100.0, "shard": 0}]})
        )


def test_cluster_install_wires_every_shard_and_future_respawns(engine):
    cluster = build_servo_cluster(engine, GameConfig(world_type="flat"), shards=2)
    cluster.chunks.preload_area(cluster.config.spawn_position, 96.0)
    plan = FaultPlan.from_dict(
        {
            "net": {"drop_rate": 0.1},
            "degradation": {"budget_ms": 50.0},
            "shards": [{"at_ms": 200.0, "shard": 1, "respawn_after_ms": 500.0}],
        }
    )
    injector = install_faults(cluster, plan)
    assert cluster.fault_injector is injector
    channels = {id(shard.message_channel) for shard in cluster.shards}
    assert len(channels) == 1 and None not in channels  # one shared wire
    assert all(shard.degradation is not None for shard in cluster.shards)
    for _ in range(30):
        cluster.tick()
    # The respawned shard was wired like the originals.
    assert cluster.shards[1].name.endswith("-r1")
    assert cluster.shards[1].message_channel is cluster.shards[0].message_channel
    assert cluster.shards[1].degradation is not None


def test_faas_injector_attaches_to_every_servo_shard_platform(engine):
    cluster = build_servo_cluster(engine, GameConfig(world_type="flat"), shards=2)
    injector = install_faults(
        cluster, FaultPlan.from_dict({"faas": {"failure_rate": 0.2}})
    )
    for shard in cluster.shards:
        assert shard.runtime.platform.fault_injector is injector


def test_run_spec_carries_and_validates_fault_plans():
    from repro.api.spec import RunSpec

    spec = RunSpec.from_dict(
        {
            "host": {"game": "servo"},
            "workload": {"scenario": "behaviour_a", "params": {"players": 2}},
            "faults": {"faas": {"failure_rate": 0.1}},
        }
    )
    assert RunSpec.from_dict(spec.to_dict()) == spec
    assert "faults" in spec.to_dict()
    with pytest.raises(ValueError):
        RunSpec.from_dict(
            {
                "host": {"game": "servo"},
                "workload": {"scenario": "behaviour_a"},
                "faults": {"faas": {"failure_rate": 7}},
            }
        )


def test_chaos_scenarios_are_registered():
    from repro.api.scenarios import build_scenario

    for name in ("offload_brownout", "shard_kill_at_peak", "flaky_network"):
        scenario = build_scenario(name)
        assert scenario.faults, name
        FaultPlan.from_dict(scenario.faults)  # validates
