"""The lossy message channel and idempotent update application."""

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.net.channel import SEEN_WINDOW, FaultyMessageChannel, _SeenWindow
from repro.net.message import Message, MessageKind
from repro.server import GameConfig, make_opencraft


def make_channel(engine, net):
    injector = FaultInjector(engine, FaultPlan.from_dict({"net": net}))
    return FaultyMessageChannel(engine, injector), injector


def make_session(engine, channel=None):
    server = make_opencraft(engine, GameConfig(world_type="flat"))
    server.chunks.preload_area(server.config.spawn_position, 96.0)
    session = server.connect_player("alice")
    if channel is not None:
        channel.add_resolver(server.sessions.get)
        session.attach_channel(channel)
    return server, session


def move(player_id):
    return Message(MessageKind.MOVE, player_id, {"x": 1, "y": 64, "z": 1})


def test_channel_requires_a_net_section(engine):
    injector = FaultInjector(engine, FaultPlan.from_dict({"faas": {"failure_rate": 0.5}}))
    with pytest.raises(ValueError):
        FaultyMessageChannel(engine, injector)


def test_dropped_messages_never_reach_the_inbox(engine):
    channel, injector = make_channel(engine, {"drop_rate": 1.0})
    _, session = make_session(engine, channel)
    session.enqueue(move(session.player_id))
    assert session.pending_messages == 0
    assert engine.metrics.counter("net_messages_dropped") == 1.0
    assert injector.timeline.count("net.drop") == 1


def test_duplicated_messages_are_applied_exactly_once(engine):
    channel, _ = make_channel(engine, {"duplicate_rate": 1.0})
    _, session = make_session(engine, channel)
    session.enqueue(move(session.player_id))
    # Delivered twice on the wire, deduplicated down to one application.
    assert session.pending_messages == 1
    assert engine.metrics.counter("net_messages_duplicated") == 1.0
    assert engine.metrics.counter("net_duplicates_dropped") == 1.0


def test_delayed_messages_arrive_later_but_are_still_applied(engine):
    channel, _ = make_channel(
        engine, {"delay_rate": 1.0, "delay_ms_min": 100.0, "delay_ms_max": 100.0}
    )
    _, session = make_session(engine, channel)
    session.enqueue(move(session.player_id))
    assert session.pending_messages == 0  # still in flight
    engine.advance_by(150.0)
    assert session.pending_messages == 1
    assert engine.metrics.counter("net_messages_delayed") == 1.0


def test_delayed_message_to_a_disconnected_player_is_lost(engine):
    channel, _ = make_channel(
        engine, {"delay_rate": 1.0, "delay_ms_min": 50.0, "delay_ms_max": 50.0}
    )
    server, session = make_session(engine, channel)
    session.enqueue(move(session.player_id))
    server.disconnect_player(session.player_id)
    engine.advance_by(100.0)
    assert engine.metrics.counter("net_messages_lost") == 1.0


def test_stamped_messages_bypass_the_channel(engine):
    # Server-internal requeues (e.g. a migration handing over undrained
    # messages) carry a sequence stamp and must not be faulted again.
    channel, _ = make_channel(engine, {"drop_rate": 1.0})
    _, session = make_session(engine, channel)
    stamped = Message(MessageKind.MOVE, session.player_id, {"x": 1}, sequence=7)
    session.enqueue(stamped)
    assert session.pending_messages == 1
    assert engine.metrics.counter("net_messages_dropped") == 0.0


def test_sequences_are_stamped_per_player_monotonically(engine):
    channel, _ = make_channel(engine, {"drop_rate": 0.0, "delay_rate": 0.0, "duplicate_rate": 0.001})
    _, session = make_session(engine, channel)
    for _ in range(5):
        session.enqueue(move(session.player_id))
    sequences = [message.sequence for message in session.drain()]
    assert sequences == [1, 2, 3, 4, 5]


def test_seen_window_is_bounded_and_forgets_oldest():
    window = _SeenWindow(capacity=4)
    for sequence in range(1, 5):
        assert window.add(sequence)
    assert not window.add(4)  # recent duplicate rejected
    assert window.add(5)  # evicts 1
    assert window.add(1)  # old enough to have left the window
    assert SEEN_WINDOW == 512


def test_without_a_channel_messages_go_straight_to_the_inbox(engine):
    _, session = make_session(engine, channel=None)
    session.enqueue(move(session.player_id))
    assert session.pending_messages == 1
    assert session.drain()[0].sequence is None
