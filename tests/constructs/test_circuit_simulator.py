"""Tests for constructs, the step simulator and state snapshots."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.constructs.circuit import Cell, SimulatedConstruct
from repro.constructs.components import ComponentType
from repro.constructs.library import (
    build_clock,
    build_counter_farm,
    build_lamp_grid,
    build_oscillator,
    build_sized_construct,
    build_wire_line,
    standard_construct,
)
from repro.constructs.simulator import ConstructSimulator, clone_construct
from repro.constructs.state import ConstructState, state_hash
from repro.world.coords import BlockPos


def test_construct_requires_cells():
    with pytest.raises(ValueError):
        SimulatedConstruct([])


def test_construct_rejects_duplicate_positions():
    cell = Cell(BlockPos(0, 64, 0), ComponentType.WIRE)
    with pytest.raises(ValueError):
        SimulatedConstruct([cell, Cell(BlockPos(0, 64, 0), ComponentType.LAMP)])


def test_wire_line_propagates_power_one_block_per_step():
    construct = build_wire_line(length=5)
    simulator = ConstructSimulator()
    lamp_pos = construct.positions[-1]
    lamp_states = []
    for _ in range(8):
        simulator.step(construct)
        lamp_states.append(construct.cell_at(lamp_pos).state)
    # The lamp eventually turns on and stays on.
    assert lamp_states[-1] == 1
    assert 0 in lamp_states  # it was off while the signal propagated


def test_wire_line_without_power_stays_dark():
    construct = build_wire_line(length=3, powered=False)
    simulator = ConstructSimulator()
    for _ in range(6):
        simulator.step(construct)
    lamp_pos = construct.positions[-1]
    assert construct.cell_at(lamp_pos).state == 0


def test_clock_circuit_state_is_periodic():
    construct = build_clock(period=4, lamps=1)
    simulator = ConstructSimulator()
    digests = [simulator.step(construct).digest() for _ in range(24)]
    # After a transient, the state sequence repeats with the clock period.
    assert digests[8:16] == digests[12:20]


def test_oscillator_toggles_lamp():
    construct = build_oscillator()
    simulator = ConstructSimulator()
    lamp_pos = [c.position for c in construct.cells if c.component is ComponentType.LAMP][0]
    seen_states = set()
    for _ in range(16):
        simulator.step(construct)
        seen_states.add(construct.cell_at(lamp_pos).state)
    assert seen_states == {0, 1}


def test_counter_farm_state_never_repeats():
    construct = build_counter_farm(hoppers=2)
    simulator = ConstructSimulator()
    digests = [simulator.step(construct).digest() for _ in range(40)]
    assert len(set(digests)) == len(digests)


def test_simulator_run_collects_trace_and_counts_work():
    construct = build_wire_line(length=3)
    simulator = ConstructSimulator()
    trace = simulator.run(construct, steps=10)
    assert trace.steps == 10
    assert trace.cell_updates == 10 * construct.block_count
    assert trace.final_state().step == construct.step


def test_simulate_detached_does_not_mutate_original():
    construct = build_clock(period=4)
    simulator = ConstructSimulator()
    before = construct.snapshot()
    trace = simulator.simulate_detached(construct, steps=12)
    assert trace.steps == 12
    assert construct.snapshot().same_values(before)
    assert construct.step == 0


def test_clone_construct_preserves_identity_and_state():
    construct = build_lamp_grid(3, 2)
    construct.step = 5
    clone = clone_construct(construct)
    assert clone.construct_id == construct.construct_id
    assert clone.step == 5
    assert clone.snapshot().same_values(construct.snapshot())
    clone.cells[0].state = 99
    assert construct.cells[0].state != 99


def test_snapshot_and_apply_state_round_trip():
    construct = build_wire_line(length=4)
    simulator = ConstructSimulator()
    for _ in range(3):
        simulator.step(construct)
    snapshot = construct.snapshot()
    for _ in range(5):
        simulator.step(construct)
    construct.apply_state(snapshot)
    assert construct.step == snapshot.step
    assert construct.snapshot().same_values(snapshot)


def test_apply_state_rejects_unknown_positions():
    construct = build_wire_line(length=2)
    with pytest.raises(KeyError):
        construct.apply_state({BlockPos(99, 99, 99): 1}, step=1)


def test_apply_state_requires_step_for_raw_mapping():
    construct = build_wire_line(length=2)
    with pytest.raises(ValueError):
        construct.apply_state({construct.positions[0]: 1})


def test_copy_state_from_requires_same_shape():
    a = build_wire_line(length=2)
    b = build_wire_line(length=3)
    with pytest.raises(ValueError):
        a.copy_state_from(b)


def test_player_modify_advances_logical_timestamp():
    construct = build_wire_line(length=2, powered=False)
    assert construct.modification_counter == 0
    construct.player_modify(construct.positions[0], new_state=1)
    assert construct.modification_counter == 1
    construct.player_modify(BlockPos(500, 64, 500))  # nearby terrain edit
    assert construct.modification_counter == 2


def test_toggle_lever_flips_state():
    construct = build_wire_line(length=2, powered=False)
    lever_pos = construct.positions[0]
    construct.toggle_lever(lever_pos)
    assert construct.cell_at(lever_pos).state == 1
    construct.toggle_lever(lever_pos)
    assert construct.cell_at(lever_pos).state == 0
    with pytest.raises(ValueError):
        construct.toggle_lever(construct.positions[1])


def test_state_hash_is_order_independent_and_stable():
    states_a = {BlockPos(0, 0, 0): 1, BlockPos(1, 0, 0): 2}
    states_b = {BlockPos(1, 0, 0): 2, BlockPos(0, 0, 0): 1}
    assert state_hash(states_a) == state_hash(states_b)
    assert state_hash({BlockPos(0, 0, 0): 3}) != state_hash({BlockPos(0, 0, 0): 4})


def test_construct_state_equality_and_membership():
    state = ConstructState(step=3, states={BlockPos(0, 0, 0): 1})
    same = ConstructState(step=3, states={BlockPos(0, 0, 0): 1})
    other_step = ConstructState(step=4, states={BlockPos(0, 0, 0): 1})
    assert state == same
    assert state != other_step
    assert state.same_values(other_step)
    assert len(state) == 1
    assert state.value(BlockPos(0, 0, 0)) == 1


def test_sized_construct_hits_target_block_count():
    for target in (50, 252, 484):
        construct = build_sized_construct(target)
        assert construct.block_count == target


def test_sized_construct_aperiodic_variant_contains_hopper():
    construct = build_sized_construct(60, looping=False)
    components = {cell.component for cell in construct.cells}
    assert ComponentType.HOPPER in components


def test_standard_construct_spreads_instances():
    first = standard_construct(0)
    second = standard_construct(1)
    assert first.anchor() != second.anchor()
    assert first.block_count == second.block_count


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=12))
def test_deterministic_simulation_for_any_clock_period(period):
    """Two identical constructs simulated independently stay in lockstep."""
    a = build_clock(period=period)
    b = build_clock(period=period)
    simulator = ConstructSimulator()
    for _ in range(3 * period):
        state_a = simulator.step(a)
        state_b = simulator.step(b)
        assert state_a.same_values(state_b)
