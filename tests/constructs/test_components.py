"""Tests for stateful block component behaviour."""

import pytest

from repro.constructs.components import (
    MAX_POWER,
    ComponentType,
    block_for_component,
    component_from_block,
    next_state,
    output_power,
)
from repro.world.block import BlockType


def test_component_block_mapping_round_trip():
    assert component_from_block(BlockType.WIRE) is ComponentType.WIRE
    assert block_for_component(ComponentType.WIRE) is BlockType.WIRE
    assert block_for_component(ComponentType.CLOCK) is BlockType.POWER_SOURCE


def test_component_from_block_rejects_static_blocks():
    with pytest.raises(ValueError):
        component_from_block(BlockType.STONE)


def test_power_source_always_emits_max_power():
    assert output_power(ComponentType.POWER_SOURCE, 0, {}) == MAX_POWER
    assert next_state(ComponentType.POWER_SOURCE, 0, 0, {}) == MAX_POWER


def test_lever_output_follows_state():
    assert output_power(ComponentType.LEVER, 1, {}) == MAX_POWER
    assert output_power(ComponentType.LEVER, 0, {}) == 0
    # Simulation never flips a lever by itself.
    assert next_state(ComponentType.LEVER, 1, 0, {}) == 1


def test_wire_decays_power_by_one():
    assert next_state(ComponentType.WIRE, 0, 15, {}) == 14
    assert next_state(ComponentType.WIRE, 5, 0, {}) == 0
    assert output_power(ComponentType.WIRE, 7, {}) == 7


def test_lamp_turns_on_when_powered():
    assert next_state(ComponentType.LAMP, 0, 3, {}) == 1
    assert next_state(ComponentType.LAMP, 1, 0, {}) == 0
    assert output_power(ComponentType.LAMP, 1, {}) == 0


def test_torch_inverts_input():
    assert next_state(ComponentType.TORCH, 0, 0, {}) == MAX_POWER
    assert next_state(ComponentType.TORCH, 15, 10, {}) == 0


def test_repeater_delays_signal_by_configured_ticks():
    properties = {"delay": 3}
    state = 0
    outputs = []
    inputs = [15, 0, 0, 0, 0]
    for power in inputs:
        state = next_state(ComponentType.REPEATER, state, power, properties)
        outputs.append(output_power(ComponentType.REPEATER, state, properties))
    # The pulse appears on the output exactly `delay` steps after the input.
    assert outputs[:2] == [0, 0]
    assert outputs[2] == MAX_POWER
    assert outputs[3] == 0


def test_piston_extends_when_powered():
    assert next_state(ComponentType.PISTON, 0, 15, {}) == 1
    assert next_state(ComponentType.PISTON, 1, 0, {}) == 0


def test_hopper_counts_only_when_powered():
    assert next_state(ComponentType.HOPPER, 7, 15, {}) == 8
    assert next_state(ComponentType.HOPPER, 7, 0, {}) == 7
    assert next_state(ComponentType.HOPPER, 65535, 15, {}) == 0


def test_comparator_passes_input_through():
    assert next_state(ComponentType.COMPARATOR, 0, 9, {}) == 9
    assert output_power(ComponentType.COMPARATOR, 9, {}) == 9


def test_clock_oscillates_with_period():
    properties = {"period": 4}
    states = []
    state = 0
    for _ in range(8):
        states.append(output_power(ComponentType.CLOCK, state, properties))
        state = next_state(ComponentType.CLOCK, state, 0, properties)
    assert states == [MAX_POWER, MAX_POWER, 0, 0, MAX_POWER, MAX_POWER, 0, 0]
