"""Equivalence suite: the compiled hot path must match the reference simulator.

The compiled circuit (``constructs/compiled.py``) replaces the dict-based
reference formulation on every consumer (local backend, speculative fallback,
offload function).  These tests pin the contract: bit-identical
:class:`ConstructState` sequences across the construct library, including
after mid-run player edits and around quiescence (fixed-point) skipping.
"""

import pytest

from repro.constructs.compiled import CompiledCircuit, compile_circuit
from repro.constructs.library import (
    build_adder,
    build_clock,
    build_counter_farm,
    build_lamp_grid,
    build_oscillator,
    build_piston_door,
    build_sized_construct,
    build_wire_line,
    standard_construct,
)
from repro.constructs.simulator import (
    ConstructSimulator,
    ReferenceConstructSimulator,
    clone_construct,
)
from repro.server.sc_engine import LocalConstructBackend
from repro.world.coords import BlockPos

LIBRARY = {
    "clock": lambda: build_clock(period=6, lamps=3),
    "oscillator": build_oscillator,
    "wire-line-powered": lambda: build_wire_line(length=9, powered=True),
    "wire-line-lever": lambda: build_wire_line(length=9, powered=False),
    "lamp-grid": lambda: build_lamp_grid(width=4, depth=3),
    "counter-farm": build_counter_farm,
    "sized-60": lambda: build_sized_construct(60),
    "sized-aperiodic": lambda: build_sized_construct(40, looping=False),
    "adder": build_adder,
    "piston-door": build_piston_door,
    "standard": lambda: standard_construct(0),
}


def trace_states(simulator, construct, steps):
    return [simulator.step(construct) for _ in range(steps)]


@pytest.mark.parametrize("name", sorted(LIBRARY))
def test_compiled_matches_reference_across_library(name):
    compiled_subject = LIBRARY[name]()
    reference_subject = clone_construct(compiled_subject)
    compiled_states = trace_states(ConstructSimulator(), compiled_subject, 64)
    reference_states = trace_states(ReferenceConstructSimulator(), reference_subject, 64)
    assert compiled_states == reference_states
    assert [s.digest() for s in compiled_states] == [
        s.digest() for s in reference_states
    ]


@pytest.mark.parametrize("name", ["adder", "piston-door", "wire-line-lever", "clock"])
def test_compiled_matches_reference_after_mid_run_player_edit(name):
    compiled_subject = LIBRARY[name]()
    reference_subject = clone_construct(compiled_subject)
    compiled_simulator = ConstructSimulator()
    reference_simulator = ReferenceConstructSimulator()

    assert trace_states(compiled_simulator, compiled_subject, 20) == trace_states(
        reference_simulator, reference_subject, 20
    )
    # A player toggles/retunes the first cell mid-run on both copies.
    edit_position = compiled_subject.positions[0]
    compiled_subject.player_modify(edit_position, new_state=1)
    reference_subject.player_modify(edit_position, new_state=1)
    assert trace_states(compiled_simulator, compiled_subject, 40) == trace_states(
        reference_simulator, reference_subject, 40
    )


def test_compiled_digest_matches_snapshot_digest():
    construct = build_adder()
    compiled = compile_circuit(construct)
    for _ in range(10):
        compiled.step()
        assert compiled.digest() == construct.snapshot().digest()


def test_compile_circuit_is_cached_per_construct():
    construct = build_clock()
    assert compile_circuit(construct) is compile_circuit(construct)
    assert isinstance(compile_circuit(construct), CompiledCircuit)


def test_compiled_step_reports_fixed_point():
    # A powered wire line settles: source -> wires -> lamp reach steady state.
    construct = build_wire_line(length=4, powered=True)
    compiled = compile_circuit(construct)
    results = [compiled.step() for _ in range(16)]
    assert results[-1] is True, "a settled wire line must report a fixed point"
    first_fixed = results.index(True)
    # Once fixed, it stays fixed (pure function of the state vector).
    assert all(results[first_fixed:])
    # A clock never settles.
    ticking = compile_circuit(build_clock(period=4))
    assert not any(ticking.step() for _ in range(16))


def test_compiled_params_refresh_after_player_modify():
    construct = build_clock(period=8, lamps=1)
    compiled = compile_circuit(construct)
    for _ in range(3):
        compiled.step()
    # A sanctioned player edit may retune properties; the modification
    # counter moves and the compiled params must follow.
    clock_cell = construct.cells[0]
    clock_cell.properties["period"] = 3
    construct.player_modify(clock_cell.position)
    reference_subject = clone_construct(construct)
    assert trace_states(ConstructSimulator(), construct, 24) == trace_states(
        ReferenceConstructSimulator(), reference_subject, 24
    )


# -- quiescence skipping through the local backend ------------------------------------


def test_quiescent_construct_skips_resimulation_but_reports_full_work():
    backend = LocalConstructBackend(interval=1)
    construct = build_piston_door()
    backend.register_construct(construct)
    # Run until the door settles.
    for tick in range(12):
        report = backend.tick(tick)
    assert report.skipped_quiescent == 1
    assert report.simulated_locally == 1, "cost models must still see the work"
    assert report.advanced == 1
    # Virtual time is unchanged: the step counter advances through skips.
    assert construct.step == 12


def test_quiescence_wakeup_matches_reference_after_lever_toggle():
    backend = LocalConstructBackend(interval=1)
    door = build_piston_door()
    reference_door = clone_construct(door)
    backend.register_construct(door)

    reference_simulator = ReferenceConstructSimulator()
    for tick in range(12):
        backend.tick(tick)
        reference_simulator.step(reference_door)
    assert door.snapshot() == reference_door.snapshot()

    # Toggle the lever: the backend must wake the construct and re-simulate.
    lever_position = door.positions[0]
    backend.on_player_modify(door.construct_id, lever_position)
    door.cell_at(lever_position).state = 1
    reference_door.player_modify(lever_position, new_state=1)

    woke_reports = []
    for tick in range(12, 24):
        woke_reports.append(backend.tick(tick))
        reference_simulator.step(reference_door)
    assert door.snapshot() == reference_door.snapshot()
    # The tick right after the edit must not have skipped.
    assert woke_reports[0].skipped_quiescent == 0
    # The pistons actually extended after the toggle.
    piston_states = [
        cell.state
        for cell in door.cells
        if cell.component.value == "piston"
    ]
    assert all(state == 1 for state in piston_states)


def test_quiescent_group_members_keep_step_counters_in_lockstep():
    backend = LocalConstructBackend(interval=1)
    first = build_wire_line(length=5, powered=True)
    second = build_wire_line(length=5, powered=True)
    backend.register_construct(first)
    backend.register_construct(second)
    for tick in range(20):
        report = backend.tick(tick)
    assert report.skipped_quiescent == 2
    assert first.step == second.step == 20
    assert first.snapshot().same_values(second.snapshot())
