"""Equivalence suite: batched numpy stepping must match the reference simulator.

``BatchedCircuitStepper`` advances every circuit it is handed in one
vectorised numpy pass; these tests pin its contract against the dict-based
reference formulation: bit-identical state sequences across the construct
library, including mixed-size batches, mid-run player edits, quiescence
wake-ups and the sub-threshold fallback path.
"""

import pytest

from repro.constructs.batched import (
    BatchedCircuitStepper,
    CircuitBatchLayout,
    advance_states,
)
from repro.constructs.compiled import compile_circuit
from repro.constructs.library import (
    build_adder,
    build_clock,
    build_counter_farm,
    build_lamp_grid,
    build_oscillator,
    build_piston_door,
    build_sized_construct,
    build_wire_line,
    standard_construct,
)
from repro.constructs.simulator import ReferenceConstructSimulator, clone_construct

BUILDERS = {
    "clock": lambda: build_clock(period=6, lamps=3),
    "oscillator": build_oscillator,
    "wire-line-powered": lambda: build_wire_line(length=9, powered=True),
    "wire-line-lever": lambda: build_wire_line(length=9, powered=False),
    "lamp-grid": lambda: build_lamp_grid(width=4, depth=3),
    "counter-farm": build_counter_farm,
    "sized-60": lambda: build_sized_construct(60),
    "sized-aperiodic": lambda: build_sized_construct(40, looping=False),
    "adder": build_adder,
    "piston-door": build_piston_door,
    "standard": lambda: standard_construct(0),
}


def make_fleet():
    """One construct per library entry — a mixed-size batch by construction."""
    return [BUILDERS[name]() for name in sorted(BUILDERS)]


def step_batched(stepper, fleet):
    return stepper.step_batch([compile_circuit(construct) for construct in fleet])


def assert_fleets_identical(fleet, reference_fleet):
    for construct, reference in zip(fleet, reference_fleet):
        snapshot, expected = construct.snapshot(), reference.snapshot()
        assert snapshot == expected
        assert snapshot.digest() == expected.digest()


def test_batched_fleet_matches_reference_across_library():
    fleet = make_fleet()
    reference_fleet = [clone_construct(construct) for construct in fleet]
    stepper = BatchedCircuitStepper(min_batch_circuits=1)
    reference = ReferenceConstructSimulator()
    for _ in range(64):
        step_batched(stepper, fleet)
        for construct in reference_fleet:
            reference.step(construct)
        assert_fleets_identical(fleet, reference_fleet)
    assert stepper.batched_steps == 64 * len(fleet)
    assert stepper.fallback_steps == 0


def test_batched_matches_reference_after_mid_run_player_edits():
    fleet = make_fleet()
    reference_fleet = [clone_construct(construct) for construct in fleet]
    stepper = BatchedCircuitStepper(min_batch_circuits=1)
    reference = ReferenceConstructSimulator()

    for _ in range(20):
        step_batched(stepper, fleet)
        for construct in reference_fleet:
            reference.step(construct)

    # Players edit half the fleet mid-run (toggle the first cell of each).
    for construct, reference_construct in zip(fleet[::2], reference_fleet[::2]):
        position = construct.positions[0]
        construct.player_modify(position, new_state=1)
        reference_construct.player_modify(position, new_state=1)

    for _ in range(40):
        step_batched(stepper, fleet)
        for construct in reference_fleet:
            reference.step(construct)
    assert_fleets_identical(fleet, reference_fleet)


def test_batched_fixed_point_flags_match_per_circuit_stepping():
    # Settling circuits (powered wire lines) next to never-settling clocks.
    fleet = [
        build_wire_line(length=4, powered=True),
        build_clock(period=4),
        build_wire_line(length=6, powered=True),
    ]
    shadow = [clone_construct(construct) for construct in fleet]
    stepper = BatchedCircuitStepper(min_batch_circuits=1)
    for _ in range(16):
        flags = step_batched(stepper, fleet)
        expected = [compile_circuit(construct).step() for construct in shadow]
        assert flags == expected
    assert flags[0] and flags[2], "settled wire lines must report fixed points"
    assert not flags[1], "a clock never reports a fixed point"


def test_small_batches_fall_back_to_per_circuit_stepping():
    fleet = [build_clock(period=4), build_oscillator()]
    reference_fleet = [clone_construct(construct) for construct in fleet]
    stepper = BatchedCircuitStepper(min_batch_circuits=8)
    reference = ReferenceConstructSimulator()
    for _ in range(24):
        step_batched(stepper, fleet)
        for construct in reference_fleet:
            reference.step(construct)
    assert_fleets_identical(fleet, reference_fleet)
    assert stepper.fallback_steps == 24 * len(fleet)
    assert stepper.batched_steps == 0


def test_batch_membership_can_change_between_steps():
    fleet = make_fleet()
    reference_fleet = [clone_construct(construct) for construct in fleet]
    stepper = BatchedCircuitStepper(min_batch_circuits=1)
    reference = ReferenceConstructSimulator()
    # Alternate between the full fleet and a sub-batch, as quiescence skipping
    # does; the untouched constructs simply do not advance that step.
    for round_index in range(30):
        members = fleet if round_index % 2 == 0 else fleet[:4]
        reference_members = (
            reference_fleet if round_index % 2 == 0 else reference_fleet[:4]
        )
        step_batched(stepper, members)
        for construct in reference_members:
            reference.step(construct)
        assert_fleets_identical(fleet, reference_fleet)


def test_advance_states_is_pure_and_reusable():
    import numpy as np

    fleet = [build_clock(period=6, lamps=2), build_wire_line(length=5, powered=True)]
    circuits = [compile_circuit(construct) for construct in fleet]
    layout = CircuitBatchLayout(circuits)
    states = np.fromiter(
        (cell.state for circuit in circuits for cell in circuit._cells),
        dtype=np.int64,
        count=layout.total,
    )
    first = advance_states(layout, states)
    again = advance_states(layout, states)
    assert (first == again).all(), "advance_states must be a pure function"
    # The kernel never mutates its input vector or the live cells.
    assert (
        states
        == np.fromiter(
            (cell.state for circuit in circuits for cell in circuit._cells),
            dtype=np.int64,
            count=layout.total,
        )
    ).all()


# -- registry regression: stale quiescence on construct-id reuse -----------------------


@pytest.mark.parametrize("backend_interval", [1, 2])
def test_reregistered_construct_id_does_not_inherit_quiescence(backend_interval):
    from repro.server.sc_engine import LocalConstructBackend

    backend = LocalConstructBackend(interval=backend_interval)
    settled = build_wire_line(length=4, powered=True)
    backend.register_construct(settled)
    for tick in range(0, 16 * backend_interval, 1):
        backend.tick(tick)
    assert settled.construct_id in backend._quiescent

    # Remove it and re-register a *different* construct under the same id.
    backend.remove_construct(settled.construct_id)
    replacement = build_clock(period=4)
    replacement.construct_id = settled.construct_id
    backend.register_construct(replacement)
    report = backend.tick(0)
    assert report.skipped_quiescent == 0, (
        "a re-used construct id must never inherit the old fixed-point status"
    )
