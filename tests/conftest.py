"""Shared pytest fixtures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim import SimulationEngine


@pytest.fixture
def engine() -> SimulationEngine:
    """A fresh simulation engine with a fixed seed."""
    return SimulationEngine(seed=1234)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic numpy generator for latency-model tests."""
    return np.random.default_rng(99)
