"""Tests for the cache and the distance prefetch policy."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.blob import AZURE_BLOB_STANDARD, BlobStorage
from repro.storage.cache import CachedStorage
from repro.storage.prefetch import DistancePrefetchPolicy
from repro.world.coords import BlockPos, ChunkPos, block_to_chunk


@pytest.fixture
def cache_and_blob(rng):
    blob = BlobStorage(rng=np.random.default_rng(7), profile=AZURE_BLOB_STANDARD)
    cache = CachedStorage(remote=blob, rng=rng, capacity_objects=16)
    return cache, blob


def test_cache_miss_then_hit(cache_and_blob):
    cache, blob = cache_and_blob
    blob.write("key", b"value")
    first = cache.read("key")
    second = cache.read("key")
    assert first.hit is False
    assert second.hit is True
    assert second.latency_ms < first.latency_ms
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert 0.0 < cache.stats.hit_rate < 1.0


def test_cache_prefetch_makes_reads_hits(cache_and_blob):
    cache, blob = cache_and_blob
    blob.write("key", b"value")
    paid = cache.prefetch("key")
    assert paid > 0.0
    assert cache.is_cached("key")
    assert cache.read("key").hit is True
    # prefetching again is free
    assert cache.prefetch("key") == 0.0
    # prefetching a missing object is a no-op
    assert cache.prefetch("nope") == 0.0


def test_cache_write_behind_flush(cache_and_blob):
    cache, blob = cache_and_blob
    cache.write("new-key", b"data")
    assert not blob.exists("new-key")
    assert cache.dirty_keys == ["new-key"]
    operations = cache.flush()
    assert len(operations) == 1
    assert blob.exists("new-key")
    assert cache.dirty_keys == []


def test_cache_eviction_respects_capacity_and_preserves_dirty_data(rng):
    blob = BlobStorage(rng=np.random.default_rng(3), profile=AZURE_BLOB_STANDARD)
    cache = CachedStorage(remote=blob, rng=rng, capacity_objects=4)
    for index in range(8):
        cache.write(f"key-{index}", b"x")
    assert len(cache.cached_keys) <= 4
    # Every written object survives somewhere (cache or remote).
    for index in range(8):
        assert cache.exists(f"key-{index}")
    assert cache.stats.evictions > 0


def test_cache_delete_removes_everywhere(cache_and_blob):
    cache, blob = cache_and_blob
    blob.write("key", b"v")
    cache.read("key")
    cache.delete("key")
    assert not cache.exists("key")
    assert not blob.exists("key")


def test_cache_rejects_zero_capacity(rng):
    blob = BlobStorage(rng=np.random.default_rng(3))
    with pytest.raises(ValueError):
        CachedStorage(remote=blob, rng=rng, capacity_objects=0)


def test_cache_read_latency_much_lower_than_remote(cache_and_blob):
    cache, blob = cache_and_blob
    blob.write("key", b"x" * 100)
    cache.prefetch("key")
    hits = [cache.read("key").latency_ms for _ in range(300)]
    assert max(hits) < 40.0


def test_prefetch_policy_partitions_required_and_margin():
    policy = DistancePrefetchPolicy(view_distance_blocks=64.0, prefetch_margin_blocks=32.0)
    plan = policy.plan([BlockPos(0, 64, 0)])
    assert plan.required
    assert plan.prefetch
    assert not (plan.required & plan.prefetch)
    assert block_to_chunk(BlockPos(0, 64, 0)) in plan.required


def test_prefetch_policy_eviction_candidates():
    policy = DistancePrefetchPolicy(view_distance_blocks=32.0, prefetch_margin_blocks=16.0)
    resident = [ChunkPos(0, 0), ChunkPos(50, 50)]
    candidates = policy.eviction_candidates(resident, [BlockPos(0, 64, 0)])
    assert ChunkPos(50, 50) in candidates
    assert ChunkPos(0, 0) not in candidates


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=-500, max_value=500),
    st.integers(min_value=-500, max_value=500),
)
def test_prefetch_plan_required_always_within_view(x, z):
    policy = DistancePrefetchPolicy(view_distance_blocks=48.0, prefetch_margin_blocks=32.0)
    position = BlockPos(x, 64, z)
    plan = policy.plan([position])
    # The player's own chunk is always required, and the prefetch ring is
    # strictly outside the required set.
    assert block_to_chunk(position) in plan.required
    assert not (plan.required & plan.prefetch)
