"""Tests for local-disk and blob storage backends."""

import numpy as np
import pytest

from repro.sim.metrics import percentile
from repro.storage.base import ObjectNotFoundError
from repro.storage.blob import (
    AZURE_BLOB_PREMIUM,
    AZURE_BLOB_STANDARD,
    AWS_S3_STANDARD,
    BlobStorage,
    download_latency_profile,
)
from repro.storage.local import LocalDiskStorage


@pytest.fixture
def local(rng):
    return LocalDiskStorage(rng=rng)


@pytest.fixture
def blob(rng):
    return BlobStorage(rng=rng, profile=AZURE_BLOB_STANDARD)


def test_local_write_read_round_trip(local):
    local.write("key", b"payload")
    operation = local.read("key")
    assert operation.data == b"payload"
    assert operation.size_bytes == 7
    assert operation.latency_ms > 0


def test_local_read_missing_raises(local):
    with pytest.raises(ObjectNotFoundError):
        local.read("missing")


def test_local_delete_and_exists(local):
    local.write("key", b"x")
    assert local.exists("key")
    local.delete("key")
    assert not local.exists("key")
    # deleting again is a no-op
    local.delete("key")


def test_local_list_keys_and_sizes(local):
    local.write("b", b"22")
    local.write("a", b"1")
    assert local.list_keys() == ["a", "b"]
    assert local.size_bytes("b") == 2
    with pytest.raises(ObjectNotFoundError):
        local.size_bytes("zzz")


def test_local_latency_is_fast_after_boot(rng):
    storage = LocalDiskStorage(rng=rng, boot_window_reads=5)
    storage.write("key", b"x" * 100)
    latencies = [storage.read("key").latency_ms for _ in range(500)]
    steady = latencies[50:]
    assert percentile(steady, 99) < 20.0
    assert max(latencies) < 130.0


def test_blob_read_latency_has_heavy_tail(blob):
    blob.write("key", b"x" * 1000)
    latencies = [blob.read("key").latency_ms for _ in range(4000)]
    assert percentile(latencies, 50) < 25.0
    assert percentile(latencies, 99.9) > 60.0
    assert max(latencies) < 700.0


def test_blob_premium_is_faster_than_standard(rng):
    premium = BlobStorage(rng=np.random.default_rng(1), profile=AZURE_BLOB_PREMIUM)
    standard = BlobStorage(rng=np.random.default_rng(1), profile=AZURE_BLOB_STANDARD)
    premium.write("k", b"x" * 500)
    standard.write("k", b"x" * 500)
    premium_median = percentile([premium.read("k").latency_ms for _ in range(800)], 50)
    standard_median = percentile([standard.read("k").latency_ms for _ in range(800)], 50)
    assert premium_median < standard_median


def test_blob_counts_operations_and_bytes(blob):
    blob.write("a", b"123")
    blob.read("a")
    blob.read("a")
    assert blob.write_count == 1
    assert blob.read_count == 2
    assert blob.bytes_written == 3
    assert blob.bytes_read == 6


def test_blob_transfer_time_scales_with_size(rng):
    storage = BlobStorage(rng=rng, profile=AWS_S3_STANDARD)
    storage.write("small", b"x")
    storage.write("large", b"x" * 5_000_000)
    small = min(storage.read("small").latency_ms for _ in range(50))
    large = min(storage.read("large").latency_ms for _ in range(50))
    assert large > small + 50.0


def test_download_profiles_cover_the_figure_3_matrix(rng):
    for kind in ("player", "terrain"):
        for tier in ("premium", "standard"):
            model = download_latency_profile(kind, tier)
            sample = model.sample(rng)
            assert sample > 0
    with pytest.raises(ValueError):
        download_latency_profile("unknown", "standard")


def test_download_terrain_is_slower_than_player_data():
    rng_a, rng_b = np.random.default_rng(5), np.random.default_rng(5)
    player = download_latency_profile("player", "standard")
    terrain = download_latency_profile("terrain", "standard")
    player_mean = np.mean([player.sample(rng_a) for _ in range(500)])
    terrain_mean = np.mean([terrain.sample(rng_b) for _ in range(500)])
    assert terrain_mean > player_mean
