"""Integration tests for the game loop and the baseline variants."""

import pytest

from repro.constructs.library import build_wire_line, standard_construct
from repro.net.message import Message, MessageKind
from repro.server import GameConfig, make_minecraft, make_opencraft
from repro.sim import SimulationEngine
from repro.world.block import BlockType
from repro.world.coords import BlockPos


@pytest.fixture
def opencraft(engine):
    server = make_opencraft(engine, GameConfig(world_type="flat"))
    server.chunks.preload_area(server.config.spawn_position, 96.0)
    return server


def test_game_config_validation():
    with pytest.raises(ValueError):
        GameConfig(simulation_rate_hz=0)
    with pytest.raises(ValueError):
        GameConfig(world_type="martian")
    assert GameConfig().tick_interval_ms == pytest.approx(50.0)


def test_connect_and_disconnect_players(opencraft):
    session = opencraft.connect_player("alice")
    assert opencraft.player_count == 1
    assert session.avatar.position == opencraft.config.spawn_position
    opencraft.disconnect_player(session.player_id)
    assert opencraft.player_count == 0
    with pytest.raises(KeyError):
        opencraft.disconnect_player(session.player_id)


def test_tick_advances_virtual_time_by_at_least_the_budget(opencraft, engine):
    before = engine.now_ms
    record = opencraft.tick()
    assert engine.now_ms >= before + opencraft.config.tick_interval_ms
    assert record.duration_ms > 0
    assert opencraft.tick_index == 1


def test_overlong_tick_delays_the_next_one(opencraft, engine):
    # 200 constructs make every other tick exceed the 50 ms budget.
    for index in range(200):
        opencraft.place_construct(standard_construct(index))
    opencraft.tick()
    start_second = engine.now_ms
    record = opencraft.tick()  # construct tick (index 1 is odd; force a couple)
    opencraft.tick()
    assert engine.now_ms > start_second
    assert max(r.duration_ms for r in opencraft.tick_records) > 50.0


def test_move_messages_update_avatars(opencraft):
    session = opencraft.connect_player()
    session.move(20, 65, 20)
    opencraft.tick()
    assert session.avatar.position == BlockPos(20, 65, 20)
    assert opencraft.stats.messages_processed == 1


def test_place_and_break_block_messages_edit_the_world(opencraft):
    session = opencraft.connect_player()
    target = BlockPos(4, 70, 4)
    session.enqueue(
        Message(MessageKind.PLACE_BLOCK, session.player_id,
                {"x": target.x, "y": target.y, "z": target.z, "block": int(BlockType.WOOD)})
    )
    opencraft.tick()
    assert opencraft.world.get_block(target) == BlockType.WOOD
    session.enqueue(
        Message(MessageKind.BREAK_BLOCK, session.player_id,
                {"x": target.x, "y": target.y, "z": target.z})
    )
    opencraft.tick()
    assert opencraft.world.get_block(target) == BlockType.AIR
    assert opencraft.stats.blocks_placed == 1
    assert opencraft.stats.blocks_broken == 1


def test_edits_in_unloaded_terrain_are_ignored(opencraft):
    session = opencraft.connect_player()
    session.enqueue(
        Message(MessageKind.PLACE_BLOCK, session.player_id, {"x": 10_000, "y": 70, "z": 10_000})
    )
    opencraft.tick()  # must not raise
    assert opencraft.stats.blocks_placed == 0


def test_chat_and_inventory_messages_update_counters(opencraft):
    session = opencraft.connect_player()
    session.chat("hello")
    session.enqueue(Message(MessageKind.SET_INVENTORY, session.player_id, {"item": "torch"}))
    opencraft.tick()
    assert session.avatar.chat_messages_sent == 1
    assert session.avatar.inventory_item == "torch"


def test_place_construct_writes_blocks_and_registers(opencraft):
    construct = build_wire_line(length=3, origin=BlockPos(2, 66, 2))
    opencraft.place_construct(construct)
    assert opencraft.construct_count == 1
    assert opencraft.world.get_block(BlockPos(2, 66, 2)) == BlockType.POWER_SOURCE
    opencraft.remove_construct(construct.construct_id)
    assert opencraft.construct_count == 0


def test_breaking_a_construct_block_advances_its_timestamp(opencraft):
    construct = build_wire_line(length=3, origin=BlockPos(2, 66, 2))
    opencraft.place_construct(construct)
    session = opencraft.connect_player()
    session.enqueue(
        Message(MessageKind.BREAK_BLOCK, session.player_id, {"x": 3, "y": 66, "z": 2})
    )
    opencraft.tick()
    assert construct.modification_counter == 1


def test_run_for_seconds_executes_expected_tick_count(opencraft, engine):
    records = opencraft.run_for_seconds(2.0)
    assert 35 <= len(records) <= 41
    assert opencraft.stats.ticks_executed == len(records)


def test_tick_metrics_are_recorded(opencraft, engine):
    opencraft.run_ticks(10)
    assert len(engine.metrics.histogram("tick_duration_ms")) == 10
    assert len(engine.metrics.series("tick_duration_over_time")) == 10
    assert opencraft.fraction_of_ticks_over_budget() >= 0.0


def test_player_data_is_persisted_and_loaded(engine):
    server = make_opencraft(engine, GameConfig(world_type="flat"))
    server.connect_player("bob")
    assert server.storage.exists("player_bob")
    server.disconnect_player(1)
    server.connect_player("bob")
    assert len(engine.metrics.histogram("player_load_ms")) == 1


def test_disconnect_persists_player_state_and_records_save_latency(engine):
    server = make_opencraft(engine, GameConfig(world_type="flat"))
    session = server.connect_player("carol")
    session.avatar.blocks_placed = 7
    session.avatar.inventory_item = "torch"
    operation = server.disconnect_player(session.player_id)
    assert operation is not None and operation.key == "player_carol"
    assert len(engine.metrics.histogram("player_save_ms")) == 1
    # Reconnecting restores the persisted avatar state.
    restored = server.connect_player("carol")
    assert restored.avatar.blocks_placed == 7
    assert restored.avatar.inventory_item == "torch"
    assert restored.restore_latency_ms > 0.0


def test_disconnect_with_persist_disabled_skips_the_storage_write(engine):
    server = make_opencraft(engine, GameConfig(world_type="flat"))
    session = server.connect_player("dave")
    assert server.disconnect_player(session.player_id, persist=False) is None
    assert len(engine.metrics.histogram("player_save_ms")) == 0


def test_remove_construct_releases_chunk_pins(opencraft):
    construct = build_wire_line(length=3, origin=BlockPos(2, 66, 2))
    opencraft.place_construct(construct)
    assert opencraft.chunks.protected_chunks
    opencraft.remove_construct(construct.construct_id)
    assert not opencraft.chunks.protected_chunks


def test_overlapping_construct_pins_are_reference_counted(opencraft):
    # Two constructs in the same chunk: removing one must keep the pin.
    first = build_wire_line(length=3, origin=BlockPos(2, 66, 2))
    second = build_wire_line(length=3, origin=BlockPos(2, 70, 6))
    opencraft.place_construct(first)
    opencraft.place_construct(second)
    pinned = set(opencraft.chunks.protected_chunks)
    opencraft.remove_construct(first.construct_id)
    assert opencraft.chunks.protected_chunks == pinned
    opencraft.remove_construct(second.construct_id)
    assert not opencraft.chunks.protected_chunks


def test_connect_at_explicit_position_and_id(engine):
    server = make_opencraft(engine, GameConfig(world_type="flat"))
    session = server.connect_player("eve", position=BlockPos(40, 65, 40), player_id=99)
    assert session.player_id == 99
    assert session.avatar.position == BlockPos(40, 65, 40)


def test_connect_rejects_duplicate_explicit_id_and_auto_ids_skip_taken(engine):
    server = make_opencraft(engine, GameConfig(world_type="flat"))
    server.connect_player("first", player_id=2)
    with pytest.raises(ValueError):
        server.connect_player("second", player_id=2)
    # Auto-assigned ids step over the explicitly taken one.
    auto_a = server.connect_player()  # id 1
    auto_b = server.connect_player()  # would be 2, must skip to 3
    assert auto_a.player_id == 1
    assert auto_b.player_id == 3


def test_restore_avatar_state_rejects_corrupt_snapshots():
    from repro.server.entities import Avatar
    from repro.server.session import restore_avatar_state

    avatar = Avatar(player_id=1, name="x", position=BlockPos(0, 65, 0))
    assert not restore_avatar_state(avatar, b"\xff\xfe not json")
    assert not restore_avatar_state(avatar, b'{"blocks_placed": "abc"}')
    assert not restore_avatar_state(avatar, b'"a bare string"')
    # A corrupt field leaves the avatar entirely untouched.
    assert avatar.blocks_placed == 0 and avatar.position == BlockPos(0, 65, 0)
    assert restore_avatar_state(avatar, b'{"blocks_placed": 4}')
    assert avatar.blocks_placed == 4


def test_minecraft_variant_uses_its_own_cost_model():
    engine_a, engine_b = SimulationEngine(seed=5), SimulationEngine(seed=5)
    opencraft = make_opencraft(engine_a, GameConfig(world_type="flat"))
    minecraft = make_minecraft(engine_b, GameConfig(world_type="flat"))
    assert opencraft.cost_model.name == "opencraft"
    assert minecraft.cost_model.name == "minecraft"
    assert minecraft.cost_model.per_player_ms > opencraft.cost_model.per_player_ms


def test_fraction_over_budget_requires_ticks(opencraft):
    with pytest.raises(ValueError):
        opencraft.fraction_of_ticks_over_budget()
