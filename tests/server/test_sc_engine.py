"""Tests for the baseline (local) construct backend."""

from repro.constructs.library import build_clock, build_wire_line, standard_construct
from repro.constructs.simulator import ConstructSimulator
from repro.server.sc_engine import LocalConstructBackend


def test_constructs_are_simulated_every_other_tick():
    backend = LocalConstructBackend(interval=2)
    construct = build_clock(period=4)
    backend.register_construct(construct)
    reports = [backend.tick(tick) for tick in range(6)]
    # Ticks 0, 2, 4 are construct ticks; 1, 3, 5 are not.
    assert [r.construct_tick for r in reports] == [True, False, True, False, True, False]
    assert construct.step == 3
    assert sum(r.simulated_locally for r in reports) == 3


def test_identical_constructs_stay_in_lockstep_with_reference_simulation():
    backend = LocalConstructBackend(interval=1)
    constructs = [standard_construct(i) for i in range(4)]
    for construct in constructs:
        backend.register_construct(construct)
    reference = standard_construct(99)
    simulator = ConstructSimulator()
    for tick in range(12):
        backend.tick(tick)
        simulator.step(reference)
    for construct in constructs:
        assert construct.step == reference.step
        assert [cell.state for cell in construct.cells] == [
            cell.state for cell in reference.cells
        ]


def test_report_counts_every_construct():
    backend = LocalConstructBackend(interval=1)
    for index in range(5):
        backend.register_construct(standard_construct(index))
    report = backend.tick(0)
    assert report.total_constructs == 5
    assert report.simulated_locally == 5
    assert report.advanced == 5


def test_remove_construct_stops_simulation():
    backend = LocalConstructBackend(interval=1)
    construct = build_clock()
    backend.register_construct(construct)
    backend.remove_construct(construct.construct_id)
    report = backend.tick(0)
    assert report.total_constructs == 0
    assert construct.step == 0


def test_player_modification_rebuilds_groups_and_keeps_divergent_constructs_separate():
    backend = LocalConstructBackend(interval=1)
    first = build_wire_line(length=3, powered=False)
    second = build_wire_line(length=3, powered=False)
    backend.register_construct(first)
    backend.register_construct(second)
    # Toggle the lever of the first construct only: states must diverge.
    backend.on_player_modify(first.construct_id, first.positions[0])
    first.cell_at(first.positions[0]).state = 1
    for tick in range(6):
        backend.tick(tick)
    lamp_first = first.cell_at(first.positions[-1]).state
    lamp_second = second.cell_at(second.positions[-1]).state
    assert lamp_first == 1
    assert lamp_second == 0


def test_no_constructs_is_a_cheap_noop():
    backend = LocalConstructBackend(interval=2)
    report = backend.tick(0)
    assert report.total_constructs == 0
    assert report.simulated_locally == 0
