"""Tests for the tick cost models."""

import numpy as np
import pytest

from repro.server.costmodel import (
    MINECRAFT_COST_MODEL,
    OPENCRAFT_COST_MODEL,
    SERVO_COST_MODEL,
    TickWork,
)


@pytest.fixture
def rng_zero_noise():
    return np.random.default_rng(0)


def mean_duration(model, work, samples=300):
    rng = np.random.default_rng(1)
    return float(np.mean([model.duration_ms(work, rng) for _ in range(samples)]))


def test_empty_tick_costs_roughly_the_base(rng_zero_noise):
    for model in (OPENCRAFT_COST_MODEL, MINECRAFT_COST_MODEL, SERVO_COST_MODEL):
        duration = mean_duration(model, TickWork())
        assert duration == pytest.approx(model.base_ms, rel=0.2)


def test_duration_grows_with_players():
    few = mean_duration(OPENCRAFT_COST_MODEL, TickWork(players=10))
    many = mean_duration(OPENCRAFT_COST_MODEL, TickWork(players=200))
    assert many > few
    assert many - few == pytest.approx(190 * OPENCRAFT_COST_MODEL.per_player_ms, rel=0.15)


def test_minecraft_per_player_cost_higher_than_opencraft():
    assert MINECRAFT_COST_MODEL.per_player_ms > OPENCRAFT_COST_MODEL.per_player_ms


def test_construct_costs_reproduce_figure7_anchor_points():
    """The calibration constants that drive the Figure 7a thresholds."""
    opencraft_100 = OPENCRAFT_COST_MODEL.construct_cost(100)
    opencraft_200 = OPENCRAFT_COST_MODEL.construct_cost(200)
    minecraft_100 = MINECRAFT_COST_MODEL.construct_cost(100)
    minecraft_200 = MINECRAFT_COST_MODEL.construct_cost(200)
    # 100 constructs nearly exhaust Opencraft's 50 ms budget; 200 blow it.
    assert 35.0 < opencraft_100 < 50.0
    assert opencraft_200 > 50.0
    # Minecraft handles 100 constructs with room for ~90 players but not 200.
    assert minecraft_100 < 15.0
    assert minecraft_200 + MINECRAFT_COST_MODEL.base_ms > 47.0


def test_servo_merge_path_is_much_cheaper_than_local_simulation():
    servo_merge = SERVO_COST_MODEL.per_merge_ms * 200
    opencraft_local = OPENCRAFT_COST_MODEL.construct_cost(200)
    assert servo_merge < opencraft_local / 4


def test_local_generation_interference_only_for_baselines():
    assert OPENCRAFT_COST_MODEL.per_local_generation_ms > 0
    assert MINECRAFT_COST_MODEL.per_local_generation_ms > 0
    assert SERVO_COST_MODEL.per_local_generation_ms == 0
    assert SERVO_COST_MODEL.per_backlog_chunk_ms == 0


def test_backlog_interference_is_capped():
    work = TickWork(generation_backlog=100_000)
    duration = mean_duration(OPENCRAFT_COST_MODEL, work)
    capped = OPENCRAFT_COST_MODEL.base_ms + OPENCRAFT_COST_MODEL.backlog_interference_cap_ms
    assert duration == pytest.approx(capped, rel=0.15)


def test_construct_tick_interval_creates_bimodality():
    assert OPENCRAFT_COST_MODEL.construct_tick_interval == 2
    assert MINECRAFT_COST_MODEL.construct_tick_interval == 2
    assert SERVO_COST_MODEL.construct_tick_interval == 1


def test_duration_is_noisy_but_positive():
    rng = np.random.default_rng(3)
    durations = [
        OPENCRAFT_COST_MODEL.duration_ms(TickWork(players=50), rng) for _ in range(500)
    ]
    assert min(durations) > 0
    assert len(set(durations)) > 400  # noise makes samples distinct
