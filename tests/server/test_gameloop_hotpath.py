"""Tests for the game loop's hot-path indices.

Covers the per-construct cell index (O(cells) removal), the precomputed
neighbour->construct edit lookup, the pending-message session index and the
broadcast clock that replaced the per-session ``updates_sent`` bump.
"""

import pytest

from repro.constructs.library import build_piston_door, build_wire_line, standard_construct
from repro.net.message import Message, MessageKind
from repro.server import GameConfig, make_opencraft
from repro.sim import SimulationEngine


@pytest.fixture
def engine():
    return SimulationEngine(seed=7)


@pytest.fixture
def opencraft(engine):
    server = make_opencraft(engine, GameConfig(world_type="flat"))
    server.chunks.preload_area(server.config.spawn_position, 96.0)
    return server


# -- construct indices ---------------------------------------------------------------


def test_remove_construct_clears_only_its_own_cells(opencraft):
    first = standard_construct(0)
    second = standard_construct(1)
    opencraft.place_construct(first)
    opencraft.place_construct(second)
    opencraft.remove_construct(first.construct_id)
    assert opencraft.construct_count == 1
    # The second construct's cells survive and still route edits.
    assert all(
        opencraft._construct_cells.get(cell.position) == second.construct_id
        for cell in second.cells
    )
    assert not any(
        opencraft._construct_cells.get(cell.position) == first.construct_id
        for cell in first.cells
    )


def test_remove_overlapping_construct_keeps_surviving_owners_cells(opencraft):
    from repro.world.coords import BlockPos

    first = build_wire_line(length=4, origin=BlockPos(0, 64, 0), powered=True)
    second = build_wire_line(length=4, origin=BlockPos(3, 64, 0), powered=True)
    opencraft.place_construct(first)
    opencraft.place_construct(second)  # overlaps first at x=3..5
    opencraft.remove_construct(first.construct_id)
    shared = BlockPos(4, 64, 0)
    # The surviving construct still owns the shared cell and receives edits.
    assert opencraft._construct_cells.get(shared) == second.construct_id
    before = second.modification_counter
    session = opencraft.connect_player()
    session.enqueue(
        Message(
            MessageKind.TOGGLE_CONSTRUCT,
            session.player_id,
            {"x": shared.x, "y": shared.y, "z": shared.z},
        )
    )
    opencraft.tick()
    assert second.modification_counter == before + 1


def test_edit_on_construct_cell_notifies_backend(opencraft):
    door = build_piston_door()
    opencraft.place_construct(door)
    lever = door.positions[0]
    before = door.modification_counter
    session = opencraft.connect_player()
    session.enqueue(
        Message(
            MessageKind.TOGGLE_CONSTRUCT,
            session.player_id,
            {"x": lever.x, "y": lever.y, "z": lever.z},
        )
    )
    opencraft.tick()
    assert door.modification_counter == before + 1


def test_edit_adjacent_to_construct_notifies_backend(opencraft):
    construct = build_wire_line(length=4, powered=True)
    opencraft.place_construct(construct)
    adjacent = construct.positions[0].offset(dy=1)
    before = construct.modification_counter
    session = opencraft.connect_player()
    session.enqueue(
        Message(
            MessageKind.PLACE_BLOCK,
            session.player_id,
            {"x": adjacent.x, "y": adjacent.y, "z": adjacent.z},
        )
    )
    opencraft.tick()
    assert construct.modification_counter == before + 1


def test_edit_far_from_constructs_is_ignored(opencraft):
    construct = build_wire_line(length=4, powered=True)
    opencraft.place_construct(construct)
    before = construct.modification_counter
    session = opencraft.connect_player()
    session.enqueue(
        Message(
            MessageKind.PLACE_BLOCK, session.player_id, {"x": 500, "y": 64, "z": 500}
        )
    )
    opencraft.tick()
    assert construct.modification_counter == before


def test_edit_lookup_is_rebuilt_after_removal(opencraft):
    construct = build_wire_line(length=4, powered=True)
    opencraft.place_construct(construct)
    opencraft.tick()  # force a lookup build via the tick path (no edits: lazy)
    target = construct.positions[0]
    opencraft.remove_construct(construct.construct_id)
    before = construct.modification_counter
    session = opencraft.connect_player()
    session.enqueue(
        Message(
            MessageKind.PLACE_BLOCK,
            session.player_id,
            {"x": target.x, "y": target.y, "z": target.z},
        )
    )
    opencraft.tick()
    # The construct is gone; the stale lookup must not resurrect it.
    assert construct.modification_counter == before


# -- pending-message index -----------------------------------------------------------


def test_only_sessions_with_messages_are_drained(opencraft):
    active = opencraft.connect_player("active")
    opencraft.connect_player("idle")
    active.move(12, 65, 12)
    record = opencraft.tick()
    assert opencraft.stats.messages_processed == 1
    assert active.avatar.position.x == 12
    assert record.players == 2
    # The index is empty again after the tick.
    assert not opencraft._pending_messages


def test_messages_enqueued_after_disconnect_entry_is_dropped(opencraft):
    session = opencraft.connect_player("ghost")
    session.move(5, 65, 5)
    opencraft.disconnect_player(session.player_id)
    # The queued message is dropped with the session; the tick must not crash.
    opencraft.tick()
    assert opencraft.stats.messages_processed == 0
    assert not opencraft._pending_messages


def test_messages_processed_across_multiple_ticks(opencraft):
    session = opencraft.connect_player()
    for tick in range(5):
        session.move(tick + 1, 65, 0)
        opencraft.tick()
    assert opencraft.stats.messages_processed == 5
    assert session.avatar.position.x == 5


# -- broadcast clock -----------------------------------------------------------------


def test_updates_sent_counts_ticks_while_connected(opencraft):
    early = opencraft.connect_player("early")
    opencraft.tick()
    opencraft.tick()
    late = opencraft.connect_player("late")
    opencraft.tick()
    assert early.updates_sent == 3
    assert late.updates_sent == 1


def test_updates_sent_freezes_at_disconnect(opencraft):
    session = opencraft.connect_player()
    opencraft.tick()
    opencraft.tick()
    opencraft.disconnect_player(session.player_id)
    frozen = session.updates_sent
    assert frozen == 2
    opencraft.tick()
    assert session.updates_sent == frozen


def test_updates_sent_setter_keeps_counting_from_new_value(opencraft):
    session = opencraft.connect_player()
    opencraft.tick()
    session.updates_sent = 10
    assert session.updates_sent == 10
    opencraft.tick()
    assert session.updates_sent == 11
