"""Tests for chunk management: loading, generation, streaming, eviction."""

import pytest

from repro.server.chunkmanager import ChunkManager, LocalTerrainProvider
from repro.server.entities import Avatar
from repro.sim import SimulationEngine
from repro.storage.local import LocalDiskStorage
from repro.world.coords import BlockPos, ChunkPos
from repro.world.serialization import chunk_to_bytes
from repro.world.terrain import FlatTerrainGenerator
from repro.world.world import VoxelWorld


def make_manager(engine, storage=None, view_distance=48.0, workers=2):
    generator = FlatTerrainGenerator(seed=1)
    world = VoxelWorld()
    provider = LocalTerrainProvider(engine, generator, workers=workers, work_ms=100.0)
    manager = ChunkManager(
        engine=engine,
        world=world,
        generator=generator,
        provider=provider,
        storage=storage,
        view_distance_blocks=view_distance,
        max_integrations_per_tick=4,
        eviction_interval_ticks=5,
    )
    return manager, world, provider


def avatar_at(x, z, player_id=1):
    return Avatar(player_id=player_id, name=f"p{player_id}", position=BlockPos(x, 65, z))


def test_preload_area_loads_chunks_synchronously(engine):
    manager, world, _ = make_manager(engine)
    loaded = manager.preload_area(BlockPos(0, 65, 0), 32.0)
    assert loaded > 0
    assert world.loaded_chunk_count == loaded
    # preloading again does nothing
    assert manager.preload_area(BlockPos(0, 65, 0), 32.0) == 0


def test_missing_chunks_are_requested_and_eventually_integrated(engine):
    manager, world, provider = make_manager(engine)
    avatar = avatar_at(0, 0)
    report = manager.update([avatar])
    assert report.chunks_requested > 0
    assert manager.pending_chunks > 0
    assert world.loaded_chunk_count == 0
    # Let the provider finish and integrate over a few ticks.
    total_integrated = 0
    for _ in range(40):
        engine.advance_by(100.0)
        total_integrated += manager.update([avatar]).chunks_integrated
    assert total_integrated > 0
    assert world.loaded_chunk_count > 0
    assert manager.pending_chunks == 0


def test_integrations_are_bounded_per_tick(engine):
    manager, world, _ = make_manager(engine)
    avatar = avatar_at(0, 0)
    manager.update([avatar])
    engine.advance_by(60_000.0)  # let every generation finish
    report = manager.update([avatar])
    assert report.chunks_integrated <= manager.max_integrations_per_tick


def test_chunks_load_from_storage_when_persisted(engine):
    storage = LocalDiskStorage(rng=engine.rng("disk"))
    manager, world, provider = make_manager(engine, storage=storage)
    generator = FlatTerrainGenerator(seed=1)
    # Persist the chunk the avatar stands on before it is ever requested.
    chunk = generator.generate_chunk(ChunkPos(0, 0))
    storage.write(ChunkPos(0, 0).key(), chunk_to_bytes(chunk))
    manager.update([avatar_at(0, 0)])
    engine.advance_by(1_000.0)
    manager.update([avatar_at(0, 0)])
    assert engine.metrics.counter("chunks_loaded_from_storage") >= 1


def test_terrain_retrieval_latency_is_recorded(engine):
    manager, _, _ = make_manager(engine)
    manager.update([avatar_at(0, 0)])
    engine.advance_by(30_000.0)
    manager.update([avatar_at(0, 0)])
    histogram = engine.metrics.histogram("terrain_retrieval_ms")
    assert len(histogram) > 0
    assert min(histogram.samples) > 0


def test_view_range_reports_distance_to_missing_terrain(engine):
    manager, _, _ = make_manager(engine, view_distance=64.0)
    report = manager.update([avatar_at(0, 0)])
    # Nothing is loaded yet: the closest missing chunk is the one under the avatar.
    assert report.min_view_range_blocks < 16.0
    manager.preload_area(BlockPos(0, 65, 0), 96.0)
    report = manager.update([avatar_at(0, 0)])
    assert report.min_view_range_blocks == 64.0


def test_streaming_counts_only_new_chunks_for_moving_players(engine):
    manager, _, _ = make_manager(engine, view_distance=48.0)
    manager.preload_area(BlockPos(0, 65, 0), 300.0)
    avatar = avatar_at(0, 0)
    first = manager.update([avatar])
    # The initial view download is not charged to the game loop.
    assert first.chunks_streamed == 0
    # Crossing into a new chunk streams the newly visible column of chunks.
    avatar.position = BlockPos(16, 65, 0)
    streamed = 0
    for _ in range(10):
        streamed += manager.update([avatar]).chunks_streamed
    assert streamed > 0
    # Moving back over already-sent terrain streams nothing new.
    avatar.position = BlockPos(0, 65, 0)
    manager.update([avatar])
    again = sum(manager.update([avatar]).chunks_streamed for _ in range(5))
    assert again == 0


def test_eviction_removes_far_chunks_and_persists_dirty_ones(engine):
    storage = LocalDiskStorage(rng=engine.rng("disk"))
    manager, world, _ = make_manager(engine, storage=storage, view_distance=32.0)
    manager.preload_area(BlockPos(0, 65, 0), 48.0)
    # Dirty one chunk so eviction must persist it.
    world.set_block(BlockPos(0, 64, 0), world.get_block(BlockPos(0, 64, 0)))
    world.get_chunk(ChunkPos(0, 0)).dirty = True
    avatar = avatar_at(2000, 2000)
    evicted_total = 0
    for _ in range(manager.eviction_interval_ticks + 1):
        evicted_total += manager.update([avatar]).chunks_evicted
    assert evicted_total > 0
    assert storage.exists(ChunkPos(0, 0).key())
    assert not world.is_loaded(ChunkPos(0, 0))


def test_protected_chunks_survive_eviction(engine):
    manager, world, _ = make_manager(engine, view_distance=32.0)
    manager.preload_area(BlockPos(0, 65, 0), 16.0)
    manager.protect([ChunkPos(0, 0)])
    avatar = avatar_at(5000, 5000)
    for _ in range(manager.eviction_interval_ticks + 1):
        manager.update([avatar])
    assert world.is_loaded(ChunkPos(0, 0))


def test_forget_player_releases_view_references(engine):
    manager, _, _ = make_manager(engine)
    manager.preload_area(BlockPos(0, 65, 0), 200.0)
    manager.update([avatar_at(0, 0, player_id=7)])
    assert manager._chunk_refcounts
    manager.forget_player(7)
    assert not manager._chunk_refcounts


def test_persist_dirty_writes_every_dirty_chunk(engine):
    storage = LocalDiskStorage(rng=engine.rng("disk"))
    manager, world, _ = make_manager(engine, storage=storage)
    manager.preload_area(BlockPos(0, 65, 0), 32.0)
    for chunk in world:
        chunk.dirty = True
    written = manager.persist_dirty()
    assert written == world.loaded_chunk_count
    assert all(not chunk.dirty for chunk in world)
    # Without storage the call is a no-op.
    manager_no_storage, world2, _ = make_manager(SimulationEngine(seed=2))
    assert manager_no_storage.persist_dirty() == 0


def test_local_provider_throughput_is_limited_by_workers(engine):
    generator = FlatTerrainGenerator(seed=0)
    provider = LocalTerrainProvider(engine, generator, workers=1, work_ms=200.0)
    completions = []
    for index in range(6):
        provider.request(ChunkPos(index, 0), lambda chunk, result: completions.append(engine.now_ms))
    assert provider.pending_count() == 6
    engine.advance_by(650.0)
    # One worker at 200 ms per chunk finishes roughly three chunks in 650 ms.
    assert 2 <= len(completions) <= 4
    engine.advance_by(10_000.0)
    assert len(completions) == 6
    assert provider.pending_count() == 0


def test_local_provider_requires_a_worker(engine):
    with pytest.raises(ValueError):
        LocalTerrainProvider(engine, FlatTerrainGenerator(seed=0), workers=0)


def test_protect_and_unprotect_are_reference_counted(engine):
    manager, _, _ = make_manager(engine)
    pin = ChunkPos(1, 1)
    manager.protect([pin])
    manager.protect([pin])
    assert pin in manager.protected_chunks
    manager.unprotect([pin])
    assert pin in manager.protected_chunks
    manager.unprotect([pin])
    assert pin not in manager.protected_chunks
    # Unprotecting an unknown chunk is a harmless no-op.
    manager.unprotect([ChunkPos(9, 9)])


def test_protected_chunks_survive_eviction(engine):
    manager, world, _ = make_manager(engine)
    manager.preload_area(BlockPos(0, 65, 0), 64.0)
    pin = ChunkPos(0, 0)
    manager.protect([pin])
    # Move the player far away and run enough ticks to trigger eviction.
    far = avatar_at(2000, 2000)
    manager.preload_area(far.position, 48.0)
    for _ in range(6):
        manager.update([far])
    assert world.is_loaded(pin)
    manager.unprotect([pin])
    for _ in range(6):
        manager.update([far])
    assert not world.is_loaded(pin)


class _StripRegion:
    """Test region: only chunks with non-negative cx are owned."""

    def contains(self, position):
        return position.cx >= 0


def test_ownership_region_filters_loading_and_preload(engine):
    generator = FlatTerrainGenerator(seed=1)
    world = VoxelWorld()
    provider = LocalTerrainProvider(engine, generator, workers=2, work_ms=50.0)
    manager = ChunkManager(
        engine=engine,
        world=world,
        generator=generator,
        provider=provider,
        view_distance_blocks=48.0,
        region=_StripRegion(),
    )
    manager.preload_area(BlockPos(0, 65, 0), 64.0)
    assert all(position.cx >= 0 for position in world.loaded_chunk_positions)
    # An avatar straddling the region edge only requests owned chunks.
    manager.update([avatar_at(0, 0)])
    for _ in range(50):
        engine.advance_by(60.0)
        manager.update([avatar_at(0, 0)])
    assert all(position.cx >= 0 for position in world.loaded_chunk_positions)
    assert all(position.cx >= 0 for position in manager._chunk_refcounts)


# -- determinism regression: view-crossing order (DET003) ------------------------------


def test_view_crossing_queues_and_requests_chunks_in_sorted_order(engine):
    """Regression for the set-iteration fix in ``_refresh_player_view``.

    Newly visible chunks used to be queued in set-iteration order; the
    stream order to a client is an ordered, observable sink, so it must be
    the sorted chunk order regardless of how the required sets hash.
    """
    manager, _, _ = make_manager(engine, view_distance=64.0)
    avatar = avatar_at(0, 0)
    manager.update([avatar])
    assert manager._player_send_queue[avatar.player_id] == []

    # A diagonal jump across several chunk boundaries at once exposes the
    # iteration order of a large `required - old_required` set difference.
    avatar.position = BlockPos(40, 65, 24)
    manager.update([avatar])
    queue = list(manager._player_send_queue[avatar.player_id])
    assert queue, "a boundary crossing must queue newly visible chunks"
    assert queue == sorted(queue)
