"""Tests for the speculative execution unit (Servo's construct backend)."""

import pytest

from repro.constructs.library import build_clock, build_counter_farm, standard_construct
from repro.constructs.simulator import ConstructSimulator
from repro.core import ServoConfig
from repro.core.offload import SC_SIMULATION_FUNCTION, make_simulation_handler
from repro.core.speculative import SpeculativeConstructBackend
from repro.faas import AWS_LAMBDA, FaasPlatform, FunctionDefinition
from repro.sim import SimulationEngine


def make_backend(engine, config=None):
    platform = FaasPlatform(engine, provider=AWS_LAMBDA)
    platform.register(
        FunctionDefinition(
            name=SC_SIMULATION_FUNCTION, handler=make_simulation_handler(), memory_mb=1769
        )
    )
    backend = SpeculativeConstructBackend(engine, platform, config or ServoConfig())
    return backend, platform


def run_ticks(engine, backend, ticks, tick_ms=50.0):
    reports = []
    for tick in range(ticks):
        reports.append(backend.tick(tick))
        engine.advance_by(tick_ms)
    return reports


def test_registration_issues_the_first_invocation(engine):
    backend, platform = make_backend(engine)
    backend.register_construct(build_counter_farm(hoppers=2))
    assert platform.billing.invocation_count == 1
    assert engine.metrics.counter("offload_invocations") == 1


def test_constructs_advance_exactly_one_step_per_tick(engine):
    backend, _ = make_backend(engine)
    construct = build_counter_farm(hoppers=2)
    backend.register_construct(construct)
    run_ticks(engine, backend, 40)
    assert construct.step == 40


def test_fallback_until_reply_then_merge(engine):
    backend, platform = make_backend(engine)
    construct = build_counter_farm(hoppers=2)
    backend.register_construct(construct)
    # 150 ticks (7.5 s) comfortably covers the worst-case cold start (~5 s).
    reports = run_ticks(engine, backend, 150)
    merged = sum(report.merged_speculative for report in reports)
    fallback = sum(report.simulated_locally for report in reports)
    assert fallback > 0, "cold-start latency must be hidden by local simulation"
    assert merged > 0, "speculative states must eventually be applied"
    assert merged + fallback == 150


def test_speculative_states_match_pure_local_simulation(engine):
    """The observable construct state is identical with and without offloading."""
    backend, _ = make_backend(engine)
    construct = build_counter_farm(hoppers=3)
    reference = build_counter_farm(hoppers=3)
    reference.copy_state_from(construct)
    backend.register_construct(construct)
    simulator = ConstructSimulator()
    for tick in range(80):
        backend.tick(tick)
        simulator.step(reference)
        engine.advance_by(50.0)
        assert [cell.state for cell in construct.cells] == [
            cell.state for cell in reference.cells
        ]


def test_looping_construct_needs_only_one_invocation(engine):
    backend, platform = make_backend(engine)
    construct = build_clock(period=4, lamps=1)
    backend.register_construct(construct)
    run_ticks(engine, backend, 300)
    assert platform.billing.invocation_count == 1
    assert engine.metrics.counter("loops_detected") == 1


def test_aperiodic_construct_reinvokes_with_tick_lead(engine):
    config = ServoConfig(steps_per_invocation=50, tick_lead=10)
    backend, platform = make_backend(engine, config)
    construct = build_counter_farm(hoppers=2)
    backend.register_construct(construct)
    run_ticks(engine, backend, 200)
    # 200 ticks / 50 steps per invocation -> roughly 4-6 invocations.
    assert 3 <= platform.billing.invocation_count <= 7


def test_player_modification_invalidates_speculation(engine):
    backend, platform = make_backend(engine)
    construct = build_counter_farm(hoppers=2)
    backend.register_construct(construct)
    run_ticks(engine, backend, 150)
    record = backend.record_for(construct.construct_id)
    assert record.available, "speculative coverage should exist before the edit"
    backend.on_player_modify(construct.construct_id, construct.positions[0])
    assert not record.available
    assert engine.metrics.counter("speculation_invalidated") == 1
    # The construct still advances every tick after the edit (fallback path).
    step_before = construct.step
    run_ticks(engine, backend, 10)
    assert construct.step == step_before + 10


def test_stale_replies_are_discarded(engine):
    config = ServoConfig(steps_per_invocation=30, tick_lead=5)
    backend, platform = make_backend(engine, config)
    construct = build_counter_farm(hoppers=2)
    backend.register_construct(construct)
    # Modify the construct while the first invocation is still in flight.
    backend.on_player_modify(construct.construct_id, construct.positions[0])
    run_ticks(engine, backend, 120)
    assert engine.metrics.counter("speculation_discarded") >= 1
    assert construct.step == 120


def test_efficiency_samples_are_recorded_between_zero_and_one(engine):
    backend, _ = make_backend(engine)
    backend.register_construct(build_counter_farm(hoppers=2))
    run_ticks(engine, backend, 120)
    samples = backend.efficiency_samples()
    assert samples, "each consumed invocation must produce an efficiency sample"
    assert all(0.0 <= value <= 1.0 for value in samples)


def test_sufficient_tick_lead_reaches_full_efficiency(engine):
    config = ServoConfig(steps_per_invocation=50, tick_lead=30)
    backend, _ = make_backend(engine, config)
    construct = build_counter_farm(hoppers=2)
    backend.register_construct(construct)
    run_ticks(engine, backend, 400)
    samples = backend.efficiency_samples()
    # After the first (cold) invocation, replies arrive well before they are
    # needed, so later invocations reach 100 % efficiency.
    assert samples[-1] == pytest.approx(1.0)
    assert sum(1 for value in samples if value >= 0.999) >= len(samples) - 2


def test_remove_construct_stops_offloading(engine):
    backend, platform = make_backend(engine)
    construct = build_counter_farm(hoppers=2)
    backend.register_construct(construct)
    backend.remove_construct(construct.construct_id)
    run_ticks(engine, backend, 50)
    assert platform.billing.invocation_count == 1  # only the registration invocation
    with pytest.raises(KeyError):
        backend.record_for(construct.construct_id)


def test_multiple_identical_constructs_stay_in_lockstep(engine):
    backend, _ = make_backend(engine)
    constructs = [standard_construct(index) for index in range(5)]
    for construct in constructs:
        backend.register_construct(construct)
    run_ticks(engine, backend, 60)
    reference_states = [cell.state for cell in constructs[0].cells]
    for construct in constructs[1:]:
        assert [cell.state for cell in construct.cells] == reference_states
        assert construct.step == constructs[0].step


def test_fixed_point_construct_goes_quiescent_without_changing_results(engine):
    """A settled circuit is parked by the quiescence set, bit-identically.

    A powered wire line reaches a fixed point; the offload function reports
    it as a length-1 loop, after which the backend stops re-applying the
    state and only advances the step counter — while the tick report keeps
    charging the merge to the simulated server.
    """
    from repro.constructs.library import build_wire_line
    from repro.constructs.simulator import ReferenceConstructSimulator, clone_construct

    backend, _ = make_backend(engine)
    construct = build_wire_line(length=4, powered=True)
    reference = clone_construct(construct)
    backend.register_construct(construct)
    reports = run_ticks(engine, backend, 200)

    skipped = sum(report.skipped_quiescent for report in reports)
    assert skipped > 0, "a settled construct must eventually be skipped"
    # Virtual-time accounting is unchanged: every tick still reports exactly
    # one advance through the merge or fallback path.
    assert all(
        report.merged_speculative + report.simulated_locally == 1
        for report in reports
    )
    reference_simulator = ReferenceConstructSimulator()
    for _ in range(200):
        reference_simulator.step(reference)
    assert construct.snapshot() == reference.snapshot()


def test_player_edit_wakes_a_quiescent_construct(engine):
    from repro.constructs.library import build_wire_line

    backend, _ = make_backend(engine)
    construct = build_wire_line(length=4, powered=False)  # lever off: settles
    backend.register_construct(construct)
    reports = run_ticks(engine, backend, 200)
    assert reports[-1].skipped_quiescent == 1

    lever_position = construct.positions[0]
    backend.on_player_modify(construct.construct_id, lever_position)
    construct.cell_at(lever_position).state = 1
    woke = backend.tick(200)
    engine.advance_by(50.0)
    assert woke.skipped_quiescent == 0
    assert woke.simulated_locally == 1  # back on the fallback path
    # The signal propagates again: the lamp at the end eventually lights.
    run_ticks(engine, backend, 20)
    assert construct.cells[-1].state == 1
