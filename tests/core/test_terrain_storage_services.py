"""Tests for Servo's serverless terrain provider and cached remote storage."""

import numpy as np
import pytest

from repro.core.storage_service import ServoStorageService
from repro.core.terrain_service import (
    TERRAIN_GENERATION_FUNCTION,
    ServerlessTerrainProvider,
    TerrainRequest,
    make_terrain_handler,
    terrain_generation_work_ms,
)
from repro.faas import AWS_LAMBDA, FaasPlatform, FunctionDefinition
from repro.server.entities import Avatar
from repro.storage.blob import AZURE_BLOB_STANDARD, BlobStorage
from repro.world.coords import BlockPos, ChunkPos, block_to_chunk
from repro.world.terrain import DefaultTerrainGenerator, FlatTerrainGenerator, make_terrain_generator


def make_platform(engine, memory_mb=2048):
    platform = FaasPlatform(engine, provider=AWS_LAMBDA)
    platform.register(
        FunctionDefinition(
            name=TERRAIN_GENERATION_FUNCTION,
            handler=make_terrain_handler(),
            memory_mb=memory_mb,
        )
    )
    return platform


def test_terrain_handler_generates_the_requested_chunk(engine):
    handler = make_terrain_handler()
    output = handler(TerrainRequest(world_type="default", seed=11, cx=3, cz=-2))
    chunk = output.value
    assert chunk.position == ChunkPos(3, -2)
    assert output.work_ms_single_vcpu == pytest.approx(
        terrain_generation_work_ms(DefaultTerrainGenerator(11))
    )
    with pytest.raises(TypeError):
        handler({"cx": 0})


def test_terrain_handler_matches_local_generation_exactly():
    handler = make_terrain_handler()
    remote = handler(TerrainRequest(world_type="default", seed=5, cx=1, cz=1)).value
    local = make_terrain_generator("default", seed=5).generate_chunk(ChunkPos(1, 1))
    assert np.array_equal(remote.blocks, local.blocks)


def test_flat_chunks_are_cheaper_than_default_chunks():
    assert terrain_generation_work_ms(FlatTerrainGenerator(0)) < terrain_generation_work_ms(
        DefaultTerrainGenerator(0)
    )


def test_serverless_provider_delivers_chunks_in_virtual_time(engine):
    platform = make_platform(engine)
    provider = ServerlessTerrainProvider(engine, platform, world_type="flat", seed=3)
    delivered = []
    provider.request(ChunkPos(0, 0), lambda chunk, result: delivered.append((chunk, result)))
    assert provider.pending_count() == 1
    assert delivered == []
    engine.advance_by(60_000.0)
    assert len(delivered) == 1
    chunk, result = delivered[0]
    assert chunk.position == ChunkPos(0, 0)
    assert result.source == "faas-generation"
    assert result.consumed_local_cpu is False
    assert result.latency_ms > 0
    assert provider.pending_count() == 0


def test_serverless_provider_scales_with_concurrent_requests(engine):
    platform = make_platform(engine)
    provider = ServerlessTerrainProvider(engine, platform, world_type="flat", seed=3)
    delivered = []
    for index in range(30):
        provider.request(ChunkPos(index, 0), lambda chunk, result: delivered.append(result))
    engine.advance_by(30_000.0)
    assert len(delivered) == 30
    # Concurrency: the slowest delivery is far sooner than 30 sequential generations.
    assert max(result.latency_ms for result in delivered) < 15_000.0


def make_storage_service(engine, enable_cache=True):
    blob = BlobStorage(rng=engine.rng("blob"), profile=AZURE_BLOB_STANDARD)
    service = ServoStorageService(
        engine=engine,
        remote=blob,
        view_distance_blocks=64.0,
        prefetch_margin_blocks=32.0,
        cache_capacity_objects=512,
        enable_cache=enable_cache,
    )
    return service, blob


def test_storage_service_read_through_and_metrics(engine):
    service, blob = make_storage_service(engine)
    blob.write("key", b"payload")
    operation = service.read("key")
    assert operation.data == b"payload"
    assert len(engine.metrics.histogram("storage_read_ms")) == 1
    assert service.exists("key")
    assert "key" in service.list_keys()
    assert service.size_bytes("key") == 7


def test_storage_service_prefetches_terrain_near_players(engine):
    service, blob = make_storage_service(engine)
    # Persist terrain around the origin.
    for chunk_pos in [ChunkPos(cx, cz) for cx in range(-8, 9) for cz in range(-8, 9)]:
        blob.write(chunk_pos.key(), b"chunk")
    avatar = Avatar(player_id=1, name="p", position=BlockPos(0, 65, 0))
    fetched = service.prefetch_for_avatars([avatar])
    assert fetched > 0
    # The player's own chunk is now a cache hit.
    operation = service.read(block_to_chunk(avatar.position).key())
    assert operation.hit is True
    assert operation.latency_ms < 40.0
    # A second prefetch pass fetches nothing new.
    assert service.prefetch_for_avatars([avatar]) == 0
    assert service.hit_rate > 0.0


def test_storage_service_prefetch_skips_empty_remote(engine):
    service, _ = make_storage_service(engine)
    avatar = Avatar(player_id=1, name="p", position=BlockPos(0, 65, 0))
    assert service.prefetch_for_avatars([avatar]) == 0


def test_storage_service_flush_writes_back_dirty_objects(engine):
    service, blob = make_storage_service(engine)
    service.write("chunk_1_1", b"data")
    assert not blob.exists("chunk_1_1")
    assert service.flush() == 1
    assert blob.exists("chunk_1_1")


def test_storage_service_without_cache_hits_remote_directly(engine):
    service, blob = make_storage_service(engine, enable_cache=False)
    blob.write("key", b"x")
    operation = service.read("key")
    assert operation.hit is True  # raw blob reads are not cache operations
    assert service.prefetch_for_avatars([]) == 0
    assert service.flush() == 0
