"""End-to-end tests of the assembled Servo server."""

import pytest

from repro.core import ServoConfig, build_servo_server
from repro.core.offload import SC_SIMULATION_FUNCTION
from repro.core.terrain_service import TERRAIN_GENERATION_FUNCTION
from repro.server import GameConfig, make_opencraft
from repro.sim import SimulationEngine
from repro.workload import behaviour_a
from repro.workload.constructs import place_standard_constructs


def test_servo_config_validation():
    with pytest.raises(ValueError):
        ServoConfig(provider="gcp")
    with pytest.raises(ValueError):
        ServoConfig(steps_per_invocation=0)
    with pytest.raises(ValueError):
        ServoConfig(tick_lead=-1)
    with pytest.raises(ValueError):
        ServoConfig(prefetch_interval_ticks=0)


def test_build_servo_server_deploys_both_functions(engine):
    server = build_servo_server(engine, GameConfig(world_type="flat"))
    runtime = server.servo
    assert runtime.platform.is_registered(SC_SIMULATION_FUNCTION)
    assert runtime.platform.is_registered(TERRAIN_GENERATION_FUNCTION)
    assert server.cost_model.name == "servo"
    assert server.name == "servo"


def test_servo_uses_azure_when_configured(engine):
    server = build_servo_server(
        engine, GameConfig(world_type="flat"), ServoConfig(provider="azure")
    )
    assert server.servo.platform.provider.name == "azure-functions"
    assert "azure" in server.servo.storage.remote.profile.name


def test_servo_runs_a_construct_workload_and_offloads(engine):
    server = build_servo_server(engine, GameConfig(world_type="flat"))
    scenario = behaviour_a(players=5, constructs=10, duration_s=5.0)
    scenario.warmup_s = 1.0
    result = scenario.run(server)
    runtime = server.servo
    assert len(result.tick_durations_ms) > 80
    assert runtime.platform.billing.invocation_count >= 10
    assert engine.metrics.counter("offload_invocations") >= 10
    # Construct state really advanced (one step per tick).
    constructs = runtime.construct_backend.constructs()
    assert constructs[0].step == pytest.approx(len(server.tick_records), abs=1)


def test_servo_matches_opencraft_construct_states_functionally():
    """Offloading must not change what players observe."""
    seed = 77
    engine_servo = SimulationEngine(seed=seed)
    engine_base = SimulationEngine(seed=seed)
    servo = build_servo_server(engine_servo, GameConfig(world_type="flat"))
    opencraft = make_opencraft(engine_base, GameConfig(world_type="flat"))
    servo.chunks.preload_area(servo.config.spawn_position, 64.0)
    opencraft.chunks.preload_area(opencraft.config.spawn_position, 64.0)
    place_standard_constructs(servo, 3)
    place_standard_constructs(opencraft, 3)

    # Opencraft simulates constructs every other tick, Servo every tick, so
    # compare after the same number of construct steps: run Opencraft twice as
    # many ticks.
    servo.run_ticks(40)
    opencraft.run_ticks(80)
    servo_states = [
        [cell.state for cell in construct.cells]
        for construct in servo.servo.construct_backend.constructs()
    ]
    opencraft_states = [
        [cell.state for cell in construct.cells]
        for construct in opencraft.constructs.constructs()
    ]
    assert servo_states == opencraft_states


def test_servo_terrain_generation_is_fully_serverless(engine):
    server = build_servo_server(engine, GameConfig(world_type="default"))
    server.chunks.preload_area(server.config.spawn_position, 64.0)
    session = server.connect_player()
    session.move(400, 65, 400)  # teleport far away: new terrain must be generated
    server.run_for_seconds(10.0)
    terrain_invocations = server.servo.platform.invocations_for(TERRAIN_GENERATION_FUNCTION)
    assert terrain_invocations, "moving into new terrain must invoke the generation function"
    assert engine.metrics.counter("chunks_generated") > 0


def test_servo_persists_and_reloads_terrain_through_blob_storage(engine):
    server = build_servo_server(engine, GameConfig(world_type="flat"))
    server.chunks.preload_area(server.config.spawn_position, 32.0)
    # Dirty a chunk, persist it, then check it exists in the (cached) blob store.
    from repro.world.block import BlockType
    from repro.world.coords import BlockPos

    server.world.set_block(BlockPos(1, 70, 1), BlockType.STONE)
    server.chunks.persist_dirty()
    server.servo.storage.flush()
    assert any(key.startswith("chunk_") for key in server.servo.storage.remote.list_keys())


def test_servo_cost_accounting_is_exposed(engine):
    server = build_servo_server(engine, GameConfig(world_type="flat"))
    scenario = behaviour_a(players=2, constructs=5, duration_s=3.0)
    scenario.warmup_s = 0.5
    scenario.run(server)
    runtime = server.servo
    window_ms = engine.now_ms
    assert runtime.billing.total_cost_usd() > 0
    assert runtime.cost_per_hour_usd(window_ms) > 0


def test_servo_prefetch_hook_runs_only_on_configured_interval(engine):
    config = ServoConfig(prefetch_interval_ticks=4)
    server = build_servo_server(engine, GameConfig(world_type="flat"), config)
    server.chunks.preload_area(server.config.spawn_position, 32.0)
    server.connect_player()
    server.run_ticks(8)  # must not raise; prefetcher sees an empty remote store
    assert engine.metrics.counter("prefetched_objects") == 0
