"""Tests for offload requests/replies and the remote simulation handler."""

import pytest

from repro.constructs.library import build_clock, build_counter_farm, build_sized_construct
from repro.constructs.simulator import ConstructSimulator, clone_construct
from repro.core.offload import (
    OffloadReply,
    OffloadRequest,
    make_simulation_handler,
    simulation_work_ms,
)
from repro.world.coords import BlockPos


def test_request_captures_construct_state_and_timestamp():
    construct = build_clock(period=4)
    construct.player_modify(construct.positions[0])
    request = OffloadRequest.from_construct(construct, steps=20)
    assert request.construct_id == construct.construct_id
    assert request.steps == 20
    assert request.start_step == construct.step
    assert request.timestamp == construct.modification_counter == 1
    assert len(request.structure) == construct.block_count
    assert len(request.states) == construct.block_count


def test_request_rebuild_matches_original():
    construct = build_clock(period=6)
    ConstructSimulator().run(construct, 5)
    request = OffloadRequest.from_construct(construct, steps=10)
    rebuilt = request.rebuild_construct()
    assert rebuilt.block_count == construct.block_count
    assert rebuilt.step == construct.step
    assert rebuilt.snapshot().same_values(construct.snapshot())


def test_request_anchor_and_relative_states_are_translation_invariant():
    at_origin = build_clock(period=4, origin=BlockPos(0, 64, 0))
    translated = build_clock(period=4, origin=BlockPos(320, 70, -48))
    request_a = OffloadRequest.from_construct(at_origin, steps=10)
    request_b = OffloadRequest.from_construct(translated, steps=10)
    assert request_a.relative_states() == request_b.relative_states()
    assert request_a.cache_key() == request_b.cache_key()
    assert request_a.anchor() == (0, 64, 0)
    assert request_b.anchor() == (320, 70, -48)


def test_simulation_work_grows_with_size_and_steps():
    assert simulation_work_ms(484, 100) > simulation_work_ms(252, 100)
    assert simulation_work_ms(252, 200) > simulation_work_ms(252, 100)
    with pytest.raises(ValueError):
        simulation_work_ms(0, 10)
    with pytest.raises(ValueError):
        simulation_work_ms(10, -1)


def test_handler_reply_matches_local_simulation():
    construct = build_counter_farm(hoppers=3)
    handler = make_simulation_handler()
    request = OffloadRequest.from_construct(construct, steps=25, detect_loops=False)
    output = handler(request)
    reply = output.value
    assert isinstance(reply, OffloadReply)
    assert reply.simulated_steps == 25
    assert not reply.loop_detected

    # The reply's states must equal what the server would compute locally.
    local = clone_construct(construct)
    simulator = ConstructSimulator()
    for step in range(1, 26):
        expected = simulator.step(local)
        assert reply.sequence.state_at(step).same_values(expected)


def test_handler_detects_loops_and_stops_early():
    construct = build_clock(period=4, lamps=1)
    handler = make_simulation_handler()
    request = OffloadRequest.from_construct(construct, steps=200, detect_loops=True)
    output = handler(request)
    reply = output.value
    assert reply.loop_detected
    assert reply.simulated_steps < 200
    assert output.work_ms_single_vcpu < simulation_work_ms(construct.block_count, 200)
    # The looping sequence still matches direct simulation far into the future.
    local = clone_construct(construct)
    simulator = ConstructSimulator()
    for step in range(1, 60):
        expected = simulator.step(local)
        assert reply.sequence.state_at(step).same_values(expected)


def test_handler_echoes_timestamp():
    construct = build_clock(period=4)
    construct.player_modify(construct.positions[0])
    construct.player_modify(construct.positions[0])
    handler = make_simulation_handler()
    reply = handler(OffloadRequest.from_construct(construct, steps=5)).value
    assert reply.timestamp == 2


def test_handler_memoises_identical_requests_across_translations():
    handler = make_simulation_handler()
    first = build_sized_construct(60, origin=BlockPos(0, 64, 0))
    second = build_sized_construct(60, origin=BlockPos(512, 64, 512))
    reply_a = handler(OffloadRequest.from_construct(first, steps=30)).value
    reply_b = handler(OffloadRequest.from_construct(second, steps=30)).value
    # Same dynamics, but each reply is expressed in its own world coordinates.
    state_a = reply_a.sequence.state_at(5)
    state_b = reply_b.sequence.state_at(5)
    assert state_a.states != state_b.states
    assert sorted(state_a.states.values()) == sorted(state_b.states.values())


def test_handler_rejects_non_request_payloads():
    handler = make_simulation_handler()
    with pytest.raises(TypeError):
        handler({"not": "a request"})


def test_handler_work_reflects_requested_steps_for_aperiodic_constructs():
    handler = make_simulation_handler()
    construct = build_counter_farm(hoppers=2)
    short = handler(OffloadRequest.from_construct(construct, steps=10, detect_loops=True))
    long = handler(OffloadRequest.from_construct(construct, steps=50, detect_loops=True))
    assert long.work_ms_single_vcpu > short.work_ms_single_vcpu
