"""Tests for loop detection and compressed state sequences."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.constructs.library import build_clock, build_counter_farm
from repro.constructs.simulator import ConstructSimulator
from repro.constructs.state import ConstructState
from repro.core.loop_detection import (
    CompressedStateSequence,
    LoopDetector,
    compress_trace,
)
from repro.world.coords import BlockPos


def make_states(values, start_step=0):
    return [
        ConstructState(step=start_step + index + 1, states={BlockPos(0, 0, 0): value})
        for index, value in enumerate(values)
    ]


def test_compress_trace_without_repeats_keeps_everything():
    states = make_states([1, 2, 3, 4])
    sequence = compress_trace(0, states)
    assert not sequence.is_looping
    assert sequence.explicit_length == 4
    assert sequence.covers(4)
    assert not sequence.covers(5)


def test_compress_trace_detects_a_cycle():
    # Values 2,3,4 repeat: the state at index 4 equals the state at index 1.
    states = make_states([1, 2, 3, 4, 2])
    sequence = compress_trace(0, states)
    assert sequence.is_looping
    assert [s.states[BlockPos(0, 0, 0)] for s in sequence.prefix] == [1]
    assert [s.states[BlockPos(0, 0, 0)] for s in sequence.loop_states] == [2, 3, 4]


def test_looping_sequence_replays_forever():
    states = make_states([1, 2, 3, 4, 2])
    sequence = compress_trace(0, states)
    # step 2 -> 2, step 5 -> 2, step 8 -> 2, step 100 -> ?
    assert sequence.state_at(2).states[BlockPos(0, 0, 0)] == 2
    assert sequence.state_at(5).states[BlockPos(0, 0, 0)] == 2
    values = [sequence.state_at(step).states[BlockPos(0, 0, 0)] for step in range(2, 11)]
    assert values == [2, 3, 4, 2, 3, 4, 2, 3, 4]
    assert sequence.covers(10 ** 6)


def test_state_at_restamps_the_step_counter():
    states = make_states([5, 6, 7])
    sequence = compress_trace(0, states)
    assert sequence.state_at(2).step == 2
    assert sequence.raw_state_at(2).states == sequence.state_at(2).states


def test_state_at_outside_coverage_raises():
    sequence = compress_trace(10, make_states([1, 2], start_step=10))
    with pytest.raises(KeyError):
        sequence.state_at(10)  # before the first produced state
    with pytest.raises(KeyError):
        sequence.state_at(13)  # past the end of a non-looping sequence


def test_loop_detector_observe_reports_repeat_index():
    detector = LoopDetector()
    states = make_states([1, 2, 3, 2])
    assert detector.observe(states[0]) is None
    assert detector.observe(states[1]) is None
    assert detector.observe(states[2]) is None
    assert detector.observe(states[3]) == 1
    assert len(detector.observed_states) == 3


def test_clock_construct_trace_compresses_to_its_period():
    construct = build_clock(period=6, lamps=1)
    simulator = ConstructSimulator()
    trace = simulator.run(construct, 60)
    sequence = compress_trace(0, trace.states)
    assert sequence.is_looping
    assert len(sequence.loop_states) <= 12
    assert sequence.explicit_length < 60


def test_counter_farm_trace_does_not_compress():
    construct = build_counter_farm(hoppers=2)
    simulator = ConstructSimulator()
    trace = simulator.run(construct, 50)
    sequence = compress_trace(0, trace.states)
    assert not sequence.is_looping
    assert sequence.explicit_length == 50


def test_compressed_sequence_matches_direct_simulation():
    """Replaying a compressed loop gives exactly the states direct simulation gives."""
    construct = build_clock(period=4, lamps=2)
    simulator = ConstructSimulator()
    reference = build_clock(period=4, lamps=2)
    # Keep ids distinct but structures identical; simulate reference directly.
    trace = simulator.run(construct, 40)
    sequence = compress_trace(0, trace.states)
    for step in range(1, 41):
        expected = trace.states[step - 1]
        assert sequence.state_at(step).same_values(expected)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=30),
    st.integers(min_value=0, max_value=5),
)
def test_compress_trace_round_trips_any_observed_prefix(values, start_step):
    """Every state the trace contained is reproduced exactly by the compression."""
    states = make_states(values, start_step=start_step)
    sequence = compress_trace(start_step, states)
    for index, state in enumerate(states):
        step = start_step + index + 1
        if index >= sequence.explicit_length or not sequence.covers(step):
            # Beyond the detected loop the arbitrary test list is not a
            # deterministic continuation, so no guarantee applies.
            break
        assert sequence.state_at(step).same_values(state)
