"""Equivalence gates: radius None is the legacy path, bit for bit.

``interest_radius_chunks=None`` (the default) must leave the legacy
observe-everything broadcast untouched — same code path, same RNG draws,
same virtual durations — while interest-enabled runs must agree with legacy
on all simulation state (positions, blocks) and reproduce themselves
bit-identically under the same seed.
"""

from repro.net.message import Message, MessageKind
from repro.server import GameConfig, make_opencraft
from repro.sim import SimulationEngine
from repro.world.block import BlockType
from repro.world.coords import CHUNK_SIZE, BlockPos


def _scripted_run(config: GameConfig, seed: int = 7, ticks: int = 30):
    """A deterministic scripted session: moves and block edits, no bots."""
    engine = SimulationEngine(seed=seed)
    server = make_opencraft(engine, config)
    server.chunks.preload_area(config.spawn_position, 160.0)
    sessions = [server.connect_player(f"bot-{index}") for index in range(8)]
    for tick in range(ticks):
        walker = sessions[tick % len(sessions)]
        position = walker.avatar.position
        walker.move(position.x + 3, position.y, position.z)
        if tick % 5 == 0:
            editor = sessions[0]
            target = BlockPos(4 + tick, 70, 4)
            editor.enqueue(
                Message(
                    MessageKind.PLACE_BLOCK,
                    editor.player_id,
                    {"x": target.x, "y": target.y, "z": target.z, "block": int(BlockType.WOOD)},
                )
            )
        server.tick()
    state = {
        "positions": [session.avatar.position for session in sessions],
        "blocks": [
            int(server.world.get_block(BlockPos(4 + tick, 70, 4)))
            for tick in range(0, ticks, 5)
        ],
        "tick_index": server.tick_index,
    }
    durations = [record.duration_ms for record in server.tick_records]
    return server, state, durations


def test_radius_none_keeps_the_legacy_broadcast_path():
    server, _, _ = _scripted_run(GameConfig(world_type="flat"))
    assert server.interest is None
    assert server.last_interest_flush is None
    # Legacy accounting: one update per player per tick via the broadcast clock.
    session = next(iter(server.sessions.values()))
    assert session.updates_sent == server.tick_index


def test_radius_none_is_bit_identical_across_reruns():
    _, state_a, durations_a = _scripted_run(GameConfig(world_type="flat"))
    _, state_b, durations_b = _scripted_run(GameConfig(world_type="flat"))
    assert state_a == state_b
    assert durations_a == durations_b


def test_interest_mode_agrees_with_legacy_on_simulation_state():
    """Durations differ (different cost model) but world state is identical."""
    _, legacy_state, legacy_durations = _scripted_run(GameConfig(world_type="flat"))
    server, interest_state, interest_durations = _scripted_run(
        GameConfig(world_type="flat", interest_radius_chunks=4)
    )
    assert server.interest is not None
    assert interest_state == legacy_state
    assert interest_durations != legacy_durations  # the cost model did change


def test_interest_mode_is_bit_identical_across_reruns():
    config = GameConfig(world_type="flat", interest_radius_chunks=4)
    server_a, state_a, durations_a = _scripted_run(config)
    server_b, state_b, durations_b = _scripted_run(config)
    assert state_a == state_b
    assert durations_a == durations_b
    flush_a, flush_b = server_a.last_interest_flush, server_b.last_interest_flush
    assert flush_a is not None and flush_b is not None
    assert flush_a == flush_b


def test_interest_updates_sent_counts_actual_flushes():
    """updates_sent derives from flushes, not from a per-tick broadcast clock."""
    config = GameConfig(world_type="flat", interest_radius_chunks=4)
    engine = SimulationEngine(seed=7)
    server = make_opencraft(engine, config)
    server.chunks.preload_area(config.spawn_position, 160.0)
    mover = server.connect_player("mover")
    observer = server.connect_player("observer")  # same chunk as the mover
    # A far-away loner outside everyone's radius sees nothing at all.
    loner = server.connect_player(
        "loner", position=BlockPos(20 * CHUNK_SIZE, 65, 20 * CHUNK_SIZE)
    )
    for _ in range(10):
        position = mover.avatar.position
        mover.move(position.x + 2, position.y, position.z)
        server.tick()
    # The observer shares the mover's chunk: every move is a near entry, so
    # it got exactly one near flush per tick.  The loner subscribes only to
    # quiet chunks and received nothing — unlike the legacy broadcast clock,
    # which would have charged it one update per tick.
    assert observer.updates_sent == server.tick_index
    assert loner.updates_sent == 0
