"""Delta batches apply exactly once through a lossy, duplicating wire."""

import pytest

from repro.interest import InterestMap
from repro.net import BatchReceiver, BatchStream, UpdateBatch
from repro.net.batch import FAR_TIER, NEAR_TIER



def test_update_batch_validation():
    with pytest.raises(ValueError):
        UpdateBatch(player_id=1, tier="medium", entries=1, first_tick=0, flush_tick=0)
    with pytest.raises(ValueError):
        UpdateBatch(player_id=1, tier=NEAR_TIER, entries=-1, first_tick=0, flush_tick=0)
    with pytest.raises(ValueError):
        UpdateBatch(player_id=1, tier=FAR_TIER, entries=1, first_tick=5, flush_tick=3)
    batch = UpdateBatch(player_id=1, tier=FAR_TIER, entries=3, first_tick=2, flush_tick=6)
    assert batch.staleness_ticks == 4


def test_stream_stamps_per_player_monotonic_sequences():
    stream = BatchStream()
    template = UpdateBatch(player_id=1, tier=NEAR_TIER, entries=1, first_tick=0, flush_tick=0)
    other = UpdateBatch(player_id=2, tier=NEAR_TIER, entries=1, first_tick=0, flush_tick=0)
    assert [stream.stamp(template).sequence for _ in range(3)] == [1, 2, 3]
    assert stream.stamp(other).sequence == 1  # sequences are per recipient


def test_receiver_rejects_duplicates_and_misrouted_batches():
    stream = BatchStream()
    receiver = BatchReceiver(player_id=1)
    batch = stream.stamp(
        UpdateBatch(player_id=1, tier=NEAR_TIER, entries=4, first_tick=0, flush_tick=0)
    )
    assert receiver.accept(batch)
    assert not receiver.accept(batch)  # the retransmit is deduplicated
    assert (receiver.accepted, receiver.duplicates_rejected) == (1, 1)
    assert receiver.entries_applied == 4
    with pytest.raises(ValueError):
        receiver.accept(
            stream.stamp(
                UpdateBatch(player_id=2, tier=NEAR_TIER, entries=1, first_tick=0, flush_tick=0)
            )
        )
    with pytest.raises(ValueError):  # unstamped batches never reach a client
        receiver.accept(
            UpdateBatch(player_id=1, tier=NEAR_TIER, entries=1, first_tick=0, flush_tick=0)
        )


def test_flushes_through_a_duplicating_wire_apply_exactly_once(make_session):
    """End to end: InterestMap -> batch sink -> duplicating wire -> receiver."""
    interest = InterestMap(radius_chunks=2, near_radius_chunks=1)
    session = make_session(1)
    interest.subscribe(session)
    receivers = {1: BatchReceiver(player_id=1)}
    wire: list[UpdateBatch] = []
    interest.batch_sink = wire.append
    for tick in range(6):
        interest.note_dirty((0, 0), entries=2)
        interest.flush(tick_index=tick)
    assert len(wire) == 6
    # The wire duplicates every batch (a retransmitting network).
    for batch in list(wire):
        wire.append(batch)
    for batch in wire:
        receivers[batch.player_id].accept(batch)
    receiver = receivers[1]
    assert receiver.accepted == 6
    assert receiver.duplicates_rejected == 6
    # updates_sent counted each flush once, matching the accepted batches.
    assert session.updates == receiver.accepted
