"""Dyconit budgets: far-tier staleness and drift bounds always hold."""

from repro.interest import InterestMap
from repro.server import GameConfig, make_opencraft
from repro.sim import SimulationEngine
from repro.sim.metrics import CONSISTENCY_ERROR_HISTOGRAM, metric_name
from repro.world.coords import CHUNK_SIZE, BlockPos



def test_near_tier_flushes_every_tick(make_session):
    interest = InterestMap(radius_chunks=2, near_radius_chunks=1)
    interest.subscribe(make_session(1))
    interest.note_dirty((0, 0), source_player_id=None)
    report = interest.flush(tick_index=0)
    assert report.near_flushes == 1
    assert report.far_flushes == 0
    assert report.staleness_max == 0


def test_far_tier_waits_for_the_staleness_budget(make_session):
    interest = InterestMap(
        radius_chunks=3, near_radius_chunks=0, max_staleness_ticks=4,
        max_drift_blocks=1e9,
    )
    interest.subscribe(make_session(1))
    interest.note_dirty((2, 0))  # outside near radius 0 -> far tier
    for tick in range(4):
        report = interest.flush(tick_index=tick)
        assert report.flushes == 0, f"flushed early at staleness {tick}"
    # Tick 4: the oldest entry is exactly max_staleness_ticks old -> due.
    report = interest.flush(tick_index=4)
    assert report.far_flushes == 1
    assert report.staleness_max == 4


def test_drift_budget_forces_an_early_flush(make_session):
    interest = InterestMap(
        radius_chunks=3, near_radius_chunks=0, max_staleness_ticks=1000,
        max_drift_blocks=8.0,
    )
    interest.subscribe(make_session(1))
    interest.note_dirty((2, 0), drift=5.0)
    report = interest.flush(tick_index=0)
    assert report.flushes == 0  # 5 blocks of drift is still within budget
    interest.note_dirty((2, 0), drift=5.0)
    report = interest.flush(tick_index=1)
    assert report.far_flushes == 1  # 10 blocks crossed the 8-block budget
    assert report.drift_max == 10.0


def test_source_player_never_receives_its_own_action(make_session):
    interest = InterestMap(radius_chunks=2)
    session = make_session(1)
    interest.subscribe(session)
    interest.note_dirty((0, 0), source_player_id=1)
    report = interest.flush(tick_index=0)
    assert report.flushes == 0
    assert report.entries_encoded == 0  # nothing encoded for zero recipients
    assert session.updates == 0


def test_gameloop_staleness_never_exceeds_the_configured_bound():
    """Property over a full run: every flush's staleness is within budget."""
    bound = 4
    config = GameConfig(
        world_type="flat",
        interest_radius_chunks=4,
        interest_near_radius_chunks=0,
        interest_max_staleness_ticks=bound,
        interest_max_drift_blocks=1e9,
    )
    engine = SimulationEngine(seed=11)
    server = make_opencraft(engine, config)
    server.chunks.preload_area(config.spawn_position, 200.0)
    editor = server.connect_player("editor")
    # Observers two chunks away: the editor's chunk lands in their far tier.
    observers = [
        server.connect_player(
            f"observer-{index}",
            position=BlockPos(2 * CHUNK_SIZE + index, 65, 2 * CHUNK_SIZE),
        )
        for index in range(3)
    ]
    far_flushes = 0
    for tick in range(40):
        if tick % 3 == 0:
            position = editor.avatar.position
            editor.move(position.x + 1, position.y, position.z)
        server.tick()
        flush = server.last_interest_flush
        assert flush is not None
        assert flush.staleness_max <= bound
        far_flushes += flush.far_flushes
    assert far_flushes > 0, "the workload never exercised the far tier"
    # The consistency_error metric recorded the same guarantee.
    histogram = engine.metrics.histogram(metric_name(CONSISTENCY_ERROR_HISTOGRAM))
    assert len(histogram) > 0
    assert histogram.maximum() <= bound
    assert all(observer.updates_sent > 0 for observer in observers)
