"""Graceful degradation in interest mode sheds flushes, never players.

Regression guard for the broadcast rewiring: with interest management on,
an over-budget shard must defer due far-tier flushes (budget widening) —
the legacy per-player shed hook must never fire, and the shed count must be
computed from the flushes due *after* interest filtering, not from the
player count.
"""

from repro.faults import DegradationController, DegradationPolicy
from repro.server import GameConfig, make_opencraft
from repro.sim import SimulationEngine
from repro.world.coords import CHUNK_SIZE, BlockPos


def make_degraded_interest_server(seed=5, shed_fraction=0.5):
    config = GameConfig(
        world_type="flat",
        interest_radius_chunks=4,
        interest_near_radius_chunks=0,
        interest_max_staleness_ticks=1,
        interest_max_drift_blocks=1e9,
    )
    engine = SimulationEngine(seed=seed)
    server = make_opencraft(engine, config)
    server.chunks.preload_area(config.spawn_position, 200.0)
    # A budget no tick can meet: the controller sheds from tick 2 onward.
    server.degradation = DegradationController(
        DegradationPolicy(budget_ms=0.001, shed_fraction=shed_fraction),
        engine.metrics,
    )
    return engine, server


def test_over_budget_interest_server_sheds_due_flushes_not_players():
    engine, server = make_degraded_interest_server()
    editor = server.connect_player("editor")
    # Four far observers: the editor's chunk is outside near radius 0.
    observers = [
        server.connect_player(
            f"observer-{index}",
            position=BlockPos(2 * CHUNK_SIZE + index, 65, 2 * CHUNK_SIZE),
        )
        for index in range(4)
    ]

    # Spy on both shed hooks: legacy must stay silent, interest must be fed
    # the post-filtering due-flush count (never the player count).
    legacy_calls, flush_calls = [], []
    controller = server.degradation
    original_shed_count = controller.shed_count
    original_shed_flush_count = controller.shed_flush_count

    def spy_shed_count(players):
        legacy_calls.append(players)
        return original_shed_count(players)

    def spy_shed_flush_count(due):
        flush_calls.append(due)
        return original_shed_flush_count(due)

    controller.shed_count = spy_shed_count
    controller.shed_flush_count = spy_shed_flush_count

    total_shed = 0
    due_per_tick = []
    for tick in range(20):
        position = editor.avatar.position
        editor.move(position.x + 1, position.y, position.z)
        server.tick()
        flush = server.last_interest_flush
        assert flush is not None
        total_shed += flush.flushes_shed
        due_per_tick.append(flush.far_due)
        # Shedding widens budgets but never silences anyone forever: the
        # due count equals shed plus actually-sent far flushes.
        assert flush.far_due == flush.flushes_shed + flush.far_flushes

    assert legacy_calls == [], "legacy per-player shed hook fired in interest mode"
    assert total_shed > 0, "an over-budget server never shed a flush"
    # Every shed decision saw exactly the post-filtering due-flush count.
    assert flush_calls == [due for due in due_per_tick if due > 0]
    assert controller.updates_shed == total_shed
    assert engine.metrics.counter("broadcast_updates_shed") == total_shed
    assert engine.metrics.counter("interest_flushes_shed") == total_shed


def test_deferred_flushes_still_reach_their_subscribers():
    """Shed far batches flush on a later tick — deferred, not dropped."""
    engine, server = make_degraded_interest_server(shed_fraction=0.5)
    editor = server.connect_player("editor")
    observers = [
        server.connect_player(
            f"observer-{index}",
            position=BlockPos(2 * CHUNK_SIZE + index, 65, 2 * CHUNK_SIZE),
        )
        for index in range(4)
    ]
    for tick in range(2):
        position = editor.avatar.position
        editor.move(position.x + 1, position.y, position.z)
        server.tick()
    # Stop producing new entries; pending deferred batches drain over the
    # following ticks (shedding can only defer a fraction each tick).
    for tick in range(10):
        server.tick()
    subs = [server.interest.subscription(observer.player_id) for observer in observers]
    assert all(sub.far_entries == 0 for sub in subs), "a deferred batch was dropped"
    assert all(observer.updates_sent > 0 for observer in observers)
