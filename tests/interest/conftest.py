"""Shared helpers for the interest-management suite."""

from dataclasses import dataclass, field

import pytest

from repro.world.coords import BlockPos


@dataclass
class FakeAvatar:
    position: BlockPos


@dataclass
class FakeSession:
    """Just enough of a PlayerSession for InterestMap unit tests."""

    player_id: int
    avatar: FakeAvatar
    updates: int = 0
    flushes: list = field(default_factory=list)

    def record_updates(self, count: int = 1) -> None:
        self.updates += count


@pytest.fixture
def make_session():
    """Factory for fake sessions positioned at a block (default: chunk 0,0)."""

    def factory(player_id: int, x: int = 8, z: int = 8) -> FakeSession:
        return FakeSession(player_id=player_id, avatar=FakeAvatar(BlockPos(x, 65, z)))

    return factory
