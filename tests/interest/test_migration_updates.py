"""Cluster interest: migrations carry subscriptions, updates_sent is continuous."""

from repro.cluster import build_opencraft_cluster
from repro.interest import SubscriptionState
from repro.server import GameConfig



def make_interest_cluster(engine, shards=2, **overrides):
    config = GameConfig(world_type="flat", interest_radius_chunks=4, **overrides)
    cluster = build_opencraft_cluster(engine, config, shards=shards)
    cluster.chunks.preload_area(config.spawn_position, 96.0)
    return cluster


def test_every_shard_gets_its_own_interest_map(engine):
    cluster = make_interest_cluster(engine)
    assert all(shard.interest is not None for shard in cluster.shards)
    # The coordinator turned on dirty-log recording for cross-shard routing.
    assert all(shard.interest.record_dirty_log for shard in cluster.shards)


def test_migration_moves_the_subscription_between_shards(engine):
    cluster = make_interest_cluster(engine)
    sessions = [cluster.connect_player(f"bot-{index}") for index in range(4)]
    mover = sessions[3]  # spawns next to the zone boundary
    assert mover.shard_index == 0
    cluster.tick()
    position = mover.avatar.position
    mover.move(position.x + 5, position.y, position.z)
    cluster.tick()
    assert mover.migrations == 1
    source, target = cluster.shards[0].interest, cluster.shards[1].interest
    assert source.subscription(mover.player_id) is None
    sub = target.subscription(mover.player_id)
    assert sub is not None
    assert sub.center == target.chunk_of(mover.avatar.position)
    assert source.verify_index() and target.verify_index()


def test_migration_imports_pending_far_state(make_session):
    """Pending far-tier deltas survive the handoff (no lost staleness debt)."""
    from repro.interest import InterestMap

    source = InterestMap(radius_chunks=2, near_radius_chunks=0, max_staleness_ticks=10)
    target = InterestMap(radius_chunks=2, near_radius_chunks=0, max_staleness_ticks=10)
    session = make_session(1)
    source.subscribe(session)
    source.note_dirty((1, 1), entries=3, drift=2.5)
    state = source.export_state(1)
    assert state == SubscriptionState(
        near_entries=0, far_entries=3, far_first_tick=0, far_drift=2.5
    )
    source.unsubscribe(1)
    target.subscribe(session)
    target.import_state(1, state)
    sub = target.subscription(1)
    assert (sub.far_entries, sub.far_drift) == (3, 2.5)
    # The imported first-tick is clamped to the target's clock so staleness
    # never goes negative on a younger shard.
    assert sub.far_first_tick == 0


def test_updates_sent_stays_continuous_across_interest_migrations(engine):
    cluster = make_interest_cluster(engine)
    sessions = [cluster.connect_player(f"bot-{index}") for index in range(4)]
    mover, companion = sessions[3], sessions[2]
    # The companion walks alongside the mover: each one's moves are visible
    # state changes for the other, so both flush near-tier updates per tick.
    position = mover.avatar.position
    companion.move(position.x, position.y, position.z + 1)
    cluster.tick()
    history = []
    for step in range(60):
        for walker in (mover, companion):
            position = walker.avatar.position
            walker.move(position.x + 2, position.y, position.z)
        cluster.tick()
        history.append(mover.updates_sent)
    assert mover.migrations >= 1
    # Flush-derived updates_sent never resets when the session rebinds.
    assert history == sorted(history)
    assert history[-1] > 0
    assert all(shard.interest.verify_index() for shard in cluster.shards)


def test_cross_shard_events_route_only_to_subscribing_shards(engine):
    cluster = make_interest_cluster(engine)
    sessions = [cluster.connect_player(f"bot-{index}") for index in range(4)]
    mover = sessions[3]
    for step in range(30):
        position = mover.avatar.position
        mover.move(position.x + 2, position.y, position.z)
        cluster.tick()
    # The mover walked deep into shard 1's zone while shard-0 players stayed
    # near the boundary: its moves were relayed back to shard 0 only while
    # someone there subscribed to the dirtied chunks.
    assert mover.migrations >= 1
    assert engine.metrics.counter("interest_cross_shard_events") > 0
