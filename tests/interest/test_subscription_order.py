"""Determinism regression: the inverse chunk index is built in sorted order.

``InterestMap`` maintains ``_chunk_subs``, an insertion-ordered dict keyed by
chunk.  Subscribe/unsubscribe/recenter used to populate and prune it in
set-iteration order, so the dict's key order — which downstream flushing and
dirty-log iteration observe — depended on how the footprint sets hashed.
The fixed paths iterate footprints (and footprint differences) through
``sorted()``; these tests pin the observable key order.
"""

from __future__ import annotations

from repro.interest.subscriptions import InterestMap
from repro.world.coords import BlockPos


def _keys_for(interest: InterestMap, player_id: int) -> list:
    return [
        chunk
        for chunk, owners in interest._chunk_subs.items()
        if player_id in owners
    ]


def test_subscribe_builds_the_inverse_index_in_sorted_chunk_order(make_session):
    interest = InterestMap(radius_chunks=3)
    interest.subscribe(make_session(1))
    keys = _keys_for(interest, 1)
    assert keys, "a subscription must index its whole footprint"
    assert keys == sorted(keys)


def test_recenter_appends_fresh_footprint_chunks_in_sorted_order(make_session):
    interest = InterestMap(radius_chunks=2)
    session = make_session(1)
    interest.subscribe(session)
    # A diagonal crossing adds an L-shaped strip of chunks: exactly the
    # shape whose set-difference iteration order used to leak through.
    session.avatar.position = BlockPos(8 + 3 * 16, 65, 8 + 2 * 16)
    interest.update_center(1, (3, 2))
    old_footprint = interest._footprint((0, 0))
    fresh = [
        chunk for chunk in interest._chunk_subs if chunk not in old_footprint
    ]
    assert fresh, "recentering must index the newly covered chunks"
    assert fresh == sorted(fresh)


def test_unsubscribe_prunes_cleanly_regardless_of_iteration_order(make_session):
    interest = InterestMap(radius_chunks=2)
    interest.subscribe(make_session(1))
    interest.subscribe(make_session(2, x=8 + 16, z=8))
    interest.unsubscribe(1)
    assert all(1 not in owners for owners in interest._chunk_subs.values())
    survivors = list(interest._chunk_subs)
    # Player 2's index entries survive, still in their original sorted order.
    assert [c for c in survivors if c in interest._footprint((1, 0))]
    interest.unsubscribe(2)
    assert not interest._chunk_subs, "the last unsubscribe must empty the index"
