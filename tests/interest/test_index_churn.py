"""The chunk-to-subscriber index stays consistent under membership churn."""

import pytest

from repro.interest import InterestMap
from repro.server import GameConfig, make_opencraft
from repro.world.coords import CHUNK_SIZE


def test_interest_map_validates_its_budgets():
    with pytest.raises(ValueError):
        InterestMap(radius_chunks=0)
    with pytest.raises(ValueError):
        InterestMap(radius_chunks=2, near_radius_chunks=3)
    with pytest.raises(ValueError):
        InterestMap(radius_chunks=2, max_staleness_ticks=0)
    with pytest.raises(ValueError):
        InterestMap(radius_chunks=2, max_drift_blocks=0.0)


def test_subscribe_covers_the_chebyshev_square(make_session):
    interest = InterestMap(radius_chunks=2)
    interest.subscribe(make_session(1, x=8, z=8))  # chunk (0, 0)
    for dx in range(-2, 3):
        for dz in range(-2, 3):
            assert interest.has_subscribers((dx, dz))
    assert not interest.has_subscribers((3, 0))
    assert interest.verify_index()


def test_double_subscribe_is_rejected(make_session):
    interest = InterestMap(radius_chunks=1)
    interest.subscribe(make_session(1))
    with pytest.raises(ValueError):
        interest.subscribe(make_session(1))


def test_unsubscribe_removes_every_footprint_chunk(make_session):
    interest = InterestMap(radius_chunks=2)
    interest.subscribe(make_session(1))
    interest.subscribe(make_session(2, x=8 + CHUNK_SIZE, z=8))
    interest.unsubscribe(1)
    assert interest.subscriber_count == 1
    assert interest.verify_index()
    interest.unsubscribe(2)
    assert not interest.has_subscribers((0, 0))
    assert interest.verify_index()
    # Unsubscribing an unknown player is a no-op returning None.
    assert interest.unsubscribe(99) is None


def test_update_center_moves_only_the_footprint_delta(make_session):
    interest = InterestMap(radius_chunks=1)
    interest.subscribe(make_session(1))  # center (0, 0)
    interest.update_center(1, (2, 0))
    assert not interest.has_subscribers((-1, 0))
    assert interest.has_subscribers((3, 0))
    assert interest.verify_index()
    # Same-center updates are no-ops.
    interest.update_center(1, (2, 0))
    assert interest.verify_index()


def test_gameloop_churn_keeps_the_index_verified(engine):
    """Connect, walk across chunk boundaries, disconnect — index never drifts."""
    config = GameConfig(world_type="flat", interest_radius_chunks=2)
    server = make_opencraft(engine, config)
    server.chunks.preload_area(config.spawn_position, 160.0)
    sessions = [server.connect_player(f"bot-{index}") for index in range(6)]
    assert server.interest is not None
    assert server.interest.subscriber_count == 6
    assert server.interest.verify_index()
    for step in range(1, 5):
        for session in sessions[:3]:
            position = session.avatar.position
            session.move(position.x + CHUNK_SIZE, position.y, position.z)
        server.tick()
        assert server.interest.verify_index()
    # The walkers' centers followed them across the boundary crossings.
    walker = server.interest.subscription(sessions[0].player_id)
    assert walker is not None
    assert walker.center == server.interest.chunk_of(sessions[0].avatar.position)
    for session in sessions[:3]:
        server.disconnect_player(session.player_id)
    assert server.interest.subscriber_count == 3
    assert server.interest.verify_index()
