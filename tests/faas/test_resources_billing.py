"""Tests for the resource scaling model, warm pools and billing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.faas.billing import BillingModel
from repro.faas.coldstart import WarmInstancePool
from repro.faas.providers import BillingRates
from repro.faas.resources import (
    FIGURE_11_MEMORY_CONFIGS_MB,
    MEMORY_PER_VCPU_MB,
    ResourceModel,
    vcpus_for_memory,
)


def test_vcpus_scale_linearly_with_memory():
    assert vcpus_for_memory(MEMORY_PER_VCPU_MB) == pytest.approx(1.0)
    assert vcpus_for_memory(2 * MEMORY_PER_VCPU_MB) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        vcpus_for_memory(0)


def test_mean_execution_decreases_with_memory():
    model = ResourceModel()
    means = [model.mean_execution_ms(1000.0, memory) for memory in FIGURE_11_MEMORY_CONFIGS_MB]
    assert means == sorted(means, reverse=True)


def test_execution_speedup_is_sublinear():
    model = ResourceModel()
    small = model.mean_execution_ms(1000.0, 1024)
    large = model.mean_execution_ms(1000.0, 8192)
    # 8x the memory gives less than 8x the speed.
    assert small / large < 8.0
    assert small / large > 1.5


def test_small_configurations_have_more_variability():
    model = ResourceModel()
    assert model.sigma(320) > model.sigma(10240)


def test_memory_pressure_penalises_the_smallest_config():
    model = ResourceModel()
    # Below the pressure threshold the speed drops by the pressure factor.
    assert model.speed_factor(320) < model.speed_factor(480) * (480 / 320) ** -0.1


def test_sample_execution_is_positive_and_near_mean():
    model = ResourceModel()
    rng = np.random.default_rng(0)
    samples = [model.sample_execution_ms(500.0, 2048, rng) for _ in range(2000)]
    assert min(samples) > 0
    assert np.mean(samples) == pytest.approx(model.mean_execution_ms(500.0, 2048), rel=0.1)


def test_negative_work_rejected():
    with pytest.raises(ValueError):
        ResourceModel().mean_execution_ms(-1.0, 1024)


def test_warm_pool_reuses_free_environments():
    pool = WarmInstancePool(keep_alive_ms=10_000.0)
    assert pool.acquire(now_ms=0.0, duration_ms=100.0) is True
    assert pool.acquire(now_ms=200.0, duration_ms=100.0) is False
    assert pool.cold_starts == 1
    assert pool.warm_starts == 1


def test_warm_pool_concurrency_needs_extra_environments():
    pool = WarmInstancePool(keep_alive_ms=10_000.0)
    assert pool.acquire(now_ms=0.0, duration_ms=1000.0) is True
    assert pool.acquire(now_ms=10.0, duration_ms=1000.0) is True
    assert pool.warm_count(now_ms=20.0) == 2


def test_warm_pool_expires_idle_environments():
    pool = WarmInstancePool(keep_alive_ms=1_000.0)
    pool.acquire(now_ms=0.0, duration_ms=10.0)
    assert pool.warm_count(now_ms=500.0) == 1
    assert pool.warm_count(now_ms=5_000.0) == 0
    assert pool.acquire(now_ms=5_000.0, duration_ms=10.0) is True


def test_billing_minimum_and_rounding():
    billing = BillingModel(rates=BillingRates(usd_per_million_requests=0.2, usd_per_gb_second=1e-5))
    charge = billing.record("fn", time_ms=0.0, execution_ms=0.4, memory_mb=1024)
    assert charge.billed_duration_ms == 1.0
    charge = billing.record("fn", time_ms=0.0, execution_ms=100.3, memory_mb=1024)
    assert charge.billed_duration_ms == pytest.approx(101.0)


def test_billing_cost_formula_matches_rates():
    rates = BillingRates(usd_per_million_requests=0.2, usd_per_gb_second=0.0000166667)
    billing = BillingModel(rates=rates)
    charge = billing.record("fn", time_ms=0.0, execution_ms=1000.0, memory_mb=1024)
    expected = 0.2 / 1_000_000 + 1.0 * rates.usd_per_gb_second
    assert charge.cost_usd == pytest.approx(expected)
    assert billing.total_cost_usd("fn") == pytest.approx(expected)
    assert billing.total_cost_usd("other") == 0.0


@settings(max_examples=30, deadline=None)
@given(
    st.floats(min_value=1.0, max_value=60_000.0),
    st.integers(min_value=128, max_value=10_240),
)
def test_billing_cost_is_monotone_in_duration_and_memory(execution_ms, memory_mb):
    billing = BillingModel(rates=BillingRates(usd_per_million_requests=0.2, usd_per_gb_second=1e-5))
    small = billing.record("fn", 0.0, execution_ms, memory_mb).cost_usd
    bigger = billing.record("fn", 0.0, execution_ms * 2, memory_mb).cost_usd
    more_memory = billing.record("fn", 0.0, execution_ms, memory_mb * 2).cost_usd
    assert bigger >= small
    assert more_memory >= small
