"""Tests for the FaaS platform simulator."""

import pytest

from repro.faas import (
    AWS_LAMBDA,
    AZURE_FUNCTIONS,
    FaasPlatform,
    FunctionDefinition,
    FunctionNotRegisteredError,
    FunctionOutput,
)
from repro.faas.providers import provider_by_name
from repro.sim import SimulationEngine


def echo_handler(payload):
    return FunctionOutput(value={"echo": payload}, work_ms_single_vcpu=100.0)


@pytest.fixture
def platform(engine):
    platform = FaasPlatform(engine, provider=AWS_LAMBDA)
    platform.register(FunctionDefinition(name="echo", handler=echo_handler, memory_mb=1769))
    return platform


def test_invoke_runs_handler_and_returns_result(platform):
    invocation = platform.invoke("echo", {"x": 1})
    assert invocation.result == {"echo": {"x": 1}}
    assert invocation.function_name == "echo"
    assert invocation.latency_ms > invocation.execution_ms > 0
    assert invocation.memory_mb == 1769


def test_invoke_unregistered_function_raises(platform):
    with pytest.raises(FunctionNotRegisteredError):
        platform.invoke("missing", {})


def test_first_invocation_is_cold_then_warm(platform, engine):
    first = platform.invoke("echo", 1)
    engine.advance_by(1000.0)
    second = platform.invoke("echo", 2)
    assert first.cold_start is True
    assert second.cold_start is False
    assert first.cold_start_ms > 0
    assert second.cold_start_ms == 0
    assert platform.cold_start_fraction("echo") == pytest.approx(0.5)


def test_concurrent_invocations_trigger_extra_cold_starts(platform):
    # Two invocations at the same instant need two execution environments.
    first = platform.invoke("echo", 1)
    second = platform.invoke("echo", 2)
    assert first.cold_start and second.cold_start
    assert platform.pool("echo").cold_starts == 2


def test_warm_environment_expires_after_keep_alive(platform, engine):
    platform.invoke("echo", 1)
    engine.advance_by(AWS_LAMBDA.keep_alive_ms + 60_000.0)
    late = platform.invoke("echo", 2)
    assert late.cold_start is True


def test_invoke_async_delivers_reply_in_virtual_time(platform, engine):
    replies = []
    invocation = platform.invoke_async("echo", 7, callback=replies.append)
    assert replies == []
    engine.advance_to(invocation.completed_ms + 1.0)
    assert len(replies) == 1
    assert replies[0].result == {"echo": 7}


def test_handler_must_return_function_output(engine):
    platform = FaasPlatform(engine)
    platform.register(FunctionDefinition(name="bad", handler=lambda payload: payload))
    with pytest.raises(TypeError):
        platform.invoke("bad", 1)


def test_timeout_truncates_execution(engine):
    platform = FaasPlatform(engine)
    platform.register(
        FunctionDefinition(
            name="slow",
            handler=lambda payload: FunctionOutput(value=1, work_ms_single_vcpu=10_000.0),
            timeout_ms=500.0,
        )
    )
    invocation = platform.invoke("slow", None)
    assert invocation.timed_out is True
    assert invocation.execution_ms == 500.0
    assert invocation.result is None


def test_billing_accumulates_cost_and_rates(platform, engine):
    for _ in range(10):
        platform.invoke("echo", None)
        engine.advance_by(6_000.0)
    billing = platform.billing
    assert billing.invocation_count == 10
    assert billing.total_cost_usd() > 0
    assert billing.total_gb_seconds() > 0
    assert billing.invocations_per_minute(window_ms=60_000.0) == pytest.approx(10.0)
    assert billing.cost_per_hour_usd(window_ms=60_000.0) == pytest.approx(
        billing.total_cost_usd() * 60.0
    )


def test_billing_rejects_bad_windows(platform):
    with pytest.raises(ValueError):
        platform.billing.cost_per_hour_usd(0.0)
    with pytest.raises(ValueError):
        platform.billing.invocations_per_minute(-5.0)


def test_function_definition_validation():
    with pytest.raises(ValueError):
        FunctionDefinition(name="x", handler=echo_handler, memory_mb=0)
    with pytest.raises(ValueError):
        FunctionDefinition(name="x", handler=echo_handler, timeout_ms=0)


def test_provider_lookup_and_profiles():
    assert provider_by_name("aws") is AWS_LAMBDA
    assert provider_by_name("azure-functions") is AZURE_FUNCTIONS
    with pytest.raises(ValueError):
        provider_by_name("gcp")
    assert AWS_LAMBDA.billing.usd_per_gb_second > 0
    assert AZURE_FUNCTIONS.keep_alive_ms < AWS_LAMBDA.keep_alive_ms + 1e9


def test_invocation_overhead_property(platform):
    invocation = platform.invoke("echo", None)
    assert invocation.overhead_ms == pytest.approx(
        invocation.latency_ms - invocation.execution_ms
    )


def test_timed_out_invocation_releases_its_warm_slot_at_the_deadline(engine):
    # Regression: the execution time must be clamped to the function timeout
    # BEFORE the warm slot is acquired — a timed-out invocation occupies its
    # environment until the platform kills it at timeout_ms, never for the
    # unclamped execution time.
    platform = FaasPlatform(engine, provider=AWS_LAMBDA)
    platform.register(
        FunctionDefinition(
            name="slow", handler=echo_handler, memory_mb=1769, timeout_ms=1.0
        )
    )
    submitted = engine.now_ms
    invocation = platform.invoke("slow", {})
    assert invocation.timed_out
    assert invocation.status == "timeout"
    assert invocation.result is None
    assert invocation.execution_ms == 1.0
    environment = platform.pool("slow")._environments[0]
    assert environment.busy_until_ms == pytest.approx(submitted + 1.0)
