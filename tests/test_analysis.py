"""Tests for the analysis helpers and report rendering."""

import pytest

from repro.analysis import (
    comparison_table,
    icdf_points,
    paper_vs_measured,
    rolling_percentile,
    summarize_distribution,
)
from repro.analysis.stats import crossing_time


def test_rolling_percentile_tracks_a_step_change():
    times = [float(t) for t in range(0, 10_000, 50)]
    values = [10.0 if t < 5_000 else 100.0 for t in times]
    series = rolling_percentile(times, values, q=95, window_ms=1_000.0)
    assert series[0][1] == pytest.approx(10.0)
    assert series[-1][1] == pytest.approx(100.0)


def test_rolling_percentile_validates_input():
    with pytest.raises(ValueError):
        rolling_percentile([1.0], [1.0, 2.0], q=50)
    assert rolling_percentile([], [], q=50) == []


def test_crossing_time_requires_sustained_exceedance():
    series = [(0.0, 10.0), (1.0, 60.0), (2.0, 10.0), (3.0, 60.0), (4.0, 70.0)]
    assert crossing_time(series, threshold=50.0, sustained_points=2) == 4.0
    assert crossing_time(series, threshold=100.0) is None
    with pytest.raises(ValueError):
        crossing_time(series, threshold=50.0, sustained_points=0)


def test_icdf_and_summary_wrappers():
    samples = [1.0, 2.0, 3.0, 4.0, 100.0]
    points = icdf_points(samples, [0.0, 50.0])
    assert points[0][1] == 1.0
    assert points[1][1] == pytest.approx(0.2)
    stats = summarize_distribution(samples)
    assert stats.count == 5


def test_comparison_table_renders_rows():
    table = comparison_table(["a", "b"], [[1, "x"], [2, "y"]])
    assert "a" in table and "x" in table and "2" in table


def test_paper_vs_measured_includes_ratio():
    table = paper_vs_measured("max players", {"servo": (150.0, 120.0)})
    assert "servo" in table
    assert "0.80" in table
