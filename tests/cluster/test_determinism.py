"""Cluster determinism: the same seed must reproduce the run bit-for-bit.

The acceptance criterion for the cluster layer is that two runs with the same
seed produce an identical migration schedule, identical tick records and
identical per-shard metrics — the virtual-time lockstep and named random
streams make the whole cluster a deterministic function of the seed.
"""

from repro.cluster import build_servo_cluster
from repro.server import GameConfig
from repro.sim import SimulationEngine
from repro.workload import behaviour_a


def run_cluster(seed: int):
    engine = SimulationEngine(seed=seed)
    cluster = build_servo_cluster(engine, GameConfig(world_type="flat"), shards=2)
    scenario = behaviour_a(players=12, constructs=4, duration_s=4.0)
    result = scenario.run(cluster)
    return engine, cluster, result


def test_same_seed_reproduces_migrations_ticks_and_metrics():
    engine_a, cluster_a, result_a = run_cluster(seed=1234)
    engine_b, cluster_b, result_b = run_cluster(seed=1234)

    # Identical migration schedule (who, when, where, how long).
    assert cluster_a.migration_records == cluster_b.migration_records
    # Identical cluster round records and measured tick durations.
    assert cluster_a.tick_records == cluster_b.tick_records
    assert result_a.tick_durations_ms == result_b.tick_durations_ms
    # Identical per-shard tick records and per-shard metric histograms.
    for shard_a, shard_b in zip(cluster_a.shards, cluster_b.shards):
        assert shard_a.tick_records == shard_b.tick_records
        name = f"tick_duration_ms:{shard_a.name}"
        assert (
            engine_a.metrics.histogram(name).samples
            == engine_b.metrics.histogram(name).samples
        )
    assert (
        engine_a.metrics.histogram("migration_ms").samples
        == engine_b.metrics.histogram("migration_ms").samples
    )
    assert engine_a.metrics.counter("migrations") == engine_b.metrics.counter("migrations")


def test_different_seeds_diverge():
    _, _, result_a = run_cluster(seed=1)
    _, _, result_b = run_cluster(seed=2)
    assert result_a.tick_durations_ms != result_b.tick_durations_ms
