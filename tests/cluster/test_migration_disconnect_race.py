"""A player disconnect racing a cross-shard migration must not lose or
duplicate the session (the migration would otherwise resurrect it on the
target shard)."""

import pytest

from repro.cluster import build_opencraft_cluster
from repro.server import GameConfig


def make_cluster(engine, shards=2):
    cluster = build_opencraft_cluster(engine, GameConfig(world_type="flat"), shards=shards)
    cluster.chunks.preload_area(cluster.config.spawn_position, 96.0)
    return cluster


def cross_boundary(cluster, proxy):
    position = proxy.avatar.position
    proxy.move(position.x + 5, position.y, position.z)


def sessions_holding(cluster, player_id):
    return [shard for shard in cluster.shards if player_id in shard.sessions]


def test_disconnect_before_the_migration_round_is_not_resurrected(engine):
    cluster = make_cluster(engine)
    sessions = [cluster.connect_player(f"bot-{index}") for index in range(4)]
    mover = sessions[3]  # spawns next to the zone boundary
    cluster.tick()
    # The client walks across the boundary and disconnects in the same round,
    # before the round's migration sweep has run.
    cross_boundary(cluster, mover)
    cluster.disconnect_player(mover.player_id)
    cluster.tick()

    assert mover.disconnected
    assert cluster.migration_count == 0
    # The session exists on no shard: neither lost-and-recreated nor doubled.
    assert sessions_holding(cluster, mover.player_id) == []
    assert cluster.player_count == 3


def test_disconnect_under_a_running_migration_is_not_resurrected(engine):
    # The deeper race: the migration was already selected for this proxy when
    # the shard-side session died (e.g. a client timeout the shard detected).
    # _migrate must drop the handoff instead of reconnecting the dead session
    # on the target shard.
    cluster = make_cluster(engine)
    sessions = [cluster.connect_player(f"bot-{index}") for index in range(4)]
    mover = sessions[3]
    cluster.tick()
    source = cluster.shards[mover.shard_index]
    source.disconnect_player(mover.player_id)
    cluster._migrate(mover, (mover.shard_index + 1) % 2)

    assert cluster.migration_count == 0
    assert sessions_holding(cluster, mover.player_id) == []
    assert mover.migrations == 0


def test_migration_then_disconnect_leaves_exactly_one_tombstone(engine):
    cluster = make_cluster(engine)
    sessions = [cluster.connect_player(f"bot-{index}") for index in range(4)]
    mover = sessions[3]
    cluster.tick()
    cross_boundary(cluster, mover)
    cluster.tick()
    assert mover.migrations == 1

    cluster.disconnect_player(mover.player_id)
    assert sessions_holding(cluster, mover.player_id) == []
    assert cluster.player_count == 3
    # A second disconnect is an error, not a silent no-op.
    with pytest.raises(KeyError):
        cluster.disconnect_player(mover.player_id)
    # Later rounds never re-materialise the session anywhere.
    for _ in range(5):
        cluster.tick()
    assert sessions_holding(cluster, mover.player_id) == []
