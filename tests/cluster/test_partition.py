"""Tests for world partitioning: zones, ownership regions and spawn placement."""

import pytest

from repro.cluster.partition import WorldPartitioner, ZoneRegion
from repro.world.coords import CHUNK_SIZE, BlockPos, ChunkPos


def test_partitioner_validates_arguments():
    with pytest.raises(ValueError):
        WorldPartitioner(0)
    with pytest.raises(ValueError):
        WorldPartitioner(2, zone_width_chunks=0)


def test_single_shard_owns_everything():
    partitioner = WorldPartitioner(1)
    region = partitioner.region(0)
    for cx in (-1000, 0, 1000):
        assert partitioner.zone_of(ChunkPos(cx, 0)) == 0
        assert region.contains(ChunkPos(cx, 5))
    assert partitioner.boundary_count() == 0
    with pytest.raises(ValueError):
        partitioner.boundary_spawn(0, BlockPos(0, 65, 0))


def test_zones_are_contiguous_strips_with_unbounded_edges():
    partitioner = WorldPartitioner(4, zone_width_chunks=8)
    # Interior boundaries at cx = 8, 16, 24.
    assert partitioner.zone_of(ChunkPos(-500, 0)) == 0
    assert partitioner.zone_of(ChunkPos(7, 0)) == 0
    assert partitioner.zone_of(ChunkPos(8, 0)) == 1
    assert partitioner.zone_of(ChunkPos(15, 3)) == 1
    assert partitioner.zone_of(ChunkPos(16, 0)) == 2
    assert partitioner.zone_of(ChunkPos(24, 0)) == 3
    assert partitioner.zone_of(ChunkPos(9999, 0)) == 3


def test_every_chunk_has_exactly_one_owner():
    partitioner = WorldPartitioner(3, zone_width_chunks=4)
    regions = partitioner.regions()
    for cx in range(-20, 40):
        position = ChunkPos(cx, 7)
        owners = [region.zone_id for region in regions if region.contains(position)]
        assert owners == [partitioner.zone_of(position)]


def test_block_exactly_on_zone_edge_belongs_to_the_right_zone():
    partitioner = WorldPartitioner(2, zone_width_chunks=8)
    boundary_x = 8 * CHUNK_SIZE  # first block of the boundary chunk
    assert partitioner.zone_of_block(BlockPos(boundary_x, 65, 0)) == 1
    assert partitioner.zone_of_block(BlockPos(boundary_x - 1, 65, 0)) == 0
    # The zone regions agree with zone_of_block on the edge.
    assert partitioner.region(1).contains_block(BlockPos(boundary_x, 65, 0))
    assert not partitioner.region(0).contains_block(BlockPos(boundary_x, 65, 0))


def test_region_validates_zone_id():
    partitioner = WorldPartitioner(2)
    with pytest.raises(ValueError):
        partitioner.region(2)
    with pytest.raises(ValueError):
        partitioner.zone_spawn(-1, BlockPos(0, 65, 0))


def test_zone_region_dataclass_contains():
    region = ZoneRegion(zone_id=1, min_cx=4, max_cx=8)
    assert not region.contains(ChunkPos(3, 0))
    assert region.contains(ChunkPos(4, 0))
    assert region.contains(ChunkPos(7, -2))
    assert not region.contains(ChunkPos(8, 0))


def test_spawns_land_in_their_zone():
    base = BlockPos(8, 65, 8)
    partitioner = WorldPartitioner(4, zone_width_chunks=8)
    for zone in range(4):
        spawn = partitioner.zone_spawn(zone, base)
        assert partitioner.zone_of_block(spawn) == zone
        assert spawn.y == base.y
    for boundary in range(partitioner.boundary_count()):
        spawn = partitioner.boundary_spawn(boundary, base)
        # Boundary spawns sit just left of the edge, owned by the left zone.
        assert partitioner.zone_of_block(spawn) == boundary
        edge_x = (boundary + 1) * 8 * CHUNK_SIZE
        assert 0 < edge_x - spawn.x <= CHUNK_SIZE


def test_single_shard_spawn_is_the_base_spawn():
    base = BlockPos(8, 65, 8)
    assert WorldPartitioner(1).zone_spawn(0, base) == base
