"""Parallel round execution must be invisible in virtual time.

The ``workers`` knob moves a round's pure compute (construct batches, chunk
content) onto a process pool; everything observable in virtual time — tick
records, migration schedules, construct states, metrics — must be
bit-identical for every worker count.  These tests pin that gate: a full
cluster run at ``workers=1`` vs ``workers=4``, the forced process-pool
scatter against the serial executor, and the executor factory's validation.
"""

import hashlib

import pytest

from repro.cluster import build_servo_cluster
from repro.cluster.parallel import (
    ParallelExecutor,
    SerialExecutor,
    ShardRoundExecutor,
    make_executor,
)
from repro.constructs.compiled import compile_circuit
from repro.constructs.library import build_clock, build_lamp_grid, build_wire_line
from repro.constructs.simulator import clone_construct
from repro.server import GameConfig
from repro.sim import SimulationEngine
from repro.workload import behaviour_a
from repro.world.coords import BlockPos, ChunkPos
from repro.world.serialization import chunk_to_bytes
from repro.world.terrain import make_terrain_generator


def run_cluster(workers: int, seed: int = 1234) -> str:
    """One short cluster run; returns a hash of everything virtual-time."""
    engine = SimulationEngine(seed=seed)
    cluster = build_servo_cluster(
        engine, GameConfig(world_type="flat"), shards=2, workers=workers
    )
    scenario = behaviour_a(players=12, constructs=4, duration_s=4.0)
    result = scenario.run(cluster)

    hasher = hashlib.sha256()
    for duration in result.tick_durations_ms:
        hasher.update(repr(duration).encode("ascii"))
    for record in cluster.migration_records:
        hasher.update(repr(record).encode("ascii"))
    for shard in cluster.shards:
        for construct in shard.constructs.constructs():
            hasher.update(str(construct.step).encode("ascii"))
            hasher.update(construct.snapshot().digest().encode("ascii"))
    cluster.executor.close()
    return hasher.hexdigest()


def test_workers_1_and_workers_4_produce_identical_runs():
    assert run_cluster(workers=1) == run_cluster(workers=4)


def test_worker_count_never_touches_the_engine_rng_streams():
    # Two runs at different worker counts must draw identically from every
    # shared stream; diverging metrics would betray a hidden draw.
    engine_serial = SimulationEngine(seed=7)
    cluster_serial = build_servo_cluster(
        engine_serial, GameConfig(world_type="flat"), shards=2, workers=1
    )
    engine_parallel = SimulationEngine(seed=7)
    cluster_parallel = build_servo_cluster(
        engine_parallel, GameConfig(world_type="flat"), shards=2, workers=2
    )
    for cluster in (cluster_serial, cluster_parallel):
        scenario = behaviour_a(players=8, constructs=2, duration_s=2.0)
        scenario.run(cluster)
        cluster.executor.close()
    assert (
        engine_serial.metrics.histogram("cluster_round_ms").samples
        == engine_parallel.metrics.histogram("cluster_round_ms").samples
    )


# -- the executor layer directly -------------------------------------------------------


def make_fleet():
    fleet = []
    for index, period in enumerate((4, 6, 8, 10)):
        fleet.append(build_clock(period=period, origin=BlockPos(index * 32, 64, 0)))
    for index, length in enumerate((5, 9, 13)):
        fleet.append(
            build_wire_line(length, BlockPos(index * 32, 64, 64), powered=True)
        )
    fleet.append(build_lamp_grid(4, 3, BlockPos(0, 64, 128)))
    return fleet


def test_forced_pool_scatter_is_bit_identical_to_serial():
    serial_fleet = make_fleet()
    pool_fleet = [clone_construct(construct) for construct in serial_fleet]
    serial = SerialExecutor()
    # Force the pool even on single-core hosts and below the normal
    # scatter threshold, so the worker round-trip itself is exercised.
    pool = ParallelExecutor(2, min_circuits_to_scatter=2, use_pool=True)
    try:
        for _ in range(50):
            serial_flags = serial.step_circuits(
                [compile_circuit(construct) for construct in serial_fleet]
            )
            pool_flags = pool.step_circuits(
                [compile_circuit(construct) for construct in pool_fleet]
            )
            assert serial_flags == pool_flags
        for construct, clone in zip(serial_fleet, pool_fleet):
            assert construct.step == clone.step
            assert construct.snapshot().digest() == clone.snapshot().digest()
    finally:
        pool.close()


def test_pooled_terrain_task_produces_identical_chunk_bytes():
    generator = make_terrain_generator("default", seed=7)
    pool = ParallelExecutor(2, use_pool=True)
    try:
        task = pool.submit_terrain(generator, ChunkPos(3, -2))
        assert chunk_to_bytes(task.resolve()) == chunk_to_bytes(
            generator.generate_chunk(ChunkPos(3, -2))
        )
    finally:
        pool.close()


def test_make_executor_validation_and_types():
    assert isinstance(make_executor(1), SerialExecutor)
    parallel = make_executor(4)
    assert isinstance(parallel, ParallelExecutor)
    assert parallel.workers == 4
    assert isinstance(parallel, ShardRoundExecutor)
    parallel.close()
    with pytest.raises(ValueError):
        make_executor(0)
    with pytest.raises(ValueError):
        make_executor(-2)
    with pytest.raises(ValueError):
        ParallelExecutor(1)


def test_empty_and_tiny_batches_stay_inline():
    pool = ParallelExecutor(2, use_pool=True)
    try:
        assert pool.step_circuits([]) == []
        construct = build_clock(period=4)
        flags = pool.step_circuits([compile_circuit(construct)])
        assert flags == [False]
        assert pool._pool is None, "sub-threshold batches must not spin up the pool"
    finally:
        pool.close()
