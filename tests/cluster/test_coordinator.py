"""Tests for the cluster coordinator: lockstep rounds, migration, routing."""

import pytest

from repro.cluster import build_opencraft_cluster, build_servo_cluster
from repro.constructs.library import build_wire_line
from repro.server import GameConfig
from repro.sim import SimulationEngine
from repro.world.coords import CHUNK_SIZE, BlockPos


def make_cluster(engine, shards=2, game="opencraft"):
    config = GameConfig(world_type="flat")
    if game == "servo":
        cluster = build_servo_cluster(engine, config, shards=shards)
    else:
        cluster = build_opencraft_cluster(engine, config, shards=shards)
    cluster.chunks.preload_area(config.spawn_position, 96.0)
    return cluster


def test_cluster_requires_matching_shard_and_zone_counts(engine):
    cluster = make_cluster(engine, shards=2)
    from repro.cluster import ClusterCoordinator, WorldPartitioner

    with pytest.raises(ValueError):
        ClusterCoordinator(
            engine=engine,
            shards=cluster.shards,
            partitioner=WorldPartitioner(3),
            config=cluster.config,
        )


def test_players_are_spread_across_shards(engine):
    cluster = make_cluster(engine, shards=2)
    for index in range(8):
        cluster.connect_player(f"bot-{index}")
    assert cluster.player_count == 8
    assert all(shard.player_count > 0 for shard in cluster.shards)
    # Player ids are unique across the whole cluster.
    ids = [proxy.player_id for proxy in cluster.sessions.values()]
    assert len(set(ids)) == 8


def test_lockstep_round_advances_clock_once_by_the_slowest_shard(engine):
    cluster = make_cluster(engine, shards=2)
    cluster.connect_player("a")
    before = engine.now_ms
    record = cluster.tick()
    # Both shards ticked at the same virtual start time.
    assert all(shard.tick_records[-1].start_ms == before for shard in cluster.shards)
    assert record.duration_ms == max(
        shard.tick_records[-1].duration_ms for shard in cluster.shards
    )
    assert engine.now_ms >= before + cluster.config.tick_interval_ms


def test_boundary_crossing_migrates_player_and_preserves_state(engine):
    cluster = make_cluster(engine, shards=2)
    sessions = [cluster.connect_player(f"bot-{index}") for index in range(4)]
    mover = sessions[3]  # every 4th player spawns next to a zone boundary
    assert mover.shard_index == 0
    source = cluster.shards[0]

    # Let the bot do some work, then step across the zone edge.
    mover.chat("hello")
    cluster.tick()
    position = mover.avatar.position
    mover.move(position.x + 5, position.y, position.z)
    cluster.tick()

    assert mover.shard_index == 1
    assert mover.migrations == 1
    assert cluster.migration_count == 1
    record = cluster.migration_records[0]
    assert (record.from_shard, record.to_shard) == (0, 1)
    assert record.latency_ms > 0.0
    # Avatar state survived the handoff; the id did not change.
    assert mover.avatar.chat_messages_sent == 1
    assert mover.player_id == record.player_id
    assert mover.player_id in cluster.shards[1].sessions
    assert mover.player_id not in source.sessions
    # The handoff was recorded in the engine metrics.
    assert len(engine.metrics.histogram("migration_ms")) == 1
    assert engine.metrics.counter("migrations") == 1


def test_updates_sent_accumulates_across_migrations(engine):
    cluster = make_cluster(engine, shards=2)
    sessions = [cluster.connect_player(f"bot-{index}") for index in range(4)]
    mover = sessions[3]
    cluster.tick()
    before = mover.updates_sent
    assert before > 0
    position = mover.avatar.position
    mover.move(position.x + 5, position.y, position.z)
    cluster.tick()
    assert mover.migrations == 1
    assert mover.updates_sent >= before


def test_migrated_player_keeps_acting_on_the_new_shard(engine):
    cluster = make_cluster(engine, shards=2)
    for index in range(4):
        session = cluster.connect_player(f"bot-{index}")
    mover = session  # the boundary-spawned one
    position = mover.avatar.position
    mover.move(position.x + 5, position.y, position.z)
    cluster.tick()
    assert mover.shard_index == 1
    mover.chat("still here")
    cluster.tick()
    assert mover.avatar.chat_messages_sent == 1


def test_constructs_route_to_the_owning_shard(engine):
    cluster = make_cluster(engine, shards=2)
    boundary_x = cluster.partitioner.zone_width_chunks * CHUNK_SIZE
    left = build_wire_line(length=3, origin=BlockPos(4, 66, 4))
    right = build_wire_line(length=3, origin=BlockPos(boundary_x + 4, 66, 4))
    cluster.place_construct(left)
    cluster.place_construct(right)
    assert cluster.shards[0].construct_count == 1
    assert cluster.shards[1].construct_count == 1
    assert cluster.construct_count == 2
    cluster.remove_construct(right.construct_id)
    assert cluster.shards[1].construct_count == 0
    with pytest.raises(KeyError):
        cluster.remove_construct(right.construct_id)


def test_shards_only_load_chunks_in_their_zone(engine):
    cluster = make_cluster(engine, shards=2)
    for shard in cluster.shards:
        for position in shard.world.loaded_chunk_positions:
            assert shard.region.contains(position)


def test_disconnect_through_the_coordinator(engine):
    cluster = make_cluster(engine, shards=2)
    session = cluster.connect_player("solo")
    cluster.disconnect_player(session.player_id)
    assert session.disconnected
    assert cluster.player_count == 0
    with pytest.raises(KeyError):
        cluster.disconnect_player(session.player_id)


def test_servo_cluster_shares_platform_and_blob(engine):
    cluster = make_cluster(engine, shards=2, game="servo")
    first, second = cluster.shards
    assert first.runtime is not None and second.runtime is not None
    assert first.runtime.platform is second.runtime.platform
    assert first.runtime.storage.remote is second.runtime.storage.remote
    # Migration state goes through the shared blob store.
    assert cluster.session_store is first.runtime.storage.remote
