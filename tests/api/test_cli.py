"""The `repro` CLI (python -m repro) driven in-process."""

import json
from pathlib import Path

import pytest

from repro.api.cli import main
from repro.version import __version__

REPO_ROOT = Path(__file__).resolve().parents[2]
SERVO_QUICK_SPEC = REPO_ROOT / "examples" / "specs" / "servo_quick.json"

TINY_RUN_FLAGS = [
    "run",
    "--game", "opencraft",
    "--scenario", "behaviour_a",
    "--players", "3",
    "--constructs", "2",
    "--duration-s", "2",
    "--warmup-s", "0.5",
    "--world-type", "flat",
    "--seed", "3",
]


def test_version_reports_package_version(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert capsys.readouterr().out.strip() == f"repro {__version__}"


def test_experiments_list(capsys):
    assert main(["experiments", "list"]) == 0
    out = capsys.readouterr().out
    for experiment_id in ("fig01", "fig07a", "fig13", "tab01", "cluster"):
        assert experiment_id in out


def test_experiments_run_tab01(capsys):
    assert main(["experiments", "run", "tab01"]) == 0
    assert "IV-B" in capsys.readouterr().out


def test_experiments_run_unknown_id(capsys):
    assert main(["experiments", "run", "fig99"]) == 2
    assert "unknown experiment 'fig99'" in capsys.readouterr().err


def test_run_from_flags(capsys):
    assert main(TINY_RUN_FLAGS) == 0
    out = capsys.readouterr().out
    assert "A-3p-2sc on opencraft" in out
    assert "tick durations (ms)" in out


def test_run_checked_in_spec_file_deterministic(tmp_path, capsys):
    out_a, out_b = tmp_path / "a.json", tmp_path / "b.json"
    assert main(["run", str(SERVO_QUICK_SPEC), "--duration-s", "2", "--json", str(out_a)]) == 0
    assert main(["run", str(SERVO_QUICK_SPEC), "--duration-s", "2", "--json", str(out_b)]) == 0
    capsys.readouterr()
    summary_a = json.loads(out_a.read_text())["summary"]
    summary_b = json.loads(out_b.read_text())["summary"]
    assert summary_a == summary_b
    assert summary_a["host"] == "servo"


def test_run_flag_overrides_spec_file(capsys):
    assert main(["run", str(SERVO_QUICK_SPEC), "--duration-s", "1", "--players", "2"]) == 0
    out = capsys.readouterr().out
    assert "A-2p-10sc" in out  # players overridden, constructs from the file
    assert "1s measured (20 ticks)" in out


def test_run_requires_game_and_scenario(capsys):
    assert main(["run"]) == 2
    assert "no host game given" in capsys.readouterr().err
    assert main(["run", "--game", "servo"]) == 2
    assert "no scenario given" in capsys.readouterr().err


def test_run_mistyped_param_fails_cleanly(capsys):
    assert main(["run", "--game", "opencraft", "--scenario", "behaviour_a",
                 "--param", "players=abc", "--duration-s", "1"]) == 2
    assert "error:" in capsys.readouterr().err


def test_run_unknown_game_exits_with_registry_error(capsys):
    assert main(["run", "--game", "doom", "--scenario", "sinc"]) == 2
    assert "unknown host 'doom'" in capsys.readouterr().err


def test_spec_prints_canonical_json(capsys):
    assert main(["spec", str(SERVO_QUICK_SPEC)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["host"]["game"] == "servo"
    assert payload["workload"]["scenario"] == "behaviour_a"


def test_spec_check_round_trips(capsys):
    assert main(["spec", str(SERVO_QUICK_SPEC), "--check"]) == 0
    assert "round-trips" in capsys.readouterr().out


def test_spec_rejects_invalid_file(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"host": {"game": "servo"}, "workload": {"scenario": "sinc"},
                               "duration_s": -5}))
    assert main(["spec", str(bad), "--check"]) == 2
    assert "duration_s must be positive" in capsys.readouterr().err


def test_bench_reports_determinism(tmp_path, capsys):
    out = tmp_path / "bench.json"
    assert main(["bench", "--duration-s", "1", "--out", str(out)]) == 0
    assert "bit-identical" in capsys.readouterr().out
    report = json.loads(out.read_text())
    assert report["deterministic"] is True
    assert set(report["scenarios"]) == {"construct-heavy", "servo-cluster-2shard"}
