"""RunSpec serialization, validation and run determinism."""

import json

import pytest

from repro.api import HostSpec, RunSpec, WorkloadSpec, run_spec
from repro.api.spec import game_config_from_overrides, servo_config_from_overrides
from repro.world.coords import BlockPos

TINY_SPEC = {
    "host": {
        "game": "servo",
        "game_config": {"world_type": "flat"},
        "servo_config": {"provider": "aws", "tick_lead": 20},
    },
    "workload": {"scenario": "behaviour_a", "params": {"players": 3, "constructs": 2}},
    "seed": 7,
    "duration_s": 2.0,
    "warmup_s": 0.5,
}


def test_dict_round_trip():
    spec = RunSpec.from_dict(TINY_SPEC)
    assert RunSpec.from_dict(spec.to_dict()) == spec
    assert spec.to_dict()["host"]["game"] == "servo"
    assert spec.to_dict()["workload"]["params"] == {"players": 3, "constructs": 2}


def test_json_round_trip():
    spec = RunSpec.from_dict(TINY_SPEC)
    text = spec.to_json()
    assert RunSpec.from_json(text) == spec
    assert json.loads(text)["seed"] == 7


def test_file_round_trip(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(TINY_SPEC))
    assert RunSpec.from_file(path) == RunSpec.from_dict(TINY_SPEC)


def test_minimal_spec_defaults():
    spec = RunSpec.from_dict(
        {"host": {"game": "opencraft"}, "workload": {"scenario": "sinc"}}
    )
    assert spec.seed == 42
    assert spec.duration_s is None and spec.warmup_s is None
    assert spec.host.shards is None and spec.host.servo_config is None
    assert spec.to_dict() == {
        "host": {"game": "opencraft"},
        "workload": {"scenario": "sinc"},
        "seed": 42,
    }


@pytest.mark.parametrize(
    "mutation, fragment",
    [
        ({"extra": 1}, "unknown run spec key"),
        ({"host": {"game": "servo", "knob": 1}}, "unknown host key"),
        ({"workload": {"scenario": "sinc", "junk": {}}}, "unknown workload key"),
        ({"host": {"game": "servo", "game_config": {"tickrate": 20}}}, "unknown game_config key"),
        ({"host": {"game": "servo", "servo_config": {"speed": 1}}}, "unknown servo_config key"),
        ({"duration_s": -1.0}, "duration_s must be positive"),
        ({"duration_s": 0}, "duration_s must be positive"),
        ({"duration_s": "8.0"}, "duration_s must be a number"),
        ({"warmup_s": -0.5}, "warmup_s must be non-negative"),
        ({"warmup_s": "fast"}, "warmup_s must be a number"),
        ({"seed": -3}, "seed must be non-negative"),
        ({"seed": 1.5}, "seed must be an integer"),
        ({"host": {"game": "servo", "shards": 0}}, "shards must be a positive integer"),
        ({"host": {"game": "servo", "workers": 0}}, "workers must be a positive integer"),
        ({"host": {"game": "servo", "workers": -2}}, "workers must be a positive integer"),
        ({"host": {"game": "servo", "workers": True}}, "workers must be a positive integer"),
        ({"host": {"game": "servo", "workers": 1.5}}, "workers must be a positive integer"),
        ({"host": {}}, "host requires a 'game'"),
        ({"workload": {}}, "workload requires a 'scenario'"),
    ],
)
def test_validation_rejects(mutation, fragment):
    data = {**TINY_SPEC, **mutation}
    with pytest.raises(ValueError) as excinfo:
        RunSpec.from_dict(data)
    assert fragment in str(excinfo.value)


def test_workers_round_trips_losslessly():
    data = {
        "host": {"game": "servo-cluster", "shards": 2, "workers": 2},
        "workload": {"scenario": "behaviour_a"},
    }
    spec = RunSpec.from_dict(data)
    assert spec.host.workers == 2
    assert spec.to_dict()["host"]["workers"] == 2
    assert RunSpec.from_dict(spec.to_dict()) == spec
    assert RunSpec.from_json(spec.to_json()) == spec
    # Unset workers must stay absent from the emitted dict (lossless).
    bare = RunSpec.from_dict(
        {"host": {"game": "servo"}, "workload": {"scenario": "sinc"}}
    )
    assert bare.host.workers is None
    assert "workers" not in bare.to_dict()["host"]


def test_workers_above_shards_warns_but_is_accepted():
    with pytest.warns(UserWarning, match="exceeds host.shards"):
        spec = HostSpec(game="servo-cluster", shards=2, workers=8)
    assert spec.workers == 8


def test_missing_sections_rejected():
    with pytest.raises(ValueError, match="requires a 'host'"):
        RunSpec.from_dict({"workload": {"scenario": "sinc"}})
    with pytest.raises(ValueError, match="requires a 'workload'"):
        RunSpec.from_dict({"host": {"game": "servo"}})


def test_programmatic_construction_is_validated_too():
    with pytest.raises(ValueError):
        HostSpec(game="")
    with pytest.raises(ValueError):
        WorkloadSpec(scenario="")
    with pytest.raises(ValueError):
        RunSpec(
            host=HostSpec(game="servo"),
            workload=WorkloadSpec(scenario="sinc"),
            duration_s=-2.0,
        )
    with pytest.raises(ValueError, match="game_config"):
        HostSpec(game="servo", game_config="flat")
    # None config/params mirror the factories' defaults instead of crashing
    assert HostSpec(game="servo", game_config=None).game_config == {}
    assert WorkloadSpec(scenario="sinc", params=None).params == {}


def test_config_overrides_materialise():
    config = game_config_from_overrides(
        {"world_type": "flat", "spawn_position": [1, 70, -3]}
    )
    assert config.world_type == "flat"
    assert config.spawn_position == BlockPos(1, 70, -3)
    servo = servo_config_from_overrides({"provider": "azure", "tick_lead": 5})
    assert servo.provider == "azure" and servo.tick_lead == 5


def test_run_spec_accepts_pathlike(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps({**TINY_SPEC, "duration_s": 1.0}))
    result = run_spec(path)  # a Path, not a str
    assert result.host_name == "servo"
    assert len(result.scenario.tick_durations_ms) == 20


def test_same_spec_and_seed_is_deterministic():
    spec = RunSpec.from_dict(TINY_SPEC)
    first = run_spec(spec)
    second = run_spec(spec)
    assert first.summary() == second.summary()
    assert first.scenario.tick_durations_ms == second.scenario.tick_durations_ms
    assert first.end_virtual_ms == second.end_virtual_ms


def test_different_seed_changes_virtual_results():
    first = run_spec(RunSpec.from_dict({**TINY_SPEC, "seed": 7}))
    second = run_spec(RunSpec.from_dict({**TINY_SPEC, "seed": 8}))
    assert first.scenario.tick_durations_ms != second.scenario.tick_durations_ms


def test_duration_and_warmup_overrides_apply():
    result = run_spec(RunSpec.from_dict(TINY_SPEC))
    # 2 s measured at 20 Hz = 40 ticks; warmup 0.5 s = 10 more, unmeasured.
    assert result.scenario.duration_s == 2.0
    assert len(result.scenario.tick_durations_ms) == 40
    assert result.end_virtual_ms == 2500.0


def test_run_result_serializes():
    result = run_spec(RunSpec.from_dict(TINY_SPEC))
    payload = json.loads(result.to_json())
    assert payload["spec"] == RunSpec.from_dict(TINY_SPEC).to_dict()
    assert payload["summary"]["ticks_measured"] == 40
    assert payload["summary"]["meets_qos"] is True
    assert "wall_seconds" in payload
