"""The telemetry surface of the public API: spec key, CLI flags, report cmd."""

from __future__ import annotations

import json

import pytest

from repro.api import RunSpec
from repro.api.cli import main

TINY = {
    "host": {"game": "opencraft", "game_config": {"world_type": "flat"}},
    "workload": {"scenario": "behaviour_a", "params": {"players": 2}},
    "seed": 5,
    "duration_s": 1.0,
}


class TestSpecTelemetryKey:
    def test_round_trip(self):
        data = {**TINY, "telemetry": {"enabled": True, "profile": True}}
        spec = RunSpec.from_dict(data)
        assert spec.telemetry == {"enabled": True, "profile": True}
        assert RunSpec.from_dict(spec.to_dict()) == spec
        assert spec.to_dict()["telemetry"] == {"enabled": True, "profile": True}

    def test_absent_by_default(self):
        spec = RunSpec.from_dict(TINY)
        assert spec.telemetry is None
        assert "telemetry" not in spec.to_dict()

    @pytest.mark.parametrize(
        "telemetry, match",
        [
            ({"bogus": 1}, "unknown telemetry key"),
            ({"enabled": "yes"}, "must be a boolean"),
            ({"trace_path": ""}, "non-empty string"),
            (17, "must be a mapping"),
        ],
    )
    def test_validation_rejects(self, telemetry, match):
        with pytest.raises(ValueError, match=match):
            RunSpec.from_dict({**TINY, "telemetry": telemetry})


class TestCliTrace:
    def run_flags(self, *extra: str) -> list[str]:
        return [
            "run",
            "--game", "opencraft",
            "--scenario", "behaviour_a",
            "--players", "2",
            "--world-type", "flat",
            "--duration-s", "1",
            "--seed", "5",
            *extra,
        ]

    def test_trace_and_metrics_flags_write_files(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.prom"
        code = main(
            self.run_flags(
                "--trace", str(trace), "--metrics-out", str(metrics), "--profile"
            )
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"trace written to {trace}" in out
        assert f"metrics written to {metrics}" in out
        payload = json.loads(trace.read_text())
        assert payload["traceEvents"]
        assert "wallProfile" in payload  # --profile adds the wall section
        assert "repro_tick_duration_ms" in metrics.read_text()

    def test_report_renders_the_breakdown(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert main(self.run_flags("--trace", str(trace))) == 0
        capsys.readouterr()
        assert main(["report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "tick" in out and "share" in out

    def test_report_rejects_broken_schema(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [{"ph": "Z", "name": "x"}]}))
        assert main(["report", str(bad)]) == 1
        assert "schema problem" in capsys.readouterr().err

    def test_report_rejects_non_trace_json(self, tmp_path, capsys):
        bad = tmp_path / "list.json"
        bad.write_text("[1]")
        assert main(["report", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_report_missing_file(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err
