"""Self-registering host/scenario registries and the shared unknown-name error."""

import pytest

from repro.api import (
    HOSTS,
    SCENARIOS,
    UnknownNameError,
    build_host,
    build_scenario,
    cluster_host_names,
    host_names,
    register_host,
    register_scenario,
    scenario_names,
    scenario_parameters,
)
from repro.experiments import GAME_FACTORIES, build_game_server, settings_for_scale
from repro.experiments.registry import run_experiment
from repro.experiments.tab01_overview import scenario_for
from repro.core import ServoConfig
from repro.server import GameConfig
from repro.sim import SimulationEngine
from repro.workload import Scenario
from repro.workload.scenarios import behaviour_a


# -- unknown-name messages (one shared helper; pinned here) -------------------------------


def test_unknown_host_message_lists_registered_hosts():
    with pytest.raises(ValueError) as excinfo:
        build_game_server("fortnite", SimulationEngine(seed=0))
    message = str(excinfo.value)
    assert message.startswith("unknown host 'fortnite'; registered hosts:")
    for name in ("'minecraft'", "'opencraft'", "'opencraft-cluster'", "'servo'", "'servo-cluster'"):
        assert name in message


def test_unknown_scenario_message_lists_registered_scenarios():
    with pytest.raises(ValueError) as excinfo:
        build_scenario("walkabout")
    message = str(excinfo.value)
    assert message.startswith("unknown scenario 'walkabout'; registered scenarios:")
    for name in ("'behaviour_a'", "'custom'", "'random'", "'sinc'", "'star'"):
        assert name in message


def test_unknown_experiment_message_lists_registered_experiments():
    with pytest.raises(ValueError) as excinfo:
        run_experiment("fig99")
    message = str(excinfo.value)
    assert message.startswith("unknown experiment 'fig99'; registered experiments:")
    assert "'fig07a'" in message and "'tab01'" in message


def test_unknown_name_error_is_both_value_and_key_error():
    # Callers written against the historical KeyError contract keep working.
    with pytest.raises(KeyError):
        run_experiment("fig99")
    with pytest.raises(KeyError):
        scenario_for("IV-Z")
    with pytest.raises(ValueError) as excinfo:
        scenario_for("IV-Z")
    assert "unknown Table I section 'IV-Z'" in str(excinfo.value)
    assert "'IV-B'" in str(excinfo.value)
    assert isinstance(excinfo.value, UnknownNameError)


def test_unknown_settings_scale_message():
    with pytest.raises(ValueError) as excinfo:
        settings_for_scale("huge")
    assert "unknown settings scale 'huge'" in str(excinfo.value)
    assert "'paper'" in str(excinfo.value) and "'quick'" in str(excinfo.value)


# -- host registry ------------------------------------------------------------------------


def test_builtin_hosts_registered():
    assert set(host_names()) >= {
        "opencraft", "minecraft", "servo", "opencraft-cluster", "servo-cluster",
    }
    assert cluster_host_names() == {"opencraft-cluster", "servo-cluster"}


def test_register_host_decorator_adds_buildable_variant():
    @register_host("test-tiny", cluster=False)
    def build_tiny(engine, game_config=None, servo_config=None):
        from repro.core.servo import build_servo_server

        return build_servo_server(engine, game_config, servo_config, name="test-tiny")

    try:
        host = build_host(
            "test-tiny",
            SimulationEngine(seed=0),
            GameConfig(world_type="flat"),
            servo_config=ServoConfig(provider="azure"),
        )
        assert host.name == "test-tiny"
        assert host.servo.config.provider == "azure"
        assert "test-tiny" in GAME_FACTORIES  # the legacy view tracks the registry
    finally:
        HOSTS.unregister("test-tiny")
    assert "test-tiny" not in GAME_FACTORIES


def test_cluster_games_is_a_live_view():
    from repro.experiments import CLUSTER_GAMES

    @register_host("test-cluster", cluster=True)
    def build_fake(engine, game_config=None, shards=2):
        raise NotImplementedError

    try:
        assert "test-cluster" in CLUSTER_GAMES
        assert "test-cluster" in GAME_FACTORIES
    finally:
        HOSTS.unregister("test-cluster")
    assert "test-cluster" not in CLUSTER_GAMES
    assert {"opencraft-cluster", "servo-cluster"} <= set(CLUSTER_GAMES)


def test_duplicate_host_registration_rejected():
    with pytest.raises(ValueError, match="already registered"):
        register_host("servo")(lambda engine, config=None: None)


def test_builtin_collision_fails_at_registration_site_in_fresh_process():
    # Registering a builtin name before any builtin module is imported must
    # fail immediately (not poison the lazy builtin import on first lookup).
    import subprocess
    import sys
    from pathlib import Path

    script = (
        "from repro.api import register_host, build_host\n"
        "from repro.sim import SimulationEngine\n"
        "try:\n"
        "    register_host('servo')(lambda engine, config=None: None)\n"
        "except ValueError as error:\n"
        "    assert 'already registered' in str(error), error\n"
        "else:\n"
        "    raise SystemExit('collision was not detected')\n"
        "assert build_host('opencraft', SimulationEngine(seed=0)).name == 'opencraft'\n"
        "print('registry survived')\n"
    )
    src = Path(__file__).resolve().parents[2] / "src"
    completed = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
    )
    assert completed.returncode == 0, completed.stderr
    assert "registry survived" in completed.stdout


def test_rejected_knob_names_host_and_knob():
    with pytest.raises(ValueError) as excinfo:
        build_game_server(
            "opencraft", SimulationEngine(seed=0), servo_config=ServoConfig()
        )
    assert "host 'opencraft' does not accept the 'servo_config' knob" in str(excinfo.value)
    with pytest.raises(ValueError) as excinfo:
        build_game_server("servo", SimulationEngine(seed=0), shards=3)
    assert "host 'servo' does not accept the 'shards' knob" in str(excinfo.value)


def test_game_factories_entries_accept_keyword_knobs():
    cluster = GAME_FACTORIES["servo-cluster"](
        SimulationEngine(seed=0),
        GameConfig(world_type="flat"),
        servo_config=ServoConfig(tick_lead=10),
        shards=3,
    )
    assert cluster.shard_count == 3
    baseline = GAME_FACTORIES["opencraft"](
        SimulationEngine(seed=0), GameConfig(world_type="flat")
    )
    assert baseline.name == "opencraft"
    assert len(GAME_FACTORIES) >= 5
    assert sorted(GAME_FACTORIES) == sorted(GAME_FACTORIES.keys())
    assert all(callable(factory) for _, factory in GAME_FACTORIES.items())


# -- scenario registry --------------------------------------------------------------------


def test_builtin_scenarios_registered():
    assert set(scenario_names()) >= {"behaviour_a", "star", "sinc", "random", "custom"}


def test_build_scenario_matches_module_factory():
    from_registry = build_scenario("behaviour_a", players=4, constructs=2, duration_s=3.0)
    direct = behaviour_a(players=4, constructs=2, duration_s=3.0)
    assert from_registry == direct
    assert from_registry.behavior_code == "A"
    star = build_scenario("star", players=6, speed=8)
    assert star.behavior_code == "S8"
    custom = build_scenario("custom", name="mine", players=2, behavior_code="R",
                            world_type="default", duration_s=9.0)
    assert custom.name == "mine" and custom.duration_s == 9.0


def test_build_scenario_invalid_params_list_accepted_ones():
    with pytest.raises(ValueError) as excinfo:
        build_scenario("behaviour_a", players=4, speed=9)
    message = str(excinfo.value)
    assert "invalid params for scenario 'behaviour_a'" in message
    assert "players" in message and "constructs" in message and "duration_s" in message
    with pytest.raises(ValueError, match="invalid params"):
        build_scenario("behaviour_a")  # players is required


def test_register_scenario_decorator():
    @register_scenario("test-lonely")
    def lonely(duration_s: float = 1.0):
        return behaviour_a(players=1, constructs=0, duration_s=duration_s)

    try:
        scenario = build_scenario("test-lonely", duration_s=4.0)
        assert scenario.players == 1 and scenario.duration_s == 4.0
        assert scenario_parameters("test-lonely") == ["duration_s"]
    finally:
        SCENARIOS.unregister("test-lonely")
    assert "test-lonely" not in scenario_names()


def test_deprecated_static_aliases_still_work_and_warn():
    with pytest.deprecated_call():
        alias = Scenario.behaviour_a(players=4, constructs=2, duration_s=3.0)
    assert alias == behaviour_a(players=4, constructs=2, duration_s=3.0)
    with pytest.deprecated_call():
        assert Scenario.star(10, 3).behavior_code == "S3"
    with pytest.deprecated_call():
        assert Scenario.sinc().behavior_code == "Sinc"
    with pytest.deprecated_call():
        assert Scenario.random(10).behavior_code == "R"
