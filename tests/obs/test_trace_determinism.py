"""End-to-end trace determinism and disabled-telemetry bit-identity.

The ISSUE's acceptance gates, as tests:

* two runs with the same seed produce **byte-identical** virtual-time traces
  (after stripping the wall-clock-only ``wallProfile`` section);
* telemetry off (absent or ``enabled: false``) produces bit-identical virtual
  results to telemetry on — recording is observation, never perturbation.
"""

from __future__ import annotations

import json

import pytest

from repro.api import RunSpec, run_spec
from repro.obs.export import chrome_trace, strip_wall_clock, trace_json
from repro.obs.report import trace_breakdown, validate_chrome_trace

#: small Servo cluster exercising every span category: ticks/rounds from the
#: loop, migrations from the coordinator, faas+fault spans from construct
#: offload under an injected failure rate.
CLUSTER_SPEC = {
    "host": {
        "game": "servo-cluster",
        "shards": 2,
        "game_config": {"world_type": "flat"},
    },
    "workload": {"scenario": "behaviour_a", "params": {"players": 4, "constructs": 4}},
    "faults": {"faas": {"failure_rate": 0.2}},
    "seed": 11,
    "duration_s": 2.0,
    "warmup_s": 0.5,
    "telemetry": {"enabled": True},
}


def traced_run(extra: dict | None = None):
    data = dict(CLUSTER_SPEC)
    if extra:
        data["telemetry"] = {**data["telemetry"], **extra}
    return run_spec(RunSpec.from_dict(data))


class TestSameSeedTraces:
    def test_byte_identical_virtual_time_trace(self):
        first = traced_run()
        second = traced_run()
        assert first.telemetry is not None and len(first.telemetry) > 0
        assert trace_json(first.telemetry) == trace_json(second.telemetry)
        assert first.telemetry.virtual_digest() == second.telemetry.virtual_digest()

    def test_profiling_never_leaks_into_the_stripped_trace(self):
        plain = traced_run()
        profiled = traced_run({"profile": True})
        assert profiled.telemetry.profiler is not None
        traced = chrome_trace(profiled.telemetry)
        assert "wallProfile" in traced
        assert strip_wall_clock(traced) == strip_wall_clock(
            chrome_trace(plain.telemetry)
        )
        assert plain.telemetry.virtual_digest() == profiled.telemetry.virtual_digest()

    def test_trace_covers_the_expected_categories(self):
        result = traced_run()
        categories = set(result.telemetry.categories())
        assert {"tick", "round", "faas", "fault"} <= categories
        trace = chrome_trace(result.telemetry)
        assert validate_chrome_trace(trace) == []
        rows, instants = trace_breakdown(trace)
        assert {row.category for row in rows} >= {"tick", "round", "faas"}
        assert instants.get("fault", 0) > 0

    def test_different_seed_changes_the_trace(self):
        first = traced_run()
        data = {**CLUSTER_SPEC, "seed": 12}
        second = run_spec(RunSpec.from_dict(data))
        assert first.telemetry.virtual_digest() != second.telemetry.virtual_digest()


class TestDisabledTelemetryBitIdentity:
    @pytest.fixture(scope="class")
    def runs(self):
        absent = run_spec(
            RunSpec.from_dict({k: v for k, v in CLUSTER_SPEC.items() if k != "telemetry"})
        )
        disabled = run_spec(
            RunSpec.from_dict({**CLUSTER_SPEC, "telemetry": {"enabled": False}})
        )
        enabled = run_spec(RunSpec.from_dict(CLUSTER_SPEC))
        return absent, disabled, enabled

    def test_virtual_results_identical(self, runs):
        absent, disabled, enabled = runs
        assert absent.summary() == disabled.summary() == enabled.summary()
        assert (
            absent.scenario.tick_durations_ms
            == disabled.scenario.tick_durations_ms
            == enabled.scenario.tick_durations_ms
        )
        assert absent.end_virtual_ms == disabled.end_virtual_ms == enabled.end_virtual_ms

    def test_metric_counters_identical(self, runs):
        snapshots = [json.dumps(r.counters, sort_keys=True) for r in runs]
        assert snapshots[0] == snapshots[1] == snapshots[2]

    def test_disabled_runs_carry_no_hub(self, runs):
        absent, disabled, enabled = runs
        assert absent.telemetry is None
        assert disabled.telemetry is None
        assert enabled.telemetry is not None
