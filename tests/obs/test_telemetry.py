"""Unit tests for the telemetry hub, its null object, and its config."""

from __future__ import annotations

import pytest

from repro.obs.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    TelemetryConfig,
    TraceEvent,
    install_telemetry,
)
from repro.sim import SimulationEngine


class TestNullTelemetry:
    def test_disabled_and_noop(self):
        hub = NullTelemetry()
        assert hub.enabled is False
        assert hub.profiler is None
        hub.span("tick", "tick", start_ms=0.0, duration_ms=1.0)
        hub.instant("fault", "kind")
        with hub.profile("anything"):
            pass  # the context must be a working no-op

    def test_engine_default_is_the_shared_null_hub(self):
        assert SimulationEngine(seed=1).telemetry is NULL_TELEMETRY
        assert SimulationEngine(seed=2).telemetry is NULL_TELEMETRY


class TestTelemetry:
    def test_span_recording(self, engine):
        hub = Telemetry(engine)
        assert hub.enabled is True
        hub.span("tick", "tick", start_ms=50.0, duration_ms=4.5, track="server",
                 args={"index": 0})
        assert len(hub) == 1
        event = hub.events[0]
        assert event == TraceEvent(
            phase="X", category="tick", name="tick", track="server",
            ts_ms=50.0, dur_ms=4.5, args={"index": 0},
        )

    def test_instant_defaults_to_engine_clock(self, engine):
        hub = Telemetry(engine)
        engine.advance_to(123.0)
        hub.instant("fault", "faas.failure", track="faults")
        assert hub.events[0].ts_ms == 123.0
        assert hub.events[0].dur_ms == 0.0

    def test_instant_without_engine_requires_timestamp(self):
        hub = Telemetry()
        with pytest.raises(ValueError, match="requires an engine"):
            hub.instant("fault", "kind")
        hub.instant("fault", "kind", ts_ms=5.0)
        assert hub.events[0].ts_ms == 5.0

    def test_filtering_and_categories(self, engine):
        hub = Telemetry(engine)
        hub.span("tick", "tick", start_ms=0.0, duration_ms=1.0)
        hub.span("faas", "fn", start_ms=0.0, duration_ms=2.0)
        hub.instant("fault", "net.drop", ts_ms=1.0)
        assert [e.category for e in hub.spans()] == ["tick", "faas"]
        assert [e.name for e in hub.spans("faas")] == ["fn"]
        assert [e.name for e in hub.instants()] == ["net.drop"]
        assert hub.categories() == ["faas", "fault", "tick"]

    def test_virtual_digest_is_stable_and_order_sensitive(self, engine):
        first, second = Telemetry(engine), Telemetry(engine)
        for hub in (first, second):
            hub.span("tick", "tick", start_ms=0.0, duration_ms=1.0)
            hub.instant("fault", "kind", ts_ms=2.0)
        assert first.virtual_digest() == second.virtual_digest()
        third = Telemetry(engine)
        third.instant("fault", "kind", ts_ms=2.0)
        third.span("tick", "tick", start_ms=0.0, duration_ms=1.0)
        assert third.virtual_digest() != first.virtual_digest()

    def test_profiling_accumulates_but_never_touches_the_digest(self, engine):
        hub = Telemetry(engine, profile=True)
        with hub.profile("server.tick"):
            hub.span("tick", "tick", start_ms=0.0, duration_ms=1.0)
        with hub.profile("server.tick"):
            pass
        stats = hub.profiler.to_dict()
        assert stats["server.tick"]["calls"] == 2
        assert stats["server.tick"]["wall_s"] >= 0.0
        plain = Telemetry(engine)
        plain.span("tick", "tick", start_ms=0.0, duration_ms=1.0)
        assert hub.virtual_digest() == plain.virtual_digest()

    def test_profile_is_noop_without_opt_in(self, engine):
        hub = Telemetry(engine)
        assert hub.profiler is None
        with hub.profile("section"):
            pass


class TestTelemetryConfig:
    def test_defaults_and_round_trip(self):
        config = TelemetryConfig.from_dict({})
        assert config == TelemetryConfig(enabled=True, profile=False)
        full = TelemetryConfig.from_dict(
            {"enabled": True, "profile": True,
             "trace_path": "t.json", "metrics_path": "m.prom"}
        )
        assert TelemetryConfig.from_dict(full.to_dict()) == full
        # The minimal dict stays minimal through the round trip.
        assert config.to_dict() == {"enabled": True}

    @pytest.mark.parametrize(
        "bad, match",
        [
            ({"bogus": 1}, "unknown telemetry key"),
            ({"enabled": "yes"}, "must be a boolean"),
            ({"profile": 1}, "must be a boolean"),
            ({"trace_path": ""}, "non-empty string"),
            ({"metrics_path": 3}, "non-empty string"),
            ([], "must be a mapping"),
        ],
    )
    def test_validation_rejects(self, bad, match):
        with pytest.raises(ValueError, match=match):
            TelemetryConfig.from_dict(bad)


class TestInstallTelemetry:
    def test_enabled_config_installs_a_hub(self, engine):
        hub = install_telemetry(engine, TelemetryConfig())
        assert engine.telemetry is hub
        assert isinstance(hub, Telemetry) and hub.enabled
        assert hub.profiler is None

    def test_profile_flag_creates_the_profiler(self, engine):
        hub = install_telemetry(engine, TelemetryConfig(profile=True))
        assert hub.profiler is not None

    @pytest.mark.parametrize("config", [None, TelemetryConfig(enabled=False)])
    def test_disabled_leaves_the_null_hub(self, engine, config):
        hub = install_telemetry(engine, config)
        assert hub is NULL_TELEMETRY
        assert engine.telemetry is NULL_TELEMETRY
