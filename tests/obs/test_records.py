"""RecordRing: list compatibility uncapped, bounded retention capped."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.obs.records import EvictedRecordError, RecordRing
from repro.server.config import GameConfig


@dataclass(frozen=True)
class FakeRecord:
    index: int
    duration_ms: float


def filled(ring: RecordRing, durations) -> RecordRing:
    for index, duration in enumerate(durations):
        ring.append(FakeRecord(index=index, duration_ms=duration))
    return ring


class TestUncapped:
    def test_behaves_like_the_list_it_replaces(self):
        ring = filled(RecordRing(duration_of="duration_ms"), [1.0, 2.0, 3.0])
        as_list = ring.retained()
        assert len(ring) == 3
        assert ring.dropped == 0
        assert bool(ring) is True
        assert ring[0] == as_list[0] and ring[-1] == as_list[-1]
        assert ring[1:] == as_list[1:]
        assert ring[:] == as_list
        assert list(ring) == as_list
        assert ring == as_list  # list comparison works while nothing dropped
        assert ring == filled(RecordRing(), [1.0, 2.0, 3.0])

    def test_empty(self):
        ring = RecordRing(duration_of="duration_ms")
        assert len(ring) == 0 and not ring
        assert ring[:] == []
        with pytest.raises(IndexError):
            ring[0]
        with pytest.raises(ValueError, match="no records"):
            ring.over_budget_fraction(50.0)

    def test_over_budget_exact_for_any_budget(self):
        ring = filled(RecordRing(duration_of="duration_ms"), [10.0, 60.0, 40.0, 70.0])
        assert ring.over_budget_fraction(50.0) == 0.5
        assert ring.over_budget_fraction(65.0) == 0.25


class TestCapped:
    def test_virtual_indices_and_eviction(self):
        ring = filled(
            RecordRing(cap=3, duration_of="duration_ms"), [0.0, 1.0, 2.0, 3.0, 4.0]
        )
        assert len(ring) == 5  # total appended, NOT retained
        assert ring.dropped == 2
        assert [r.index for r in ring.retained()] == [2, 3, 4]
        assert ring[2].index == 2 and ring[4].index == 4 and ring[-1].index == 4
        assert [r.index for r in ring[3:]] == [3, 4]
        with pytest.raises(EvictedRecordError, match="evicted"):
            ring[0]
        with pytest.raises(EvictedRecordError):
            ring[0:2]
        with pytest.raises(IndexError):
            ring[5]

    def test_incremental_aggregates_survive_eviction(self):
        ring = filled(
            RecordRing(cap=2, duration_of="duration_ms", budget_ms=50.0),
            [10.0, 60.0, 40.0, 70.0, 80.0],
        )
        assert ring.duration_sum_ms == pytest.approx(260.0)
        assert ring.duration_max_ms == 80.0
        assert ring.mean_duration_ms() == pytest.approx(52.0)
        # Exact over the full run via the construction-time budget counter.
        assert ring.over_budget_fraction(50.0) == pytest.approx(3 / 5)

    def test_other_budgets_refuse_once_records_are_gone(self):
        ring = filled(
            RecordRing(cap=2, duration_of="duration_ms", budget_ms=50.0),
            [10.0, 60.0, 40.0],
        )
        with pytest.raises(ValueError, match="evicted"):
            ring.over_budget_fraction(30.0)

    def test_equality_accounts_for_drops(self):
        capped = filled(RecordRing(cap=2, duration_of="duration_ms"), [1.0, 2.0, 3.0])
        same = filled(RecordRing(cap=2, duration_of="duration_ms"), [1.0, 2.0, 3.0])
        uncapped = filled(RecordRing(duration_of="duration_ms"), [1.0, 2.0, 3.0])
        assert capped == same
        assert capped != uncapped  # different history visibility
        assert capped != [FakeRecord(1, 2.0), FakeRecord(2, 3.0)]  # drops bar list eq

    def test_cap_validation(self):
        with pytest.raises(ValueError, match="at least 1"):
            RecordRing(cap=0)


class TestGameServerIntegration:
    def test_config_knob_validates(self):
        with pytest.raises(ValueError, match="tick_record_cap"):
            GameConfig(tick_record_cap=0)
        assert GameConfig(tick_record_cap=100).tick_record_cap == 100
        assert GameConfig().tick_record_cap is None

    def test_capped_server_keeps_summaries_exact(self, engine):
        from repro.experiments.harness import build_game_server

        server = build_game_server(
            "opencraft", engine, GameConfig(world_type="flat", tick_record_cap=10)
        )
        for _ in range(3):
            server.connect_player()
        server.run_ticks(40)
        assert len(server.tick_records) == 40
        assert server.tick_records.dropped == 30
        assert [r.index for r in server.tick_records.retained()] == list(range(30, 40))
        # The over-budget fraction still covers all 40 ticks (the ring's
        # budget is the config's tick interval, which is the default query).
        fraction = server.fraction_of_ticks_over_budget(
            server.config.tick_interval_ms
        )
        assert 0.0 <= fraction <= 1.0
        assert server.stats.ticks_executed == 40

    def test_uncapped_server_matches_capped_virtual_results(self):
        from repro.experiments.harness import build_game_server
        from repro.sim import SimulationEngine

        def run(cap):
            engine = SimulationEngine(seed=77)
            server = build_game_server(
                "opencraft",
                engine,
                GameConfig(world_type="flat", tick_record_cap=cap),
            )
            server.connect_player()
            server.run_ticks(30)
            return server.tick_records.retained()[-5:], engine.now_ms

        capped_tail, capped_end = run(5)
        uncapped_tail, uncapped_end = run(None)
        assert capped_tail == uncapped_tail
        assert capped_end == uncapped_end
