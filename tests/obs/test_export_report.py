"""Exporter and report tests: Chrome schema, JSONL, Prometheus text, breakdown."""

from __future__ import annotations

import json

import pytest

from repro.obs.export import (
    chrome_trace,
    events_jsonl,
    prometheus_text,
    strip_wall_clock,
    trace_json,
    write_chrome_trace,
)
from repro.obs.report import (
    format_trace_report,
    load_trace,
    trace_breakdown,
    validate_chrome_trace,
)
from repro.obs.telemetry import Telemetry
from repro.sim.metrics import MetricRegistry, metric_name


@pytest.fixture
def hub(engine) -> Telemetry:
    hub = Telemetry(engine)
    hub.span("tick", "tick", start_ms=0.0, duration_ms=4.0, track="server",
             args={"index": 0})
    hub.span("tick", "tick", start_ms=50.0, duration_ms=6.0, track="server",
             args={"index": 1})
    hub.span("faas", "generate-terrain", start_ms=10.0, duration_ms=200.0,
             track="faas", args={"status": "ok"})
    hub.instant("fault", "faas.failure", ts_ms=60.0, track="faults")
    return hub


class TestChromeTrace:
    def test_schema_validates_clean(self, hub):
        assert validate_chrome_trace(chrome_trace(hub)) == []

    def test_microsecond_timestamps_and_tracks(self, hub):
        trace = chrome_trace(hub)
        metadata = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        thread_names = {
            e["tid"]: e["args"]["name"] for e in metadata if e["name"] == "thread_name"
        }
        assert set(thread_names.values()) == {"server", "faas", "faults"}
        tick = spans[0]
        assert tick["ts"] == 0.0 and tick["dur"] == 4000.0  # virtual ms -> us
        assert thread_names[tick["tid"]] == "server"
        assert spans[1]["ts"] == 50000.0
        assert instants[0]["s"] == "t"
        assert trace["displayTimeUnit"] == "ms"

    def test_metrics_snapshot_embeds(self, hub):
        metrics = MetricRegistry()
        metrics.increment("migrations", 3)
        trace = chrome_trace(hub, metrics)
        assert trace["metrics"]["counters"] == {"migrations": 3.0}

    def test_wall_profile_quarantine(self, engine):
        hub = Telemetry(engine, profile=True)
        with hub.profile("server.tick"):
            hub.span("tick", "tick", start_ms=0.0, duration_ms=1.0)
        trace = chrome_trace(hub)
        assert "wallProfile" in trace
        stripped = strip_wall_clock(trace)
        assert "wallProfile" not in stripped
        # Trace events themselves never carry wall-clock data.
        plain = Telemetry(engine)
        plain.span("tick", "tick", start_ms=0.0, duration_ms=1.0)
        assert stripped == strip_wall_clock(chrome_trace(plain))

    def test_write_and_load_round_trip(self, hub, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), hub)
        loaded = load_trace(str(path))
        assert validate_chrome_trace(loaded) == []
        assert loaded == json.loads(trace_json(hub))


class TestValidateRejects:
    def test_non_object(self):
        assert validate_chrome_trace([]) != []

    def test_broken_events(self):
        broken = {
            "traceEvents": [
                {"ph": "Z", "name": "x", "pid": 1, "tid": 1},
                {"ph": "X", "name": "", "cat": "c", "ts": 0, "dur": 1, "pid": 1, "tid": 1},
                {"ph": "X", "name": "x", "cat": "c", "ts": -1, "dur": 1, "pid": 1, "tid": 1},
                {"ph": "X", "name": "x", "cat": "c", "ts": 0, "pid": 1, "tid": 1},
                {"ph": "i", "name": "x", "cat": "c", "ts": 0, "pid": 1, "tid": 1, "s": "q"},
                {"ph": "X", "name": "x", "cat": "c", "ts": 0, "dur": 1, "pid": "a", "tid": 1},
            ]
        }
        problems = validate_chrome_trace(broken)
        assert len(problems) == 6


class TestJsonl:
    def test_one_canonical_line_per_event(self, hub):
        lines = events_jsonl(hub).strip().split("\n")
        assert len(lines) == 4
        first = json.loads(lines[0])
        assert first == {
            "ph": "X", "cat": "tick", "name": "tick", "track": "server",
            "ts_ms": 0.0, "dur_ms": 4.0, "args": {"index": 0},
        }
        assert json.loads(lines[3])["ph"] == "i"


class TestPrometheus:
    def test_counters_histograms_series(self):
        metrics = MetricRegistry()
        metrics.increment("migrations", 2)
        for value in (10.0, 20.0, 30.0):
            metrics.histogram("tick_duration_ms").record(value)
        metrics.histogram(metric_name("tick_duration_ms", shard="shard-0")).record(5.0)
        metrics.series("players_over_time").record(0.0, 4.0)
        text = prometheus_text(metrics)
        assert "# TYPE repro_migrations counter\nrepro_migrations 2.0" in text
        assert text.count("# TYPE repro_tick_duration_ms summary") == 1
        assert 'repro_tick_duration_ms{quantile="0.5"} 20.0' in text
        assert 'repro_tick_duration_ms{quantile="0.5",shard="shard-0"} 5.0' in text
        assert 'repro_tick_duration_ms_count{shard="shard-0"} 1.0' in text
        assert "repro_tick_duration_ms_sum 60.0" in text
        assert "# TYPE repro_players_over_time gauge" in text
        assert "repro_players_over_time 4.0" in text
        assert "repro_players_over_time_samples 1.0" in text

    def test_deterministic_output(self):
        def build():
            metrics = MetricRegistry()
            metrics.increment("b")
            metrics.increment("a")
            metrics.histogram("h").record(1.0)
            return prometheus_text(metrics)

        assert build() == build()


class TestReport:
    def test_breakdown_aggregates_by_category(self, hub):
        rows, instants = trace_breakdown(chrome_trace(hub))
        by_category = {row.category: row for row in rows}
        assert by_category["tick"].count == 2
        assert by_category["tick"].total_ms == pytest.approx(10.0)
        assert by_category["tick"].mean_ms == pytest.approx(5.0)
        assert by_category["tick"].max_ms == pytest.approx(6.0)
        assert by_category["faas"].share == pytest.approx(200.0 / 210.0)
        assert rows[0].category == "faas"  # sorted by descending total
        assert instants == {"fault": 1}

    def test_format_lists_every_category(self, hub):
        text = format_trace_report(chrome_trace(hub), source="t.json")
        for needle in ("trace: t.json", "tick", "faas", "fault", "share"):
            assert needle in text

    def test_load_trace_rejects_non_object(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="JSON object"):
            load_trace(str(path))
