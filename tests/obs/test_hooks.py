"""Per-subsystem instrumentation hooks record the expected virtual-time spans."""

from __future__ import annotations

import pytest

from repro.core.terrain_service import (
    TERRAIN_GENERATION_FUNCTION,
    ServerlessTerrainProvider,
    TerrainRequest,
    make_terrain_handler,
)
from repro.faas.function import FunctionDefinition
from repro.faas.platform import FaasPlatform
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.obs.telemetry import Telemetry, TelemetryConfig, install_telemetry
from repro.server.config import GameConfig
from repro.world.coords import ChunkPos


@pytest.fixture
def hub(engine) -> Telemetry:
    return install_telemetry(engine, TelemetryConfig())


def terrain_platform(engine) -> FaasPlatform:
    platform = FaasPlatform(engine)
    platform.register(
        FunctionDefinition(
            name=TERRAIN_GENERATION_FUNCTION,
            handler=make_terrain_handler(),
            memory_mb=1024,
        )
    )
    return platform


class TestTickSpans:
    def test_every_tick_records_one_span(self, engine, hub):
        from repro.experiments.harness import build_game_server

        server = build_game_server("opencraft", engine, GameConfig(world_type="flat"))
        server.connect_player()
        server.run_ticks(5)
        spans = hub.spans("tick")
        assert len(spans) == 5
        assert [span.args["index"] for span in spans] == list(range(5))
        assert all(span.track == server.name for span in spans)
        assert [span.ts_ms for span in spans] == [
            record.start_ms for record in server.tick_records
        ]
        assert [span.dur_ms for span in spans] == [
            record.duration_ms for record in server.tick_records
        ]


class TestFaasSpans:
    def test_invocation_span_matches_the_record(self, engine, hub):
        platform = terrain_platform(engine)
        invocation = platform.invoke(
            TERRAIN_GENERATION_FUNCTION,
            TerrainRequest(world_type="flat", seed=3, cx=0, cz=0),
        )
        (span,) = hub.spans("faas")
        assert span.name == TERRAIN_GENERATION_FUNCTION
        assert span.ts_ms == invocation.submitted_ms
        assert span.dur_ms == invocation.latency_ms
        assert span.args["status"] == "ok"
        assert span.args["request_id"] == invocation.request_id

    def test_throttled_attempt_also_traced(self, engine, hub):
        platform = terrain_platform(engine)
        platform.fault_injector = FaultInjector(
            engine, FaultPlan.from_dict({"faas": {"throttle_rate": 1.0}})
        )
        platform.invoke(
            TERRAIN_GENERATION_FUNCTION,
            TerrainRequest(world_type="flat", seed=3, cx=0, cz=0),
        )
        (span,) = hub.spans("faas")
        assert span.args["status"] == "throttled"
        # ... and the injected fault shows as a fault-category instant.
        assert [e.name for e in hub.instants("fault")] == ["faas.throttled"]


class TestTerrainSpans:
    def test_request_reply_span_and_fallback_instant(self, engine, hub):
        platform = terrain_platform(engine)
        platform.fault_injector = FaultInjector(
            engine, FaultPlan.from_dict({"faas": {"failure_rate": 1.0}})
        )
        provider = ServerlessTerrainProvider(
            engine, platform, world_type="flat", seed=3, max_attempts=2
        )
        delivered = []
        provider.request(ChunkPos(1, 2), lambda chunk, result: delivered.append(result))
        engine.run_until_idle()
        assert len(delivered) == 1
        assert delivered[0].source == "local-fallback"
        spans = hub.spans("terrain")
        assert len(spans) == 2  # one per attempt
        assert [span.args["attempt"] for span in spans] == [1, 2]
        assert all(span.args["status"] == "failure" for span in spans)
        assert all(
            span.args["cx"] == 1 and span.args["cz"] == 2 for span in spans
        )
        fallbacks = [e for e in hub.instants("terrain") if e.name == "local-fallback"]
        assert len(fallbacks) == 1


class TestFaultFoldIn:
    def test_record_hits_timeline_and_telemetry(self, engine, hub):
        injector = FaultInjector(
            engine, FaultPlan.from_dict({"faas": {"failure_rate": 0.5}})
        )
        engine.advance_to(42.0)
        injector.record("shard.kill", "shard=1")
        assert injector.timeline.events[-1].kind == "shard.kill"
        (instant,) = hub.instants("fault")
        assert instant.name == "shard.kill"
        assert instant.ts_ms == 42.0
        assert instant.args == {"detail": "shard=1"}
        assert instant.track == "faults"

    def test_timeline_digest_unchanged_by_telemetry(self):
        from repro.sim import SimulationEngine

        def digest(with_telemetry: bool) -> str:
            engine = SimulationEngine(seed=5)
            if with_telemetry:
                install_telemetry(engine, TelemetryConfig())
            injector = FaultInjector(
                engine, FaultPlan.from_dict({"faas": {"failure_rate": 1.0}})
            )
            for _ in range(10):
                injector.faas_outcome("fn")
            return injector.timeline.digest()

        assert digest(True) == digest(False)
