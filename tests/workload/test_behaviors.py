"""Tests for player behaviours (Table II) and bots."""

import math

import numpy as np
import pytest

from repro.net.message import MessageKind
from repro.workload.behavior import (
    BoundedAreaBehavior,
    IncreasingSpeedStarBehavior,
    RandomBehavior,
    StarBehavior,
    behavior_by_code,
)
from repro.world.coords import BlockPos

SPAWN = BlockPos(0, 65, 0)


def drive(behavior, ticks, rng=None, start=SPAWN):
    """Run a behaviour for a number of ticks, applying its move messages."""
    rng = rng or np.random.default_rng(0)
    position = start
    messages = []
    for tick in range(ticks):
        out = behavior.act(1, position, SPAWN, tick, 50.0, rng)
        messages.extend(out)
        for message in out:
            if message.kind is MessageKind.MOVE:
                position = BlockPos(
                    message.payload["x"], message.payload["y"], message.payload["z"]
                )
    return position, messages


def test_bounded_behavior_stays_within_radius():
    behavior = BoundedAreaBehavior(radius_blocks=10.0, speed_blocks_per_s=4.0)
    position, messages = drive(behavior, 600)
    assert abs(position.x - SPAWN.x) <= 11
    assert abs(position.z - SPAWN.z) <= 11
    assert all(message.kind is MessageKind.MOVE for message in messages)


def test_star_behavior_moves_away_at_configured_speed():
    behavior = StarBehavior(speed_blocks_per_s=3.0, direction_index=0, direction_count=8)
    position, _ = drive(behavior, 200)  # 10 seconds
    distance = SPAWN.horizontal_distance_to(position)
    assert distance == pytest.approx(30.0, abs=2.0)


def test_star_behavior_directions_fan_out():
    a, _ = drive(StarBehavior(3.0, direction_index=0, direction_count=4), 100)
    b, _ = drive(StarBehavior(3.0, direction_index=1, direction_count=4), 100)
    assert a != b
    # Directions 0 and 1 are 90 degrees apart.
    angle_a = math.atan2(a.z - SPAWN.z, a.x - SPAWN.x)
    angle_b = math.atan2(b.z - SPAWN.z, b.x - SPAWN.x)
    assert abs(abs(angle_a - angle_b) - math.pi / 2) < 0.2


def test_sinc_behavior_speed_increases_over_time():
    behavior = IncreasingSpeedStarBehavior(speed_increase_interval_s=10.0)
    assert behavior.current_speed(0, 50.0) == 1.0
    assert behavior.current_speed(200, 50.0) == 2.0
    assert behavior.current_speed(900, 50.0) == 5.0


def test_random_behavior_emits_a_mix_of_message_kinds():
    behavior = RandomBehavior()
    rng = np.random.default_rng(7)
    kinds = []
    position = SPAWN
    for tick in range(4000):
        for message in behavior.act(1, position, SPAWN, tick, 50.0, rng):
            kinds.append(message.kind)
            if message.kind is MessageKind.MOVE:
                position = BlockPos(
                    message.payload["x"], message.payload["y"], message.payload["z"]
                )
    observed = {kind: kinds.count(kind) for kind in set(kinds)}
    assert observed.get(MessageKind.MOVE, 0) > 0
    assert (observed.get(MessageKind.PLACE_BLOCK, 0) + observed.get(MessageKind.BREAK_BLOCK, 0)) > 0
    assert (observed.get(MessageKind.CHAT, 0) + observed.get(MessageKind.SET_INVENTORY, 0)) > 0


def test_random_behavior_activity_mix_follows_table_ii_probabilities():
    """The activity draw itself follows the Table II mix (40/30/20/5/5)."""
    behavior = RandomBehavior()
    rng = np.random.default_rng(11)
    moves = edits = idles = chats = inventories = 0
    for _ in range(3000):
        behavior._target = None
        behavior._idle_ticks = 0
        messages = behavior._pick_activity(1, SPAWN, rng)
        if behavior._target is not None:
            moves += 1
        elif behavior._idle_ticks > 0:
            idles += 1
        elif messages and messages[0].kind in (MessageKind.PLACE_BLOCK, MessageKind.BREAK_BLOCK):
            edits += 1
        elif messages and messages[0].kind is MessageKind.CHAT:
            chats += 1
        elif messages and messages[0].kind is MessageKind.SET_INVENTORY:
            inventories += 1
    total = 3000
    assert moves / total == pytest.approx(0.40, abs=0.04)
    assert edits / total == pytest.approx(0.30, abs=0.04)
    assert idles / total == pytest.approx(0.20, abs=0.04)
    assert chats / total == pytest.approx(0.05, abs=0.02)
    assert inventories / total == pytest.approx(0.05, abs=0.02)


def test_random_behavior_is_deterministic_for_a_seed():
    def run():
        behavior = RandomBehavior()
        rng = np.random.default_rng(3)
        return drive(behavior, 500, rng=rng)[0]

    assert run() == run()


def test_behavior_by_code_dispatch():
    assert isinstance(behavior_by_code("A"), BoundedAreaBehavior)
    assert isinstance(behavior_by_code("R"), RandomBehavior)
    assert isinstance(behavior_by_code("Sinc"), IncreasingSpeedStarBehavior)
    star = behavior_by_code("S8", direction_index=2)
    assert isinstance(star, StarBehavior)
    assert star.speed_blocks_per_s == 8.0
    with pytest.raises(ValueError):
        behavior_by_code("Sfast")
    with pytest.raises(ValueError):
        behavior_by_code("X")
