"""Tests for bot swarms, join schedules and scenarios."""

import pytest

from repro.server import GameConfig, make_opencraft
from repro.sim import SimulationEngine
from repro.workload import JoinSchedule, Scenario, behaviour_a, random_walk, sinc, star
from repro.workload.behavior import BoundedAreaBehavior
from repro.workload.bots import BotSwarm
from repro.workload.constructs import place_standard_constructs
from repro.workload.scenarios import TABLE_I_SCENARIOS


def make_server(seed=1):
    engine = SimulationEngine(seed=seed)
    server = make_opencraft(engine, GameConfig(world_type="flat"))
    server.chunks.preload_area(server.config.spawn_position, 96.0)
    return server


def test_all_at_start_schedule_connects_every_bot_immediately():
    server = make_server()
    swarm = BotSwarm([BoundedAreaBehavior() for _ in range(5)], JoinSchedule.all_at_start())
    driver = swarm.install(server)
    assert swarm.connected_count == 5
    server.run_ticks(5, before_tick=driver)
    assert server.player_count == 5


def test_staggered_schedule_adds_players_over_time():
    server = make_server()
    swarm = BotSwarm(
        [BoundedAreaBehavior() for _ in range(6)], JoinSchedule.staggered(interval_s=1.0)
    )
    driver = swarm.install(server)
    assert swarm.connected_count == 0
    server.run_for_seconds(3.2, before_tick=driver)
    assert 2 <= server.player_count <= 4
    server.run_for_seconds(5.0, before_tick=driver)
    assert server.player_count == 6


def test_bots_generate_actions_every_tick():
    server = make_server()
    swarm = BotSwarm([BoundedAreaBehavior() for _ in range(3)])
    driver = swarm.install(server)
    server.run_ticks(20, before_tick=driver)
    assert server.stats.messages_processed >= 40


def test_place_standard_constructs_registers_them():
    server = make_server()
    constructs = place_standard_constructs(server, 7)
    assert len(constructs) == 7
    assert server.construct_count == 7
    with pytest.raises(ValueError):
        place_standard_constructs(server, -1)


def test_scenario_validation():
    with pytest.raises(ValueError):
        Scenario(name="bad", players=-1)
    with pytest.raises(ValueError):
        Scenario(name="bad", players=1, duration_s=0)


def test_scenario_run_collects_tick_durations_and_qos():
    server = make_server()
    scenario = behaviour_a(players=4, constructs=2, duration_s=3.0)
    scenario.warmup_s = 1.0
    result = scenario.run(server)
    expected_ticks = int(scenario.duration_s * 20)
    assert abs(len(result.tick_durations_ms) - expected_ticks) <= 3
    assert result.players == 4
    assert result.constructs == 2
    assert 0.0 <= result.fraction_over_budget() <= 1.0
    assert result.meets_qos() == (result.fraction_over_budget() < 0.05)
    stats = result.tick_stats()
    assert stats.minimum > 0
    assert result.minimum_view_range() > 0


def test_scenario_factories_cover_table_i_codes():
    assert behaviour_a(10, 5).behavior_code == "A"
    assert star(10, 3).behavior_code == "S3"
    assert star(10, 8).behavior_code == "S8"
    assert sinc().behavior_code == "Sinc"
    assert random_walk(10).behavior_code == "R"


def test_table_i_registry_contains_all_sections():
    assert set(TABLE_I_SCENARIOS) == {"IV-B", "IV-C", "IV-D", "IV-E", "IV-F", "IV-G"}
    for scenario in TABLE_I_SCENARIOS.values():
        assert scenario.players >= 1
        assert scenario.duration_s > 0
