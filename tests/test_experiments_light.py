"""Fast tests of the experiment harness (the heavy sweeps run as benchmarks)."""

import pytest

from repro.experiments import EXPERIMENTS, ExperimentSettings, build_game_server, run_experiment
from repro.experiments.fig03_storage_latency import run_fig03
from repro.experiments.fig11_lambda_memory import run_fig11
from repro.experiments.fig12_terrain_scalability import supported_players_from_series
from repro.experiments.fig13_cache_latency import build_access_trace, run_fig13
from repro.experiments.harness import format_table
from repro.experiments.max_players import find_max_players
from repro.experiments.sec4g_construct_perf import run_sec4g
from repro.experiments.tab01_overview import format_tab01, run_tab01, scenario_for
from repro.server import GameConfig
from repro.sim import SimulationEngine

TINY = ExperimentSettings(duration_s=4.0, player_step=100, max_players=200, repetitions=1,
                          latency_samples=200)


def test_registry_lists_every_reproduced_artifact():
    expected = {
        "fig01", "fig03", "fig07a", "fig07b", "fig08", "fig09", "fig10",
        "fig11", "fig12a", "fig12b", "fig13", "sec4g", "tab01", "cluster",
        "availability", "flash-crowd",
    }
    assert set(EXPERIMENTS) == expected
    with pytest.raises(KeyError):
        run_experiment("fig99")


def test_build_game_server_dispatch():
    engine = SimulationEngine(seed=0)
    assert build_game_server("opencraft", engine, GameConfig(world_type="flat")).name == "opencraft"
    assert build_game_server("servo", SimulationEngine(seed=0), GameConfig(world_type="flat")).name == "servo"
    with pytest.raises(ValueError):
        build_game_server("fortnite", engine)


def test_build_game_server_unknown_name_lists_cluster_variants():
    with pytest.raises(ValueError) as excinfo:
        build_game_server("minecraft-cluster", SimulationEngine(seed=0))
    assert "servo-cluster" in str(excinfo.value)
    assert "opencraft-cluster" in str(excinfo.value)


def test_build_game_server_cluster_dispatch():
    cluster = build_game_server(
        "servo-cluster", SimulationEngine(seed=0), GameConfig(world_type="flat"), shards=2
    )
    assert cluster.name == "servo-cluster"
    assert cluster.shard_count == 2
    baseline = build_game_server(
        "opencraft-cluster", SimulationEngine(seed=0), GameConfig(world_type="flat"), shards=3
    )
    assert baseline.name == "opencraft-cluster"
    assert [shard.name for shard in baseline.shards] == [
        "opencraft-shard-0", "opencraft-shard-1", "opencraft-shard-2",
    ]


def test_cluster_scalability_experiment_tiny_run():
    from repro.experiments.cluster_scalability import (
        format_cluster_scalability,
        run_cluster_scalability,
    )

    tiny = TINY.scaled(duration_s=2.0, max_players=100, warmup_s=1.0)
    result = run_cluster_scalability(tiny, game="servo-cluster", shard_counts=(1, 2))
    assert result.row(1).max_players > 0
    assert result.row(2).max_players >= result.row(1).max_players
    report = format_cluster_scalability(result)
    assert "shards" in report and "migrations" in report


def test_format_table_aligns_columns():
    table = format_table(["col", "x"], [["a", "1"], ["bbbb", "22"]])
    lines = table.splitlines()
    assert len(lines) == 4
    assert len(set(len(line.rstrip()) for line in lines[2:])) <= 2


def test_settings_scaled_returns_modified_copy():
    scaled = TINY.scaled(duration_s=99.0)
    assert scaled.duration_s == 99.0
    assert TINY.duration_s == 4.0


def test_find_max_players_monotone_result():
    result = find_max_players("opencraft", constructs=0, settings=TINY)
    assert result.max_players >= 100
    assert result.evaluated


def test_fig03_runs_and_orders_tiers():
    result = run_fig03(TINY)
    assert result.stats("player", "premium").median < result.stats("terrain", "standard").median


def test_fig11_runs_with_few_invocations():
    result = run_fig11(TINY, memory_configs_mb=(512, 4096), invocations_per_config=5)
    assert result.stats(512).mean > result.stats(4096).mean


def test_fig13_trace_and_run():
    trace = build_access_trace(players=2, duration_s=10.0)
    assert trace.all_chunks
    result = run_fig13(TINY, players=2, duration_s=10.0)
    assert set(result.latencies_ms) == {"local", "serverless", "serverless+cache"}


def test_sec4g_small_sample_run():
    result = run_sec4g(TINY, sizes=(60,), samples_per_size=3)
    assert result.p5_rate(60) > 20.0


def test_supported_players_series_analysis():
    times = [float(t) for t in range(0, 20_000, 50)]
    durations = [10.0 if t < 10_000 else 80.0 for t in times]
    players = [t / 1000.0 for t in times]
    supported = supported_players_from_series(times, durations, times, players)
    assert 5 <= supported <= 10
    # A series that never crosses supports everyone offered.
    all_good = supported_players_from_series(times, [10.0] * len(times), times, players)
    assert all_good == int(max(players))
    with pytest.raises(ValueError):
        supported_players_from_series([], [], [], [])


def test_tab01_overview_and_scenarios():
    overview = run_tab01()
    rendered = format_tab01(overview)
    assert "IV-B" in rendered
    assert scenario_for("IV-D").behavior_code == "Sinc"
    with pytest.raises(KeyError):
        scenario_for("IV-Z")
