"""Tests for named random streams."""

from repro.sim.rng import RandomStreams


def test_same_seed_and_name_give_identical_sequences():
    first = RandomStreams(seed=7).stream("players")
    second = RandomStreams(seed=7).stream("players")
    assert list(first.integers(0, 1000, size=10)) == list(second.integers(0, 1000, size=10))


def test_different_names_give_independent_sequences():
    streams = RandomStreams(seed=7)
    a = list(streams.stream("a").integers(0, 1000, size=10))
    b = list(streams.stream("b").integers(0, 1000, size=10))
    assert a != b


def test_different_seeds_give_different_sequences():
    a = list(RandomStreams(seed=1).stream("x").integers(0, 10 ** 6, size=8))
    b = list(RandomStreams(seed=2).stream("x").integers(0, 10 ** 6, size=8))
    assert a != b


def test_stream_is_cached_per_name():
    streams = RandomStreams(seed=3)
    assert streams.stream("same") is streams.stream("same")


def test_fork_derives_reproducible_independent_streams():
    base = RandomStreams(seed=11)
    fork_a1 = base.fork("rep-1")
    fork_a2 = RandomStreams(seed=11).fork("rep-1")
    fork_b = base.fork("rep-2")
    assert fork_a1.seed == fork_a2.seed
    assert fork_a1.seed != fork_b.seed


def test_reset_restarts_streams():
    streams = RandomStreams(seed=5)
    first_draw = streams.stream("x").random()
    streams.reset()
    assert streams.stream("x").random() == first_draw
