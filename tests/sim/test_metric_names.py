"""metric_name/split_metric_name helpers and the MetricRegistry snapshot."""

from __future__ import annotations

import pytest

from repro.sim.metrics import MetricRegistry, metric_name, split_metric_name


class TestMetricName:
    def test_bare_and_sharded(self):
        assert metric_name("tick_duration_ms") == "tick_duration_ms"
        assert (
            metric_name("tick_duration_ms", shard="servo-shard-0")
            == "tick_duration_ms:servo-shard-0"
        )

    @pytest.mark.parametrize(
        "base, shard",
        [("tick_duration_ms", None), ("tick_duration_ms", "servo-shard-3"), ("m", "s")],
    )
    def test_split_inverts(self, base, shard):
        assert split_metric_name(metric_name(base, shard=shard)) == (base, shard)

    def test_split_of_bare_name(self):
        assert split_metric_name("migrations") == ("migrations", None)


class TestRegistrySnapshot:
    def test_pinned_snapshot(self):
        registry = MetricRegistry()
        registry.increment("migrations", 2)
        registry.increment("faas_failures")
        for value in (1.0, 2.0, 3.0, 4.0):
            registry.histogram("tick_duration_ms").record(value)
        registry.histogram("empty_h")
        registry.series("players").record(0.0, 1.0)
        registry.series("players").record(100.0, 3.0)
        registry.series("empty_s")
        assert registry.to_dict() == {
            "counters": {"faas_failures": 1.0, "migrations": 2.0},
            "histograms": {
                "empty_h": {"count": 0.0},
                "tick_duration_ms": {
                    "min": 1.0,
                    "p5": 1.15,
                    "p25": 1.75,
                    "median": 2.5,
                    "p75": 3.25,
                    "p95": 3.8499999999999996,
                    "max": 4.0,
                    "mean": 2.5,
                    "count": 4.0,
                },
            },
            "series": {
                "empty_s": {"count": 0.0},
                "players": {
                    "count": 2.0,
                    "start_ms": 0.0,
                    "end_ms": 100.0,
                    "mean": 2.0,
                    "last": 3.0,
                },
            },
        }

    def test_snapshot_keys_are_sorted(self):
        registry = MetricRegistry()
        registry.increment("b")
        registry.increment("a")
        snapshot = registry.to_dict()
        assert list(snapshot["counters"]) == ["a", "b"]

    def test_empty_registry(self):
        assert MetricRegistry().to_dict() == {
            "counters": {},
            "histograms": {},
            "series": {},
        }
