"""Tests for metric containers and summary statistics."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.metrics import (
    Histogram,
    MetricRegistry,
    TimeSeries,
    boxplot_stats,
    fraction_exceeding,
    inverse_cdf,
    percentile,
)


def test_percentile_basic_values():
    samples = list(range(1, 101))
    assert percentile(samples, 0) == 1
    assert percentile(samples, 100) == 100
    assert percentile(samples, 50) == pytest.approx(50.5)


def test_percentile_rejects_empty_and_out_of_range():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 101)


def test_boxplot_stats_fields_are_ordered():
    stats = boxplot_stats([5.0, 1.0, 3.0, 2.0, 4.0])
    assert stats.minimum <= stats.p5 <= stats.p25 <= stats.median
    assert stats.median <= stats.p75 <= stats.p95 <= stats.maximum
    assert stats.count == 5
    assert stats.mean == pytest.approx(3.0)


def test_boxplot_stats_as_dict_round_trip():
    stats = boxplot_stats([1.0, 2.0, 3.0])
    as_dict = stats.as_dict()
    assert as_dict["median"] == stats.median
    assert as_dict["count"] == 3


def test_inverse_cdf_fractions_decrease_with_threshold():
    samples = [1.0, 2.0, 5.0, 10.0, 100.0]
    points = inverse_cdf(samples, [0.0, 2.0, 50.0, 1000.0])
    fractions = [fraction for _, fraction in points]
    assert fractions[0] == 1.0
    assert fractions == sorted(fractions, reverse=True)
    assert fractions[-1] == 0.0


def test_fraction_exceeding_counts_strictly_greater():
    assert fraction_exceeding([10.0, 50.0, 60.0, 70.0], 50.0) == pytest.approx(0.5)


def test_histogram_records_and_summarises():
    histogram = Histogram(name="tick")
    histogram.extend([10.0, 20.0, 30.0])
    histogram.record(40.0)
    assert len(histogram) == 4
    assert histogram.mean() == pytest.approx(25.0)
    assert histogram.maximum() == 40.0
    assert histogram.fraction_exceeding(25.0) == pytest.approx(0.5)


def test_histogram_empty_raises_on_summary():
    histogram = Histogram(name="empty")
    with pytest.raises(ValueError):
        histogram.mean()


def test_time_series_window_and_rolling():
    series = TimeSeries(name="tick")
    for index in range(100):
        series.record(time_ms=index * 50.0, value=float(index))
    window = series.window(0.0, 500.0)
    assert len(window) == 10
    rolling = series.rolling(window_ms=2500.0)
    assert rolling, "rolling summary should not be empty"
    centre, mean, p5, p95 = rolling[0]
    assert p5 <= mean <= p95


def test_metric_registry_creates_and_reuses_metrics():
    registry = MetricRegistry()
    assert registry.histogram("a") is registry.histogram("a")
    assert registry.series("b") is registry.series("b")
    registry.increment("count", 2.0)
    registry.increment("count")
    assert registry.counter("count") == 3.0
    assert registry.counter("missing") == 0.0
    assert registry.histogram_names == ["a"]
    assert registry.series_names == ["b"]
    assert registry.counter_names == ["count"]


@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=200))
def test_boxplot_stats_bounds_hold_for_any_sample(samples):
    stats = boxplot_stats(samples)
    tolerance = 1e-9 * max(1.0, abs(stats.maximum))
    assert stats.minimum <= stats.median <= stats.maximum
    assert stats.minimum - tolerance <= stats.mean <= stats.maximum + tolerance
    assert stats.count == len(samples)


@given(
    st.lists(st.floats(min_value=0.0, max_value=1e4, allow_nan=False), min_size=1, max_size=100),
    st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
)
def test_fraction_exceeding_is_a_probability(samples, threshold):
    fraction = fraction_exceeding(samples, threshold)
    assert 0.0 <= fraction <= 1.0
