"""Streaming-metrics equivalence: numpy-buffered containers vs the old lists.

``Histogram`` and ``TimeSeries`` were rewritten on amortised-append numpy
buffers with memoised sorted views and ``searchsorted`` window queries.  The
public API and the numeric results must match the original list-based
implementation exactly; these tests recompute the original formulas inline
and compare bit for bit on fixed inputs.
"""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sim.metrics import Histogram, TimeSeries, inverse_cdf

#: a fixed, awkward sample set: duplicates, spikes, non-round floats
FIXED_SAMPLES = [
    12.25, 3.0, 3.0, 47.125, 0.5, 18.0, 18.0, 18.0, 2.875, 96.5,
    5.0, 33.333333333333336, 0.5, 41.0, 7.75, 12.25, 64.0, 1.0, 29.5, 8.125,
]


def reference_boxplot_dict(samples):
    values = np.asarray(list(samples), dtype=float)
    return {
        "min": float(values.min()),
        "p5": float(np.percentile(values, 5)),
        "p25": float(np.percentile(values, 25)),
        "median": float(np.percentile(values, 50)),
        "p75": float(np.percentile(values, 75)),
        "p95": float(np.percentile(values, 95)),
        "max": float(values.max()),
        "mean": float(values.mean()),
        "count": float(values.size),
    }


def test_histogram_boxplot_matches_pre_refactor_values_exactly():
    histogram = Histogram(name="tick")
    histogram.extend(FIXED_SAMPLES)
    assert histogram.boxplot().as_dict() == reference_boxplot_dict(FIXED_SAMPLES)


def test_histogram_percentile_and_summaries_match_reference():
    histogram = Histogram(name="tick")
    for value in FIXED_SAMPLES:
        histogram.record(value)
    reference = np.asarray(FIXED_SAMPLES, dtype=float)
    for q in (0.0, 1.0, 5.0, 37.5, 50.0, 99.0, 100.0):
        assert histogram.percentile(q) == float(np.percentile(reference, q))
    assert histogram.mean() == float(reference.mean())
    assert histogram.maximum() == float(reference.max())
    for threshold in (0.0, 0.5, 18.0, 96.5, 1000.0):
        expected = float(np.count_nonzero(reference > threshold)) / reference.size
        assert histogram.fraction_exceeding(threshold) == expected


def test_histogram_memoised_queries_survive_interleaved_appends():
    histogram = Histogram(name="tick")
    histogram.extend(FIXED_SAMPLES[:10])
    first = histogram.percentile(95)
    assert first == float(np.percentile(np.asarray(FIXED_SAMPLES[:10]), 95))
    histogram.record(200.0)  # invalidates the memoised sorted view
    grown = FIXED_SAMPLES[:10] + [200.0]
    assert histogram.percentile(95) == float(np.percentile(np.asarray(grown), 95))
    assert histogram.samples == grown
    assert list(histogram) == grown
    assert len(histogram) == len(grown)


def test_histogram_buffer_growth_preserves_insertion_order():
    histogram = Histogram(name="big")
    values = [float(i % 97) * 1.5 for i in range(10_000)]
    for value in values:
        histogram.record(value)
    assert histogram.samples == values
    assert histogram.mean() == float(np.asarray(values).mean())


def reference_rolling(times, values, window_ms, step_ms=None):
    """The original O(n²) rolling implementation, verbatim."""
    if not values:
        return []
    step = float(step_ms if step_ms is not None else window_ms)
    start = min(times)
    end = max(times)
    out = []
    t = start
    while t <= end + 1e-9:
        window = [v for tt, v in zip(times, values) if t <= tt < t + window_ms]
        if window:
            arr = np.asarray(window)
            out.append(
                (
                    float(t + window_ms / 2.0),
                    float(arr.mean()),
                    float(np.percentile(arr, 5)),
                    float(np.percentile(arr, 95)),
                )
            )
        t += step
    return out


def test_time_series_rolling_matches_pre_refactor_exactly():
    series = TimeSeries(name="tick")
    times = [index * 50.0 for index in range(400)]
    values = [float((index * 7919) % 113) / 3.0 for index in range(400)]
    for t, v in zip(times, values):
        series.record(t, v)
    for window_ms, step_ms in ((2500.0, None), (1000.0, 250.0), (50.0, 50.0)):
        assert series.rolling(window_ms, step_ms) == reference_rolling(
            times, values, window_ms, step_ms
        )


def test_time_series_window_half_open_semantics():
    series = TimeSeries(name="tick")
    for index in range(100):
        series.record(index * 50.0, float(index))
    assert series.window(0.0, 500.0) == [float(i) for i in range(10)]
    # Half-open: a sample exactly at end_ms is excluded, at start_ms included.
    assert series.window(450.0, 500.0) == [9.0]


def test_time_series_with_out_of_order_times_falls_back_to_scan():
    series = TimeSeries(name="ooo")
    points = [(100.0, 1.0), (50.0, 2.0), (150.0, 3.0), (25.0, 4.0)]
    for t, v in points:
        series.record(t, v)
    times = [t for t, _ in points]
    values = [v for _, v in points]
    assert series.window(30.0, 120.0) == [
        v for t, v in points if 30.0 <= t < 120.0
    ]
    assert series.rolling(60.0) == reference_rolling(times, values, 60.0)


def test_time_series_clear_resets_monotonic_tracking():
    series = TimeSeries(name="tick")
    series.record(100.0, 1.0)
    series.record(50.0, 2.0)  # out of order
    series.clear()
    assert len(series) == 0
    series.record(10.0, 1.0)
    series.record(20.0, 2.0)
    assert series.window(0.0, 30.0) == [1.0, 2.0]


def test_inverse_cdf_matches_reference_counting():
    samples = FIXED_SAMPLES
    thresholds = [0.0, 0.5, 3.0, 18.0, 96.5, 97.0]
    reference_values = np.sort(np.asarray(samples, dtype=float))
    expected = [
        (
            float(threshold),
            float(np.count_nonzero(reference_values >= threshold))
            / reference_values.size,
        )
        for threshold in thresholds
    ]
    assert inverse_cdf(samples, thresholds) == expected


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=300,
    )
)
def test_histogram_summaries_match_reference_for_any_samples(samples):
    histogram = Histogram(name="any")
    histogram.extend(samples)
    reference = np.asarray(samples, dtype=float)
    assert histogram.boxplot().as_dict() == reference_boxplot_dict(samples)
    assert histogram.percentile(50) == float(np.percentile(reference, 50))


@given(
    st.lists(
        st.tuples(
            # Bounded time span with a floor on the window size, so the
            # rolling sweep stays at a few hundred windows at most.
            st.floats(min_value=0.0, max_value=2e3, allow_nan=False),
            st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
        ),
        min_size=1,
        max_size=120,
    ),
    st.floats(min_value=25.0, max_value=1e4, allow_nan=False),
)
def test_time_series_rolling_matches_reference_for_any_recording(points, window_ms):
    series = TimeSeries(name="any")
    for t, v in points:
        series.record(t, v)
    times = [float(t) for t, _ in points]
    values = [float(v) for _, v in points]
    assert series.rolling(window_ms) == reference_rolling(times, values, window_ms)


def test_histogram_and_series_raise_on_empty_queries():
    histogram = Histogram(name="empty")
    with pytest.raises(ValueError):
        histogram.percentile(50)
    with pytest.raises(ValueError):
        histogram.boxplot()
    with pytest.raises(ValueError):
        histogram.fraction_exceeding(1.0)
    assert TimeSeries(name="empty").rolling(100.0) == []
