"""Tests for the simulation clock."""

import pytest

from repro.sim.clock import ClockError, SimulationClock


def test_clock_starts_at_zero_by_default():
    clock = SimulationClock()
    assert clock.now_ms == 0.0
    assert clock.now_s == 0.0


def test_clock_starts_at_custom_time():
    clock = SimulationClock(start_ms=250.0)
    assert clock.now_ms == 250.0


def test_advance_moves_time_forward():
    clock = SimulationClock()
    assert clock.advance(50.0) == 50.0
    assert clock.advance(25.5) == 75.5
    assert clock.now_ms == 75.5


def test_advance_by_zero_is_allowed():
    clock = SimulationClock(start_ms=10.0)
    clock.advance(0.0)
    assert clock.now_ms == 10.0


def test_advance_negative_raises():
    clock = SimulationClock()
    with pytest.raises(ClockError):
        clock.advance(-1.0)


def test_advance_to_absolute_time():
    clock = SimulationClock()
    clock.advance_to(123.0)
    assert clock.now_ms == 123.0


def test_advance_to_current_time_is_noop():
    clock = SimulationClock(start_ms=42.0)
    clock.advance_to(42.0)
    assert clock.now_ms == 42.0


def test_advance_to_past_raises():
    clock = SimulationClock(start_ms=100.0)
    with pytest.raises(ClockError):
        clock.advance_to(99.0)


def test_now_s_converts_milliseconds():
    clock = SimulationClock(start_ms=1500.0)
    assert clock.now_s == pytest.approx(1.5)


def test_reset_returns_clock_to_start():
    clock = SimulationClock()
    clock.advance(500.0)
    clock.reset()
    assert clock.now_ms == 0.0
    clock.reset(start_ms=77.0)
    assert clock.now_ms == 77.0
