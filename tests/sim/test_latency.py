"""Tests for latency models and the cold-start model."""

import numpy as np
import pytest

from repro.sim.latency import (
    ColdStartModel,
    ConstantLatency,
    EmpiricalLatency,
    LogNormalLatency,
    MixtureLatency,
    ShiftedExponentialLatency,
)


def test_constant_latency_always_returns_value(rng):
    model = ConstantLatency(value_ms=12.5)
    assert model.sample(rng) == 12.5
    assert list(model.sample_many(rng, 4)) == [12.5] * 4


def test_lognormal_latency_respects_floor_and_cap(rng):
    model = LogNormalLatency(median_ms=10.0, sigma=1.5, floor_ms=5.0, cap_ms=50.0)
    samples = model.sample_many(rng, 2000)
    assert samples.min() >= 5.0
    assert samples.max() <= 50.0


def test_lognormal_latency_median_is_near_configured_median(rng):
    model = LogNormalLatency(median_ms=100.0, sigma=0.3)
    samples = model.sample_many(rng, 5000)
    assert np.median(samples) == pytest.approx(100.0, rel=0.05)


def test_shifted_exponential_has_minimum_floor(rng):
    model = ShiftedExponentialLatency(floor_ms=20.0, mean_tail_ms=10.0)
    samples = model.sample_many(rng, 1000)
    assert samples.min() >= 20.0
    assert samples.mean() == pytest.approx(30.0, rel=0.15)


def test_empirical_latency_resamples_observed_values(rng):
    model = EmpiricalLatency(samples_ms=[10.0, 20.0, 30.0], jitter_fraction=0.0)
    samples = {model.sample(rng) for _ in range(100)}
    assert samples <= {10.0, 20.0, 30.0}


def test_empirical_latency_rejects_empty_samples():
    with pytest.raises(ValueError):
        EmpiricalLatency(samples_ms=[])


def test_mixture_latency_draws_from_both_components(rng):
    model = MixtureLatency(
        components=[ConstantLatency(1.0), ConstantLatency(100.0)], weights=[0.5, 0.5]
    )
    samples = {model.sample(rng) for _ in range(200)}
    assert samples == {1.0, 100.0}


def test_mixture_latency_validates_weights():
    with pytest.raises(ValueError):
        MixtureLatency(components=[ConstantLatency(1.0)], weights=[1.0, 2.0])
    with pytest.raises(ValueError):
        MixtureLatency(components=[ConstantLatency(1.0)], weights=[0.0])


def test_cold_start_first_invocation_pays_penalty(rng):
    model = ColdStartModel(keep_alive_ms=1000.0, penalty=ConstantLatency(500.0))
    assert model.penalty_ms(now_ms=0.0, rng=rng) == 500.0


def test_cold_start_within_keep_alive_is_warm(rng):
    model = ColdStartModel(keep_alive_ms=1000.0, penalty=ConstantLatency(500.0))
    model.penalty_ms(now_ms=0.0, rng=rng)
    assert model.penalty_ms(now_ms=500.0, rng=rng) == 0.0
    assert model.is_warm(now_ms=900.0)


def test_cold_start_after_keep_alive_expires(rng):
    model = ColdStartModel(keep_alive_ms=1000.0, penalty=ConstantLatency(500.0))
    model.penalty_ms(now_ms=0.0, rng=rng)
    assert model.penalty_ms(now_ms=5000.0, rng=rng) == 500.0


def test_cold_start_reset_forgets_warm_state(rng):
    model = ColdStartModel(keep_alive_ms=1000.0, penalty=ConstantLatency(500.0))
    model.penalty_ms(now_ms=0.0, rng=rng)
    model.reset()
    assert model.penalty_ms(now_ms=100.0, rng=rng) == 500.0
