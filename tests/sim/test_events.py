"""Tests for the event queue and the simulation engine."""

import pytest

from repro.sim.engine import SimulationEngine
from repro.sim.events import EventQueue


def test_events_fire_in_due_time_order():
    queue = EventQueue()
    fired = []
    queue.schedule(30.0, lambda: fired.append("c"))
    queue.schedule(10.0, lambda: fired.append("a"))
    queue.schedule(20.0, lambda: fired.append("b"))
    for event in queue.pop_due(100.0):
        event.callback()
    assert fired == ["a", "b", "c"]


def test_events_with_same_due_time_fire_in_insertion_order():
    queue = EventQueue()
    fired = []
    for label in ["first", "second", "third"]:
        queue.schedule(5.0, lambda label=label: fired.append(label))
    for event in queue.pop_due(5.0):
        event.callback()
    assert fired == ["first", "second", "third"]


def test_pop_due_only_returns_due_events():
    queue = EventQueue()
    queue.schedule(10.0, lambda: None, name="early")
    queue.schedule(50.0, lambda: None, name="late")
    due = list(queue.pop_due(20.0))
    assert [event.name for event in due] == ["early"]
    assert len(queue) == 1


def test_cancelled_events_are_skipped():
    queue = EventQueue()
    event = queue.schedule(10.0, lambda: None, name="cancel-me")
    queue.schedule(20.0, lambda: None, name="keep-me")
    event.cancel()
    names = [e.name for e in queue.pop_due(100.0)]
    assert names == ["keep-me"]


def test_peek_due_ms_reports_earliest_pending():
    queue = EventQueue()
    assert queue.peek_due_ms() is None
    queue.schedule(40.0, lambda: None)
    queue.schedule(15.0, lambda: None)
    assert queue.peek_due_ms() == 15.0


def test_clear_removes_everything():
    queue = EventQueue()
    queue.schedule(1.0, lambda: None)
    queue.schedule(2.0, lambda: None)
    queue.clear()
    assert len(queue) == 0
    assert queue.peek_due_ms() is None


def test_engine_advance_to_fires_events_at_their_due_time():
    engine = SimulationEngine(seed=0)
    seen_times = []
    engine.schedule_at(100.0, lambda: seen_times.append(engine.now_ms))
    engine.schedule_at(250.0, lambda: seen_times.append(engine.now_ms))
    engine.advance_to(300.0)
    assert seen_times == [100.0, 250.0]
    assert engine.now_ms == 300.0


def test_engine_schedule_in_uses_relative_delay():
    engine = SimulationEngine(seed=0)
    engine.advance_to(50.0)
    fired = []
    engine.schedule_in(25.0, lambda: fired.append(engine.now_ms))
    engine.advance_by(30.0)
    assert fired == [75.0]


def test_engine_rejects_scheduling_in_the_past():
    engine = SimulationEngine(seed=0)
    engine.advance_to(100.0)
    with pytest.raises(ValueError):
        engine.schedule_at(50.0, lambda: None)
    with pytest.raises(ValueError):
        engine.schedule_in(-1.0, lambda: None)


def test_engine_events_can_schedule_followups():
    engine = SimulationEngine(seed=0)
    fired = []

    def first():
        fired.append("first")
        engine.schedule_in(10.0, lambda: fired.append("second"))

    engine.schedule_at(5.0, first)
    engine.advance_to(20.0)
    assert fired == ["first", "second"]


def test_engine_run_until_idle_respects_max_time():
    engine = SimulationEngine(seed=0)
    fired = []
    engine.schedule_at(10.0, lambda: fired.append(1))
    engine.schedule_at(500.0, lambda: fired.append(2))
    engine.run_until_idle(max_time_ms=100.0)
    assert fired == [1]
    assert engine.now_ms == 100.0
