"""Servo configuration."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ServoConfig:
    """Tunables of the Servo backend.

    Defaults follow the paper's best configuration: a 20-tick lead (one second
    at 20 Hz), 100-step speculative simulations, loop detection enabled, and a
    48-block prefetch margin around the view distance.
    """

    #: cloud provider for FaaS and blob storage: "aws" or "azure"
    provider: str = "aws"
    #: how many simulation steps each offload invocation computes
    steps_per_invocation: int = 100
    #: issue the next invocation this many ticks before the current batch runs out
    tick_lead: int = 20
    #: truncate periodic constructs to one loop inside the offload function
    enable_loop_detection: bool = True
    #: memory configuration of the construct-simulation function (MB)
    simulation_function_memory_mb: int = 1769
    #: memory configuration of the terrain-generation function (MB)
    terrain_function_memory_mb: int = 2048
    #: prefetch terrain this many blocks beyond the view distance
    prefetch_margin_blocks: float = 48.0
    #: run the prefetcher every this many ticks
    prefetch_interval_ticks: int = 10
    #: capacity of the server-local terrain cache (objects)
    cache_capacity_objects: int = 4096
    #: use the server-local cache in front of blob storage
    enable_cache: bool = True

    def __post_init__(self) -> None:
        if self.provider not in ("aws", "azure"):
            raise ValueError(f"unknown provider {self.provider!r}; expected 'aws' or 'azure'")
        if self.steps_per_invocation < 1:
            raise ValueError("steps_per_invocation must be at least 1")
        if self.tick_lead < 0:
            raise ValueError("tick_lead must be non-negative")
        if self.prefetch_interval_ticks < 1:
            raise ValueError("prefetch_interval_ticks must be at least 1")
