"""Serverless terrain generation (Section III-D).

Servo moves procedural content generation off the game server: every chunk
that needs generating becomes one FaaS invocation, and all invocations run
concurrently, so generation throughput scales with demand instead of being
capped by the server's local worker threads.  The payload carries only the
world seed, the world type and the chunk coordinates; generation is
deterministic, so the produced chunk is identical to a locally generated one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.cluster.parallel import ShardRoundExecutor, TerrainTask
from repro.faas.function import FunctionOutput, Invocation
from repro.faas.platform import FaasPlatform
from repro.server.chunkmanager import GenerationResult, TerrainProvider
from repro.sim.engine import SimulationEngine
from repro.world.chunk import Chunk
from repro.world.coords import ChunkPos
from repro.world.terrain import TerrainGenerator, make_terrain_generator

#: name under which the terrain-generation function is deployed
TERRAIN_GENERATION_FUNCTION = "servo-generate-terrain"

# Calibration: generating one default-world chunk is ~1.15 s of single-vCPU
# work inside the function (Figure 11: ~3.5 s mean at 320 MB, under 1 s at
# 10240 MB).  The flat world is an order of magnitude cheaper.
_CHUNK_WORK_MS_SINGLE_VCPU = 1150.0


def terrain_generation_work_ms(generator: TerrainGenerator) -> float:
    """Single-vCPU work (ms) of generating one chunk with ``generator``."""
    return _CHUNK_WORK_MS_SINGLE_VCPU * generator.generation_work_units()


@dataclass(frozen=True)
class TerrainRequest:
    """Payload of one terrain-generation invocation."""

    world_type: str
    seed: int
    cx: int
    cz: int


def make_terrain_handler(
    executor: Optional[ShardRoundExecutor] = None,
) -> Callable[[TerrainRequest], FunctionOutput]:
    """Create the FaaS handler that generates terrain chunks.

    Generators are cached per (world type, seed) inside the handler, mirroring
    a warm function container reusing its initialised generator.

    With a round ``executor``, the handler returns a
    :class:`~repro.cluster.parallel.TerrainTask` instead of the chunk itself:
    the platform runs handlers at (virtual) request time but delivers results
    at completion time, so a pooled executor generates the chunk in a worker
    process during that window.  The simulated invocation — its virtual work,
    latency and billing — is unchanged; generation is pure, so the resolved
    chunk is byte-identical.
    """
    generators: dict[tuple[str, int], TerrainGenerator] = {}

    def handler(payload: TerrainRequest) -> FunctionOutput:
        if not isinstance(payload, TerrainRequest):
            raise TypeError(f"expected TerrainRequest, got {type(payload)!r}")
        key = (payload.world_type, payload.seed)
        if key not in generators:
            generators[key] = make_terrain_generator(payload.world_type, seed=payload.seed)
        generator = generators[key]
        work_ms = terrain_generation_work_ms(generator)
        position = ChunkPos(payload.cx, payload.cz)
        if executor is not None:
            task = executor.submit_terrain(generator, position)
            return FunctionOutput(value=task, work_ms_single_vcpu=work_ms)
        return FunctionOutput(
            value=generator.generate_chunk(position), work_ms_single_vcpu=work_ms
        )

    return handler


class ServerlessTerrainProvider(TerrainProvider):
    """Terrain provider that generates every chunk in its own FaaS invocation."""

    name = "serverless"

    def __init__(
        self,
        engine: SimulationEngine,
        platform: FaasPlatform,
        world_type: str,
        seed: int,
        function_name: str = TERRAIN_GENERATION_FUNCTION,
        max_attempts: int = 3,
    ) -> None:
        self.engine = engine
        self.platform = platform
        self.world_type = world_type
        self.seed = int(seed)
        self.function_name = function_name
        #: invocation attempts per chunk before generating locally instead
        self.max_attempts = int(max_attempts)
        self._pending = 0
        self._local_generator: Optional[TerrainGenerator] = None

    def _generate_locally(self, position: ChunkPos) -> Chunk:
        """Last-resort local generation: pure, so the chunk is identical."""
        if self._local_generator is None:
            self._local_generator = make_terrain_generator(self.world_type, seed=self.seed)
        return self._local_generator.generate_chunk(position)

    def request(
        self,
        position: ChunkPos,
        callback: Callable[[Chunk, GenerationResult], None],
        _attempt: int = 1,
    ) -> None:
        payload = TerrainRequest(
            world_type=self.world_type, seed=self.seed, cx=position.cx, cz=position.cz
        )
        self._pending += 1

        def on_reply(invocation: Invocation) -> None:
            self._pending -= 1
            chunk = invocation.result
            if isinstance(chunk, TerrainTask):
                # The handler deferred generation to a worker process; the
                # chunk is (at worst: becomes) ready now, at completion time.
                chunk = chunk.resolve()
            telemetry = self.engine.telemetry
            if telemetry.enabled:
                telemetry.span(
                    "terrain",
                    f"chunk:{position.cx},{position.cz}",
                    start_ms=invocation.submitted_ms,
                    duration_ms=invocation.latency_ms,
                    track="terrain",
                    args={
                        "cx": position.cx,
                        "cz": position.cz,
                        "status": invocation.status,
                        "attempt": _attempt,
                    },
                )
            if invocation.status != "ok" or not isinstance(chunk, Chunk):
                # A timed-out (or failed/throttled) invocation delivers None
                # where a chunk is expected: count it, retry a bounded number
                # of times, then fall back to local generation — terrain must
                # eventually arrive, but never by retrying forever.
                self.engine.metrics.increment("terrain_generation_failures")
                if _attempt < self.max_attempts:
                    self.engine.metrics.increment("terrain_generation_retries")
                    self.request(position, callback, _attempt=_attempt + 1)
                    return
                self.engine.metrics.increment("terrain_local_fallbacks")
                if telemetry.enabled:
                    telemetry.instant(
                        "terrain",
                        "local-fallback",
                        track="terrain",
                        args={"cx": position.cx, "cz": position.cz},
                    )
                callback(
                    self._generate_locally(position),
                    GenerationResult(
                        position=position,
                        latency_ms=invocation.latency_ms,
                        source="local-fallback",
                        consumed_local_cpu=True,
                    ),
                )
                return
            callback(
                chunk,
                GenerationResult(
                    position=position,
                    latency_ms=invocation.latency_ms,
                    source="faas-generation",
                    consumed_local_cpu=False,
                ),
            )

        self.platform.invoke_async(self.function_name, payload, on_reply)

    def pending_count(self) -> int:
        return self._pending
