"""Servo: the paper's contribution.

Servo is a serverless backend architecture for MVEs.  It keeps the unmodified
client protocol and the 20 Hz game loop, and plugs three serverless services
into the game server:

* :mod:`repro.core.speculative` — replicated speculative execution of
  simulated constructs on FaaS, with logical-timestamp invalidation and
  tick-lead driven invocation (Section III-C).
* :mod:`repro.core.loop_detection` — the cost optimisation that truncates
  periodic constructs to a single loop (Section III-C1).
* :mod:`repro.core.terrain_service` — on-demand terrain generation in
  serverless functions (Section III-D).
* :mod:`repro.core.storage_service` — remote state storage behind a local
  cache with distance-based prefetching (Section III-E).

:func:`build_servo_server` assembles all of it into a ready-to-run
:class:`repro.server.GameServer`.
"""

from repro.core.config import ServoConfig
from repro.core.loop_detection import CompressedStateSequence, LoopDetector
from repro.core.offload import (
    SC_SIMULATION_FUNCTION,
    OffloadReply,
    OffloadRequest,
    make_simulation_handler,
    simulation_work_ms,
)
from repro.core.servo import ServoRuntime, build_servo_server
from repro.core.speculative import SpeculativeConstructBackend, SpeculationRecord
from repro.core.storage_service import ServoStorageService
from repro.core.terrain_service import (
    TERRAIN_GENERATION_FUNCTION,
    ServerlessTerrainProvider,
    make_terrain_handler,
    terrain_generation_work_ms,
)

__all__ = [
    "ServoConfig",
    "LoopDetector",
    "CompressedStateSequence",
    "OffloadRequest",
    "OffloadReply",
    "make_simulation_handler",
    "simulation_work_ms",
    "SC_SIMULATION_FUNCTION",
    "SpeculativeConstructBackend",
    "SpeculationRecord",
    "ServerlessTerrainProvider",
    "make_terrain_handler",
    "terrain_generation_work_ms",
    "TERRAIN_GENERATION_FUNCTION",
    "ServoStorageService",
    "ServoRuntime",
    "build_servo_server",
]
