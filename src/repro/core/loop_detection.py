"""Loop detection for offloaded construct simulation.

Many player-built constructs loop through a fixed list of states indefinitely
(clocks, lamps on timers, some farms).  Simulating such a construct remotely
over and over wastes money, so Servo's offload function hashes every produced
state; when a state repeats, the function truncates the result to one period
of the loop plus an index, and the server can replay the loop forever without
invoking the function again (Section III-C1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.constructs.state import ConstructState


@dataclass
class CompressedStateSequence:
    """A state sequence, possibly truncated to a prefix plus a repeating loop.

    ``start_step`` is the construct step *before* the first state in
    ``prefix`` (i.e. ``prefix[0]`` is the state after step ``start_step + 1``).
    If ``loop_states`` is non-empty, the sequence continues forever by
    repeating ``loop_states`` after the prefix.
    """

    start_step: int
    prefix: list[ConstructState] = field(default_factory=list)
    loop_states: list[ConstructState] = field(default_factory=list)

    @property
    def is_looping(self) -> bool:
        return bool(self.loop_states)

    @property
    def explicit_length(self) -> int:
        """Number of explicitly stored states."""
        return len(self.prefix) + len(self.loop_states)

    def covers(self, step: int) -> bool:
        """True if the sequence can produce the state after ``step`` steps."""
        if step <= self.start_step:
            return False
        if self.is_looping:
            return True
        return step <= self.start_step + len(self.prefix)

    def raw_state_at(self, step: int) -> ConstructState:
        """The stored snapshot for ``step`` without re-stamping its step counter.

        This avoids copying the state mapping; callers that need the correct
        absolute step (e.g. :meth:`state_at`) re-stamp it themselves.
        """
        if not self.covers(step):
            raise KeyError(
                f"sequence starting at {self.start_step} does not cover step {step}"
            )
        offset = step - self.start_step - 1
        if offset < len(self.prefix):
            return self.prefix[offset]
        loop_offset = (offset - len(self.prefix)) % len(self.loop_states)
        return self.loop_states[loop_offset]

    def state_at(self, step: int) -> ConstructState:
        """The construct state after ``step`` total steps."""
        snapshot = self.raw_state_at(step)
        # Re-stamp the snapshot with the absolute step so applying it keeps the
        # construct's step counter correct.
        return ConstructState(step=step, states=snapshot.states)


class LoopDetector:
    """Detects state cycles in a stream of construct states."""

    def __init__(self) -> None:
        self._seen: dict[str, int] = {}
        self._states: list[ConstructState] = []

    def observe(self, state: ConstructState) -> Optional[int]:
        """Record a state; returns the index of the earlier identical state if this one repeats."""
        digest = state.digest()
        if digest in self._seen:
            return self._seen[digest]
        self._seen[digest] = len(self._states)
        self._states.append(state)
        return None

    @property
    def observed_states(self) -> list[ConstructState]:
        return list(self._states)

    def compress(self, start_step: int) -> CompressedStateSequence:
        """Compress the observed states, using the last observation's loop if any."""
        return CompressedStateSequence(start_step=start_step, prefix=list(self._states))


def compress_trace(
    start_step: int, states: list[ConstructState]
) -> CompressedStateSequence:
    """Compress a simulated state sequence by detecting a repeated state.

    If state ``i`` reappears at position ``j`` (``j > i``), everything from
    ``i`` onwards forms the repeating loop: the prefix is ``states[:i]`` and
    the loop is ``states[i:j]``.
    """
    detector = LoopDetector()
    for index, state in enumerate(states):
        repeat_of = detector.observe(state)
        if repeat_of is not None:
            return CompressedStateSequence(
                start_step=start_step,
                prefix=list(states[:repeat_of]),
                loop_states=list(states[repeat_of:index]),
            )
    return CompressedStateSequence(start_step=start_step, prefix=list(states))
