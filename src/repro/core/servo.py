"""Assembly of a Servo game server.

``build_servo_server`` wires the serverless services into the unmodified game
server: the speculative construct backend, the serverless terrain provider and
the cached remote storage service, all running against one simulated FaaS
platform and blob store of the chosen provider.  The returned server exposes
the attached services through its ``servo`` attribute (a
:class:`ServoRuntime`) so experiments can inspect invocations, billing, cache
statistics and speculation records.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ServoConfig
from repro.core.offload import SC_SIMULATION_FUNCTION, make_simulation_handler
from repro.core.speculative import SpeculativeConstructBackend
from repro.core.storage_service import ServoStorageService
from repro.core.terrain_service import (
    TERRAIN_GENERATION_FUNCTION,
    ServerlessTerrainProvider,
    make_terrain_handler,
)
from repro.faas.function import FunctionDefinition
from repro.faas.platform import FaasPlatform
from repro.faas.providers import provider_by_name
from repro.server.chunkmanager import ChunkManager
from repro.server.config import GameConfig
from repro.server.costmodel import SERVO_COST_MODEL
from repro.server.gameloop import GameServer
from repro.sim.engine import SimulationEngine
from repro.storage.blob import AWS_S3_STANDARD, AZURE_BLOB_STANDARD, BlobStorage
from repro.world.terrain import make_terrain_generator
from repro.world.world import VoxelWorld


@dataclass
class ServoRuntime:
    """Handles to the serverless services attached to a Servo server."""

    config: ServoConfig
    platform: FaasPlatform
    storage: ServoStorageService
    construct_backend: SpeculativeConstructBackend
    terrain_provider: ServerlessTerrainProvider

    @property
    def billing(self):
        return self.platform.billing

    def cost_per_hour_usd(self, window_ms: float) -> float:
        """Servo's serverless cost extrapolated to one hour of operation."""
        return self.platform.billing.cost_per_hour_usd(window_ms)


def build_servo_server(
    engine: SimulationEngine,
    game_config: GameConfig | None = None,
    servo_config: ServoConfig | None = None,
) -> GameServer:
    """Build a game server running the Servo serverless backend.

    The server keeps the 20 Hz loop and client protocol of the baselines
    (Requirement R4); only the backend services change.
    """
    game_config = game_config or GameConfig()
    servo_config = servo_config or ServoConfig()

    provider = provider_by_name(servo_config.provider)
    platform = FaasPlatform(engine, provider=provider)

    # Deploy the two Servo functions.
    platform.register(
        FunctionDefinition(
            name=SC_SIMULATION_FUNCTION,
            handler=make_simulation_handler(),
            memory_mb=servo_config.simulation_function_memory_mb,
            description="speculative simulation of one simulated construct",
        )
    )
    platform.register(
        FunctionDefinition(
            name=TERRAIN_GENERATION_FUNCTION,
            handler=make_terrain_handler(),
            memory_mb=servo_config.terrain_function_memory_mb,
            description="procedural generation of one terrain chunk",
        )
    )

    # Remote state storage with the Servo cache and prefetcher in front.
    blob_profile = AWS_S3_STANDARD if servo_config.provider == "aws" else AZURE_BLOB_STANDARD
    blob = BlobStorage(rng=engine.rng("servo-blob"), profile=blob_profile)
    storage = ServoStorageService(
        engine=engine,
        remote=blob,
        view_distance_blocks=game_config.view_distance_blocks,
        prefetch_margin_blocks=servo_config.prefetch_margin_blocks,
        cache_capacity_objects=servo_config.cache_capacity_objects,
        enable_cache=servo_config.enable_cache,
    )

    generator = make_terrain_generator(game_config.world_type, seed=game_config.world_seed)
    world = VoxelWorld()
    terrain_provider = ServerlessTerrainProvider(
        engine=engine,
        platform=platform,
        world_type=game_config.world_type,
        seed=game_config.world_seed,
    )
    chunk_manager = ChunkManager(
        engine=engine,
        world=world,
        generator=generator,
        provider=terrain_provider,
        storage=storage,
        view_distance_blocks=game_config.view_distance_blocks,
        max_integrations_per_tick=game_config.max_chunk_integrations_per_tick,
    )
    construct_backend = SpeculativeConstructBackend(
        engine=engine, platform=platform, config=servo_config
    )

    server = GameServer(
        engine=engine,
        config=game_config,
        world=world,
        chunk_manager=chunk_manager,
        construct_backend=construct_backend,
        cost_model=SERVO_COST_MODEL,
        storage=storage,
        name="servo",
    )
    server.servo = ServoRuntime(  # type: ignore[attr-defined]
        config=servo_config,
        platform=platform,
        storage=storage,
        construct_backend=construct_backend,
        terrain_provider=terrain_provider,
    )

    # The prefetcher runs periodically, off the latency-critical path.
    def prefetch_hook(tick_index: int) -> None:
        if tick_index % servo_config.prefetch_interval_ticks == 0:
            storage.prefetch_for_avatars(
                [session.avatar for session in server.sessions.values()]
            )

    if servo_config.enable_cache:
        server.pre_tick_hooks.append(prefetch_hook)
    return server
