"""Assembly of a Servo game server.

``build_servo_server`` wires the serverless services into the unmodified game
server: the speculative construct backend, the serverless terrain provider and
the cached remote storage service, all running against one simulated FaaS
platform and blob store of the chosen provider.  The returned server exposes
the attached services through its typed ``runtime`` handle (a
:class:`ServoRuntime`) so experiments can inspect invocations, billing, cache
statistics and speculation records.

The assembly is split into reusable pieces (platform, blob store, per-server
services) so a zone-partitioned cluster can build several Servo shards that
share one FaaS platform and one blob store while keeping per-shard caches and
speculation state (see :mod:`repro.cluster`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.api.hosts import register_host
from repro.cluster.parallel import ShardRoundExecutor, make_executor
from repro.core.config import ServoConfig
from repro.core.offload import SC_SIMULATION_FUNCTION, make_simulation_handler
from repro.core.speculative import SpeculativeConstructBackend
from repro.core.storage_service import ServoStorageService
from repro.core.terrain_service import (
    TERRAIN_GENERATION_FUNCTION,
    ServerlessTerrainProvider,
    make_terrain_handler,
)
from repro.faas.function import FunctionDefinition
from repro.faas.platform import FaasPlatform
from repro.faas.providers import provider_by_name
from repro.server.builder import ServerBuilder
from repro.server.chunkmanager import OwnershipRegion
from repro.server.config import GameConfig
from repro.server.costmodel import SERVO_COST_MODEL
from repro.server.gameloop import GameServer, ServerRuntime
from repro.sim.engine import SimulationEngine
from repro.storage.blob import AWS_S3_STANDARD, AZURE_BLOB_STANDARD, BlobStorage


@dataclass
class ServoRuntime(ServerRuntime):
    """Handles to the serverless services attached to a Servo server."""

    config: ServoConfig
    platform: FaasPlatform
    storage: ServoStorageService
    construct_backend: SpeculativeConstructBackend
    terrain_provider: ServerlessTerrainProvider

    @property
    def billing(self):
        return self.platform.billing

    def cost_per_hour_usd(self, window_ms: float) -> float:
        """Servo's serverless cost extrapolated to one hour of operation."""
        return self.platform.billing.cost_per_hour_usd(window_ms)


def make_servo_platform(
    engine: SimulationEngine,
    servo_config: ServoConfig,
    executor: Optional[ShardRoundExecutor] = None,
) -> FaasPlatform:
    """Create a FaaS platform with the two Servo functions deployed.

    ``executor`` lets the terrain function compute chunk content in host
    worker processes between virtual request and completion (wall-clock only;
    the simulated invocations are unchanged).
    """
    platform = FaasPlatform(engine, provider=provider_by_name(servo_config.provider))
    deploy_servo_functions(platform, servo_config, executor=executor)
    return platform


def deploy_servo_functions(
    platform: FaasPlatform,
    servo_config: ServoConfig,
    executor: Optional[ShardRoundExecutor] = None,
) -> None:
    """Deploy the Servo functions onto ``platform`` (idempotent)."""
    if not platform.is_registered(SC_SIMULATION_FUNCTION):
        platform.register(
            FunctionDefinition(
                name=SC_SIMULATION_FUNCTION,
                handler=make_simulation_handler(),
                memory_mb=servo_config.simulation_function_memory_mb,
                description="speculative simulation of one simulated construct",
            )
        )
    if not platform.is_registered(TERRAIN_GENERATION_FUNCTION):
        platform.register(
            FunctionDefinition(
                name=TERRAIN_GENERATION_FUNCTION,
                handler=make_terrain_handler(executor),
                memory_mb=servo_config.terrain_function_memory_mb,
                description="procedural generation of one terrain chunk",
            )
        )


def make_servo_blob(engine: SimulationEngine, servo_config: ServoConfig) -> BlobStorage:
    """Create the provider-matched blob store Servo persists state into."""
    blob_profile = AWS_S3_STANDARD if servo_config.provider == "aws" else AZURE_BLOB_STANDARD
    return BlobStorage(rng=engine.rng("servo-blob"), profile=blob_profile)


@register_host("servo")
def build_servo_server(
    engine: SimulationEngine,
    game_config: GameConfig | None = None,
    servo_config: ServoConfig | None = None,
    *,
    platform: FaasPlatform | None = None,
    blob: BlobStorage | None = None,
    name: str = "servo",
    region: Optional[OwnershipRegion] = None,
    player_ids: Optional[Iterator[int]] = None,
    workers: Optional[int] = None,
    executor: Optional[ShardRoundExecutor] = None,
) -> GameServer:
    """Build a game server running the Servo serverless backend.

    The server keeps the 20 Hz loop and client protocol of the baselines
    (Requirement R4); only the backend services change.  ``platform`` and
    ``blob`` default to fresh instances; a cluster passes shared ones so all
    shards bill against one provider account and persist into one store.
    ``workers`` (or a shared ``executor``) enables host-side parallel
    execution of the round's pure compute — wall-clock only, bit-identical
    virtual results.
    """
    game_config = game_config or GameConfig()
    servo_config = servo_config or ServoConfig()
    if executor is None and workers is not None:
        executor = make_executor(workers)

    if platform is None:
        platform = make_servo_platform(engine, servo_config, executor=executor)
    else:
        deploy_servo_functions(platform, servo_config, executor=executor)
    if blob is None:
        blob = make_servo_blob(engine, servo_config)

    # Remote state storage with the Servo cache and prefetcher in front.
    storage = ServoStorageService(
        engine=engine,
        remote=blob,
        view_distance_blocks=game_config.view_distance_blocks,
        prefetch_margin_blocks=servo_config.prefetch_margin_blocks,
        cache_capacity_objects=servo_config.cache_capacity_objects,
        enable_cache=servo_config.enable_cache,
    )
    terrain_provider = ServerlessTerrainProvider(
        engine=engine,
        platform=platform,
        world_type=game_config.world_type,
        seed=game_config.world_seed,
    )
    construct_backend = SpeculativeConstructBackend(
        engine=engine, platform=platform, config=servo_config
    )
    runtime = ServoRuntime(
        config=servo_config,
        platform=platform,
        storage=storage,
        construct_backend=construct_backend,
        terrain_provider=terrain_provider,
    )

    server = (
        ServerBuilder(engine, game_config, name=name)
        .with_cost_model(SERVO_COST_MODEL)
        .with_storage(storage)
        .with_terrain_provider(terrain_provider)
        .with_construct_backend(construct_backend)
        .with_runtime(runtime)
        .with_region(region)
        .with_player_ids(player_ids)
        .with_executor(executor)
        .build()
    )

    # The prefetcher runs periodically, off the latency-critical path.
    def prefetch_hook(tick_index: int) -> None:
        if tick_index % servo_config.prefetch_interval_ticks == 0:
            storage.prefetch_for_avatars(
                [session.avatar for session in server.sessions.values()]
            )

    if servo_config.enable_cache:
        server.pre_tick_hooks.append(prefetch_hook)
    return server
