"""Replicated speculative execution of simulated constructs.

This is Servo's construct backend (Section III-C).  For every construct it
keeps at most one offload invocation in flight plus the speculative state
sequences received so far:

* Each game tick, if a valid speculative state for the construct's next step
  is available (the reply has arrived, in virtual time, and its logical
  timestamp matches the construct's modification counter), the backend applies
  it — the *merge* path, which is cheap for the game loop.
* Otherwise the backend simulates the step locally — the *fallback* path that
  hides function latency (including cold starts) from players.
* A new invocation is issued ``tick_lead`` ticks before the remaining coverage
  runs out, so with a sufficient lead the reply is always there in time and
  the fallback path is never needed (the paper's 100 % efficiency result).
* If the offload function detected a state loop, the sequence covers every
  future step and no further invocations are needed until a player modifies
  the construct (the cost optimisation of Section III-C1).

Efficiency is accounted per invocation exactly as the paper defines it: the
fraction of the requested steps that did *not* have to be recomputed locally
because the reply arrived too late.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.constructs.batched import BatchedCircuitStepper
from repro.constructs.circuit import SimulatedConstruct
from repro.constructs.compiled import compile_circuit
from repro.constructs.simulator import clone_construct
from repro.core.config import ServoConfig
from repro.core.loop_detection import CompressedStateSequence
from repro.core.offload import SC_SIMULATION_FUNCTION, OffloadReply, OffloadRequest
from repro.faas.function import Invocation
from repro.faas.platform import FaasPlatform
from repro.server.sc_engine import (
    ConstructBackend,
    ConstructTickPlan,
    ConstructTickReport,
)
from repro.sim.engine import SimulationEngine
from repro.world.coords import BlockPos

#: sentinel coverage for looping sequences (they cover every future step)
_UNBOUNDED_COVERAGE = 10 ** 9


@dataclass
class _PendingInvocation:
    """An offload invocation whose reply has not been consumed yet."""

    invocation: Invocation
    request: OffloadRequest
    #: steps inside the request's range the server had to compute locally
    locally_computed: int = 0

    @property
    def first_step(self) -> int:
        return self.request.start_step + 1

    @property
    def last_step(self) -> int:
        return self.request.start_step + self.request.steps

    def covers(self, step: int) -> bool:
        return self.first_step <= step <= self.last_step


@dataclass
class _AvailableSequence:
    """A speculative sequence the server has received and may still use."""

    sequence: CompressedStateSequence
    timestamp: int
    last_step: int
    #: per-snapshot value lists aligned with the construct's sorted cell
    #: order, keyed by snapshot identity (snapshots are owned by
    #: ``sequence``, so their ids are stable for this entry's lifetime);
    #: looping sequences re-apply the same few snapshots for many ticks,
    #: and the aligned form skips per-cell position hashing on each merge
    aligned: dict[int, list[int]] = field(default_factory=dict)

    def covers(self, step: int) -> bool:
        if self.sequence.is_looping:
            return self.sequence.covers(step)
        return self.sequence.covers(step) and step <= self.last_step

    def aligned_values(self, construct: SimulatedConstruct, step: int) -> list[int]:
        """The snapshot for ``step`` as a cell-order-aligned value list."""
        snapshot = self.sequence.raw_state_at(step)
        key = id(snapshot)  # det: allow[DET005] per-object memo of a content-pure alignment; key is never ordered, iterated or persisted
        values = self.aligned.get(key)
        if values is None:
            states = snapshot.states
            values = [states[cell.position] for cell in construct.cells]
            self.aligned[key] = values
        return values


@dataclass
class SpeculationRecord:
    """Per-construct speculation state."""

    construct_id: int
    available: list[_AvailableSequence] = field(default_factory=list)
    pending: Optional[_PendingInvocation] = None
    invocations_issued: int = 0
    merged_steps: int = 0
    fallback_steps: int = 0

    def valid_sequences(self, construct: SimulatedConstruct) -> list[_AvailableSequence]:
        return [
            entry
            for entry in self.available
            if entry.timestamp == construct.modification_counter
        ]

    def coverage_end(self, construct: SimulatedConstruct) -> int:
        """The last step any valid sequence covers (construct.step when none do)."""
        end = construct.step
        for entry in self.valid_sequences(construct):
            if entry.sequence.is_looping:
                return _UNBOUNDED_COVERAGE
            end = max(end, entry.last_step)
        return end

    def sequence_for(
        self, construct: SimulatedConstruct, step: int
    ) -> Optional[_AvailableSequence]:
        for entry in self.valid_sequences(construct):
            if entry.covers(step):
                return entry
        return None

    def drop_exhausted(self, construct: SimulatedConstruct) -> None:
        """Forget sequences that can no longer produce a useful state."""
        self.available = [
            entry
            for entry in self.available
            if entry.timestamp == construct.modification_counter
            and (entry.sequence.is_looping or entry.last_step > construct.step)
        ]


class SpeculativeConstructBackend(ConstructBackend):
    """Servo's construct backend: offload to FaaS, merge speculative states."""

    def __init__(
        self,
        engine: SimulationEngine,
        platform: FaasPlatform,
        config: ServoConfig | None = None,
        function_name: str = SC_SIMULATION_FUNCTION,
    ) -> None:
        self.engine = engine
        self.platform = platform
        self.config = config or ServoConfig()
        self.function_name = function_name
        self._constructs: dict[int, SimulatedConstruct] = {}
        self._records: dict[int, SpeculationRecord] = {}
        self._stepper = BatchedCircuitStepper()
        #: construct ids pinned at a fixed point by a length-1 looping
        #: sequence: every future merge would re-apply the same state, so the
        #: backend only advances their step counters until a player edit
        self._quiescent: set[int] = set()
        self.metrics = engine.metrics

    # -- registry -------------------------------------------------------------------

    def register_construct(self, construct: SimulatedConstruct) -> None:
        self._constructs[construct.construct_id] = construct
        # Compile up front so the fallback path never pays the flattening cost
        # inside a tick.
        compile_circuit(construct)
        # A re-used construct id (removed, then re-placed) must start from a
        # clean slate: no inherited fixed-point pin, no stale speculation.
        self._quiescent.discard(construct.construct_id)
        self._records[construct.construct_id] = SpeculationRecord(
            construct_id=construct.construct_id
        )
        # The paper starts server-side and remote simulation simultaneously
        # when a construct is activated; issue the first invocation right away.
        self._issue_invocation(self._records[construct.construct_id], construct)

    def remove_construct(self, construct_id: int) -> None:
        self._constructs.pop(construct_id, None)
        self._records.pop(construct_id, None)
        self._quiescent.discard(construct_id)

    def constructs(self) -> list[SimulatedConstruct]:
        return [self._constructs[key] for key in sorted(self._constructs)]

    def on_player_modify(self, construct_id: int, position: BlockPos) -> None:
        construct = self._constructs.get(construct_id)
        if construct is None:
            return
        construct.player_modify(position)
        record = self._records[construct_id]
        # Every stored sequence is now stale; the timestamp check would reject
        # them anyway, but dropping them eagerly frees memory.  The edit also
        # wakes the construct if it was parked at a fixed point.
        record.available.clear()
        self._quiescent.discard(construct_id)
        self.metrics.increment("speculation_invalidated")

    # -- speculation plumbing ----------------------------------------------------------

    def _issue_invocation(
        self, record: SpeculationRecord, construct: SimulatedConstruct
    ) -> None:
        """Send the next offload request for this construct (at most one in flight)."""
        if record.pending is not None:
            return
        coverage_end = record.coverage_end(construct)
        if coverage_end >= _UNBOUNDED_COVERAGE:
            return  # a looping sequence covers everything; no more invocations

        if coverage_end > construct.step:
            # Speculate onwards from the end of the current coverage.
            entry = record.sequence_for(construct, coverage_end)
            source = clone_construct(construct)
            source.apply_state(entry.sequence.state_at(coverage_end))
        else:
            source = construct

        request = OffloadRequest.from_construct(
            source,
            steps=self.config.steps_per_invocation,
            detect_loops=self.config.enable_loop_detection,
        )
        # With a fault plan installed the platform answers injected failures
        # with retry/backoff; without one this is a plain invoke.
        invocation = self.platform.invoke_with_retry(self.function_name, request)
        record.pending = _PendingInvocation(invocation=invocation, request=request)
        record.invocations_issued += 1
        self.metrics.increment("offload_invocations")
        self.metrics.histogram("offload_latency_ms").record(invocation.latency_ms)

    def _promote_pending(
        self, record: SpeculationRecord, construct: SimulatedConstruct, now_ms: float
    ) -> None:
        """Consume a pending invocation whose reply has arrived (in virtual time)."""
        pending = record.pending
        if pending is None or pending.invocation.completed_ms > now_ms:
            return
        record.pending = None
        reply = pending.invocation.result
        if pending.invocation.status != "ok" or not isinstance(reply, OffloadReply):
            # The invocation (and its retries, if any) produced nothing: the
            # construct keeps advancing on the local-fallback path until the
            # follow-up invocation issued in this tick's phase 3 delivers.
            self.metrics.increment("offload_failures")
            self.metrics.increment("offload_local_fallbacks")
            return

        efficiency = (
            (pending.request.steps - pending.locally_computed) / pending.request.steps
            if pending.request.steps > 0
            else 1.0
        )
        self.metrics.histogram("speculation_efficiency").record(max(0.0, efficiency))

        if reply.timestamp != construct.modification_counter:
            # The player modified the construct after the request was sent; the
            # speculative states are inconsistent with the new correct state.
            self.metrics.increment("speculation_discarded")
            return
        if reply.loop_detected:
            self.metrics.increment("loops_detected")
        record.available.append(
            _AvailableSequence(
                sequence=reply.sequence,
                timestamp=reply.timestamp,
                last_step=reply.sequence.start_step + len(reply.sequence.prefix),
            )
        )

    # -- the per-tick work ----------------------------------------------------------------

    def begin_tick(self, tick_index: int) -> ConstructTickPlan:
        """Advance every construct one step.

        The tick runs in three phases so the local-simulation work can be
        batched: (1) per construct, in id order, consume arrived replies and
        either merge a speculative state or queue the construct for local
        fallback; (2) advance all fallback circuits in one vectorised batch
        (constructs are independent, so this is equivalent to stepping them
        in order); (3) per construct, in id order again, drop exhausted
        sequences and issue follow-up invocations.  Every random draw happens
        in phase 1 (none) or phase 3 (``platform.invoke``), in construct id
        order — exactly the order the single-loop implementation used — so
        virtual results are bit-identical.

        The split exposes phase 2 as the plan's pure batch: phase 1 runs
        here, phases 3 runs in ``finish`` once the batch has been stepped —
        by this backend inline, or by a cluster round's executor.
        """
        report = ConstructTickReport(
            total_constructs=len(self._constructs), construct_tick=True
        )
        now_ms = self.engine.now_ms
        tick_lead = self.config.tick_lead
        quiescent = self._quiescent
        ordered = self.constructs()

        # Phase 1: merges, quiescent skips, and fallback collection.
        fallbacks: list[SimulatedConstruct] = []
        fast_path_skipped: set[int] = set()
        for construct in ordered:
            record = self._records[construct.construct_id]
            if construct.construct_id in quiescent:
                fast_path_skipped.add(construct.construct_id)
                # Fixed point pinned by a length-1 loop and nothing in
                # flight: merging would re-apply the state the construct
                # already holds.  The simulated server still pays the merge
                # (the report keeps counting it); the host skips the work.
                construct.step += 1
                record.merged_steps += 1
                report.merged_speculative += 1
                report.advanced += 1
                report.skipped_quiescent += 1
                continue
            self._promote_pending(record, construct, now_ms)

            target_step = construct.step + 1
            entry = record.sequence_for(construct, target_step)
            if entry is not None:
                construct.apply_values(
                    entry.aligned_values(construct, target_step), step=target_step
                )
                record.merged_steps += 1
                report.merged_speculative += 1
                sequence = entry.sequence
                if (
                    record.pending is None
                    and len(sequence.loop_states) == 1
                    and target_step > sequence.start_step + len(sequence.prefix)
                ):
                    # The loop has a single state and the construct has just
                    # been set to it: every future step is this exact state.
                    quiescent.add(construct.construct_id)
            else:
                record.fallback_steps += 1
                report.simulated_locally += 1
                pending = record.pending
                if (
                    pending is not None
                    and pending.covers(target_step)
                    and pending.request.timestamp == construct.modification_counter
                ):
                    pending.locally_computed += 1
                fallbacks.append(construct)
            report.advanced += 1

        # Phase 2 is the plan's pure batch: one local step for every
        # fallback construct, wherever the caller chooses to run it.
        circuits = [compile_circuit(construct) for construct in fallbacks]

        def finish(_fixed_points: list[bool]) -> ConstructTickReport:
            # Phase 3: bookkeeping and follow-up invocations, in construct
            # order.  Constructs that took the quiescent fast path in phase 1
            # are skipped (as the single loop did); ones that became
            # quiescent *this tick* still get their transition-tick
            # bookkeeping.  The fixed-point flags are ignored: quiescence in
            # this backend is pinned by length-1 looping sequences, not by
            # locally observed fixed points.
            for construct in ordered:
                if construct.construct_id in fast_path_skipped:
                    continue
                record = self._records[construct.construct_id]
                record.drop_exhausted(construct)
                coverage_end = record.coverage_end(construct)
                if (
                    coverage_end < _UNBOUNDED_COVERAGE
                    and coverage_end - construct.step <= tick_lead
                ):
                    self._issue_invocation(record, construct)
            return report

        return ConstructTickPlan(circuits=circuits, finish=finish, stepper=self._stepper)

    def tick(self, tick_index: int) -> ConstructTickReport:
        plan = self.begin_tick(tick_index)
        return plan.finish(plan.step_inline())

    # -- introspection -----------------------------------------------------------------------

    def record_for(self, construct_id: int) -> SpeculationRecord:
        if construct_id not in self._records:
            raise KeyError(f"no speculation record for construct {construct_id}")
        return self._records[construct_id]

    def efficiency_samples(self) -> list[float]:
        return self.metrics.histogram("speculation_efficiency").samples
