"""Remote state storage with caching and prefetching (Section III-E).

Servo stores terrain (and player/meta) data in serverless blob storage, which
removes storage operations from the game operator's responsibilities but has a
heavy latency tail.  The storage service hides that tail from the game loop
with a server-local cache and a distance-based prefetcher: terrain just beyond
the players' view distance is pulled into the cache before it is needed, so
the synchronous read the chunk manager performs is almost always a cache hit.
"""

from __future__ import annotations

from typing import Iterable

from repro.server.entities import Avatar
from repro.sim.engine import SimulationEngine
from repro.storage.base import StorageBackend, StorageOperation
from repro.storage.blob import BlobStorage
from repro.storage.cache import CachedStorage
from repro.storage.prefetch import DistancePrefetchPolicy


class ServoStorageService(StorageBackend):
    """Cached, prefetching facade over serverless blob storage."""

    name = "servo-storage"

    def __init__(
        self,
        engine: SimulationEngine,
        remote: BlobStorage,
        view_distance_blocks: float = 128.0,
        prefetch_margin_blocks: float = 48.0,
        cache_capacity_objects: int = 4096,
        enable_cache: bool = True,
    ) -> None:
        self.engine = engine
        self.remote = remote
        self.enable_cache = enable_cache
        self.cache = CachedStorage(
            remote=remote,
            rng=engine.rng("servo-storage-cache"),
            capacity_objects=cache_capacity_objects,
        )
        self.policy = DistancePrefetchPolicy(
            view_distance_blocks=view_distance_blocks,
            prefetch_margin_blocks=prefetch_margin_blocks,
        )
        self.metrics = engine.metrics

    def _backend(self) -> StorageBackend:
        return self.cache if self.enable_cache else self.remote

    # -- StorageBackend API --------------------------------------------------------------

    def read(self, key: str) -> StorageOperation:
        operation = self._backend().read(key)
        self.metrics.histogram("storage_read_ms").record(operation.latency_ms)
        return operation

    def write(self, key: str, data: bytes) -> StorageOperation:
        return self._backend().write(key, data)

    def delete(self, key: str) -> StorageOperation:
        return self._backend().delete(key)

    def exists(self, key: str) -> bool:
        return self._backend().exists(key)

    def list_keys(self) -> list[str]:
        return self._backend().list_keys()

    def size_bytes(self, key: str) -> int:
        return self._backend().size_bytes(key)

    # -- Servo-specific behaviour -----------------------------------------------------------

    def prefetch_for_avatars(self, avatars: Iterable[Avatar]) -> int:
        """Prefetch terrain objects near (but outside) the players' view distance.

        Returns the number of objects brought into the cache.  Prefetch reads
        happen off the game loop's critical path, so their latency is not
        accounted against any tick.
        """
        if not self.enable_cache:
            return 0
        if getattr(self.remote, "object_count", 1) == 0:
            return 0  # nothing persisted yet; planning would be pointless work
        plan = self.policy.plan([avatar.position for avatar in avatars])
        fetched = 0
        candidates = sorted(
            plan.prefetch | plan.required, key=lambda pos: (pos.cx, pos.cz)
        )
        for chunk_pos in candidates:
            key = chunk_pos.key()
            if self.cache.is_cached(key) or not self.remote.exists(key):
                continue
            self.cache.prefetch(key)
            fetched += 1
        if fetched:
            self.metrics.increment("prefetched_objects", fetched)
        return fetched

    def flush(self) -> int:
        """Write dirty cached objects back to blob storage (periodic write-back)."""
        if not self.enable_cache:
            return 0
        return len(self.cache.flush())

    @property
    def hit_rate(self) -> float:
        return self.cache.stats.hit_rate
