"""Construct offloading: requests, replies and the remote simulation function.

An offload request carries the construct's current state, the number of steps
to simulate and the logical timestamp of the last player modification.  The
function simulates the requested steps (optionally compressing a detected
loop) and echoes the timestamp so the server can discard replies that were
computed from a state the player has since modified (Section III-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.constructs.circuit import Cell, SimulatedConstruct
from repro.constructs.compiled import compile_circuit
from repro.constructs.components import ComponentType
from repro.constructs.state import state_hash
from repro.core.loop_detection import CompressedStateSequence, compress_trace
from repro.faas.function import FunctionOutput
from repro.world.coords import BlockPos

#: name under which the construct-simulation function is deployed
SC_SIMULATION_FUNCTION = "servo-simulate-construct"

# Calibration of the per-step compute cost inside the function, fitted to the
# Section IV-G measurements: a 252-block construct simulates ~488 steps/s and a
# 484-block construct ~105 steps/s on one Lambda vCPU, i.e. the per-step time
# grows roughly as blocks^2.35 (block interactions dominate).
_PER_STEP_COEFFICIENT_MS = 4.7e-6
_PER_STEP_EXPONENT = 2.35
#: fixed in-function overhead per invocation (runtime, deserialisation), ms
_INVOCATION_OVERHEAD_WORK_MS = 40.0


def simulation_work_ms(block_count: int, steps: int) -> float:
    """Single-vCPU work (ms) of simulating ``steps`` steps of a construct."""
    if block_count < 1:
        raise ValueError("block_count must be positive")
    if steps < 0:
        raise ValueError("steps must be non-negative")
    per_step = _PER_STEP_COEFFICIENT_MS * block_count ** _PER_STEP_EXPONENT
    return _INVOCATION_OVERHEAD_WORK_MS + per_step * steps


@dataclass(frozen=True)
class OffloadRequest:
    """The payload of one construct-simulation invocation."""

    construct_id: int
    #: structural description: (dx, dy, dz, component value, properties) per cell
    structure: tuple[tuple[int, int, int, str, tuple], ...]
    #: absolute positions matching the structure entries
    positions: tuple[tuple[int, int, int], ...]
    #: current cell states keyed by position tuple
    states: Mapping[tuple[int, int, int], int]
    #: construct step counter at request time
    start_step: int
    #: steps to simulate
    steps: int
    #: logical timestamp (modification counter) at request time
    timestamp: int
    #: whether the function should compress detected loops
    detect_loops: bool = True

    @staticmethod
    def from_construct(
        construct: SimulatedConstruct, steps: int, detect_loops: bool = True
    ) -> "OffloadRequest":
        anchor = construct.anchor()
        structure = []
        positions = []
        states = {}
        for cell in construct.cells:
            structure.append(
                (
                    cell.position.x - anchor.x,
                    cell.position.y - anchor.y,
                    cell.position.z - anchor.z,
                    cell.component.value,
                    tuple(sorted(cell.properties.items())),
                )
            )
            positions.append((cell.position.x, cell.position.y, cell.position.z))
            states[(cell.position.x, cell.position.y, cell.position.z)] = cell.state
        return OffloadRequest(
            construct_id=construct.construct_id,
            structure=tuple(structure),
            positions=tuple(positions),
            states=states,
            start_step=construct.step,
            steps=int(steps),
            timestamp=construct.modification_counter,
            detect_loops=detect_loops,
        )

    def rebuild_construct(self) -> SimulatedConstruct:
        """Reconstruct the construct inside the function from the request payload."""
        cells = []
        for (x, y, z), (dx, dy, dz, component_value, properties) in zip(
            self.positions, self.structure
        ):
            cells.append(
                Cell(
                    position=BlockPos(x, y, z),
                    component=ComponentType(component_value),
                    state=int(self.states[(x, y, z)]),
                    properties=dict(properties),
                )
            )
        construct = SimulatedConstruct(cells, construct_id=self.construct_id)
        construct.step = self.start_step
        return construct

    def anchor(self) -> tuple[int, int, int]:
        """The world position of the construct's anchor (minimum corner)."""
        (x, y, z) = self.positions[0]
        (dx, dy, dz, _, _) = self.structure[0]
        return (x - dx, y - dy, z - dz)

    def relative_states(self) -> dict[BlockPos, int]:
        """Cell states keyed by anchor-relative positions."""
        ax, ay, az = self.anchor()
        return {
            BlockPos(x - ax, y - ay, z - az): int(value)
            for (x, y, z), value in self.states.items()
        }

    def cache_key(self) -> tuple:
        """A memoisation key in anchor-relative coordinates.

        Structurally identical constructs in the same state produce identical
        simulations regardless of where they sit in the world, so their
        requests share one cache entry; the cached (relative) reply is
        translated back to each construct's absolute positions.
        """
        return (
            self.structure,
            state_hash(self.relative_states()),
            self.start_step,
            self.steps,
            self.detect_loops,
        )


@dataclass(frozen=True)
class OffloadReply:
    """The result of one construct-simulation invocation."""

    construct_id: int
    #: echoed logical timestamp; the server discards the reply if it is stale
    timestamp: int
    sequence: CompressedStateSequence
    #: how many steps were actually simulated inside the function
    simulated_steps: int
    loop_detected: bool = False


@dataclass
class _HandlerCache:
    """Bounded memoisation of identical simulation requests."""

    capacity: int = 512
    entries: dict = field(default_factory=dict)
    order: list = field(default_factory=list)

    def get(self, key):
        return self.entries.get(key)

    def put(self, key, value) -> None:
        if key in self.entries:
            return
        self.entries[key] = value
        self.order.append(key)
        while len(self.order) > self.capacity:
            oldest = self.order.pop(0)
            self.entries.pop(oldest, None)


def _build_canonical_construct(payload: OffloadRequest) -> SimulatedConstruct:
    """Rebuild the construct in anchor-relative coordinates."""
    relative_states = payload.relative_states()
    cells = []
    for (dx, dy, dz, component_value, properties) in payload.structure:
        position = BlockPos(dx, dy, dz)
        cells.append(
            Cell(
                position=position,
                component=ComponentType(component_value),
                state=relative_states[position],
                properties=dict(properties),
            )
        )
    construct = SimulatedConstruct(cells, construct_id=payload.construct_id)
    construct.step = payload.start_step
    return construct


def _translate_sequence(
    sequence: CompressedStateSequence, anchor: tuple[int, int, int]
) -> CompressedStateSequence:
    """Translate a relative-coordinate state sequence to absolute world positions."""
    ax, ay, az = anchor

    def translate_states(states: list) -> list:
        return [
            type(state)(
                step=state.step,
                states={
                    BlockPos(pos.x + ax, pos.y + ay, pos.z + az): value
                    for pos, value in state.states.items()
                },
            )
            for state in states
        ]

    return CompressedStateSequence(
        start_step=sequence.start_step,
        prefix=translate_states(sequence.prefix),
        loop_states=translate_states(sequence.loop_states),
    )


def make_simulation_handler(cache_capacity: int = 512):
    """Create the FaaS handler that simulates constructs speculatively.

    The handler is a pure function of its request: it rebuilds the construct,
    simulates the requested number of steps (stopping early if loop detection
    finds a repeating state, the paper's cost optimisation), and reports the
    single-vCPU work the simulation represents.  Simulation happens in
    anchor-relative coordinates and identical requests are memoised — their
    replies are identical up to translation — which keeps large experiments
    fast without changing behaviour.

    Simulation steps through the construct's compiled circuit; the loop
    detector hashes the compiled state arrays directly (the digest is
    identical to hashing the snapshot), so a cache miss only builds one
    snapshot dict per simulated step.
    """
    cache = _HandlerCache(capacity=cache_capacity)

    def handler(payload: OffloadRequest) -> FunctionOutput:
        if not isinstance(payload, OffloadRequest):
            raise TypeError(f"expected OffloadRequest, got {type(payload)!r}")

        key = payload.cache_key()
        cached = cache.get(key)
        if cached is None:
            construct = _build_canonical_construct(payload)
            compiled = compile_circuit(construct)
            states = []
            relative_sequence = None
            seen: dict[str, int] = {}
            steps_executed = 0
            for index in range(payload.steps):
                compiled.step()
                state = construct.snapshot()
                steps_executed += 1
                if payload.detect_loops:
                    digest = compiled.digest()
                    repeat_of = seen.get(digest)
                    if repeat_of is not None:
                        relative_sequence = CompressedStateSequence(
                            start_step=payload.start_step,
                            prefix=list(states[:repeat_of]),
                            loop_states=list(states[repeat_of:]),
                        )
                        break
                    seen[digest] = index
                states.append(state)
            if relative_sequence is None:
                relative_sequence = CompressedStateSequence(
                    start_step=payload.start_step, prefix=list(states)
                )
            work_ms = simulation_work_ms(len(payload.structure), steps_executed)
            cached = (relative_sequence, steps_executed, work_ms)
            cache.put(key, cached)

        relative_sequence, steps_executed, work_ms = cached
        sequence = _translate_sequence(relative_sequence, payload.anchor())
        reply = OffloadReply(
            construct_id=payload.construct_id,
            timestamp=payload.timestamp,
            sequence=sequence,
            simulated_steps=steps_executed,
            loop_detected=sequence.is_looping,
        )
        return FunctionOutput(value=reply, work_ms_single_vcpu=work_ms)

    return handler
