"""Subscription bookkeeping: the chunk-to-subscriber index and flush logic.

The :class:`InterestMap` is the broadcast path's routing table.  Each
connected session holds one :class:`Subscription` covering the square of
chunks within ``radius_chunks`` (Chebyshev) of its avatar's chunk; the map
maintains the inverse index — chunk to subscribers — incrementally, updated
only when a player joins, leaves, migrates or crosses a chunk boundary, so
routing one dirty entry is O(subscribers of that chunk), not O(players).

Consistency follows the dyconit model.  A subscription's footprint splits
into two tiers by distance from its center: *near* chunks (within
``near_radius_chunks``) flush every tick — players can perceive staleness
next to them; *far* chunks accumulate delta entries and flush only when an
error budget would otherwise be violated: entries older than
``max_staleness_ticks`` ticks, or accumulated positional drift beyond
``max_drift_blocks`` blocks.  The staleness observed at every flush is
reported so runs can *prove* the bounds held.

Entries are encoded on write: a dirty entry with at least one (non-source)
subscriber is serialized once, whatever the subscriber count — the cost
model charges ``per_update_entry_ms`` per encoded entry plus
``per_update_flush_ms`` per batch send, replacing the legacy
``per_player_ms`` full fan-out.

The map draws no randomness and iterates insertion-ordered dicts only, so
interest-enabled runs stay bit-deterministic for a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import TYPE_CHECKING, Callable, Optional

from repro.net.batch import FAR_TIER, NEAR_TIER, BatchStream, UpdateBatch
from repro.world.coords import CHUNK_SIZE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.server.session import PlayerSession

ChunkKey = tuple[int, int]


@lru_cache(maxsize=32)
def _square_offsets(radius_chunks: int) -> tuple[ChunkKey, ...]:
    """Chunk offsets within Chebyshev ``radius_chunks`` of the origin."""
    return tuple(
        (dx, dz)
        for dx in range(-radius_chunks, radius_chunks + 1)
        for dz in range(-radius_chunks, radius_chunks + 1)
    )


@dataclass(frozen=True)
class SubscriptionState:
    """The serializable part of a subscription (migration handoff payload)."""

    near_entries: int
    far_entries: int
    far_first_tick: Optional[int]
    far_drift: float


@dataclass
class Subscription:
    """One session's area-of-interest state."""

    player_id: int
    session: "PlayerSession"
    #: chunk coordinates of the subscription's center (the avatar's chunk)
    center: ChunkKey
    #: near-tier entries pending since this tick (flushed every tick)
    near_entries: int = 0
    #: far-tier entries accumulated since the last far flush
    far_entries: int = 0
    #: tick at which the oldest pending far entry was produced
    far_first_tick: Optional[int] = None
    #: positional drift (blocks) accumulated in the far tier since last flush
    far_drift: float = 0.0

    def export_state(self) -> SubscriptionState:
        return SubscriptionState(
            near_entries=self.near_entries,
            far_entries=self.far_entries,
            far_first_tick=self.far_first_tick,
            far_drift=self.far_drift,
        )


@dataclass
class FlushReport:
    """What one per-tick flush pass did (feeds the cost model and metrics)."""

    #: delta entries encoded this tick (each charged once, encode-on-write)
    entries_encoded: int = 0
    #: batch sends: near flushes plus due far flushes actually sent
    flushes: int = 0
    near_flushes: int = 0
    far_flushes: int = 0
    #: far batches whose budget expired this tick (before shedding)
    far_due: int = 0
    #: due far batches deferred by graceful degradation (budget widening)
    flushes_shed: int = 0
    #: largest staleness (ticks) observed across this tick's flushes
    staleness_max: int = 0
    #: sum of flush staleness values (mean = staleness_sum / flushes)
    staleness_sum: int = 0
    #: largest accumulated drift (blocks) observed at a far flush
    drift_max: float = 0.0

    @property
    def staleness_mean(self) -> float:
        return self.staleness_sum / self.flushes if self.flushes else 0.0


class InterestMap:
    """Chunk-radius subscriptions with tiered, budget-bounded flushing."""

    def __init__(
        self,
        radius_chunks: int,
        near_radius_chunks: int = 1,
        max_staleness_ticks: int = 5,
        max_drift_blocks: float = 8.0,
    ) -> None:
        if radius_chunks < 1:
            raise ValueError("an InterestMap needs a positive radius (0/None = legacy)")
        if not 0 <= near_radius_chunks <= radius_chunks:
            raise ValueError("near_radius_chunks must be within [0, radius_chunks]")
        if max_staleness_ticks < 1:
            raise ValueError("max_staleness_ticks must be at least 1")
        if max_drift_blocks <= 0:
            raise ValueError("max_drift_blocks must be positive")
        self.radius_chunks = int(radius_chunks)
        self.near_radius_chunks = int(near_radius_chunks)
        self.max_staleness_ticks = int(max_staleness_ticks)
        self.max_drift_blocks = float(max_drift_blocks)
        self._subs: dict[int, Subscription] = {}
        #: inverse index: chunk -> insertion-ordered subscribers
        self._chunk_subs: dict[ChunkKey, dict[int, Subscription]] = {}
        #: entries encoded since the last flush (encode-on-write accounting)
        self._entries_encoded = 0
        #: the tick entries noted now belong to (advanced by ``flush``)
        self._tick = 0
        #: when True, every local dirty event is also appended to the dirty
        #: log for cross-shard routing (set by the cluster coordinator)
        self.record_dirty_log = False
        self._dirty_log: list[tuple[ChunkKey, int, float, Optional[int]]] = []
        #: optional sink receiving every flushed (sequence-stamped) batch;
        #: None keeps the hot path allocation-free
        self.batch_sink: Optional[Callable[[UpdateBatch], None]] = None
        self._batch_stream = BatchStream()

    # -- shape -----------------------------------------------------------------------

    @property
    def subscriber_count(self) -> int:
        return len(self._subs)

    def subscription(self, player_id: int) -> Optional[Subscription]:
        return self._subs.get(player_id)

    def has_subscribers(self, chunk: ChunkKey) -> bool:
        """True when at least one session subscribes to ``chunk``."""
        return chunk in self._chunk_subs

    @staticmethod
    def chunk_of(position) -> ChunkKey:
        """The chunk key of a block position (matches the chunk manager's)."""
        return (position.x // CHUNK_SIZE, position.z // CHUNK_SIZE)

    def _footprint(self, center: ChunkKey) -> set[ChunkKey]:
        cx, cz = center
        return {(cx + dx, cz + dz) for dx, dz in _square_offsets(self.radius_chunks)}

    # -- membership ------------------------------------------------------------------

    def subscribe(self, session: "PlayerSession") -> Subscription:
        """Register a session, centered on its avatar's current chunk."""
        player_id = session.player_id
        if player_id in self._subs:
            raise ValueError(f"player {player_id} is already subscribed")
        sub = Subscription(
            player_id=player_id,
            session=session,
            center=self.chunk_of(session.avatar.position),
        )
        self._subs[player_id] = sub
        for chunk in sorted(self._footprint(sub.center)):
            self._chunk_subs.setdefault(chunk, {})[player_id] = sub
        return sub

    def unsubscribe(self, player_id: int) -> Optional[SubscriptionState]:
        """Drop a session's subscription; returns its pending state (or None)."""
        sub = self._subs.pop(player_id, None)
        if sub is None:
            return None
        for chunk in sorted(self._footprint(sub.center)):
            owners = self._chunk_subs.get(chunk)
            if owners is not None:
                owners.pop(player_id, None)
                if not owners:
                    del self._chunk_subs[chunk]
        return sub.export_state()

    def update_center(self, player_id: int, center: ChunkKey) -> None:
        """Move a subscription's footprint after a chunk-boundary crossing."""
        sub = self._subs.get(player_id)
        if sub is None or sub.center == center:
            return
        old_footprint = self._footprint(sub.center)
        new_footprint = self._footprint(center)
        for chunk in sorted(old_footprint - new_footprint):
            owners = self._chunk_subs.get(chunk)
            if owners is not None:
                owners.pop(player_id, None)
                if not owners:
                    del self._chunk_subs[chunk]
        for chunk in sorted(new_footprint - old_footprint):
            self._chunk_subs.setdefault(chunk, {})[player_id] = sub
        sub.center = center

    # -- migration handoff -----------------------------------------------------------

    def import_state(self, player_id: int, state: SubscriptionState) -> None:
        """Restore pending delta accounting onto a freshly subscribed player.

        The far tier's first-entry tick is clamped to this map's current tick
        so a handoff into a younger server (e.g. a respawned shard whose tick
        counter restarted) never produces negative staleness.
        """
        sub = self._subs.get(player_id)
        if sub is None:
            raise KeyError(f"player {player_id} is not subscribed")
        sub.near_entries += state.near_entries
        if state.far_entries:
            sub.far_entries += state.far_entries
            sub.far_drift += state.far_drift
            imported_first = (
                state.far_first_tick if state.far_first_tick is not None else self._tick
            )
            imported_first = min(imported_first, self._tick)
            sub.far_first_tick = (
                imported_first
                if sub.far_first_tick is None
                else min(sub.far_first_tick, imported_first)
            )

    def export_state(self, player_id: int) -> Optional[SubscriptionState]:
        sub = self._subs.get(player_id)
        return sub.export_state() if sub is not None else None

    # -- dirty entries ---------------------------------------------------------------

    def note_dirty(
        self,
        chunk: ChunkKey,
        entries: int = 1,
        drift: float = 0.0,
        source_player_id: Optional[int] = None,
    ) -> None:
        """Route a local dirty event to the chunk's subscribers.

        The event is also appended to the dirty log when cross-shard routing
        is on — even with no local subscribers, since a neighbouring shard's
        players may subscribe to this chunk across the zone boundary.
        """
        if self.record_dirty_log:
            self._dirty_log.append((chunk, entries, drift, source_player_id))
        self._route(chunk, entries, drift, source_player_id)

    def note_external(
        self,
        chunk: ChunkKey,
        entries: int = 1,
        drift: float = 0.0,
        source_player_id: Optional[int] = None,
    ) -> None:
        """Route a dirty event relayed from another shard (never re-logged)."""
        self._route(chunk, entries, drift, source_player_id)

    def drain_dirty_log(self) -> list[tuple[ChunkKey, int, float, Optional[int]]]:
        """Return and clear this tick's dirty events (cross-shard routing)."""
        events, self._dirty_log = self._dirty_log, []
        return events

    def _route(
        self,
        chunk: ChunkKey,
        entries: int,
        drift: float,
        source_player_id: Optional[int],
    ) -> None:
        subscribers = self._chunk_subs.get(chunk)
        if not subscribers:
            return
        near_radius = self.near_radius_chunks
        tick = self._tick
        delivered = False
        for sub in subscribers.values():
            if sub.player_id == source_player_id:
                continue  # a player needs no update about its own action
            delivered = True
            center = sub.center
            if (
                abs(chunk[0] - center[0]) <= near_radius
                and abs(chunk[1] - center[1]) <= near_radius
            ):
                sub.near_entries += entries
            else:
                sub.far_entries += entries
                sub.far_drift += drift
                if sub.far_first_tick is None:
                    sub.far_first_tick = tick
        if delivered:
            # Encode-on-write: the entry is serialized once and shared by
            # every subscriber's batch.
            self._entries_encoded += entries

    # -- the per-tick flush ----------------------------------------------------------

    def flush(
        self,
        tick_index: int,
        shed_far: Optional[Callable[[int], int]] = None,
    ) -> FlushReport:
        """Flush near tiers and budget-expired far tiers; report what was sent.

        ``shed_far`` is graceful degradation's hook: called with the number
        of *due* far batches, it returns how many to defer to a later tick
        (the least-stale ones are deferred first, widening their budgets
        instead of blacking anyone out).
        """
        report = FlushReport()
        report.entries_encoded = self._entries_encoded
        self._entries_encoded = 0

        due_far: list[tuple[int, Subscription]] = []
        for sub in self._subs.values():
            if sub.near_entries:
                self._send(sub, NEAR_TIER, tick_index, tick_index, report)
                sub.near_entries = 0
            if sub.far_entries:
                staleness = tick_index - (
                    sub.far_first_tick if sub.far_first_tick is not None else tick_index
                )
                if (
                    staleness >= self.max_staleness_ticks
                    or sub.far_drift >= self.max_drift_blocks
                ):
                    due_far.append((staleness, sub))
        report.far_due = len(due_far)

        shed = shed_far(len(due_far)) if shed_far is not None and due_far else 0
        if shed > 0:
            # Defer the least-stale batches: their budgets widen, while the
            # most overdue subscribers still get their flush.
            due_far.sort(key=lambda item: (item[0], item[1].far_drift, item[1].player_id))
            shed = min(shed, len(due_far))
            report.flushes_shed = shed
            due_far = due_far[shed:]

        for staleness, sub in due_far:
            report.drift_max = max(report.drift_max, sub.far_drift)
            first_tick = (
                sub.far_first_tick if sub.far_first_tick is not None else tick_index
            )
            self._send(sub, FAR_TIER, first_tick, tick_index, report)
            report.staleness_sum += staleness
            report.staleness_max = max(report.staleness_max, staleness)
            sub.far_entries = 0
            sub.far_first_tick = None
            sub.far_drift = 0.0

        self._tick = tick_index + 1
        return report

    def _send(
        self,
        sub: Subscription,
        tier: str,
        first_tick: int,
        flush_tick: int,
        report: FlushReport,
    ) -> None:
        report.flushes += 1
        if tier == NEAR_TIER:
            report.near_flushes += 1
        else:
            report.far_flushes += 1
        # updates_sent derives from actual flushes in interest mode (the
        # BroadcastClock stays the legacy path).
        sub.session.record_updates(1)
        if self.batch_sink is not None:
            batch = self._batch_stream.stamp(
                UpdateBatch(
                    player_id=sub.player_id,
                    tier=tier,
                    entries=sub.near_entries if tier == NEAR_TIER else sub.far_entries,
                    first_tick=first_tick,
                    flush_tick=flush_tick,
                )
            )
            self.batch_sink(batch)

    # -- invariants (test support) ---------------------------------------------------

    def verify_index(self) -> bool:
        """True when the inverse index matches a from-scratch recomputation."""
        rebuilt: dict[ChunkKey, set[int]] = {}
        for sub in self._subs.values():
            for chunk in self._footprint(sub.center):  # det: allow[DET003] builds sets compared by ==; fully order-insensitive
                rebuilt.setdefault(chunk, set()).add(sub.player_id)
        current = {
            chunk: set(owners) for chunk, owners in self._chunk_subs.items() if owners
        }
        return current == rebuilt
