"""Area-of-interest subscriptions with dyconit-style bounded staleness.

Instead of broadcasting the whole world to every session each tick, each
session subscribes to a chunk radius around its avatar; dirty entries are
routed through an incremental chunk-to-subscriber index and delivered as
delta-compressed batches whose flush cadence is governed by per-subscription
error budgets (ticks of staleness, blocks of drift) — the dynamic-consistency
model of the Opencraft/dyconits line.
"""

from repro.interest.subscriptions import (
    FlushReport,
    InterestMap,
    Subscription,
    SubscriptionState,
)

__all__ = ["InterestMap", "Subscription", "SubscriptionState", "FlushReport"]
