"""Resource scaling of FaaS functions.

On AWS Lambda the vCPU share a function receives is proportional to its memory
allocation (one full vCPU at 1769 MB).  Compute-bound work therefore finishes
faster with larger memory configurations, but sublinearly (Figure 11b), and
small configurations show larger latency variability (Figure 11a).

Calibration (documented in DESIGN.md §6): a default-world chunk generation is
~1.3 s of single-vCPU work plus ~150 ms of fixed in-function overhead, which
reproduces the ~3.3 s mean at 320 MB down to ~0.7 s at 10240 MB.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: memory (MB) that corresponds to one full vCPU on AWS Lambda
MEMORY_PER_VCPU_MB = 1769.0


def vcpus_for_memory(memory_mb: float) -> float:
    """vCPU share for a memory configuration."""
    if memory_mb <= 0:
        raise ValueError("memory_mb must be positive")
    return float(memory_mb) / MEMORY_PER_VCPU_MB


@dataclass(frozen=True)
class ResourceModel:
    """Turns single-vCPU work into execution time for a memory configuration."""

    #: exponent of the sublinear speedup with vCPU share
    scaling_exponent: float = 0.503
    #: fixed per-execution overhead inside the function (runtime startup, I/O)
    overhead_ms: float = 20.0
    #: latency variability at large memory configurations
    sigma_floor: float = 0.10
    #: additional variability for small (sub-vCPU) configurations
    sigma_small_config: float = 0.22
    #: below this memory size the runtime suffers additional slowdown
    memory_pressure_threshold_mb: float = 480.0
    #: multiplicative slowdown applied under memory pressure
    memory_pressure_factor: float = 1.35

    def speed_factor(self, memory_mb: float) -> float:
        """Relative execution speed (1.0 at one full vCPU).

        Very small configurations are additionally penalised: with little
        memory the runtime spends extra time on garbage collection and paging,
        which is why the paper's 320 MB configuration is the one exception to
        "less memory is more cost-efficient" (Figure 11b).
        """
        speed = vcpus_for_memory(memory_mb) ** self.scaling_exponent
        if memory_mb < self.memory_pressure_threshold_mb:
            speed /= self.memory_pressure_factor
        return speed

    def mean_execution_ms(self, work_ms_single_vcpu: float, memory_mb: float) -> float:
        """Mean execution time of ``work_ms_single_vcpu`` at a memory configuration."""
        if work_ms_single_vcpu < 0:
            raise ValueError("work must be non-negative")
        return self.overhead_ms + work_ms_single_vcpu / self.speed_factor(memory_mb)

    def sigma(self, memory_mb: float) -> float:
        """Lognormal sigma of the execution time (larger for smaller configs)."""
        vcpus = vcpus_for_memory(memory_mb)
        return self.sigma_floor + self.sigma_small_config / max(vcpus, 0.12) * 0.12

    def sample_execution_ms(
        self, work_ms_single_vcpu: float, memory_mb: float, rng: np.random.Generator
    ) -> float:
        """Draw one execution time for the given work and memory configuration."""
        mean = self.mean_execution_ms(work_ms_single_vcpu, memory_mb)
        sigma = self.sigma(memory_mb)
        # Lognormal with the requested mean: shift the underlying mu accordingly.
        mu = np.log(mean) - 0.5 * sigma * sigma
        return float(rng.lognormal(mean=mu, sigma=sigma))


#: the memory configurations evaluated in Figure 11
FIGURE_11_MEMORY_CONFIGS_MB = (320, 512, 1024, 2048, 4096, 10240)
