"""Warm execution-environment pool.

FaaS providers keep a function's execution environments warm for a limited
time after use; an invocation that cannot be served by a free warm environment
pays a cold start.  The paper observes that providers start deallocating
environments "within minutes", producing temporally correlated latency
outliers, and that concurrent bursts (e.g. many terrain chunks requested at
once) trigger additional cold starts because each concurrent execution needs
its own environment.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class _Environment:
    busy_until_ms: float
    last_used_ms: float


@dataclass
class WarmInstancePool:
    """Tracks the warm execution environments of one function."""

    keep_alive_ms: float = 7 * 60 * 1000.0
    _environments: list[_Environment] = field(default_factory=list)
    cold_starts: int = 0
    warm_starts: int = 0

    def acquire(self, now_ms: float, duration_ms: float) -> bool:
        """Reserve an environment for an invocation starting at ``now_ms``.

        Returns True if the invocation is a cold start (no free, still-warm
        environment was available).  The environment is marked busy until the
        invocation finishes.
        """
        self._expire(now_ms)
        for environment in self._environments:
            if environment.busy_until_ms <= now_ms:
                environment.busy_until_ms = now_ms + duration_ms
                environment.last_used_ms = now_ms
                self.warm_starts += 1
                return False
        self._environments.append(
            _Environment(busy_until_ms=now_ms + duration_ms, last_used_ms=now_ms)
        )
        self.cold_starts += 1
        return True

    def warm_count(self, now_ms: float) -> int:
        """Number of environments still considered warm at ``now_ms``."""
        self._expire(now_ms)
        return len(self._environments)

    def _expire(self, now_ms: float) -> None:
        self._environments = [
            environment
            for environment in self._environments
            if environment.busy_until_ms > now_ms
            or (now_ms - environment.last_used_ms) <= self.keep_alive_ms
        ]
