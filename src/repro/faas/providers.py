"""Provider profiles: AWS Lambda and Azure Functions.

A profile bundles the parts of a provider's behaviour that the experiments
depend on: invocation overhead (network + control plane), cold-start penalty
and keep-alive time, and the billing rates used for the paper's cost estimate
(Section IV-C: running Servo costs $0.216-0.244 per hour, comparable to one
c5n.xlarge at $0.216 per hour).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.latency import LatencyModel, LogNormalLatency


@dataclass(frozen=True)
class BillingRates:
    """Utilisation-based billing rates of a FaaS provider."""

    usd_per_million_requests: float
    usd_per_gb_second: float
    #: billing granularity (AWS bills per 1 ms, Azure per 1 ms as well)
    billing_increment_ms: float = 1.0
    #: minimum billed duration per invocation
    minimum_billed_ms: float = 1.0


@dataclass(frozen=True)
class ProviderProfile:
    """Latency and billing behaviour of one FaaS provider."""

    name: str
    #: request/response overhead outside the function body
    invocation_overhead: LatencyModel = field(
        default_factory=lambda: LogNormalLatency(median_ms=45.0, sigma=0.30, floor_ms=15.0, cap_ms=400.0)
    )
    #: additional latency paid when no warm execution environment is available
    cold_start_penalty: LatencyModel = field(
        default_factory=lambda: LogNormalLatency(median_ms=1600.0, sigma=0.40, floor_ms=500.0, cap_ms=4500.0)
    )
    #: how long execution environments stay warm after last use
    keep_alive_ms: float = 7 * 60 * 1000.0
    #: default memory configuration for functions that do not specify one
    default_memory_mb: int = 1769
    billing: BillingRates = field(
        default_factory=lambda: BillingRates(
            usd_per_million_requests=0.20, usd_per_gb_second=0.0000166667
        )
    )


AWS_LAMBDA = ProviderProfile(
    name="aws-lambda",
    invocation_overhead=LogNormalLatency(median_ms=42.0, sigma=0.28, floor_ms=15.0, cap_ms=350.0),
    cold_start_penalty=LogNormalLatency(median_ms=1500.0, sigma=0.40, floor_ms=450.0, cap_ms=4500.0),
    keep_alive_ms=7 * 60 * 1000.0,
    default_memory_mb=1769,
    billing=BillingRates(usd_per_million_requests=0.20, usd_per_gb_second=0.0000166667),
)

AZURE_FUNCTIONS = ProviderProfile(
    name="azure-functions",
    invocation_overhead=LogNormalLatency(median_ms=58.0, sigma=0.32, floor_ms=20.0, cap_ms=500.0),
    cold_start_penalty=LogNormalLatency(median_ms=2400.0, sigma=0.45, floor_ms=700.0, cap_ms=8000.0),
    keep_alive_ms=5 * 60 * 1000.0,
    default_memory_mb=1536,
    billing=BillingRates(usd_per_million_requests=0.20, usd_per_gb_second=0.000016),
)


def provider_by_name(name: str) -> ProviderProfile:
    """Look up a provider profile ("aws" or "azure")."""
    lowered = name.lower()
    if lowered in ("aws", "aws-lambda", "lambda"):
        return AWS_LAMBDA
    if lowered in ("azure", "azure-functions"):
        return AZURE_FUNCTIONS
    raise ValueError(f"unknown provider {name!r}; expected 'aws' or 'azure'")
