"""Function definitions and invocation records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(frozen=True)
class FunctionOutput:
    """What a function handler returns.

    ``value`` is the functional result (e.g. a simulation trace or a generated
    chunk); ``work_ms_single_vcpu`` is how much single-vCPU compute producing
    it represents, which the platform turns into execution time for the
    function's memory configuration.
    """

    value: Any
    work_ms_single_vcpu: float = 1.0


#: a handler takes the invocation payload and returns a FunctionOutput
FunctionHandler = Callable[[Any], FunctionOutput]


@dataclass
class FunctionDefinition:
    """A deployed serverless function."""

    name: str
    handler: FunctionHandler
    memory_mb: int = 1769
    timeout_ms: float = 15 * 60 * 1000.0
    description: str = ""

    def __post_init__(self) -> None:
        if self.memory_mb <= 0:
            raise ValueError("memory_mb must be positive")
        if self.timeout_ms <= 0:
            raise ValueError("timeout_ms must be positive")


@dataclass(frozen=True)
class Invocation:
    """The outcome of one function invocation."""

    function_name: str
    request_id: int
    submitted_ms: float
    #: when the reply is available at the caller
    completed_ms: float
    #: end-to-end latency observed by the caller
    latency_ms: float
    #: execution time inside the function (what the provider bills)
    execution_ms: float
    cold_start: bool
    cold_start_ms: float
    timed_out: bool
    memory_mb: int
    result: Any = field(default=None)
    #: "ok", "timeout", "failure" (function error) or "throttled" (rejected
    #: at the control plane); anything but "ok" means ``result`` is None
    status: str = "ok"
    #: attempts behind this record (> 1 only for retry aggregates)
    attempts: int = 1

    @property
    def overhead_ms(self) -> float:
        """Latency not spent executing the handler (network, control plane, cold start)."""
        return self.latency_ms - self.execution_ms
