"""The FaaS platform simulator.

The platform executes function handlers immediately (they are plain Python
callables, so their functional results are real), while the *latency* the
caller observes is assembled from the calibrated models:

    latency = invocation overhead + cold-start penalty (if any) + execution time

Execution time depends on the handler's reported single-vCPU work and the
function's memory configuration (:mod:`repro.faas.resources`).  Synchronous
invocation returns the completed :class:`Invocation`; asynchronous invocation
schedules a completion callback on the simulation engine so replies arrive in
virtual time, which is what Servo's speculative execution waits for.
"""

from __future__ import annotations

import itertools
from dataclasses import replace
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.faas.billing import BillingModel
from repro.faas.coldstart import WarmInstancePool
from repro.faas.function import FunctionDefinition, FunctionOutput, Invocation
from repro.faas.providers import ProviderProfile, AWS_LAMBDA
from repro.faas.resources import ResourceModel
from repro.sim.engine import SimulationEngine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import RetryPolicy


class FunctionNotRegisteredError(KeyError):
    """Raised when invoking a function that has not been registered."""


class FaasPlatform:
    """A simulated FaaS provider deployment."""

    def __init__(
        self,
        engine: SimulationEngine,
        provider: ProviderProfile = AWS_LAMBDA,
        resource_model: ResourceModel | None = None,
    ) -> None:
        self.engine = engine
        self.provider = provider
        self.resources = resource_model or ResourceModel()
        self.billing = BillingModel(rates=provider.billing)
        self._functions: dict[str, FunctionDefinition] = {}
        self._pools: dict[str, WarmInstancePool] = {}
        self._request_ids = itertools.count(1)
        self._rng = engine.rng(f"faas:{provider.name}")
        #: completed invocations, newest last (useful for experiment analysis)
        self.invocations: list[Invocation] = []
        #: injects failures/throttles/forced timeouts when a fault plan is
        #: installed; None (the default) leaves every invocation untouched
        self.fault_injector: Optional["FaultInjector"] = None

    # -- deployment ----------------------------------------------------------------

    def register(self, definition: FunctionDefinition) -> None:
        """Deploy (or redeploy) a function."""
        self._functions[definition.name] = definition
        self._pools[definition.name] = WarmInstancePool(keep_alive_ms=self.provider.keep_alive_ms)

    def is_registered(self, name: str) -> bool:
        return name in self._functions

    def function_names(self) -> list[str]:
        return sorted(self._functions)

    def pool(self, name: str) -> WarmInstancePool:
        self._require(name)
        return self._pools[name]

    def _require(self, name: str) -> FunctionDefinition:
        if name not in self._functions:
            raise FunctionNotRegisteredError(
                f"function {name!r} is not registered; registered: {self.function_names()}"
            )
        return self._functions[name]

    # -- invocation ----------------------------------------------------------------

    def invoke(self, name: str, payload: Any) -> Invocation:
        """Invoke a function synchronously.

        The handler runs now; the returned record carries the virtual latency
        after which the reply would be observable by the caller.  The
        simulation clock is *not* advanced; callers decide how to account the
        latency (Servo's offload path uses :meth:`invoke_async` instead).
        """
        return self._invoke_at(name, payload, self.engine.now_ms)

    def _invoke_at(self, name: str, payload: Any, submitted_ms: float) -> Invocation:
        """One invocation attempt, submitted at ``submitted_ms`` (>= now)."""
        definition = self._require(name)
        outcome = "ok"
        if self.fault_injector is not None:
            outcome = self.fault_injector.faas_outcome(name)

        if outcome == "throttled":
            # Rejected at the control plane: no handler run, no warm slot,
            # no billing — the caller only pays the invocation overhead.
            overhead_ms = self.provider.invocation_overhead.sample(self._rng)
            self.engine.metrics.increment("faas_throttles")
            invocation = Invocation(
                function_name=name,
                request_id=next(self._request_ids),
                submitted_ms=submitted_ms,
                completed_ms=submitted_ms + overhead_ms,
                latency_ms=overhead_ms,
                execution_ms=0.0,
                cold_start=False,
                cold_start_ms=0.0,
                timed_out=False,
                memory_mb=definition.memory_mb,
                result=None,
                status="throttled",
            )
            self.invocations.append(invocation)
            self._trace_invocation(invocation)
            return invocation

        output = definition.handler(payload)
        if not isinstance(output, FunctionOutput):
            raise TypeError(
                f"handler of function {name!r} must return FunctionOutput, got {type(output)!r}"
            )

        execution_ms = self.resources.sample_execution_ms(
            output.work_ms_single_vcpu, definition.memory_mb, self._rng
        )
        overhead_ms = self.provider.invocation_overhead.sample(self._rng)

        timed_out = execution_ms > definition.timeout_ms
        if outcome == "timeout" and not timed_out:
            # Forced timeout: the function runs all the way to its deadline
            # and the platform kills it there; the reply is lost.
            timed_out = True
            self.engine.metrics.increment("faas_forced_timeouts")
        if timed_out:
            # Clamp before acquiring the warm slot: a timed-out invocation
            # occupies its instance until the platform kills it at
            # timeout_ms, never for the unclamped execution time.
            execution_ms = definition.timeout_ms
        cold = self._pools[name].acquire(submitted_ms, duration_ms=execution_ms)
        cold_ms = self.provider.cold_start_penalty.sample(self._rng) if cold else 0.0

        failed = outcome == "failure"
        if failed:
            self.engine.metrics.increment("faas_failures")
        status = "timeout" if timed_out else ("failure" if failed else "ok")

        latency_ms = overhead_ms + cold_ms + execution_ms
        invocation = Invocation(
            function_name=name,
            request_id=next(self._request_ids),
            submitted_ms=submitted_ms,
            completed_ms=submitted_ms + latency_ms,
            latency_ms=latency_ms,
            execution_ms=execution_ms,
            cold_start=cold,
            cold_start_ms=cold_ms,
            timed_out=timed_out,
            memory_mb=definition.memory_mb,
            result=None if status != "ok" else output.value,
            status=status,
        )
        # Failed and timed-out executions are billed for their execution
        # time, exactly as real providers bill them.
        self.billing.record(name, submitted_ms, execution_ms, definition.memory_mb)
        self.invocations.append(invocation)
        self._trace_invocation(invocation)
        return invocation

    def _trace_invocation(self, invocation: Invocation) -> None:
        """Record one attempt as a virtual-time telemetry span (if enabled)."""
        telemetry = self.engine.telemetry
        if telemetry.enabled:
            telemetry.span(
                "faas",
                invocation.function_name,
                start_ms=invocation.submitted_ms,
                duration_ms=invocation.latency_ms,
                track="faas",
                args={
                    "request_id": invocation.request_id,
                    "status": invocation.status,
                    "cold_start": invocation.cold_start,
                    "execution_ms": invocation.execution_ms,
                },
            )

    def invoke_with_retry(
        self, name: str, payload: Any, policy: Optional["RetryPolicy"] = None
    ) -> Invocation:
        """Invoke with retry/exponential-backoff against injected faults.

        Each failed attempt is retried after the policy's backoff (plus
        jitter drawn from the ``faults:faas`` stream), in virtual time: the
        retry is submitted at the failed attempt's completion plus the
        backoff, so the returned aggregate's latency covers the whole ordeal.
        Every raw attempt is appended to :attr:`invocations`; the returned
        record is the last attempt re-timed to span from the first submission
        (``attempts`` carries the count).  Without a fault injector this is
        exactly :meth:`invoke` — no retries, identical draws.
        """
        injector = self.fault_injector
        first = self._invoke_at(name, payload, self.engine.now_ms)
        if injector is None:
            return first
        if policy is None:
            policy = injector.retry_policy

        attempts, last = 1, first
        while last.status != "ok" and attempts < policy.max_attempts:
            backoff_ms = policy.backoff_ms(attempts) + injector.retry_jitter_ms()
            self.engine.metrics.increment("faas_retries")
            injector.record("faas.retry", f"{name} attempt={attempts + 1}")
            last = self._invoke_at(name, payload, last.completed_ms + backoff_ms)
            attempts += 1
        if last.status != "ok":
            self.engine.metrics.increment("faas_giveups")
        if attempts == 1:
            return first
        return replace(
            last,
            submitted_ms=first.submitted_ms,
            latency_ms=last.completed_ms - first.submitted_ms,
            attempts=attempts,
        )

    def invoke_async(
        self,
        name: str,
        payload: Any,
        callback: Optional[Callable[[Invocation], None]] = None,
    ) -> Invocation:
        """Invoke a function and deliver the reply in virtual time.

        The returned record describes the invocation; if ``callback`` is given
        it fires on the simulation engine at the invocation's completion time.
        """
        invocation = self.invoke(name, payload)
        if callback is not None:
            self.engine.schedule_at(
                invocation.completed_ms,
                lambda inv=invocation: callback(inv),
                name=f"faas-reply:{name}:{invocation.request_id}",
            )
        return invocation

    # -- summaries ------------------------------------------------------------------

    def invocations_for(self, name: str) -> list[Invocation]:
        return [inv for inv in self.invocations if inv.function_name == name]

    def cold_start_fraction(self, name: str | None = None) -> float:
        relevant = [
            inv for inv in self.invocations if name is None or inv.function_name == name
        ]
        if not relevant:
            return 0.0
        return sum(1 for inv in relevant if inv.cold_start) / len(relevant)
