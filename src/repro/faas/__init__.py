"""Function-as-a-Service (FaaS) substrate.

A simulator of the commercial FaaS platforms the paper runs on (AWS Lambda and
Azure Functions): function registration, synchronous and asynchronous
invocation, warm/cold execution environments with keep-alive expiry, the
memory-to-vCPU resource scaling that drives Figure 11, and utilisation-based
billing used for the paper's cost estimate.

Function handlers are real Python callables (the construct simulator and the
terrain generator actually execute), while invocation latency comes from the
calibrated resource and provider models.
"""

from repro.faas.billing import BillingModel, InvocationCharge
from repro.faas.coldstart import WarmInstancePool
from repro.faas.function import FunctionDefinition, FunctionOutput, Invocation
from repro.faas.platform import FaasPlatform, FunctionNotRegisteredError
from repro.faas.providers import AWS_LAMBDA, AZURE_FUNCTIONS, ProviderProfile
from repro.faas.resources import ResourceModel, vcpus_for_memory

__all__ = [
    "FunctionDefinition",
    "FunctionOutput",
    "Invocation",
    "FaasPlatform",
    "FunctionNotRegisteredError",
    "WarmInstancePool",
    "ResourceModel",
    "vcpus_for_memory",
    "ProviderProfile",
    "AWS_LAMBDA",
    "AZURE_FUNCTIONS",
    "BillingModel",
    "InvocationCharge",
]
