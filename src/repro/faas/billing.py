"""Utilisation-based billing.

FaaS billing has two components: a per-request charge and a charge per
GB-second of execution.  The billing model records every invocation so the
experiments can report cost per hour, which the paper compares to the price of
one c5n.xlarge VM ($0.216 per hour).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faas.providers import BillingRates


@dataclass(frozen=True)
class InvocationCharge:
    """The billed quantities of one invocation."""

    function_name: str
    time_ms: float
    billed_duration_ms: float
    memory_mb: int
    cost_usd: float


@dataclass
class BillingModel:
    """Accumulates invocation charges for one provider."""

    rates: BillingRates
    charges: list[InvocationCharge] = field(default_factory=list)

    def record(self, function_name: str, time_ms: float, execution_ms: float, memory_mb: int) -> InvocationCharge:
        """Record one invocation and return its charge."""
        increment = self.rates.billing_increment_ms
        billed_ms = max(self.rates.minimum_billed_ms, execution_ms)
        # Round up to the billing increment, as providers do.
        billed_ms = increment * -(-billed_ms // increment)
        gb_seconds = (memory_mb / 1024.0) * (billed_ms / 1000.0)
        cost = (
            self.rates.usd_per_million_requests / 1_000_000.0
            + gb_seconds * self.rates.usd_per_gb_second
        )
        charge = InvocationCharge(
            function_name=function_name,
            time_ms=time_ms,
            billed_duration_ms=billed_ms,
            memory_mb=memory_mb,
            cost_usd=cost,
        )
        self.charges.append(charge)
        return charge

    # -- summaries --------------------------------------------------------------------

    @property
    def invocation_count(self) -> int:
        return len(self.charges)

    def total_cost_usd(self, function_name: str | None = None) -> float:
        return sum(
            charge.cost_usd
            for charge in self.charges
            if function_name is None or charge.function_name == function_name
        )

    def total_gb_seconds(self, function_name: str | None = None) -> float:
        return sum(
            (charge.memory_mb / 1024.0) * (charge.billed_duration_ms / 1000.0)
            for charge in self.charges
            if function_name is None or charge.function_name == function_name
        )

    def cost_per_hour_usd(self, window_ms: float, function_name: str | None = None) -> float:
        """Cost extrapolated to one hour given the observation window length."""
        if window_ms <= 0:
            raise ValueError("window_ms must be positive")
        return self.total_cost_usd(function_name) * (3_600_000.0 / window_ms)

    def invocations_per_minute(self, window_ms: float, function_name: str | None = None) -> float:
        if window_ms <= 0:
            raise ValueError("window_ms must be positive")
        count = sum(
            1
            for charge in self.charges
            if function_name is None or charge.function_name == function_name
        )
        return count * (60_000.0 / window_ms)
