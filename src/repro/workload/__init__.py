"""Workload generation: emulated players and experiment scenarios.

The paper drives its experiments with bot players exhibiting four behaviours
(Section IV-A): ``A`` (movement inside a bounded area, used for construct
experiments), ``Sx`` (star-shaped walks away from spawn at x blocks/s),
``Sinc`` (star walk with increasing speed) and ``R`` (randomised behaviour
with the action mix of Table II).  Scenarios bundle a behaviour, a player
count, a join schedule, a world type and a construct workload, mirroring the
rows of Table I.
"""

from repro.workload.behavior import (
    Behavior,
    BoundedAreaBehavior,
    IncreasingSpeedStarBehavior,
    RandomBehavior,
    StarBehavior,
    behavior_by_code,
)
from repro.workload.bots import BotPlayer, BotSwarm, GameHost, JoinSchedule, SessionHandle
from repro.workload.constructs import place_standard_constructs
from repro.workload.scenarios import (
    Scenario,
    ScenarioResult,
    TABLE_I_SCENARIOS,
    behaviour_a,
    custom,
    random_walk,
    sinc,
    star,
)

__all__ = [
    "Behavior",
    "BoundedAreaBehavior",
    "StarBehavior",
    "IncreasingSpeedStarBehavior",
    "RandomBehavior",
    "behavior_by_code",
    "BotPlayer",
    "BotSwarm",
    "GameHost",
    "SessionHandle",
    "JoinSchedule",
    "place_standard_constructs",
    "Scenario",
    "ScenarioResult",
    "TABLE_I_SCENARIOS",
    "behaviour_a",
    "star",
    "sinc",
    "random_walk",
    "custom",
]
