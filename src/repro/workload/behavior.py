"""Player behaviours (Section IV-A and Table II).

A behaviour decides, every tick, which client messages a bot sends.  All
behaviours are deterministic given the bot's random stream, so experiment
repetitions with the same seed produce identical action streams.

Avatars move by fractions of a block per tick (e.g. 3 blocks/s is 0.15 blocks
per tick at 20 Hz), so each behaviour instance keeps a continuous position and
sends the rounded block position to the server.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.net.message import Message, MessageKind
from repro.world.block import BlockType
from repro.world.coords import BlockPos


class Behavior:
    """Interface: produce the messages a bot sends this tick."""

    code: str = "?"

    def act(
        self,
        player_id: int,
        position: BlockPos,
        spawn: BlockPos,
        tick_index: int,
        tick_interval_ms: float,
        rng: np.random.Generator,
    ) -> list[Message]:
        raise NotImplementedError


def _move_message(player_id: int, position: BlockPos) -> Message:
    return Message(
        MessageKind.MOVE,
        player_id,
        {"x": position.x, "y": position.y, "z": position.z},
    )


class _ContinuousWalker(Behavior):
    """Shared plumbing: continuous (sub-block) position tracking."""

    def __init__(self) -> None:
        self._float_x: float | None = None
        self._float_z: float | None = None

    def _current(self, position: BlockPos) -> tuple[float, float]:
        if self._float_x is None or self._float_z is None:
            self._float_x = float(position.x)
            self._float_z = float(position.z)
        return self._float_x, self._float_z

    def _move_to(self, player_id: int, position: BlockPos, x: float, z: float) -> Message:
        self._float_x = x
        self._float_z = z
        return _move_message(player_id, BlockPos(int(round(x)), position.y, int(round(z))))


class BoundedAreaBehavior(_ContinuousWalker):
    """Behaviour ``A``: only move actions, inside a bounded area around spawn.

    Used by the simulated-construct experiments because it generates no new
    terrain: the bot performs a random walk clipped to ``radius_blocks``.
    """

    code = "A"

    def __init__(self, radius_blocks: float = 12.0, speed_blocks_per_s: float = 3.0) -> None:
        super().__init__()
        self.radius_blocks = float(radius_blocks)
        self.speed_blocks_per_s = float(speed_blocks_per_s)

    def act(self, player_id, position, spawn, tick_index, tick_interval_ms, rng):
        x, z = self._current(position)
        step = self.speed_blocks_per_s * tick_interval_ms / 1000.0
        angle = rng.uniform(0.0, 2.0 * math.pi)
        new_x = min(max(x + step * math.cos(angle), spawn.x - self.radius_blocks),
                    spawn.x + self.radius_blocks)
        new_z = min(max(z + step * math.sin(angle), spawn.z - self.radius_blocks),
                    spawn.z + self.radius_blocks)
        return [self._move_to(player_id, position, new_x, new_z)]


class ConvergeBehavior(_ContinuousWalker):
    """Behaviour ``C``: converge on one point, then mill around it.

    Models a flash crowd: every bot beelines for the convergence point at
    walking speed and, once within ``crowd_radius_blocks``, degenerates into
    a bounded random walk there.  The entire population ends up in a handful
    of chunks — the worst case for interest management's subscriber index
    (every chunk maps to every player) and the best case for its delta
    batching (one encoded entry serves the whole crowd).

    ``target`` is the convergence point; ``None`` converges on the bot's own
    spawn (one crowd on single-server hosts, where everyone spawns at the
    world spawn).  :meth:`Scenario.run` pins it to the host's global spawn so
    cluster populations — spread across zone and boundary spawns — still form
    a single crowd in one zone.
    """

    code = "C"

    def __init__(
        self,
        speed_blocks_per_s: float = 3.0,
        crowd_radius_blocks: float = 8.0,
        target: BlockPos | None = None,
    ) -> None:
        super().__init__()
        self.speed_blocks_per_s = float(speed_blocks_per_s)
        self.crowd_radius_blocks = float(crowd_radius_blocks)
        self.target = target

    def act(self, player_id, position, spawn, tick_index, tick_interval_ms, rng):
        spawn = self.target if self.target is not None else spawn
        x, z = self._current(position)
        step = self.speed_blocks_per_s * tick_interval_ms / 1000.0
        dx, dz = spawn.x - x, spawn.z - z
        distance = math.hypot(dx, dz)
        if distance > self.crowd_radius_blocks:
            # Still approaching: head straight for the convergence point.
            if distance <= step:
                return [self._move_to(player_id, position, float(spawn.x), float(spawn.z))]
            return [
                self._move_to(
                    player_id, position, x + step * dx / distance, z + step * dz / distance
                )
            ]
        # Arrived: mill around inside the crowd radius.
        angle = rng.uniform(0.0, 2.0 * math.pi)
        new_x = min(max(x + step * math.cos(angle), spawn.x - self.crowd_radius_blocks),
                    spawn.x + self.crowd_radius_blocks)
        new_z = min(max(z + step * math.sin(angle), spawn.z - self.crowd_radius_blocks),
                    spawn.z + self.crowd_radius_blocks)
        return [self._move_to(player_id, position, new_x, new_z)]


class StarBehavior(_ContinuousWalker):
    """Behaviour ``Sx``: walk away from spawn in a fixed direction at x blocks/s.

    Bots get evenly spread directions (a star pattern) so each explores new
    terrain, stress-testing terrain generation.
    """

    def __init__(
        self,
        speed_blocks_per_s: float = 3.0,
        direction_index: int = 0,
        direction_count: int = 8,
    ) -> None:
        super().__init__()
        self.speed_blocks_per_s = float(speed_blocks_per_s)
        self.direction_index = int(direction_index)
        self.direction_count = int(direction_count)

    @property
    def code(self) -> str:  # type: ignore[override]
        return f"S{self.speed_blocks_per_s:g}"

    def _angle(self) -> float:
        return 2.0 * math.pi * (self.direction_index % self.direction_count) / self.direction_count

    def current_speed(self, tick_index: int, tick_interval_ms: float) -> float:
        """Speed at this tick (constant for Sx; overridden by Sinc)."""
        return self.speed_blocks_per_s

    def act(self, player_id, position, spawn, tick_index, tick_interval_ms, rng):
        x, z = self._current(position)
        speed = self.current_speed(tick_index, tick_interval_ms)
        step = speed * tick_interval_ms / 1000.0
        angle = self._angle()
        return [self._move_to(player_id, position, x + step * math.cos(angle), z + step * math.sin(angle))]


class IncreasingSpeedStarBehavior(StarBehavior):
    """Behaviour ``Sinc``: star walk whose speed increases by one block/s per period.

    The paper's terrain-QoS experiment starts at 1 block/s and adds one block/s
    every 200 seconds.
    """

    def __init__(
        self,
        direction_index: int = 0,
        direction_count: int = 8,
        initial_speed_blocks_per_s: float = 1.0,
        speed_increase_interval_s: float = 200.0,
    ) -> None:
        super().__init__(
            speed_blocks_per_s=initial_speed_blocks_per_s,
            direction_index=direction_index,
            direction_count=direction_count,
        )
        self.initial_speed_blocks_per_s = float(initial_speed_blocks_per_s)
        self.speed_increase_interval_s = float(speed_increase_interval_s)

    @property
    def code(self) -> str:  # type: ignore[override]
        return "Sinc"

    def current_speed(self, tick_index: int, tick_interval_ms: float) -> float:
        elapsed_s = tick_index * tick_interval_ms / 1000.0
        increments = int(elapsed_s // self.speed_increase_interval_s)
        return self.initial_speed_blocks_per_s + increments


class RandomBehavior(_ContinuousWalker):
    """Behaviour ``R``: the randomised action mix of Table II.

    Every tick the bot continues its current activity; when the activity ends
    it draws a new one: 40 % move to a random destination at 1-8 blocks/s,
    30 % break or place a nearby block, 20 % stand still, 5 % chat, 5 % set a
    random inventory item.  Destinations are drawn around the bot's current
    position, so over time the population drifts into new terrain.
    """

    code = "R"

    def __init__(self, roam_radius_blocks: float = 64.0) -> None:
        super().__init__()
        self.roam_radius_blocks = float(roam_radius_blocks)
        self._target: tuple[float, float] | None = None
        self._speed: float = 2.0
        self._idle_ticks: int = 0

    def _pick_activity(self, player_id, position, rng) -> list[Message]:
        roll = rng.random()
        if roll < 0.40:
            # Move to a random destination at 1 to 8 blocks per second.
            x, z = self._current(position)
            self._speed = float(rng.uniform(1.0, 8.0))
            self._target = (
                x + float(rng.uniform(-self.roam_radius_blocks, self.roam_radius_blocks)),
                z + float(rng.uniform(-self.roam_radius_blocks, self.roam_radius_blocks)),
            )
            return []
        if roll < 0.70:
            # Break or place a nearby block.
            offset_x, offset_z = int(rng.integers(-2, 3)), int(rng.integers(-2, 3))
            target = BlockPos(position.x + offset_x, position.y - 1, position.z + offset_z)
            kind = MessageKind.BREAK_BLOCK if rng.random() < 0.5 else MessageKind.PLACE_BLOCK
            payload = {"x": target.x, "y": target.y, "z": target.z}
            if kind is MessageKind.PLACE_BLOCK:
                payload["block"] = int(BlockType.STONE)
            return [Message(kind, player_id, payload)]
        if roll < 0.90:
            # Stand still for a moment.
            self._idle_ticks = int(rng.integers(10, 40))
            return []
        if roll < 0.95:
            return [Message(MessageKind.CHAT, player_id, {"text": "hello world"})]
        item = str(rng.choice(["stone", "torch", "lever", "sand", "wood"]))
        return [Message(MessageKind.SET_INVENTORY, player_id, {"item": item})]

    def act(self, player_id, position, spawn, tick_index, tick_interval_ms, rng):
        if self._idle_ticks > 0:
            self._idle_ticks -= 1
            return []
        if self._target is not None:
            x, z = self._current(position)
            target_x, target_z = self._target
            step = self._speed * tick_interval_ms / 1000.0
            dx, dz = target_x - x, target_z - z
            distance = math.hypot(dx, dz)
            if distance <= step:
                self._target = None
                return [self._move_to(player_id, position, target_x, target_z)]
            return [
                self._move_to(
                    player_id, position, x + step * dx / distance, z + step * dz / distance
                )
            ]
        return self._pick_activity(player_id, position, rng)


def behavior_by_code(code: str, direction_index: int = 0) -> Behavior:
    """Create a behaviour from its Table I code ("A", "C", "S3", "S8", "Sinc", "R")."""
    normalized = code.strip()
    if normalized == "A":
        return BoundedAreaBehavior()
    if normalized == "C":
        return ConvergeBehavior()
    if normalized == "R":
        return RandomBehavior()
    if normalized.lower() == "sinc":
        return IncreasingSpeedStarBehavior(direction_index=direction_index)
    if normalized.upper().startswith("S"):
        try:
            speed = float(normalized[1:])
        except ValueError as error:
            raise ValueError(f"unknown behaviour code {code!r}") from error
        return StarBehavior(speed_blocks_per_s=speed, direction_index=direction_index)
    raise ValueError(f"unknown behaviour code {code!r}")
