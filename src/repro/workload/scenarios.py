"""Named experiment scenarios (Table I).

A :class:`Scenario` bundles a workload: how many players, what they do, what
world they play in, how many constructs exist and how long the experiment
runs.  ``Scenario.run`` drives any game server (baseline or Servo) and returns
a :class:`ScenarioResult` with the tick-duration and view-range statistics the
paper's figures are built from.

The paper's workload families are registered with the
:mod:`repro.api.scenarios` registry (``behaviour_a``, ``star``, ``sinc``,
``random``, plus the pass-through ``custom``), so run specs and the CLI can
instantiate them by name; the historical ``Scenario.behaviour_a`` /
``Scenario.star`` / ``Scenario.sinc`` / ``Scenario.random`` static methods
remain as deprecated aliases.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Optional

from repro.api.scenarios import register_scenario
from repro.sim.metrics import BoxplotStats, boxplot_stats, fraction_exceeding
from repro.workload.behavior import Behavior, behavior_by_code
from repro.workload.bots import BotSwarm, GameHost, JoinSchedule
from repro.workload.constructs import place_standard_constructs

#: the paper's QoS threshold: a tick must finish within the 50 ms budget
TICK_BUDGET_MS = 50.0


@dataclass
class ScenarioResult:
    """Measurements collected from one scenario run."""

    scenario_name: str
    server_name: str
    players: int
    constructs: int
    duration_s: float
    tick_durations_ms: list[float] = field(default_factory=list)
    view_range_series: list[tuple[float, float]] = field(default_factory=list)

    def tick_stats(self) -> BoxplotStats:
        return boxplot_stats(self.tick_durations_ms)

    def fraction_over_budget(self, budget_ms: float = TICK_BUDGET_MS) -> float:
        return fraction_exceeding(self.tick_durations_ms, budget_ms)

    def meets_qos(self, budget_ms: float = TICK_BUDGET_MS, tolerance: float = 0.05) -> bool:
        """The paper's criterion: fewer than 5 % of ticks exceed the budget."""
        return self.fraction_over_budget(budget_ms) < tolerance

    def minimum_view_range(self) -> float:
        if not self.view_range_series:
            raise ValueError("no view-range samples were collected")
        return min(value for _, value in self.view_range_series)


@dataclass
class Scenario:
    """A runnable workload description."""

    name: str
    players: int
    behavior_code: str = "A"
    world_type: str = "flat"
    constructs: int = 0
    duration_s: float = 30.0
    join_interval_s: Optional[float] = None
    #: radius around spawn to pre-generate before the run (blocks)
    preload_radius_blocks: float = 160.0
    #: virtual seconds to run before measurements start (lets cold starts drain)
    warmup_s: float = 5.0

    def __post_init__(self) -> None:
        if self.players < 0:
            raise ValueError("players must be non-negative")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")

    # -- construction helpers (deprecated aliases of the registered factories) -------------

    @staticmethod
    def behaviour_a(players: int, constructs: int, duration_s: float = 30.0) -> "Scenario":
        """Deprecated alias of the registered ``behaviour_a`` scenario."""
        _warn_static_alias("behaviour_a")
        return behaviour_a(players, constructs, duration_s)

    @staticmethod
    def star(players: int, speed: float, duration_s: float = 120.0,
             join_interval_s: Optional[float] = 10.0) -> "Scenario":
        """Deprecated alias of the registered ``star`` scenario."""
        _warn_static_alias("star")
        return star(players, speed, duration_s, join_interval_s)

    @staticmethod
    def sinc(players: int = 5, duration_s: float = 1000.0) -> "Scenario":
        """Deprecated alias of the registered ``sinc`` scenario."""
        _warn_static_alias("sinc")
        return sinc(players, duration_s)

    @staticmethod
    def random(players: int, duration_s: float = 120.0) -> "Scenario":
        """Deprecated alias of the registered ``random`` scenario."""
        _warn_static_alias("random")
        return random_walk(players, duration_s)

    # -- execution -------------------------------------------------------------------------

    def build_swarm(self) -> BotSwarm:
        behaviors: list[Behavior] = [
            behavior_by_code(self.behavior_code, direction_index=index)
            for index in range(self.players)
        ]
        schedule = (
            JoinSchedule.staggered(self.join_interval_s)
            if self.join_interval_s is not None
            else JoinSchedule.all_at_start()
        )
        return BotSwarm(behaviors, schedule=schedule)

    def run(self, server: GameHost) -> ScenarioResult:
        """Drive a game host (server or cluster) and collect measurements.

        The host must have been built with a matching world type; the
        scenario preloads the spawn area (every zone's spawn points, for a
        cluster), places the construct workload, connects the bots, runs a
        short warm-up, then measures for ``duration_s`` virtual seconds.  For
        a cluster the recorded tick durations are the lockstep *round*
        durations — the slowest shard of each round.
        """
        server.chunks.preload_area(server.config.spawn_position, self.preload_radius_blocks)
        place_standard_constructs(server, self.constructs)
        swarm = self.build_swarm()
        driver = swarm.install(server)

        if self.warmup_s > 0:
            server.run_for_seconds(self.warmup_s, before_tick=driver)
        measured_from = len(server.tick_records)
        view_from = len(server.engine.metrics.series("view_range_over_time").values)

        server.run_for_seconds(self.duration_s, before_tick=driver)

        records = server.tick_records[measured_from:]
        series = server.engine.metrics.series("view_range_over_time")
        view_samples = list(zip(series.times_ms, series.values))[view_from:]
        return ScenarioResult(
            scenario_name=self.name,
            server_name=server.name,
            players=self.players,
            constructs=self.constructs,
            duration_s=self.duration_s,
            tick_durations_ms=[record.duration_ms for record in records],
            view_range_series=view_samples,
        )


def _warn_static_alias(name: str) -> None:
    warnings.warn(
        f"Scenario.{name}() is deprecated; use "
        f"repro.api.build_scenario({name!r}, ...) or the module-level factory",
        DeprecationWarning,
        stacklevel=3,
    )


# -- registered workload families (Table I) ------------------------------------------------


@register_scenario("behaviour_a")
def behaviour_a(players: int, constructs: int = 0, duration_s: float = 30.0) -> Scenario:
    """The construct-scalability workload (Figures 1 and 7)."""
    return Scenario(
        name=f"A-{players}p-{constructs}sc",
        players=players,
        behavior_code="A",
        world_type="flat",
        constructs=constructs,
        duration_s=duration_s,
    )


@register_scenario("star")
def star(players: int, speed: float, duration_s: float = 120.0,
         join_interval_s: Optional[float] = 10.0) -> Scenario:
    """The terrain-scalability workloads S3/S8 (Figure 12a)."""
    return Scenario(
        name=f"S{speed:g}-{players}p",
        players=players,
        behavior_code=f"S{speed:g}",
        world_type="default",
        duration_s=duration_s,
        join_interval_s=join_interval_s,
    )


@register_scenario("sinc")
def sinc(players: int = 5, duration_s: float = 1000.0) -> Scenario:
    """The terrain-QoS workload (Figure 10)."""
    return Scenario(
        name=f"Sinc-{players}p",
        players=players,
        behavior_code="Sinc",
        world_type="default",
        duration_s=duration_s,
    )


@register_scenario("random")
def random_walk(players: int, duration_s: float = 120.0) -> Scenario:
    """The randomised behaviour workload R (Figure 12b)."""
    return Scenario(
        name=f"R-{players}p",
        players=players,
        behavior_code="R",
        world_type="default",
        duration_s=duration_s,
    )


@register_scenario("custom")
def custom(name: str, players: int, behavior_code: str = "A", world_type: str = "flat",
           constructs: int = 0, duration_s: float = 30.0,
           join_interval_s: Optional[float] = None,
           preload_radius_blocks: float = 160.0, warmup_s: float = 5.0) -> Scenario:
    """A fully explicit scenario: every :class:`Scenario` field as a parameter."""
    return Scenario(
        name=name,
        players=players,
        behavior_code=behavior_code,
        world_type=world_type,
        constructs=constructs,
        duration_s=duration_s,
        join_interval_s=join_interval_s,
        preload_radius_blocks=preload_radius_blocks,
        warmup_s=warmup_s,
    )


#: the experiment overview of Table I, keyed by the paper's section
TABLE_I_SCENARIOS: dict[str, Scenario] = {
    "IV-B": behaviour_a(players=100, constructs=100, duration_s=60.0),
    "IV-C": Scenario(
        name="latency-hiding", players=1, behavior_code="A", world_type="flat",
        constructs=50, duration_s=60.0,
    ),
    "IV-D": sinc(players=5, duration_s=300.0),
    "IV-E": star(players=30, speed=3, duration_s=120.0),
    "IV-F": star(players=8, speed=3, duration_s=120.0, join_interval_s=None),
    "IV-G": Scenario(
        name="construct-performance", players=1, behavior_code="A", world_type="flat",
        constructs=1, duration_s=30.0,
    ),
}
