"""Named experiment scenarios (Table I).

A :class:`Scenario` bundles a workload: how many players, what they do, what
world they play in, how many constructs exist and how long the experiment
runs.  ``Scenario.run`` drives any game server (baseline or Servo) and returns
a :class:`ScenarioResult` with the tick-duration and view-range statistics the
paper's figures are built from.

The paper's workload families are registered with the
:mod:`repro.api.scenarios` registry (``behaviour_a``, ``star``, ``sinc``,
``random``, plus the pass-through ``custom``), so run specs and the CLI can
instantiate them by name; the historical ``Scenario.behaviour_a`` /
``Scenario.star`` / ``Scenario.sinc`` / ``Scenario.random`` static methods
remain as deprecated aliases.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Optional

from repro.api.scenarios import register_scenario
from repro.faults import FaultPlan, install_faults
from repro.sim.metrics import BoxplotStats, boxplot_stats, fraction_exceeding
from repro.workload.behavior import Behavior, ConvergeBehavior, behavior_by_code
from repro.workload.bots import BotSwarm, GameHost, JoinSchedule
from repro.workload.constructs import place_standard_constructs

#: the paper's QoS threshold: a tick must finish within the 50 ms budget
TICK_BUDGET_MS = 50.0


@dataclass
class ScenarioResult:
    """Measurements collected from one scenario run."""

    scenario_name: str
    server_name: str
    players: int
    constructs: int
    duration_s: float
    tick_durations_ms: list[float] = field(default_factory=list)
    view_range_series: list[tuple[float, float]] = field(default_factory=list)

    def tick_stats(self) -> BoxplotStats:
        return boxplot_stats(self.tick_durations_ms)

    def fraction_over_budget(self, budget_ms: float = TICK_BUDGET_MS) -> float:
        return fraction_exceeding(self.tick_durations_ms, budget_ms)

    def meets_qos(self, budget_ms: float = TICK_BUDGET_MS, tolerance: float = 0.05) -> bool:
        """The paper's criterion: fewer than 5 % of ticks exceed the budget."""
        return self.fraction_over_budget(budget_ms) < tolerance

    def minimum_view_range(self) -> float:
        if not self.view_range_series:
            raise ValueError("no view-range samples were collected")
        return min(value for _, value in self.view_range_series)


@dataclass
class Scenario:
    """A runnable workload description."""

    name: str
    players: int
    behavior_code: str = "A"
    world_type: str = "flat"
    constructs: int = 0
    duration_s: float = 30.0
    join_interval_s: Optional[float] = None
    #: radius around spawn to pre-generate before the run (blocks)
    preload_radius_blocks: float = 160.0
    #: virtual seconds to run before measurements start (lets cold starts drain)
    warmup_s: float = 5.0
    #: fault-plan dict (see :mod:`repro.faults.plan`) installed on the host at
    #: the start of the run; None or {} runs fault-free
    faults: Optional[dict] = None

    def __post_init__(self) -> None:
        if self.players < 0:
            raise ValueError("players must be non-negative")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.faults is not None:
            FaultPlan.from_dict(self.faults)  # validate eagerly

    # -- construction helpers (deprecated aliases of the registered factories) -------------

    @staticmethod
    def behaviour_a(players: int, constructs: int, duration_s: float = 30.0) -> "Scenario":
        """Deprecated alias of the registered ``behaviour_a`` scenario."""
        _warn_static_alias("behaviour_a")
        return behaviour_a(players, constructs, duration_s)

    @staticmethod
    def star(players: int, speed: float, duration_s: float = 120.0,
             join_interval_s: Optional[float] = 10.0) -> "Scenario":
        """Deprecated alias of the registered ``star`` scenario."""
        _warn_static_alias("star")
        return star(players, speed, duration_s, join_interval_s)

    @staticmethod
    def sinc(players: int = 5, duration_s: float = 1000.0) -> "Scenario":
        """Deprecated alias of the registered ``sinc`` scenario."""
        _warn_static_alias("sinc")
        return sinc(players, duration_s)

    @staticmethod
    def random(players: int, duration_s: float = 120.0) -> "Scenario":
        """Deprecated alias of the registered ``random`` scenario."""
        _warn_static_alias("random")
        return random_walk(players, duration_s)

    # -- execution -------------------------------------------------------------------------

    def build_swarm(self) -> BotSwarm:
        behaviors: list[Behavior] = [
            behavior_by_code(self.behavior_code, direction_index=index)
            for index in range(self.players)
        ]
        schedule = (
            JoinSchedule.staggered(self.join_interval_s)
            if self.join_interval_s is not None
            else JoinSchedule.all_at_start()
        )
        return BotSwarm(behaviors, schedule=schedule)

    def run(self, server: GameHost) -> ScenarioResult:
        """Drive a game host (server or cluster) and collect measurements.

        The host must have been built with a matching world type; the
        scenario preloads the spawn area (every zone's spawn points, for a
        cluster), places the construct workload, connects the bots, runs a
        short warm-up, then measures for ``duration_s`` virtual seconds.  For
        a cluster the recorded tick durations are the lockstep *round*
        durations — the slowest shard of each round.

        A non-empty ``faults`` plan is installed on the host before anything
        else happens, so injected faults cover the whole run (fault times in
        the plan are absolute virtual times from engine start).
        """
        if self.faults:
            install_faults(server, FaultPlan.from_dict(self.faults))
        server.chunks.preload_area(server.config.spawn_position, self.preload_radius_blocks)
        place_standard_constructs(server, self.constructs)
        swarm = self.build_swarm()
        for bot in swarm.bots:
            # Converging bots all head for the host's global spawn, so a
            # cluster population (spread across zone spawns) forms one crowd.
            if isinstance(bot.behavior, ConvergeBehavior) and bot.behavior.target is None:
                bot.behavior.target = server.config.spawn_position
        driver = swarm.install(server)

        if self.warmup_s > 0:
            server.run_for_seconds(self.warmup_s, before_tick=driver)
        measured_from = len(server.tick_records)
        view_from = len(server.engine.metrics.series("view_range_over_time").values)

        server.run_for_seconds(self.duration_s, before_tick=driver)

        records = server.tick_records[measured_from:]
        series = server.engine.metrics.series("view_range_over_time")
        view_samples = list(zip(series.times_ms, series.values))[view_from:]
        return ScenarioResult(
            scenario_name=self.name,
            server_name=server.name,
            players=self.players,
            constructs=self.constructs,
            duration_s=self.duration_s,
            tick_durations_ms=[record.duration_ms for record in records],
            view_range_series=view_samples,
        )


def _warn_static_alias(name: str) -> None:
    warnings.warn(
        f"Scenario.{name}() is deprecated; use "
        f"repro.api.build_scenario({name!r}, ...) or the module-level factory",
        DeprecationWarning,
        stacklevel=3,
    )


# -- registered workload families (Table I) ------------------------------------------------


@register_scenario("behaviour_a")
def behaviour_a(players: int, constructs: int = 0, duration_s: float = 30.0) -> Scenario:
    """The construct-scalability workload (Figures 1 and 7)."""
    return Scenario(
        name=f"A-{players}p-{constructs}sc",
        players=players,
        behavior_code="A",
        world_type="flat",
        constructs=constructs,
        duration_s=duration_s,
    )


@register_scenario("star")
def star(players: int, speed: float, duration_s: float = 120.0,
         join_interval_s: Optional[float] = 10.0) -> Scenario:
    """The terrain-scalability workloads S3/S8 (Figure 12a)."""
    return Scenario(
        name=f"S{speed:g}-{players}p",
        players=players,
        behavior_code=f"S{speed:g}",
        world_type="default",
        duration_s=duration_s,
        join_interval_s=join_interval_s,
    )


@register_scenario("sinc")
def sinc(players: int = 5, duration_s: float = 1000.0) -> Scenario:
    """The terrain-QoS workload (Figure 10)."""
    return Scenario(
        name=f"Sinc-{players}p",
        players=players,
        behavior_code="Sinc",
        world_type="default",
        duration_s=duration_s,
    )


@register_scenario("random")
def random_walk(players: int, duration_s: float = 120.0) -> Scenario:
    """The randomised behaviour workload R (Figure 12b)."""
    return Scenario(
        name=f"R-{players}p",
        players=players,
        behavior_code="R",
        world_type="default",
        duration_s=duration_s,
    )


@register_scenario("custom")
def custom(name: str, players: int, behavior_code: str = "A", world_type: str = "flat",
           constructs: int = 0, duration_s: float = 30.0,
           join_interval_s: Optional[float] = None,
           preload_radius_blocks: float = 160.0, warmup_s: float = 5.0,
           faults: Optional[dict] = None) -> Scenario:
    """A fully explicit scenario: every :class:`Scenario` field as a parameter."""
    return Scenario(
        name=name,
        players=players,
        behavior_code=behavior_code,
        world_type=world_type,
        constructs=constructs,
        duration_s=duration_s,
        join_interval_s=join_interval_s,
        preload_radius_blocks=preload_radius_blocks,
        warmup_s=warmup_s,
        faults=faults,
    )


# -- chaos scenarios (fault injection) -----------------------------------------------------


@register_scenario("offload_brownout")
def offload_brownout(players: int = 20, constructs: int = 30, duration_s: float = 20.0,
                     failure_rate: float = 0.15, throttle_rate: float = 0.05,
                     timeout_rate: float = 0.05, max_attempts: int = 3) -> Scenario:
    """A FaaS brownout under the construct workload.

    A sizable fraction of offload invocations fail, throttle or time out; the
    retry/backoff policy and the local-fallback simulation path must keep the
    game playable (Servo's design claim under a misbehaving substrate).
    """
    return Scenario(
        name=f"offload-brownout-{players}p-{constructs}sc",
        players=players,
        behavior_code="A",
        world_type="flat",
        constructs=constructs,
        duration_s=duration_s,
        faults={
            "faas": {
                "failure_rate": failure_rate,
                "throttle_rate": throttle_rate,
                "timeout_rate": timeout_rate,
                "retry": {
                    "max_attempts": max_attempts,
                    "backoff_base_ms": 40.0,
                    "backoff_multiplier": 2.0,
                },
            },
        },
    )


@register_scenario("shard_kill_at_peak")
def shard_kill_at_peak(players: int = 40, constructs: int = 12, duration_s: float = 25.0,
                       kill_at_s: float = 12.0, respawn_after_s: float = 3.0,
                       shard: int = 1) -> Scenario:
    """Kill one cluster shard at peak load, then recover it.

    Requires a cluster host.  The kill fires at ``kill_at_s`` virtual seconds
    from engine start (the default lands mid-measurement, after the 5 s
    warm-up); the zone respawns ``respawn_after_s`` later and every stranded
    session is evacuated into the replacement through the snapshot/restore
    migration protocol.
    """
    return Scenario(
        name=f"shard-kill-{players}p-s{shard}",
        players=players,
        behavior_code="A",
        world_type="flat",
        constructs=constructs,
        duration_s=duration_s,
        faults={
            "shards": [
                {
                    "at_ms": kill_at_s * 1000.0,
                    "shard": shard,
                    "respawn_after_ms": respawn_after_s * 1000.0,
                },
            ],
        },
    )


@register_scenario("flaky_network")
def flaky_network(players: int = 30, duration_s: float = 20.0,
                  drop_rate: float = 0.05, duplicate_rate: float = 0.05,
                  delay_rate: float = 0.10) -> Scenario:
    """A lossy client network: messages drop, duplicate and arrive late.

    Idempotent update application (sequence-stamped deliveries, per-player
    dedupe) must keep the world state consistent — a duplicated move or
    block edit is applied exactly once.
    """
    return Scenario(
        name=f"flaky-network-{players}p",
        players=players,
        behavior_code="A",
        world_type="flat",
        duration_s=duration_s,
        faults={
            "net": {
                "drop_rate": drop_rate,
                "duplicate_rate": duplicate_rate,
                "delay_rate": delay_rate,
                "delay_ms_min": 50.0,
                "delay_ms_max": 400.0,
            },
        },
    )


@register_scenario("flash_crowd_at_spawn")
def flash_crowd_at_spawn(players: int = 40, constructs: int = 0,
                         duration_s: float = 20.0) -> Scenario:
    """A flash crowd: the whole population converges on one zone.

    Every player walks straight to the world spawn and mills around it, so
    within a few virtual seconds all subscriptions, edits and broadcast
    traffic concentrate in a handful of chunks.  On a cluster one shard
    absorbs the entire population (its neighbours idle); with interest
    management on, delta batching must absorb the hotspot — one encoded entry
    serves the whole crowd — while the dyconit staleness bounds keep holding.
    """
    return Scenario(
        name=f"flash-crowd-{players}p",
        players=players,
        behavior_code="C",
        world_type="flat",
        constructs=constructs,
        duration_s=duration_s,
    )


#: the experiment overview of Table I, keyed by the paper's section
TABLE_I_SCENARIOS: dict[str, Scenario] = {
    "IV-B": behaviour_a(players=100, constructs=100, duration_s=60.0),
    "IV-C": Scenario(
        name="latency-hiding", players=1, behavior_code="A", world_type="flat",
        constructs=50, duration_s=60.0,
    ),
    "IV-D": sinc(players=5, duration_s=300.0),
    "IV-E": star(players=30, speed=3, duration_s=120.0),
    "IV-F": star(players=8, speed=3, duration_s=120.0, join_interval_s=None),
    "IV-G": Scenario(
        name="construct-performance", players=1, behavior_code="A", world_type="flat",
        constructs=1, duration_s=30.0,
    ),
}
