"""Emulated players (bots) and join schedules.

A :class:`BotSwarm` owns a set of bots, connects them to a game host
according to a :class:`JoinSchedule` (all at once or staggered, as in
Figure 12a where a player joins every ten seconds), and produces the per-tick
driver callback the game loop runs before every tick.

The swarm addresses any :class:`GameHost`: a single
:class:`~repro.server.GameServer` or a
:class:`~repro.cluster.ClusterCoordinator`.  In a cluster the bots talk to
the coordinator and hold :class:`~repro.cluster.ClusterSession` handles, so
which shard serves a bot — and the migrations that reassign it — is invisible
to the workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol, runtime_checkable

import numpy as np

from repro.net.message import Message
from repro.server.config import GameConfig
from repro.server.entities import Avatar
from repro.server.gameloop import TickRecord
from repro.sim.engine import SimulationEngine
from repro.workload.behavior import Behavior
from repro.world.coords import BlockPos


@runtime_checkable
class SessionHandle(Protocol):
    """What a bot needs from its session: one server's, or a cluster's."""

    player_id: int

    @property
    def avatar(self) -> Avatar: ...

    @property
    def disconnected(self) -> bool: ...

    def enqueue(self, message: Message) -> None: ...


@runtime_checkable
class ChunkPreloader(Protocol):
    """The slice of chunk management the workload layer needs."""

    def preload_area(self, center: BlockPos, radius_blocks: float) -> int: ...


@runtime_checkable
class GameHost(Protocol):
    """The driving surface shared by ``GameServer`` and ``ClusterCoordinator``."""

    engine: SimulationEngine
    config: GameConfig
    name: str
    tick_records: list[TickRecord]

    @property
    def chunks(self) -> ChunkPreloader: ...

    @property
    def player_count(self) -> int: ...

    def connect_player(self, name: str | None = None) -> SessionHandle: ...

    def place_construct(self, construct) -> None: ...

    def tick(self) -> TickRecord: ...

    def run_ticks(
        self, count: int, before_tick: Optional[Callable[..., None]] = None
    ) -> list[TickRecord]: ...

    def run_for_seconds(
        self, seconds: float, before_tick: Optional[Callable[..., None]] = None
    ) -> list[TickRecord]: ...


@dataclass
class BotPlayer:
    """One emulated player."""

    name: str
    behavior: Behavior
    session: Optional[SessionHandle] = None
    spawn: Optional[BlockPos] = None

    @property
    def connected(self) -> bool:
        return self.session is not None and not self.session.disconnected

    def act(self, server: GameHost, tick_index: int, rng: np.random.Generator) -> None:
        """Queue this tick's messages on the bot's session."""
        if not self.connected:
            return
        assert self.session is not None and self.spawn is not None
        messages = self.behavior.act(
            player_id=self.session.player_id,
            position=self.session.avatar.position,
            spawn=self.spawn,
            tick_index=tick_index,
            tick_interval_ms=server.config.tick_interval_ms,
            rng=rng,
        )
        for message in messages:
            self.session.enqueue(message)


@dataclass(frozen=True)
class JoinSchedule:
    """When bots connect to the server."""

    #: bots connected before the first tick
    initial: int = 0
    #: connect one additional bot every this many seconds (None = never)
    interval_s: Optional[float] = None

    @staticmethod
    def all_at_start() -> "JoinSchedule":
        return JoinSchedule(initial=-1, interval_s=None)

    @staticmethod
    def staggered(interval_s: float, initial: int = 0) -> "JoinSchedule":
        return JoinSchedule(initial=initial, interval_s=interval_s)


class BotSwarm:
    """A population of bots driving one game host (a server or a cluster)."""

    def __init__(
        self,
        behaviors: list[Behavior],
        schedule: JoinSchedule | None = None,
        name_prefix: str = "bot",
    ) -> None:
        self.bots = [
            BotPlayer(name=f"{name_prefix}-{index}", behavior=behavior)
            for index, behavior in enumerate(behaviors)
        ]
        self.schedule = schedule or JoinSchedule.all_at_start()
        self._next_join_index = 0
        self._rng: np.random.Generator | None = None

    @property
    def connected_count(self) -> int:
        return sum(1 for bot in self.bots if bot.connected)

    def _connect_next(self, server: GameHost) -> None:
        if self._next_join_index >= len(self.bots):
            return
        bot = self.bots[self._next_join_index]
        bot.session = server.connect_player(bot.name)
        bot.spawn = bot.session.avatar.position
        self._next_join_index += 1

    def install(self, server: GameHost) -> Callable[[GameHost, int], None]:
        """Connect the initial bots and return the per-tick driver callback."""
        self._rng = server.engine.rng("bots")
        initial = self.schedule.initial
        if initial < 0:
            initial = len(self.bots)
        for _ in range(min(initial, len(self.bots))):
            self._connect_next(server)

        start_ms = server.engine.now_ms

        def driver(driven_server: GameHost, tick_index: int) -> None:
            assert self._rng is not None
            if self.schedule.interval_s is not None:
                elapsed_s = (driven_server.engine.now_ms - start_ms) / 1000.0
                target = initial + int(elapsed_s // self.schedule.interval_s)
                while self._next_join_index < min(target, len(self.bots)):
                    self._connect_next(driven_server)
            for bot in self.bots:
                bot.act(driven_server, tick_index, self._rng)

        return driver
