"""Emulated players (bots) and join schedules.

A :class:`BotSwarm` owns a set of bots, connects them to a server according to
a :class:`JoinSchedule` (all at once or staggered, as in Figure 12a where a
player joins every ten seconds), and produces the per-tick driver callback the
game loop runs before every tick.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.server.gameloop import GameServer
from repro.server.session import PlayerSession
from repro.workload.behavior import Behavior
from repro.world.coords import BlockPos


@dataclass
class BotPlayer:
    """One emulated player."""

    name: str
    behavior: Behavior
    session: Optional[PlayerSession] = None
    spawn: Optional[BlockPos] = None

    @property
    def connected(self) -> bool:
        return self.session is not None and not self.session.disconnected

    def act(self, server: GameServer, tick_index: int, rng: np.random.Generator) -> None:
        """Queue this tick's messages on the bot's session."""
        if not self.connected:
            return
        assert self.session is not None and self.spawn is not None
        messages = self.behavior.act(
            player_id=self.session.player_id,
            position=self.session.avatar.position,
            spawn=self.spawn,
            tick_index=tick_index,
            tick_interval_ms=server.config.tick_interval_ms,
            rng=rng,
        )
        for message in messages:
            self.session.enqueue(message)


@dataclass(frozen=True)
class JoinSchedule:
    """When bots connect to the server."""

    #: bots connected before the first tick
    initial: int = 0
    #: connect one additional bot every this many seconds (None = never)
    interval_s: Optional[float] = None

    @staticmethod
    def all_at_start() -> "JoinSchedule":
        return JoinSchedule(initial=-1, interval_s=None)

    @staticmethod
    def staggered(interval_s: float, initial: int = 0) -> "JoinSchedule":
        return JoinSchedule(initial=initial, interval_s=interval_s)


class BotSwarm:
    """A population of bots driving one game server."""

    def __init__(
        self,
        behaviors: list[Behavior],
        schedule: JoinSchedule | None = None,
        name_prefix: str = "bot",
    ) -> None:
        self.bots = [
            BotPlayer(name=f"{name_prefix}-{index}", behavior=behavior)
            for index, behavior in enumerate(behaviors)
        ]
        self.schedule = schedule or JoinSchedule.all_at_start()
        self._next_join_index = 0
        self._rng: np.random.Generator | None = None

    @property
    def connected_count(self) -> int:
        return sum(1 for bot in self.bots if bot.connected)

    def _connect_next(self, server: GameServer) -> None:
        if self._next_join_index >= len(self.bots):
            return
        bot = self.bots[self._next_join_index]
        bot.session = server.connect_player(bot.name)
        bot.spawn = bot.session.avatar.position
        self._next_join_index += 1

    def install(self, server: GameServer) -> Callable[[GameServer, int], None]:
        """Connect the initial bots and return the per-tick driver callback."""
        self._rng = server.engine.rng("bots")
        initial = self.schedule.initial
        if initial < 0:
            initial = len(self.bots)
        for _ in range(min(initial, len(self.bots))):
            self._connect_next(server)

        start_ms = server.engine.now_ms

        def driver(driven_server: GameServer, tick_index: int) -> None:
            assert self._rng is not None
            if self.schedule.interval_s is not None:
                elapsed_s = (driven_server.engine.now_ms - start_ms) / 1000.0
                target = initial + int(elapsed_s // self.schedule.interval_s)
                while self._next_join_index < min(target, len(self.bots)):
                    self._connect_next(driven_server)
            for bot in self.bots:
                bot.act(driven_server, tick_index, self._rng)

        return driver
