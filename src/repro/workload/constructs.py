"""Construct workloads: place N simulated constructs in the world.

The scalability experiments (Figures 1 and 7) vary the number of simulated
constructs from 0 to 200; every construct is a medium clock-driven circuit
spread over the area around spawn.
"""

from __future__ import annotations

from repro.constructs.circuit import SimulatedConstruct
from repro.constructs.library import standard_construct
from repro.workload.bots import GameHost


def place_standard_constructs(server: GameHost, count: int) -> list[SimulatedConstruct]:
    """Place ``count`` standard workload constructs on a server or cluster.

    A cluster host routes each construct to the shard owning its anchor cell.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    constructs = []
    for index in range(int(count)):
        construct = standard_construct(index)
        server.place_construct(construct)
        constructs.append(construct)
    return constructs
