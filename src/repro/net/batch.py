"""Server-to-client update batches (the interest-managed broadcast wire).

With area-of-interest broadcast enabled, a session no longer receives one
full state update per tick; it receives *delta batches* — the dirty entries
of the chunks it subscribes to, coalesced per consistency tier ("near"
flushes every tick, "far" flushes when a dyconit budget would be violated).

Like client messages (:mod:`repro.net.channel`), batches carry a per-player
monotonic ``sequence`` number so delivery is idempotent: a lossy or
duplicating wire is tolerated by deduplicating against the same bounded
:class:`~repro.net.channel.SeenWindow` of recently seen sequence numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.net.channel import SeenWindow

#: consistency tiers a batch can belong to
NEAR_TIER = "near"
FAR_TIER = "far"


@dataclass(frozen=True)
class UpdateBatch:
    """One delta-compressed state update sent to one subscriber."""

    #: recipient player id
    player_id: int
    #: consistency tier ("near" or "far")
    tier: str
    #: delta entries coalesced into this batch
    entries: int
    #: tick at which the batch's oldest entry was produced
    first_tick: int
    #: tick at which the batch was flushed; ``flush_tick - first_tick`` is
    #: the staleness the subscriber observed (0 for near batches)
    flush_tick: int
    #: per-player wire sequence number, stamped by the batch stream; dedupe
    #: key for idempotent application on a lossy wire
    sequence: Optional[int] = None

    @property
    def staleness_ticks(self) -> int:
        return self.flush_tick - self.first_tick

    def __post_init__(self) -> None:
        if self.tier not in (NEAR_TIER, FAR_TIER):
            raise ValueError(f"unknown batch tier {self.tier!r}")
        if self.entries < 0:
            raise ValueError("entries must be non-negative")
        if self.flush_tick < self.first_tick:
            raise ValueError("flush_tick must not precede first_tick")


class BatchStream:
    """Stamps outbound batches with per-recipient monotonic sequence numbers."""

    def __init__(self) -> None:
        self._sequences: dict[int, int] = {}

    def stamp(self, batch: UpdateBatch) -> UpdateBatch:
        """Assign the next sequence number for the batch's recipient."""
        sequence = self._sequences.get(batch.player_id, 0) + 1
        self._sequences[batch.player_id] = sequence
        return replace(batch, sequence=sequence)


class BatchReceiver:
    """Client-side idempotent batch application for one player.

    ``accept`` returns True exactly once per sequence number: duplicated
    deliveries (a faulty wire, a retransmit) are rejected by the bounded
    seen-window, so a batch's entries are applied exactly once.
    """

    def __init__(self, player_id: int) -> None:
        self.player_id = player_id
        self._seen = SeenWindow()
        #: batches applied (first deliveries)
        self.accepted = 0
        #: duplicated deliveries rejected by the window
        self.duplicates_rejected = 0
        #: delta entries applied across all accepted batches
        self.entries_applied = 0

    def accept(self, batch: UpdateBatch) -> bool:
        if batch.player_id != self.player_id:
            raise ValueError(
                f"batch for player {batch.player_id} delivered to {self.player_id}"
            )
        if batch.sequence is None:
            raise ValueError("unstamped batch: route it through a BatchStream first")
        if not self._seen.add(batch.sequence):
            self.duplicates_rejected += 1
            return False
        self.accepted += 1
        self.entries_applied += batch.entries
        return True
