"""Client-server protocol messages.

Servo explicitly does not change the client protocol (Requirement R4): the
message vocabulary below is the unmodified MVE protocol the clients already
speak.  Bots produce these messages; the server consumes them in its tick.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional


class MessageKind(Enum):
    """Kinds of client-to-server messages."""

    MOVE = "move"
    PLACE_BLOCK = "place_block"
    BREAK_BLOCK = "break_block"
    CHAT = "chat"
    SET_INVENTORY = "set_inventory"
    TOGGLE_CONSTRUCT = "toggle_construct"
    IDLE = "idle"


@dataclass(frozen=True)
class Message:
    """One client-to-server message."""

    kind: MessageKind
    player_id: int
    payload: dict[str, Any] = field(default_factory=dict)
    #: per-player wire sequence number, stamped by the message channel when a
    #: fault plan is active; None for messages that never crossed the channel.
    #: Deliveries are deduplicated on it (idempotent update application).
    sequence: Optional[int] = None

    def __post_init__(self) -> None:
        if self.player_id < 0:
            raise ValueError("player_id must be non-negative")
