"""A lossy client-to-server message channel.

When a fault plan enables net faults, every client message passes through one
shared :class:`FaultyMessageChannel` on its way into a session's inbox.  The
channel stamps each message with a per-player monotonic ``sequence`` number
and then draws one disposition from the ``faults:net`` RNG stream: drop it,
deliver it twice, deliver it after a uniform delay, or deliver it normally.

The server side tolerates the faults through **idempotent update
application**: deliveries are deduplicated against a bounded per-player
window of recently seen sequence numbers, so a duplicated message is applied
exactly once, and a delayed message (which arrives out of order but is not a
duplicate) is still accepted.  Without a fault plan no channel exists and
messages go straight into the inbox — the zero-fault hot path is untouched.
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace
from typing import TYPE_CHECKING, Callable, Optional

from repro.net.message import Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector
    from repro.server.session import PlayerSession
    from repro.sim.engine import SimulationEngine

#: per-player window of recently seen sequence numbers (dedupe horizon)
SEEN_WINDOW = 512


class _SeenWindow:
    """A bounded set of recently delivered sequence numbers for one player."""

    __slots__ = ("_order", "_members")

    def __init__(self, capacity: int = SEEN_WINDOW) -> None:
        self._order: deque[int] = deque(maxlen=capacity)
        self._members: set[int] = set()

    def add(self, sequence: int) -> bool:
        """Record ``sequence``; returns False if it was already seen (a dupe)."""
        if sequence in self._members:
            return False
        if len(self._order) == self._order.maxlen:
            self._members.discard(self._order[0])
        self._order.append(sequence)
        self._members.add(sequence)
        return True


#: public alias: the same bounded dedupe window also guards server-to-client
#: update batches (see :mod:`repro.net.batch`)
SeenWindow = _SeenWindow


class FaultyMessageChannel:
    """The shared wire between clients and (all) servers of one run."""

    def __init__(self, engine: "SimulationEngine", injector: "FaultInjector") -> None:
        if injector.plan.net is None:
            raise ValueError("the fault plan has no net section")
        self.engine = engine
        self.faults = injector.plan.net
        self.metrics = engine.metrics
        self._rng = injector.net_rng
        self._record = injector.record
        self._sequences: dict[int, int] = {}
        self._seen: dict[int, _SeenWindow] = {}
        #: player_id -> live session lookups, one per server sharing the wire
        self._resolvers: list[Callable[[int], Optional["PlayerSession"]]] = []

    def add_resolver(self, resolver: Callable[[int], Optional["PlayerSession"]]) -> None:
        """Register a server's session lookup (used to land delayed messages)."""
        self._resolvers.append(resolver)

    # -- the wire ---------------------------------------------------------------------

    def send(self, session: "PlayerSession", message: Message) -> None:
        """Carry one freshly sent client message to its session's inbox."""
        player_id = message.player_id
        sequence = self._sequences.get(player_id, 0) + 1
        self._sequences[player_id] = sequence
        stamped = replace(message, sequence=sequence)

        faults = self.faults
        draw = float(self._rng.random())
        if draw < faults.drop_rate:
            self.metrics.increment("net_messages_dropped")
            self._record("net.drop", f"player={player_id} seq={sequence}")
            return
        if draw < faults.drop_rate + faults.duplicate_rate:
            self.metrics.increment("net_messages_duplicated")
            self._record("net.duplicate", f"player={player_id} seq={sequence}")
            self._deliver(session, stamped)
            self._deliver(session, stamped)
            return
        if draw < faults.drop_rate + faults.duplicate_rate + faults.delay_rate:
            span = faults.delay_ms_max - faults.delay_ms_min
            delay_ms = faults.delay_ms_min + float(self._rng.random()) * span
            self.metrics.increment("net_messages_delayed")
            self._record("net.delay", f"player={player_id} seq={sequence} ms={delay_ms:.1f}")
            self.engine.schedule_in(
                delay_ms,
                lambda: self._deliver_late(stamped),
                name=f"net-delay:{player_id}:{sequence}",
            )
            return
        self._deliver(session, stamped)

    # -- delivery ---------------------------------------------------------------------

    def _deliver(self, session: "PlayerSession", message: Message) -> None:
        """Idempotent application: at most one delivery per sequence number."""
        window = self._seen.get(message.player_id)
        if window is None:
            window = self._seen[message.player_id] = _SeenWindow()
        if not window.add(message.sequence):
            self.metrics.increment("net_duplicates_dropped")
            return
        try:
            session.enqueue(message)
        except RuntimeError:
            # The player disconnected between send and delivery.
            self.metrics.increment("net_messages_lost")

    def _deliver_late(self, message: Message) -> None:
        """Land a delayed message on whichever server now hosts the player."""
        for resolver in self._resolvers:
            session = resolver(message.player_id)
            if session is not None and not session.disconnected:
                self._deliver(session, message)
                return
        # The player disconnected (or their shard died) while the message
        # was in flight.
        self.metrics.increment("net_messages_lost")
