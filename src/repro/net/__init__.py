"""Network latency model.

The paper's operational model (Section II-A, Figure 2) decomposes response
time into network latency ``t_n`` and server time ``t_s``.  This package
models the network paths involved: player home to cloud (client-server), and
game server to managed cloud services (intra-cloud).
"""

from repro.net.batch import BatchReceiver, BatchStream, UpdateBatch
from repro.net.latency import NetworkModel, NetworkPath
from repro.net.message import Message, MessageKind

__all__ = [
    "NetworkModel",
    "NetworkPath",
    "Message",
    "MessageKind",
    "UpdateBatch",
    "BatchStream",
    "BatchReceiver",
]
