"""Network path latency models.

Latency requirements per game genre (Claypool & Claypool, cited as [35] in the
paper): first-person games tolerate about 100 ms, third-person about 500 ms
and omnipresent-view games about 1000 ms.  MVEs are first-person, which is why
the paper treats 100 ms as the relevant bound in Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sim.latency import LatencyModel, LogNormalLatency

#: approximate maximum acceptable network latency per game genre (ms)
GENRE_LATENCY_THRESHOLDS_MS = {
    "fps": 100.0,
    "rpg": 500.0,
    "rts": 1000.0,
}


@dataclass(frozen=True)
class NetworkPath:
    """One network path with a latency distribution (one-way)."""

    name: str
    latency: LatencyModel

    def sample_one_way_ms(self, rng: np.random.Generator) -> float:
        return self.latency.sample(rng)

    def sample_round_trip_ms(self, rng: np.random.Generator) -> float:
        # The paper's model assumes symmetric network latency.
        return self.latency.sample(rng) + self.latency.sample(rng)


@dataclass
class NetworkModel:
    """The network paths used by the operational model."""

    client_server: NetworkPath = field(
        default_factory=lambda: NetworkPath(
            name="client-server",
            latency=LogNormalLatency(median_ms=18.0, sigma=0.35, floor_ms=5.0, cap_ms=200.0),
        )
    )
    server_cloud: NetworkPath = field(
        default_factory=lambda: NetworkPath(
            name="server-cloud",
            latency=LogNormalLatency(median_ms=1.2, sigma=0.3, floor_ms=0.3, cap_ms=25.0),
        )
    )

    def response_time_ms(self, tick_duration_ms: float, rng: np.random.Generator) -> float:
        """Response time t_r = network round trip + server time (Section II-A)."""
        return self.client_server.sample_round_trip_ms(rng) + tick_duration_ms
