"""Reproduction of *Servo: Increasing the Scalability of Modifiable Virtual
Environments Using Serverless Computing* (ICDCS 2023).

The package is organised as a set of substrates (simulation kernel, voxel
world, simulated constructs, FaaS platform, storage, game server, workloads)
plus the paper's contribution in :mod:`repro.core` and an experiment harness in
:mod:`repro.experiments`.
"""

from repro.version import __version__

__all__ = ["__version__"]
