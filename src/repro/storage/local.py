"""Local-disk storage model.

The baseline the paper measures in Figure 13: terrain loads from the game
server's local disk complete within a few milliseconds, with a handful of
slower samples during the first seconds after boot (cold page cache).
"""

from __future__ import annotations

import numpy as np

from repro.sim.latency import LogNormalLatency
from repro.storage.base import DictBackedStorage, StorageOperation


class LocalDiskStorage(DictBackedStorage):
    """Local disk with page-cache-like behaviour.

    Calibration (Figure 13, "Local"): 99.9 % of reads complete within ~16 ms
    and the maximum stays near ~120 ms; the slow samples happen during the
    boot window while the page cache is cold.
    """

    name = "local"

    def __init__(
        self,
        rng: np.random.Generator,
        boot_window_reads: int = 12,
        read_latency: LogNormalLatency | None = None,
        boot_latency: LogNormalLatency | None = None,
        write_latency: LogNormalLatency | None = None,
    ) -> None:
        super().__init__()
        self._rng = rng
        self._reads_served = 0
        self._boot_window_reads = int(boot_window_reads)
        self._read_latency = read_latency or LogNormalLatency(median_ms=1.6, sigma=0.45, floor_ms=0.3, cap_ms=40.0)
        self._boot_latency = boot_latency or LogNormalLatency(median_ms=35.0, sigma=0.55, floor_ms=10.0, cap_ms=125.0)
        self._write_latency = write_latency or LogNormalLatency(median_ms=2.5, sigma=0.5, floor_ms=0.5, cap_ms=60.0)
        #: probability a boot-window read misses the page cache
        self._boot_miss_probability = 0.25

    def read(self, key: str) -> StorageOperation:
        data = self._get(key)
        in_boot_window = self._reads_served < self._boot_window_reads
        self._reads_served += 1
        if in_boot_window and self._rng.random() < self._boot_miss_probability:
            latency = self._boot_latency.sample(self._rng)
        else:
            latency = self._read_latency.sample(self._rng)
        return StorageOperation(
            key=key, operation="read", latency_ms=latency, size_bytes=len(data), data=data
        )

    def write(self, key: str, data: bytes) -> StorageOperation:
        self._put(key, data)
        latency = self._write_latency.sample(self._rng)
        return StorageOperation(key=key, operation="write", latency_ms=latency, size_bytes=len(data))

    def delete(self, key: str) -> StorageOperation:
        size = self._remove(key)
        return StorageOperation(key=key, operation="delete", latency_ms=0.5, size_bytes=size)
