"""Storage backend interface.

All storage implementations store named binary objects and report, for every
operation, the virtual latency the caller should account.  Latency is returned
rather than applied so callers can decide whether an operation blocks the game
loop (synchronous load) or happens in the background (periodic write-back).
"""

from __future__ import annotations

from dataclasses import dataclass


class ObjectNotFoundError(KeyError):
    """Raised when reading a key that does not exist."""


@dataclass(frozen=True)
class StorageOperation:
    """The outcome of one storage operation."""

    key: str
    operation: str          # "read", "write", "delete"
    latency_ms: float
    size_bytes: int
    hit: bool = True        # False for cache misses (cache backends only)
    data: bytes | None = None


class StorageBackend:
    """Interface implemented by every storage backend."""

    name: str = "abstract"

    def read(self, key: str) -> StorageOperation:
        """Read an object; raises :class:`ObjectNotFoundError` if absent."""
        raise NotImplementedError

    def write(self, key: str, data: bytes) -> StorageOperation:
        """Write (create or overwrite) an object."""
        raise NotImplementedError

    def delete(self, key: str) -> StorageOperation:
        """Delete an object; deleting a missing key is a no-op."""
        raise NotImplementedError

    def exists(self, key: str) -> bool:
        raise NotImplementedError

    def list_keys(self) -> list[str]:
        raise NotImplementedError

    def size_bytes(self, key: str) -> int:
        """Size of a stored object; raises :class:`ObjectNotFoundError` if absent."""
        raise NotImplementedError


class DictBackedStorage(StorageBackend):
    """Shared plumbing for backends that keep objects in a dictionary."""

    def __init__(self) -> None:
        self._objects: dict[str, bytes] = {}

    def exists(self, key: str) -> bool:
        return key in self._objects

    def list_keys(self) -> list[str]:
        return sorted(self._objects)

    def size_bytes(self, key: str) -> int:
        if key not in self._objects:
            raise ObjectNotFoundError(key)
        return len(self._objects[key])

    def _get(self, key: str) -> bytes:
        if key not in self._objects:
            raise ObjectNotFoundError(key)
        return self._objects[key]

    def _put(self, key: str, data: bytes) -> None:
        self._objects[key] = bytes(data)

    def _remove(self, key: str) -> int:
        data = self._objects.pop(key, b"")
        return len(data)

    @property
    def object_count(self) -> int:
        return len(self._objects)

    @property
    def total_bytes(self) -> int:
        return sum(len(v) for v in self._objects.values())
