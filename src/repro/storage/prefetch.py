"""Distance-based prefetch policy.

Servo hides blob-storage latency by prefetching terrain data that is outside
of, but close to, the players' view distance (Section III-E).  The policy
computes, from the current avatar positions, the set of chunks that should be
resident (the view set) and the set that should be prefetched (the ring just
beyond the view distance).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable

import numpy as np

from repro.world.coords import (
    CHUNK_SIZE,
    BlockPos,
    ChunkPos,
    chunk_offsets_within_blocks,
)

#: chunk coordinates are packed into one int64 as ``cx * 2**21 + (cz + 2**20)``
#: so per-avatar rings become flat integer arrays that numpy can union
_PACK_BITS = 21
_PACK_HALF = 1 << 20
_PACK_MASK = (1 << _PACK_BITS) - 1


@lru_cache(maxsize=2048)
def _packed_offsets(offset_x: int, offset_z: int, radius_blocks: float) -> np.ndarray:
    """The memoised chunk-offset ring as packed int64 coordinates."""
    offsets = chunk_offsets_within_blocks(offset_x, offset_z, radius_blocks)
    return np.fromiter(
        ((dx << _PACK_BITS) + dz + _PACK_HALF for dx, dz in offsets),
        dtype=np.int64,
        count=len(offsets),
    )


def _unpack(packed: np.ndarray) -> frozenset[ChunkPos]:
    xs = (packed >> _PACK_BITS).tolist()
    zs = ((packed & _PACK_MASK) - _PACK_HALF).tolist()
    return frozenset(ChunkPos(x, z) for x, z in zip(xs, zs))


@dataclass(frozen=True)
class PrefetchPlan:
    """The chunk sets a prefetch evaluation produces."""

    required: frozenset[ChunkPos]
    prefetch: frozenset[ChunkPos]

    @property
    def all_chunks(self) -> frozenset[ChunkPos]:
        return self.required | self.prefetch


@dataclass(frozen=True)
class DistancePrefetchPolicy:
    """Prefetch chunks within ``view_distance + prefetch_margin`` blocks of any avatar."""

    view_distance_blocks: float = 128.0
    prefetch_margin_blocks: float = 48.0

    def plan(self, avatar_positions: Iterable[BlockPos]) -> PrefetchPlan:
        """Compute required and prefetch chunk sets for the given avatar positions.

        The per-avatar chunk rings come from the memoised translation-
        invariant offset table, and the unions accumulate plain integer
        tuples; ``ChunkPos`` objects are only materialised for the (much
        smaller, heavily overlapping) final sets.
        """
        view_radius = float(self.view_distance_blocks)
        extended_radius = view_radius + float(self.prefetch_margin_blocks)
        required_parts: list[np.ndarray] = []
        extended_parts: list[np.ndarray] = []
        for position in avatar_positions:
            base = ((position.x // CHUNK_SIZE) << _PACK_BITS) + (position.z // CHUNK_SIZE)
            offset_x = position.x % CHUNK_SIZE
            offset_z = position.z % CHUNK_SIZE
            required_parts.append(base + _packed_offsets(offset_x, offset_z, view_radius))
            extended_parts.append(
                base + _packed_offsets(offset_x, offset_z, extended_radius)
            )
        if not required_parts:
            return PrefetchPlan(required=frozenset(), prefetch=frozenset())
        required_packed = np.unique(np.concatenate(required_parts))
        extended_packed = np.unique(np.concatenate(extended_parts))
        prefetch_packed = np.setdiff1d(extended_packed, required_packed, assume_unique=True)
        return PrefetchPlan(
            required=_unpack(required_packed),
            prefetch=_unpack(prefetch_packed),
        )

    def eviction_candidates(
        self, resident: Iterable[ChunkPos], avatar_positions: Iterable[BlockPos]
    ) -> list[ChunkPos]:
        """Resident chunks outside the extended radius (safe to drop from memory)."""
        plan = self.plan(avatar_positions)
        keep = plan.all_chunks
        return sorted(pos for pos in resident if pos not in keep)
