"""Distance-based prefetch policy.

Servo hides blob-storage latency by prefetching terrain data that is outside
of, but close to, the players' view distance (Section III-E).  The policy
computes, from the current avatar positions, the set of chunks that should be
resident (the view set) and the set that should be prefetched (the ring just
beyond the view distance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.world.coords import (
    CHUNK_SIZE,
    BlockPos,
    ChunkPos,
    chunk_offsets_within_blocks,
)


@dataclass(frozen=True)
class PrefetchPlan:
    """The chunk sets a prefetch evaluation produces."""

    required: frozenset[ChunkPos]
    prefetch: frozenset[ChunkPos]

    @property
    def all_chunks(self) -> frozenset[ChunkPos]:
        return self.required | self.prefetch


@dataclass(frozen=True)
class DistancePrefetchPolicy:
    """Prefetch chunks within ``view_distance + prefetch_margin`` blocks of any avatar."""

    view_distance_blocks: float = 128.0
    prefetch_margin_blocks: float = 48.0

    def plan(self, avatar_positions: Iterable[BlockPos]) -> PrefetchPlan:
        """Compute required and prefetch chunk sets for the given avatar positions.

        The per-avatar chunk rings come from the memoised translation-
        invariant offset table, and the unions accumulate plain integer
        tuples; ``ChunkPos`` objects are only materialised for the (much
        smaller, heavily overlapping) final sets.
        """
        view_radius = float(self.view_distance_blocks)
        extended_radius = view_radius + float(self.prefetch_margin_blocks)
        required_keys: set[tuple[int, int]] = set()
        extended_keys: set[tuple[int, int]] = set()
        for position in avatar_positions:
            chunk_x = position.x // CHUNK_SIZE
            chunk_z = position.z // CHUNK_SIZE
            offset_x = position.x % CHUNK_SIZE
            offset_z = position.z % CHUNK_SIZE
            for dx, dz in chunk_offsets_within_blocks(offset_x, offset_z, view_radius):
                required_keys.add((chunk_x + dx, chunk_z + dz))
            for dx, dz in chunk_offsets_within_blocks(
                offset_x, offset_z, extended_radius
            ):
                extended_keys.add((chunk_x + dx, chunk_z + dz))
        return PrefetchPlan(
            required=frozenset(ChunkPos(x, z) for x, z in required_keys),
            prefetch=frozenset(
                ChunkPos(x, z) for x, z in extended_keys - required_keys
            ),
        )

    def eviction_candidates(
        self, resident: Iterable[ChunkPos], avatar_positions: Iterable[BlockPos]
    ) -> list[ChunkPos]:
        """Resident chunks outside the extended radius (safe to drop from memory)."""
        plan = self.plan(avatar_positions)
        keep = plan.all_chunks
        return sorted(pos for pos in resident if pos not in keep)
