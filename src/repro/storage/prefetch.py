"""Distance-based prefetch policy.

Servo hides blob-storage latency by prefetching terrain data that is outside
of, but close to, the players' view distance (Section III-E).  The policy
computes, from the current avatar positions, the set of chunks that should be
resident (the view set) and the set that should be prefetched (the ring just
beyond the view distance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.world.coords import BlockPos, ChunkPos, chunks_within_blocks


@dataclass(frozen=True)
class PrefetchPlan:
    """The chunk sets a prefetch evaluation produces."""

    required: frozenset[ChunkPos]
    prefetch: frozenset[ChunkPos]

    @property
    def all_chunks(self) -> frozenset[ChunkPos]:
        return self.required | self.prefetch


@dataclass(frozen=True)
class DistancePrefetchPolicy:
    """Prefetch chunks within ``view_distance + prefetch_margin`` blocks of any avatar."""

    view_distance_blocks: float = 128.0
    prefetch_margin_blocks: float = 48.0

    def plan(self, avatar_positions: Iterable[BlockPos]) -> PrefetchPlan:
        """Compute required and prefetch chunk sets for the given avatar positions."""
        required: set[ChunkPos] = set()
        extended: set[ChunkPos] = set()
        for position in avatar_positions:
            required.update(chunks_within_blocks(position, self.view_distance_blocks))
            extended.update(
                chunks_within_blocks(
                    position, self.view_distance_blocks + self.prefetch_margin_blocks
                )
            )
        return PrefetchPlan(
            required=frozenset(required), prefetch=frozenset(extended - required)
        )

    def eviction_candidates(
        self, resident: Iterable[ChunkPos], avatar_positions: Iterable[BlockPos]
    ) -> list[ChunkPos]:
        """Resident chunks outside the extended radius (safe to drop from memory)."""
        plan = self.plan(avatar_positions)
        keep = plan.all_chunks
        return sorted(pos for pos in resident if pos not in keep)
