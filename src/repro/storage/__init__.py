"""Storage substrate.

Models the three storage options the paper compares for terrain data
(Figure 13): local disk, serverless blob storage (with standard and premium
tiers, Figure 3), and serverless storage fronted by Servo's local cache with
distance-based prefetching.
"""

from repro.storage.base import ObjectNotFoundError, StorageBackend, StorageOperation
from repro.storage.blob import (
    BlobStorage,
    BlobTierProfile,
    AZURE_BLOB_PREMIUM,
    AZURE_BLOB_STANDARD,
    AWS_S3_STANDARD,
    download_latency_profile,
)
from repro.storage.cache import CachedStorage, CacheStatistics
from repro.storage.local import LocalDiskStorage
from repro.storage.prefetch import DistancePrefetchPolicy

__all__ = [
    "StorageBackend",
    "StorageOperation",
    "ObjectNotFoundError",
    "LocalDiskStorage",
    "BlobStorage",
    "BlobTierProfile",
    "AWS_S3_STANDARD",
    "AZURE_BLOB_STANDARD",
    "AZURE_BLOB_PREMIUM",
    "download_latency_profile",
    "CachedStorage",
    "CacheStatistics",
    "DistancePrefetchPolicy",
]
