"""Server-local cache over remote storage.

Servo's terrain storage service keeps a cache of terrain objects on the game
server (Section III-E): reads go to the cache first, misses fall through to
the blob store, and writes are buffered and flushed to remote storage
periodically.  Together with the distance prefetcher this removes the blob
store's latency tail from the game loop (Figure 13, "Serverless+Cache").
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.sim.latency import LogNormalLatency
from repro.storage.base import ObjectNotFoundError, StorageBackend, StorageOperation


@dataclass
class CacheStatistics:
    """Hit/miss counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    prefetches: int = 0
    evictions: int = 0
    writebacks: int = 0
    read_latencies_ms: list[float] = field(default_factory=list)

    @property
    def reads(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.reads if self.reads else 0.0


class CachedStorage(StorageBackend):
    """Read-through, write-behind cache in front of a remote backend.

    Cache hits cost a small in-memory/local-disk latency; misses pay the full
    remote read.  Writes update the cache immediately and are written back to
    the remote store when :meth:`flush` is called (the game server calls it
    periodically, outside the latency-critical path).
    """

    name = "cached"

    def __init__(
        self,
        remote: StorageBackend,
        rng: np.random.Generator,
        capacity_objects: int = 4096,
        hit_latency: LogNormalLatency | None = None,
    ) -> None:
        self._remote = remote
        self._rng = rng
        self._capacity = int(capacity_objects)
        if self._capacity < 1:
            raise ValueError("cache capacity must be at least one object")
        self._entries: OrderedDict[str, bytes] = OrderedDict()
        self._dirty: set[str] = set()
        self._hit_latency = hit_latency or LogNormalLatency(
            median_ms=1.2, sigma=0.4, floor_ms=0.2, cap_ms=30.0
        )
        self.stats = CacheStatistics()

    # -- cache internals -----------------------------------------------------------

    def _touch(self, key: str) -> None:
        self._entries.move_to_end(key)

    def _insert(self, key: str, data: bytes) -> None:
        self._entries[key] = data
        self._entries.move_to_end(key)
        while len(self._entries) > self._capacity:
            evicted_key, evicted_data = self._entries.popitem(last=False)
            self.stats.evictions += 1
            if evicted_key in self._dirty:
                # Never lose dirty data: evicting a dirty entry forces a write-back.
                self._remote.write(evicted_key, evicted_data)
                self._dirty.discard(evicted_key)
                self.stats.writebacks += 1

    def is_cached(self, key: str) -> bool:
        return key in self._entries

    @property
    def cached_keys(self) -> list[str]:
        return list(self._entries)

    @property
    def dirty_keys(self) -> list[str]:
        return sorted(self._dirty)

    # -- StorageBackend API -----------------------------------------------------------

    def read(self, key: str) -> StorageOperation:
        if key in self._entries:
            self._touch(key)
            data = self._entries[key]
            latency = self._hit_latency.sample(self._rng)
            self.stats.hits += 1
            self.stats.read_latencies_ms.append(latency)
            return StorageOperation(
                key=key, operation="read", latency_ms=latency, size_bytes=len(data),
                hit=True, data=data,
            )
        remote_op = self._remote.read(key)
        self._insert(key, remote_op.data or b"")
        self.stats.misses += 1
        latency = remote_op.latency_ms + self._hit_latency.sample(self._rng)
        self.stats.read_latencies_ms.append(latency)
        return StorageOperation(
            key=key, operation="read", latency_ms=latency,
            size_bytes=remote_op.size_bytes, hit=False, data=remote_op.data,
        )

    def write(self, key: str, data: bytes) -> StorageOperation:
        self._insert(key, bytes(data))
        self._dirty.add(key)
        latency = self._hit_latency.sample(self._rng)
        return StorageOperation(key=key, operation="write", latency_ms=latency, size_bytes=len(data))

    def delete(self, key: str) -> StorageOperation:
        self._entries.pop(key, None)
        self._dirty.discard(key)
        return self._remote.delete(key)

    def exists(self, key: str) -> bool:
        return key in self._entries or self._remote.exists(key)

    def list_keys(self) -> list[str]:
        return sorted(set(self._entries) | set(self._remote.list_keys()))

    def size_bytes(self, key: str) -> int:
        if key in self._entries:
            return len(self._entries[key])
        return self._remote.size_bytes(key)

    # -- Servo-specific operations ------------------------------------------------------

    def prefetch(self, key: str) -> float:
        """Bring an object into the cache off the critical path.

        Returns the remote latency paid (0 if the object was already cached or
        does not exist remotely).  The game loop does not wait for this
        latency; the prefetcher runs in the background.
        """
        if key in self._entries:
            return 0.0
        try:
            remote_op = self._remote.read(key)
        except ObjectNotFoundError:
            return 0.0
        self._insert(key, remote_op.data or b"")
        self.stats.prefetches += 1
        return remote_op.latency_ms

    def flush(self) -> list[StorageOperation]:
        """Write every dirty entry back to the remote store (periodic write-back)."""
        operations = []
        for key in sorted(self._dirty):
            data = self._entries.get(key)
            if data is None:
                continue
            operations.append(self._remote.write(key, data))
            self.stats.writebacks += 1
        self._dirty.clear()
        return operations
