"""Serverless blob storage model.

Models the managed object stores the paper uses (AWS S3 and Azure Blob
Storage).  Two calibrations matter:

* **In-cloud access** (Figure 13, "Serverless"): reads from the game server
  running in the same cloud region have a fast body (99th percentile
  ~16 ms) but a heavy tail (99.9th percentile ~226 ms, outliers ~500 ms).
* **Download profile** (Figure 3): end-to-end downloads of player data and
  terrain data over the Internet, for the standard and premium tiers, with
  medians of hundreds of milliseconds and outliers near one second.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.latency import LatencyModel, LogNormalLatency, MixtureLatency
from repro.storage.base import DictBackedStorage, StorageOperation


@dataclass(frozen=True)
class BlobTierProfile:
    """Latency/throughput profile of one blob-storage tier."""

    name: str
    #: body of the read latency distribution (same-region access)
    read_fast: LatencyModel
    #: tail of the read latency distribution (throttling, retries)
    read_slow: LatencyModel
    #: probability a read falls in the slow tail
    slow_fraction: float
    #: write latency
    write: LatencyModel
    #: sustained download bandwidth used for size-dependent latency (bytes/ms)
    bandwidth_bytes_per_ms: float = 50_000.0

    def read_model(self) -> LatencyModel:
        return MixtureLatency(
            components=[self.read_fast, self.read_slow],
            weights=[1.0 - self.slow_fraction, self.slow_fraction],
        )


# Calibrated so the "Serverless" curve of Figure 13 is reproduced: 99th
# percentile ~16 ms, 99.9th percentile ~226 ms, outliers near 500 ms.
AZURE_BLOB_STANDARD = BlobTierProfile(
    name="azure-blob-standard",
    read_fast=LogNormalLatency(median_ms=8.5, sigma=0.26, floor_ms=1.0, cap_ms=60.0),
    read_slow=LogNormalLatency(median_ms=170.0, sigma=0.40, floor_ms=70.0, cap_ms=500.0),
    slow_fraction=0.0025,
    write=LogNormalLatency(median_ms=25.0, sigma=0.5, floor_ms=5.0, cap_ms=800.0),
)

AZURE_BLOB_PREMIUM = BlobTierProfile(
    name="azure-blob-premium",
    read_fast=LogNormalLatency(median_ms=5.0, sigma=0.22, floor_ms=1.0, cap_ms=40.0),
    read_slow=LogNormalLatency(median_ms=110.0, sigma=0.4, floor_ms=40.0, cap_ms=300.0),
    slow_fraction=0.002,
    write=LogNormalLatency(median_ms=14.0, sigma=0.45, floor_ms=3.0, cap_ms=400.0),
)

AWS_S3_STANDARD = BlobTierProfile(
    name="aws-s3-standard",
    read_fast=LogNormalLatency(median_ms=11.0, sigma=0.3, floor_ms=2.0, cap_ms=80.0),
    read_slow=LogNormalLatency(median_ms=240.0, sigma=0.45, floor_ms=90.0, cap_ms=600.0),
    slow_fraction=0.004,
    write=LogNormalLatency(median_ms=30.0, sigma=0.5, floor_ms=6.0, cap_ms=900.0),
)


class BlobStorage(DictBackedStorage):
    """A serverless blob store with a tier-specific latency profile."""

    def __init__(self, rng: np.random.Generator, profile: BlobTierProfile = AZURE_BLOB_STANDARD) -> None:
        super().__init__()
        self._rng = rng
        self.profile = profile
        self._read_model = profile.read_model()
        self.name = profile.name
        #: running operation counts used by the billing-style summaries
        self.read_count = 0
        self.write_count = 0
        self.bytes_read = 0
        self.bytes_written = 0

    def _transfer_ms(self, size_bytes: int) -> float:
        return float(size_bytes) / self.profile.bandwidth_bytes_per_ms

    def read(self, key: str) -> StorageOperation:
        data = self._get(key)
        latency = self._read_model.sample(self._rng) + self._transfer_ms(len(data))
        self.read_count += 1
        self.bytes_read += len(data)
        return StorageOperation(
            key=key, operation="read", latency_ms=latency, size_bytes=len(data), data=data
        )

    def write(self, key: str, data: bytes) -> StorageOperation:
        self._put(key, data)
        latency = self.profile.write.sample(self._rng) + self._transfer_ms(len(data))
        self.write_count += 1
        self.bytes_written += len(data)
        return StorageOperation(key=key, operation="write", latency_ms=latency, size_bytes=len(data))

    def delete(self, key: str) -> StorageOperation:
        size = self._remove(key)
        return StorageOperation(key=key, operation="delete", latency_ms=5.0, size_bytes=size)


# ---------------------------------------------------------------------------------
# Figure 3: end-to-end download latency of game data over the Internet.
# ---------------------------------------------------------------------------------

_DOWNLOAD_PROFILES: dict[tuple[str, str], LatencyModel] = {
    # (data kind, tier) -> latency model.  Terrain objects are an order of
    # magnitude larger than player records, so their downloads are slower and
    # more variable; the premium tier roughly halves the median.
    ("player", "premium"): LogNormalLatency(median_ms=95.0, sigma=0.35, floor_ms=40.0, cap_ms=900.0),
    ("player", "standard"): LogNormalLatency(median_ms=160.0, sigma=0.45, floor_ms=60.0, cap_ms=1050.0),
    ("terrain", "premium"): LogNormalLatency(median_ms=210.0, sigma=0.40, floor_ms=90.0, cap_ms=1000.0),
    ("terrain", "standard"): LogNormalLatency(median_ms=340.0, sigma=0.50, floor_ms=120.0, cap_ms=1100.0),
}


def download_latency_profile(data_kind: str, tier: str) -> LatencyModel:
    """The Figure 3 download latency model for (data kind, tier).

    ``data_kind`` is "player" or "terrain"; ``tier`` is "premium" or
    "standard".
    """
    key = (data_kind.lower(), tier.lower())
    if key not in _DOWNLOAD_PROFILES:
        raise ValueError(
            f"unknown download profile {key!r}; expected data kind in ('player', 'terrain') "
            "and tier in ('premium', 'standard')"
        )
    return _DOWNLOAD_PROFILES[key]
