"""Wiring a fault plan into a built host.

:func:`install_faults` is the single entry point: it connects a validated
:class:`~repro.faults.plan.FaultPlan` to whichever host the run built — a
single :class:`~repro.server.GameServer` or a
:class:`~repro.cluster.ClusterCoordinator` — and returns the
:class:`~repro.faults.injector.FaultInjector` that drives it (or ``None`` for
an empty plan, in which case **nothing** is attached and the run is
bit-identical to a fault-free one).

Section by section:

* ``faas`` faults attach the injector to every FaaS platform the host uses
  (Servo variants; a host without a platform rejects the section).
* ``net`` faults build one shared :class:`~repro.net.channel.FaultyMessageChannel`
  and attach it to every server, present and future (respawned shards are
  wired through the coordinator's ``shard_wirers``).
* ``degradation`` gives every server its own
  :class:`~repro.faults.degradation.DegradationController`.
* ``shards`` kills require a cluster host built with a ``shard_factory``.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.cluster.coordinator import ClusterCoordinator
from repro.faults.degradation import DegradationController
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.net.channel import FaultyMessageChannel
from repro.server.gameloop import GameServer

Host = Union[GameServer, ClusterCoordinator]


def _platform_of(server: GameServer):
    return getattr(server.runtime, "platform", None)


def install_faults(host: Host, plan: Optional[FaultPlan]) -> Optional[FaultInjector]:
    """Wire ``plan`` into ``host``; returns the injector (None if empty)."""
    if plan is None or plan.is_empty:
        return None

    is_cluster = isinstance(host, ClusterCoordinator)
    servers: list[GameServer] = list(host.shards) if is_cluster else [host]
    engine = host.engine
    injector = FaultInjector(engine, plan)

    if plan.faas is not None and plan.faas.active:
        platforms = {
            id(platform): platform  # det: allow[DET005] identity-dedupe of shared platforms; iteration stays in shard-discovery order
            for platform in map(_platform_of, servers)
            if platform is not None
        }
        if not platforms:
            raise ValueError(
                f"the fault plan injects FaaS faults but host {host.name!r} "
                "has no FaaS platform (use a servo variant)"
            )
        for platform in platforms.values():
            platform.fault_injector = injector

    channel: Optional[FaultyMessageChannel] = None
    if plan.net is not None and plan.net.active:
        channel = FaultyMessageChannel(engine, injector)

    def wire_server(server: GameServer) -> None:
        if channel is not None:
            server.message_channel = channel
            channel.add_resolver(server.sessions.get)
            for session in server.sessions.values():
                session.attach_channel(channel)
        if plan.degradation is not None:
            server.degradation = DegradationController(
                plan.degradation,
                engine.metrics,
                record=injector.record,
                server_name=server.name,
            )

    for server in servers:
        wire_server(server)

    host.fault_injector = injector
    if is_cluster:
        host.shard_wirers.append(wire_server)
        if plan.shards and host.shard_factory is None:
            raise ValueError(
                f"the fault plan schedules shard kills but host {host.name!r} "
                "was built without a shard_factory"
            )
    elif plan.shards:
        raise ValueError(
            f"the fault plan schedules shard kills but host {host.name!r} "
            "is a single server (use a cluster variant)"
        )
    return injector
