"""Deterministic fault injection and recovery.

The subsystem is data-driven: a :class:`FaultPlan` (JSON-serializable,
validated eagerly) describes FaaS invocation faults, client-message faults,
scheduled shard kills and the graceful-degradation policy;
:func:`install_faults` wires it into a built host; the
:class:`FaultInjector` draws every fault decision from dedicated named RNG
streams so chaos runs are bit-reproducible, and records them in a
:class:`FaultTimeline` whose digest gates rerun determinism.  An empty plan
installs nothing: the fault-free determinism hashes are untouched.
"""

from repro.faults.degradation import DegradationController
from repro.faults.injector import FaultEvent, FaultInjector, FaultTimeline, make_injector
from repro.faults.install import install_faults
from repro.faults.plan import (
    DegradationPolicy,
    FaasFaults,
    FaultPlan,
    NetFaults,
    RetryPolicy,
    ShardKill,
)

__all__ = [
    "DegradationController",
    "DegradationPolicy",
    "FaasFaults",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultTimeline",
    "NetFaults",
    "RetryPolicy",
    "ShardKill",
    "install_faults",
    "make_injector",
]
