"""Declarative fault plans.

A :class:`FaultPlan` is the JSON-serializable description of every fault a
run injects.  Like :class:`~repro.api.spec.RunSpec` config overrides, a plan
is data: it round-trips losslessly through ``to_dict``/``from_dict``, is
validated eagerly (unknown keys, out-of-range rates and malformed kill events
raise ``ValueError`` at construction, not mid-run), and an **empty plan is a
guaranteed no-op** — nothing is installed, no RNG stream is touched, and
every determinism hash reproduces bit-for-bit.

The four sections:

* ``faas`` — per-invocation failure/throttle/forced-timeout probabilities for
  the simulated FaaS platform, plus the retry/backoff policy callers answer
  them with (:class:`RetryPolicy`).
* ``net`` — client-message drop/duplication/delay probabilities, applied by
  :class:`~repro.net.channel.FaultyMessageChannel`.
* ``shards`` — scheduled shard crashes (:class:`ShardKill`), recovered by the
  :class:`~repro.cluster.coordinator.ClusterCoordinator` through the
  snapshot/restore migration protocol.
* ``degradation`` — the graceful-degradation controller's knobs
  (:class:`DegradationPolicy`): shed broadcast work when a shard blows its
  tick budget.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional


def _require_mapping(value: Any, what: str) -> dict:
    if not isinstance(value, Mapping):
        raise ValueError(f"{what} must be a mapping, got {type(value).__name__}")
    return dict(value)


def _check_keys(data: Mapping, allowed: frozenset[str], what: str) -> None:
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise ValueError(
            f"unknown {what} key(s) {unknown}; allowed keys: {sorted(allowed)}"
        )


def _check_rate(value: Any, what: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"{what} must be a number, got {value!r}")
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{what} must be in [0, 1], got {value!r}")
    return float(value)


def _check_non_negative(value: Any, what: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"{what} must be a number, got {value!r}")
    if value < 0:
        raise ValueError(f"{what} must be non-negative, got {value!r}")
    return float(value)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff for failed FaaS invocations (virtual time).

    Attempt ``n`` (1-based) that fails is retried after
    ``backoff_base_ms * backoff_multiplier ** (n - 1)`` plus a uniform jitter
    in ``[0, jitter_ms]`` drawn from the ``faults:faas`` stream, up to
    ``max_attempts`` total attempts.
    """

    KEYS = frozenset({"max_attempts", "backoff_base_ms", "backoff_multiplier", "jitter_ms"})

    max_attempts: int = 3
    backoff_base_ms: float = 50.0
    backoff_multiplier: float = 2.0
    jitter_ms: float = 0.0

    def __post_init__(self) -> None:
        if isinstance(self.max_attempts, bool) or not isinstance(self.max_attempts, int):
            raise ValueError(f"retry.max_attempts must be an integer, got {self.max_attempts!r}")
        if self.max_attempts < 1:
            raise ValueError(f"retry.max_attempts must be at least 1, got {self.max_attempts!r}")
        _check_non_negative(self.backoff_base_ms, "retry.backoff_base_ms")
        _check_non_negative(self.jitter_ms, "retry.jitter_ms")
        if self.backoff_multiplier < 1.0:
            raise ValueError(
                f"retry.backoff_multiplier must be >= 1, got {self.backoff_multiplier!r}"
            )

    def backoff_ms(self, attempt: int) -> float:
        """The deterministic part of the delay after failed attempt ``attempt``."""
        return self.backoff_base_ms * self.backoff_multiplier ** (attempt - 1)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RetryPolicy":
        data = _require_mapping(data, "faas.retry")
        _check_keys(data, cls.KEYS, "faas.retry")
        return cls(**data)

    def to_dict(self) -> dict[str, Any]:
        return {
            "max_attempts": self.max_attempts,
            "backoff_base_ms": self.backoff_base_ms,
            "backoff_multiplier": self.backoff_multiplier,
            "jitter_ms": self.jitter_ms,
        }


@dataclass(frozen=True)
class FaasFaults:
    """Per-invocation fault probabilities for the FaaS platform."""

    KEYS = frozenset({"failure_rate", "throttle_rate", "timeout_rate", "retry"})

    #: the handler runs but its result is lost (function error)
    failure_rate: float = 0.0
    #: rejected at the control plane before execution (concurrency throttling)
    throttle_rate: float = 0.0
    #: the execution is forced past the function's timeout
    timeout_rate: float = 0.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        _check_rate(self.failure_rate, "faas.failure_rate")
        _check_rate(self.throttle_rate, "faas.throttle_rate")
        _check_rate(self.timeout_rate, "faas.timeout_rate")
        total = self.failure_rate + self.throttle_rate + self.timeout_rate
        if total > 1.0 + 1e-9:
            raise ValueError(f"faas fault rates must sum to at most 1, got {total!r}")

    @property
    def active(self) -> bool:
        return (self.failure_rate + self.throttle_rate + self.timeout_rate) > 0.0

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaasFaults":
        data = _require_mapping(data, "faults.faas")
        _check_keys(data, cls.KEYS, "faults.faas")
        retry = data.pop("retry", None)
        policy = RetryPolicy.from_dict(retry) if retry is not None else RetryPolicy()
        return cls(retry=policy, **data)

    def to_dict(self) -> dict[str, Any]:
        return {
            "failure_rate": self.failure_rate,
            "throttle_rate": self.throttle_rate,
            "timeout_rate": self.timeout_rate,
            "retry": self.retry.to_dict(),
        }


@dataclass(frozen=True)
class NetFaults:
    """Client-message fault probabilities (drop, duplicate, delay)."""

    KEYS = frozenset(
        {"drop_rate", "duplicate_rate", "delay_rate", "delay_ms_min", "delay_ms_max"}
    )

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_rate: float = 0.0
    delay_ms_min: float = 25.0
    delay_ms_max: float = 250.0

    def __post_init__(self) -> None:
        _check_rate(self.drop_rate, "net.drop_rate")
        _check_rate(self.duplicate_rate, "net.duplicate_rate")
        _check_rate(self.delay_rate, "net.delay_rate")
        _check_non_negative(self.delay_ms_min, "net.delay_ms_min")
        _check_non_negative(self.delay_ms_max, "net.delay_ms_max")
        if self.delay_ms_max < self.delay_ms_min:
            raise ValueError(
                f"net.delay_ms_max ({self.delay_ms_max!r}) must be >= "
                f"net.delay_ms_min ({self.delay_ms_min!r})"
            )
        total = self.drop_rate + self.duplicate_rate + self.delay_rate
        if total > 1.0 + 1e-9:
            raise ValueError(f"net fault rates must sum to at most 1, got {total!r}")

    @property
    def active(self) -> bool:
        return (self.drop_rate + self.duplicate_rate + self.delay_rate) > 0.0

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "NetFaults":
        data = _require_mapping(data, "faults.net")
        _check_keys(data, cls.KEYS, "faults.net")
        return cls(**data)

    def to_dict(self) -> dict[str, Any]:
        return {
            "drop_rate": self.drop_rate,
            "duplicate_rate": self.duplicate_rate,
            "delay_rate": self.delay_rate,
            "delay_ms_min": self.delay_ms_min,
            "delay_ms_max": self.delay_ms_max,
        }


@dataclass(frozen=True)
class ShardKill:
    """One scheduled shard crash (and its respawn deadline)."""

    KEYS = frozenset({"at_ms", "shard", "respawn_after_ms"})

    #: virtual time of the crash; the kill fires at the first round boundary
    #: at or after this time
    at_ms: float
    #: index of the shard to kill
    shard: int
    #: virtual downtime before the replacement shard is brought up
    respawn_after_ms: float = 2000.0

    def __post_init__(self) -> None:
        _check_non_negative(self.at_ms, "shards[].at_ms")
        _check_non_negative(self.respawn_after_ms, "shards[].respawn_after_ms")
        if isinstance(self.shard, bool) or not isinstance(self.shard, int) or self.shard < 0:
            raise ValueError(f"shards[].shard must be a non-negative integer, got {self.shard!r}")

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ShardKill":
        data = _require_mapping(data, "faults.shards[]")
        _check_keys(data, cls.KEYS, "faults.shards[]")
        if "at_ms" not in data or "shard" not in data:
            raise ValueError("faults.shards[] entries require 'at_ms' and 'shard'")
        return cls(**data)

    def to_dict(self) -> dict[str, Any]:
        return {
            "at_ms": self.at_ms,
            "shard": self.shard,
            "respawn_after_ms": self.respawn_after_ms,
        }


@dataclass(frozen=True)
class DegradationPolicy:
    """Graceful degradation: shed broadcast work after a budget overrun.

    When a shard's previous tick exceeded ``budget_ms``, the next tick skips
    the state-update broadcast for ``shed_fraction`` of its players (the
    dominant per-player cost), recovering as soon as a tick lands back under
    budget.  Shedding is bounded degradation in the dyconit sense: distant
    observers get a stale tick instead of the whole shard getting slower.
    """

    KEYS = frozenset({"budget_ms", "shed_fraction"})

    #: tick budget that triggers shedding (the paper's QoS budget by default)
    budget_ms: float = 50.0
    #: fraction of players whose broadcast is shed while over budget
    shed_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.budget_ms <= 0:
            raise ValueError(f"degradation.budget_ms must be positive, got {self.budget_ms!r}")
        _check_rate(self.shed_fraction, "degradation.shed_fraction")

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DegradationPolicy":
        data = _require_mapping(data, "faults.degradation")
        _check_keys(data, cls.KEYS, "faults.degradation")
        return cls(**data)

    def to_dict(self) -> dict[str, Any]:
        return {"budget_ms": self.budget_ms, "shed_fraction": self.shed_fraction}


@dataclass(frozen=True)
class FaultPlan:
    """The complete, serializable fault description of one run."""

    KEYS = frozenset({"faas", "net", "shards", "degradation"})

    faas: Optional[FaasFaults] = None
    net: Optional[NetFaults] = None
    shards: tuple[ShardKill, ...] = ()
    degradation: Optional[DegradationPolicy] = None

    @property
    def is_empty(self) -> bool:
        """True when installing this plan is a no-op (the determinism gate)."""
        return (
            (self.faas is None or not self.faas.active)
            and (self.net is None or not self.net.active)
            and not self.shards
            and self.degradation is None
        )

    @classmethod
    def empty(cls) -> "FaultPlan":
        return cls()

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        data = _require_mapping(data, "fault plan")
        _check_keys(data, cls.KEYS, "fault plan")
        shards = data.get("shards", [])
        if not isinstance(shards, (list, tuple)):
            raise ValueError(f"faults.shards must be a list, got {type(shards).__name__}")
        kills = tuple(
            sorted(
                (ShardKill.from_dict(entry) for entry in shards),
                key=lambda kill: (kill.at_ms, kill.shard),
            )
        )
        return cls(
            faas=FaasFaults.from_dict(data["faas"]) if "faas" in data else None,
            net=NetFaults.from_dict(data["net"]) if "net" in data else None,
            shards=kills,
            degradation=(
                DegradationPolicy.from_dict(data["degradation"])
                if "degradation" in data
                else None
            ),
        )

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {}
        if self.faas is not None:
            out["faas"] = self.faas.to_dict()
        if self.net is not None:
            out["net"] = self.net.to_dict()
        if self.shards:
            out["shards"] = [kill.to_dict() for kill in self.shards]
        if self.degradation is not None:
            out["degradation"] = self.degradation.to_dict()
        return out

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)
