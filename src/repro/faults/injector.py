"""Seeded, virtual-time fault injection.

The :class:`FaultInjector` turns a :class:`~repro.faults.plan.FaultPlan` into
concrete fault decisions.  Every probabilistic decision is drawn from the
simulation's *named RNG streams* (``faults:faas`` and ``faults:net``), which
:class:`~repro.sim.rng.RandomStreams` derives independently per (seed, name):
chaos draws never perturb the existing simulation streams, and two runs with
the same seed and the same plan make bit-identical fault decisions — the
whole chaos run, including its fault timeline, is reproducible.

Every injected fault is appended to a :class:`FaultTimeline`, whose digest is
what the chaos-smoke gate compares across same-seed reruns.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.faults.plan import FaultPlan, RetryPolicy, ShardKill

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import SimulationEngine


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, in virtual time."""

    time_ms: float
    #: e.g. "faas.failure", "net.drop", "shard.kill", "shard.respawn"
    kind: str
    detail: str = ""


@dataclass
class FaultTimeline:
    """The ordered record of every fault a run injected."""

    events: list[FaultEvent] = field(default_factory=list)

    def record(self, time_ms: float, kind: str, detail: str = "") -> None:
        self.events.append(FaultEvent(time_ms=time_ms, kind=kind, detail=detail))

    def count(self, kind_prefix: str = "") -> int:
        return sum(1 for event in self.events if event.kind.startswith(kind_prefix))

    def digest(self) -> str:
        """A stable hash of the full timeline (the rerun-determinism gate)."""
        hasher = hashlib.sha256()
        for event in self.events:
            hasher.update(
                f"{event.time_ms!r}|{event.kind}|{event.detail};".encode("utf-8")
            )
        return hasher.hexdigest()

    def __len__(self) -> int:
        return len(self.events)


class FaultInjector:
    """Draws fault decisions for one run, from dedicated RNG streams."""

    def __init__(self, engine: "SimulationEngine", plan: FaultPlan) -> None:
        self.engine = engine
        self.plan = plan
        self.timeline = FaultTimeline()
        # Dedicated streams: creating them never touches existing streams,
        # and they are only instantiated for the sections the plan enables —
        # an empty section costs nothing.
        self._faas_rng = engine.rng("faults:faas") if plan.faas is not None else None
        self._net_rng = engine.rng("faults:net") if plan.net is not None else None
        #: kills not yet delivered, ordered by (at_ms, shard)
        self._pending_kills: list[ShardKill] = list(plan.shards)

    # -- FaaS -----------------------------------------------------------------------

    @property
    def retry_policy(self) -> RetryPolicy:
        if self.plan.faas is not None:
            return self.plan.faas.retry
        return RetryPolicy()

    def faas_outcome(self, function_name: str) -> str:
        """The injected outcome for one invocation attempt.

        One uniform draw is partitioned across the configured rates, so the
        decision costs exactly one draw regardless of which rates are set.
        Returns ``"ok"``, ``"failure"``, ``"throttled"`` or ``"timeout"``.
        """
        faults = self.plan.faas
        if faults is None or not faults.active:
            return "ok"
        draw = float(self._faas_rng.random())
        if draw < faults.failure_rate:
            outcome = "failure"
        elif draw < faults.failure_rate + faults.throttle_rate:
            outcome = "throttled"
        elif draw < faults.failure_rate + faults.throttle_rate + faults.timeout_rate:
            outcome = "timeout"
        else:
            return "ok"
        self._emit(f"faas.{outcome}", function_name)
        return outcome

    def retry_jitter_ms(self) -> float:
        """Uniform backoff jitter in [0, jitter_ms] (0 when no jitter is set)."""
        jitter = self.retry_policy.jitter_ms
        if jitter <= 0.0 or self._faas_rng is None:
            return 0.0
        return float(self._faas_rng.random()) * jitter

    # -- shards ---------------------------------------------------------------------

    def shard_kills_due(self, now_ms: float) -> list[ShardKill]:
        """Pop every scheduled kill whose time has arrived.

        The coordinator polls this at round boundaries, so kills land between
        rounds — never in the middle of a shard's tick.
        """
        due = [kill for kill in self._pending_kills if kill.at_ms <= now_ms]
        if due:
            self._pending_kills = [k for k in self._pending_kills if k.at_ms > now_ms]
        return due

    def record(self, kind: str, detail: str = "") -> None:
        self._emit(kind, detail)

    def _emit(self, kind: str, detail: str) -> None:
        """Record one fault on the timeline and, when enabled, the telemetry hub.

        This is the FaultTimeline→telemetry fold-in: every fault event becomes
        a ``fault``-category instant in the unified virtual-time trace, while
        the timeline (and its digest, the chaos determinism gate) stays the
        authoritative chaos record.
        """
        now_ms = self.engine.now_ms
        self.timeline.record(now_ms, kind, detail)
        telemetry = self.engine.telemetry
        if telemetry.enabled:
            telemetry.instant(
                "fault",
                kind,
                track="faults",
                ts_ms=now_ms,
                args={"detail": detail} if detail else None,
            )

    # -- net ------------------------------------------------------------------------

    @property
    def net_rng(self):
        """The ``faults:net`` stream (None when the plan has no net section)."""
        return self._net_rng


def make_injector(engine: "SimulationEngine", plan: Optional[FaultPlan]) -> Optional[FaultInjector]:
    """An injector for a non-empty plan, or None (the no-op guarantee)."""
    if plan is None or plan.is_empty:
        return None
    return FaultInjector(engine, plan)
