"""Graceful degradation: shed broadcast work instead of falling behind.

When a shard's tick blows its budget, the next tick skips the state-update
broadcast for a configurable fraction of its players (the dominant per-player
cost) until a tick lands back under budget.  This is bounded inconsistency in
the dyconit sense: a subset of observers receives a stale tick, but the shard
keeps its tick rate — degradation instead of collapse.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.faults.plan import DegradationPolicy
from repro.sim.metrics import MetricRegistry


class DegradationController:
    """Per-server shed decision, driven by the previous tick's duration."""

    def __init__(
        self,
        policy: DegradationPolicy,
        metrics: MetricRegistry,
        record: Optional[Callable[[str, str], None]] = None,
        server_name: str = "server",
    ) -> None:
        self.policy = policy
        self.metrics = metrics
        self.server_name = server_name
        self._record = record
        self._over_budget = False
        #: ticks in which this controller shed at least one broadcast
        self.shedding_ticks = 0
        #: total broadcast updates shed over the controller's lifetime
        self.updates_shed = 0

    @property
    def shedding(self) -> bool:
        """True while the server is over budget (the next tick will shed)."""
        return self._over_budget

    def shed_count(self, players: int) -> int:
        """How many players' broadcasts to shed this tick (0 when under budget)."""
        if not self._over_budget or players <= 0:
            return 0
        shed = int(players * self.policy.shed_fraction)
        if shed > 0:
            self.shedding_ticks += 1
            self.updates_shed += shed
            self.metrics.increment("broadcast_updates_shed", shed)
            if self._record is not None:
                self._record("degradation.shed", f"{self.server_name} players={shed}")
        return shed

    def shed_flush_count(self, due_flushes: int) -> int:
        """How many due far-tier flushes to defer this tick (interest mode).

        With interest management there is no full per-player broadcast to
        skip; degradation instead widens far-tier error budgets by deferring
        a fraction of the flushes that came due.  The shed count is computed
        from the *due flushes after interest filtering* — never from the
        player count, which would shed phantom full-broadcast work.
        """
        if not self._over_budget or due_flushes <= 0:
            return 0
        shed = int(due_flushes * self.policy.shed_fraction)
        if shed > 0:
            self.shedding_ticks += 1
            self.updates_shed += shed
            self.metrics.increment("broadcast_updates_shed", shed)
            if self._record is not None:
                self._record("degradation.shed", f"{self.server_name} flushes={shed}")
        return shed

    def observe(self, duration_ms: float) -> None:
        """Feed back the tick's duration; decides whether the next tick sheds."""
        self._over_budget = duration_ms > self.policy.budget_ms
