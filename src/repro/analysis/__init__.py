"""Analysis helpers: statistics and paper-style reporting."""

from repro.analysis.stats import (
    icdf_points,
    rolling_percentile,
    summarize_distribution,
)
from repro.analysis.report import comparison_table, paper_vs_measured

__all__ = [
    "rolling_percentile",
    "icdf_points",
    "summarize_distribution",
    "comparison_table",
    "paper_vs_measured",
]
