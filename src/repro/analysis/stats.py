"""Statistics helpers built on top of :mod:`repro.sim.metrics`.

These helpers are used by the experiment formatters and the benchmark reports:
rolling percentiles over time series (the paper's 2.5-second bands), inverse
CDF points (Figure 13) and compact distribution summaries.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.sim.metrics import BoxplotStats, boxplot_stats, inverse_cdf


def rolling_percentile(
    times_ms: Sequence[float],
    values: Sequence[float],
    q: float,
    window_ms: float = 2500.0,
    step_ms: float | None = None,
) -> list[tuple[float, float]]:
    """Rolling ``q``-th percentile over fixed-width time windows.

    Returns (window centre time, percentile) pairs; windows without samples
    are skipped.
    """
    if len(times_ms) != len(values):
        raise ValueError("times and values must have the same length")
    if not times_ms:
        return []
    step = float(step_ms if step_ms is not None else window_ms)
    times = np.asarray(times_ms, dtype=float)
    data = np.asarray(values, dtype=float)
    out: list[tuple[float, float]] = []
    t = float(times.min())
    end = float(times.max())
    while t <= end + 1e-9:
        mask = (times >= t) & (times < t + window_ms)
        if mask.any():
            out.append((t + window_ms / 2.0, float(np.percentile(data[mask], q))))
        t += step
    return out


def icdf_points(samples: Iterable[float], thresholds: Iterable[float]) -> list[tuple[float, float]]:
    """Inverse CDF points (latency, fraction of samples at or above it)."""
    return inverse_cdf(samples, thresholds)


def summarize_distribution(samples: Iterable[float]) -> BoxplotStats:
    """The standard boxplot summary used across the experiments."""
    return boxplot_stats(samples)


def crossing_time(
    series: Sequence[tuple[float, float]], threshold: float, sustained_points: int = 2
) -> float | None:
    """The first time a series stays above ``threshold`` for ``sustained_points`` samples.

    Returns None if the series never crosses.  Used to find when a rolling
    percentile first exceeds the 50 ms budget (Figure 12a).
    """
    if sustained_points < 1:
        raise ValueError("sustained_points must be at least 1")
    run = 0
    for time, value in series:
        if value > threshold:
            run += 1
            if run >= sustained_points:
                return time
        else:
            run = 0
    return None
