"""Paper-style report rendering."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.experiments.harness import format_table


def comparison_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render arbitrary rows as a fixed-width table (strings coerced)."""
    return format_table(list(headers), [[str(cell) for cell in row] for row in rows])


def paper_vs_measured(
    metric_name: str, values: Mapping[str, tuple[float, float]]
) -> str:
    """Render a paper-vs-measured table for one metric.

    ``values`` maps a row label (e.g. a game name) to a (paper, measured)
    pair.  The ratio column makes it easy to judge whether the *shape* of the
    result holds even when absolute values differ.
    """
    rows = []
    for label, (paper, measured) in values.items():
        ratio = measured / paper if paper else float("nan")
        rows.append([label, f"{paper:g}", f"{measured:g}", f"{ratio:.2f}"])
    return format_table([metric_name, "paper", "measured", "measured/paper"], rows)
