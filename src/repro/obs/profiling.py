"""Opt-in wall-clock profiling counters, strictly separate from virtual time.

Everything else in :mod:`repro.obs` records *virtual* time so traces are
reproducible from the seed.  Real execution cost — how long a tick actually
took on this machine — is a different question, and mixing the two would
poison every determinism hash.  :class:`WallClockProfiler` therefore lives in
its own object: sections accumulate ``(calls, wall seconds)`` pairs, the
exporters emit them only under a clearly-labelled ``wallProfile`` key, and
the virtual-time trace digest never sees them.
"""

from __future__ import annotations

import time
from contextlib import contextmanager


class SectionStats:
    """Accumulated wall-clock cost of one named profiling section."""

    __slots__ = ("calls", "wall_s")

    def __init__(self) -> None:
        self.calls = 0
        self.wall_s = 0.0

    def add(self, elapsed_s: float) -> None:
        self.calls += 1
        self.wall_s += elapsed_s

    def to_dict(self) -> dict[str, float]:
        return {"calls": self.calls, "wall_s": self.wall_s}


class WallClockProfiler:
    """Per-section wall-clock accumulators driven by ``perf_counter``."""

    def __init__(self) -> None:
        self.sections: dict[str, SectionStats] = {}

    @contextmanager
    def section(self, name: str):
        stats = self.sections.get(name)
        if stats is None:
            stats = self.sections[name] = SectionStats()
        started = time.perf_counter()
        try:
            yield
        finally:
            stats.add(time.perf_counter() - started)

    def to_dict(self) -> dict[str, dict[str, float]]:
        """Section stats, keyed and ordered by section name."""
        return {name: self.sections[name].to_dict() for name in sorted(self.sections)}

    def __len__(self) -> int:
        return len(self.sections)
