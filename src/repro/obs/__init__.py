"""Unified observability: virtual-time tracing, metric export, profiling.

The paper's evaluation is an argument about *where time goes* — Table I's
service overview, fig07's scalability, fig09's invocation latencies.  This
layer gives the repro the same visibility: a run-scoped
:class:`~repro.obs.telemetry.Telemetry` hub records structured spans and
events stamped with the simulation's **virtual** clock (ticks, cluster
rounds, FaaS invocation attempts, migrations, faults, terrain requests), and
the exporters render them as Chrome trace-event JSON (Perfetto-loadable),
JSONL streams, and Prometheus-style metric dumps.

Determinism is the design constraint: every recorded value is virtual-time
data, so same-seed runs produce byte-identical traces; disabled telemetry is
a shared null object behind a single attribute check, bit-identical to an
uninstrumented run; and the opt-in wall-clock profiler is quarantined in its
own export key so it can never contaminate a determinism hash.

The re-exports resolve lazily (PEP 562): :mod:`repro.sim.engine` imports
:mod:`repro.obs.telemetry` for its default null hub, so eagerly importing the
exporters here (which import :mod:`repro.sim.metrics`) would risk closing an
import cycle through the sim layer.
"""

_EXPORTS = {
    "TraceEvent": "repro.obs.telemetry",
    "Telemetry": "repro.obs.telemetry",
    "NullTelemetry": "repro.obs.telemetry",
    "NULL_TELEMETRY": "repro.obs.telemetry",
    "TelemetryConfig": "repro.obs.telemetry",
    "install_telemetry": "repro.obs.telemetry",
    "WallClockProfiler": "repro.obs.profiling",
    "RecordRing": "repro.obs.records",
    "EvictedRecordError": "repro.obs.records",
    "chrome_trace": "repro.obs.export",
    "trace_json": "repro.obs.export",
    "strip_wall_clock": "repro.obs.export",
    "write_chrome_trace": "repro.obs.export",
    "events_jsonl": "repro.obs.export",
    "write_jsonl": "repro.obs.export",
    "prometheus_text": "repro.obs.export",
    "write_prometheus": "repro.obs.export",
    "load_trace": "repro.obs.report",
    "validate_chrome_trace": "repro.obs.report",
    "trace_breakdown": "repro.obs.report",
    "format_trace_report": "repro.obs.report",
}

__all__ = list(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
