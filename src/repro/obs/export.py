"""Trace and metric exporters: Chrome trace-event JSON, JSONL, Prometheus text.

All exported *timestamps and durations are virtual* — the trace a run writes
is a function of the seed, so two same-seed runs export byte-identical files.
The only wall-clock data an export may carry is the opt-in profiler summary,
emitted under a single top-level ``wallProfile`` key that
:func:`strip_wall_clock` removes before any determinism comparison.

The Chrome format targets ``chrome://tracing`` and https://ui.perfetto.dev:
an object with a ``traceEvents`` list of ``"X"`` (complete span), ``"i"``
(instant) and ``"M"`` (metadata) events, timestamps in microseconds.  Each
telemetry track becomes one named thread, in first-seen order.
"""

from __future__ import annotations

import json
import re
from typing import Any, Optional

from repro.obs.telemetry import INSTANT_PHASE, SPAN_PHASE, Telemetry

#: the trace's single virtual "process"
TRACE_PID = 1


def chrome_trace(
    telemetry: Telemetry, metrics: Optional[Any] = None
) -> dict[str, Any]:
    """Render a telemetry record as a Chrome trace-event JSON object.

    ``metrics`` (a :class:`~repro.sim.metrics.MetricRegistry`) adds its
    deterministic snapshot under a ``metrics`` key; the opt-in wall-clock
    profiler, when present, is emitted under ``wallProfile`` (and only
    there — trace events never carry wall-clock data).
    """
    tids: dict[str, int] = {}
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": 0,
            "args": {"name": "repro (virtual time)"},
        }
    ]
    body: list[dict[str, Any]] = []
    for event in telemetry.events:
        tid = tids.get(event.track)
        if tid is None:
            tid = tids[event.track] = len(tids) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": TRACE_PID,
                    "tid": tid,
                    "args": {"name": event.track},
                }
            )
        entry: dict[str, Any] = {
            "name": event.name,
            "cat": event.category,
            "ph": event.phase,
            # Chrome trace timestamps are microseconds; ours are virtual ms.
            "ts": event.ts_ms * 1000.0,
            "pid": TRACE_PID,
            "tid": tid,
        }
        if event.phase == SPAN_PHASE:
            entry["dur"] = event.dur_ms * 1000.0
        elif event.phase == INSTANT_PHASE:
            entry["s"] = "t"  # thread-scoped instant
        if event.args:
            entry["args"] = {key: event.args[key] for key in sorted(event.args)}
        body.append(entry)

    trace: dict[str, Any] = {
        "traceEvents": events + body,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "virtual", "unit_note": "ts/dur are virtual ms x1000"},
    }
    if metrics is not None:
        trace["metrics"] = metrics.to_dict()
    if telemetry.profiler is not None:
        trace["wallProfile"] = telemetry.profiler.to_dict()
    return trace


def strip_wall_clock(trace: dict[str, Any]) -> dict[str, Any]:
    """The trace without its (only) wall-clock field, for determinism diffs."""
    return {key: value for key, value in trace.items() if key != "wallProfile"}


def trace_json(
    telemetry: Telemetry, metrics: Optional[Any] = None, indent: Optional[int] = None
) -> str:
    """The Chrome trace serialized canonically (sorted keys, stable floats)."""
    return json.dumps(
        chrome_trace(telemetry, metrics), indent=indent, sort_keys=True
    )


def write_chrome_trace(
    path: str, telemetry: Telemetry, metrics: Optional[Any] = None
) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(trace_json(telemetry, metrics, indent=1))
        handle.write("\n")


def events_jsonl(telemetry: Telemetry) -> str:
    """One canonical JSON object per recorded event, in recording order."""
    return "".join(
        json.dumps(event.to_dict(), sort_keys=True) + "\n"
        for event in telemetry.events
    )


def write_jsonl(path: str, telemetry: Telemetry) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(events_jsonl(telemetry))


# -- Prometheus-style text dump ---------------------------------------------------------

_PROM_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(base: str) -> str:
    return "repro_" + _PROM_SANITIZE.sub("_", base)


def _prom_value(value: float) -> str:
    return repr(float(value))


def prometheus_text(metrics: Any) -> str:
    """A Prometheus exposition-style dump of a :class:`MetricRegistry`.

    Per-shard histogram variants (``base:shard``, see
    :func:`~repro.sim.metrics.metric_name`) fold into the base metric with a
    ``shard`` label; counters export as ``counter``, histograms as ``summary``
    (quantiles + ``_sum``/``_count``), series as a ``gauge`` of the last value
    plus a sample-count counter.  Output order is deterministic (sorted).
    """
    from repro.sim.metrics import split_metric_name

    lines: list[str] = []

    for name in metrics.counter_names:
        base, shard = split_metric_name(name)
        prom = _prom_name(base)
        label = f'{{shard="{shard}"}}' if shard is not None else ""
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom}{label} {_prom_value(metrics.counter(name))}")

    # Group per-shard variants under their base so TYPE is emitted once.
    histogram_groups: dict[str, list[tuple[Optional[str], str]]] = {}
    for name in metrics.histogram_names:
        base, shard = split_metric_name(name)
        histogram_groups.setdefault(base, []).append((shard, name))
    for base in sorted(histogram_groups):
        prom = _prom_name(base)
        lines.append(f"# TYPE {prom} summary")
        for shard, name in histogram_groups[base]:
            histogram = metrics.histogram(name)
            if len(histogram) == 0:
                continue
            stats = histogram.boxplot()
            shard_label = f',shard="{shard}"' if shard is not None else ""
            for quantile, value in (
                ("0.05", stats.p5),
                ("0.25", stats.p25),
                ("0.5", stats.median),
                ("0.75", stats.p75),
                ("0.95", stats.p95),
            ):
                lines.append(
                    f'{prom}{{quantile="{quantile}"{shard_label}}} {_prom_value(value)}'
                )
            suffix = f'{{shard="{shard}"}}' if shard is not None else ""
            lines.append(
                f"{prom}_sum{suffix} {_prom_value(stats.mean * stats.count)}"
            )
            lines.append(f"{prom}_count{suffix} {_prom_value(stats.count)}")

    for name in metrics.series_names:
        series = metrics.series(name)
        base, shard = split_metric_name(name)
        prom = _prom_name(base)
        label = f'{{shard="{shard}"}}' if shard is not None else ""
        lines.append(f"# TYPE {prom} gauge")
        if len(series):
            lines.append(f"{prom}{label} {_prom_value(series.values[-1])}")
        lines.append(f"{prom}_samples{label} {_prom_value(len(series))}")

    return "\n".join(lines) + "\n"


def write_prometheus(path: str, metrics: Any) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(prometheus_text(metrics))
