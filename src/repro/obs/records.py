"""Bounded record storage for long runs.

``GameServer.tick_records`` and ``ClusterCoordinator``'s record lists grow one
Python object per tick/migration; a million-tick soak run accumulates
gigabytes of them even though every summary the experiments print is an
aggregate.  :class:`RecordRing` keeps those attributes list-compatible while
adding an optional retention cap: uncapped (the default) it behaves exactly
like the list it replaces, capped it retains only the newest ``cap`` records
in a ``deque`` and keeps the run-wide summaries (count, duration sum/max,
over-budget fraction) correct incrementally.

Indexing is **virtual**: ``ring[i]`` and ``ring[a:b]`` address records by
their append index over the whole run, exactly as the list did, so callers
like ``Scenario.run`` (``tick_records[measured_from:]``) keep working —
touching an index whose record was evicted raises :class:`EvictedRecordError`
rather than silently returning the wrong record.  ``len(ring)`` is the total
number of records ever appended (tick indices and "how many ticks ran"
arithmetic depend on it), not the retained count.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterator, Optional


class EvictedRecordError(IndexError):
    """A virtual index addressed a record the retention cap already evicted."""


class RecordRing:
    """A list-compatible, optionally capped append-only record store."""

    def __init__(
        self,
        cap: Optional[int] = None,
        duration_of: Optional[str] = None,
        budget_ms: Optional[float] = None,
    ) -> None:
        if cap is not None and cap < 1:
            raise ValueError(f"record cap must be at least 1, got {cap}")
        self.cap = cap
        #: attribute name holding each record's duration, for the incremental
        #: aggregates (e.g. "duration_ms" for ticks, "latency_ms" for migrations)
        self.duration_of = duration_of
        #: budget the incremental over-budget counter compares against; only
        #: this budget stays answerable after evictions
        self.budget_ms = budget_ms
        self._items: Any = [] if cap is None else deque(maxlen=cap)
        self._appended = 0
        self._duration_sum = 0.0
        self._duration_max = float("-inf")
        self._over_budget = 0
        # Incremental aggregates exist to stay exact after eviction; an
        # uncapped ring never evicts and can always answer by scanning, so
        # the hot append path only pays for them when a cap is set.
        self._track_durations = cap is not None and duration_of is not None

    # -- list protocol (virtual indices) -------------------------------------------

    def append(self, record: Any) -> None:
        self._items.append(record)
        self._appended += 1
        if self._track_durations:
            duration = float(getattr(record, self.duration_of))
            self._duration_sum += duration
            if duration > self._duration_max:
                self._duration_max = duration
            if self.budget_ms is not None and duration > self.budget_ms:
                self._over_budget += 1

    def __len__(self) -> int:
        """Total records ever appended (NOT the retained count)."""
        return self._appended

    @property
    def dropped(self) -> int:
        """Records evicted by the cap (0 when uncapped)."""
        return self._appended - len(self._items)

    def retained(self) -> list[Any]:
        """The records still held, oldest first."""
        return list(self._items)

    def _resolve(self, index: int) -> Any:
        if index < 0:
            index += self._appended
        if not 0 <= index < self._appended:
            raise IndexError(
                f"record index {index} out of range (appended {self._appended})"
            )
        physical = index - self.dropped
        if physical < 0:
            raise EvictedRecordError(
                f"record {index} was evicted by the retention cap "
                f"(cap={self.cap}, oldest retained index is {self.dropped})"
            )
        return self._items[physical]

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(self._appended)
            return [self._resolve(i) for i in range(start, stop, step)]
        return self._resolve(int(index))

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)

    def __bool__(self) -> bool:
        return self._appended > 0

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, RecordRing):
            return (
                self._appended == other._appended
                and self.dropped == other.dropped
                and list(self._items) == list(other._items)
            )
        if isinstance(other, (list, tuple)):
            # Fully comparable to a plain list only when nothing was evicted.
            return self.dropped == 0 and list(self._items) == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        return (
            f"RecordRing(cap={self.cap}, appended={self._appended}, "
            f"retained={len(self._items)})"
        )

    # -- incremental summaries ------------------------------------------------------

    def _durations(self) -> list[float]:
        attr = self.duration_of
        return [float(getattr(record, attr)) for record in self._items]

    @property
    def duration_sum_ms(self) -> float:
        if self._track_durations:
            return self._duration_sum
        if self.duration_of is None:
            return 0.0
        return sum(self._durations())

    @property
    def duration_max_ms(self) -> float:
        if self._appended == 0 or self.duration_of is None:
            raise ValueError("no durations recorded")
        if self._track_durations:
            return self._duration_max
        return max(self._durations())

    def mean_duration_ms(self) -> float:
        if self._appended == 0 or self.duration_of is None:
            raise ValueError("no durations recorded")
        return self.duration_sum_ms / self._appended

    def over_budget_fraction(self, budget_ms: float) -> float:
        """Fraction of ALL appended records whose duration exceeded the budget.

        Answered by an exact scan while nothing has been evicted (any budget),
        and by the incremental counter afterwards (only the construction-time
        ``budget_ms`` — anything else would need the evicted records back).
        """
        if self.duration_of is None:
            raise ValueError("this ring does not track durations")
        if self._appended == 0:
            raise ValueError("no records have been appended yet")
        if self.dropped == 0:
            attr = self.duration_of
            over = sum(
                1 for record in self._items if getattr(record, attr) > budget_ms
            )
            return over / self._appended
        if self.budget_ms is not None and budget_ms == self.budget_ms:
            return self._over_budget / self._appended
        raise ValueError(
            f"cannot answer over-budget fraction for budget {budget_ms!r} ms: "
            f"{self.dropped} records were evicted and the ring tracks "
            f"budget {self.budget_ms!r} ms incrementally"
        )
