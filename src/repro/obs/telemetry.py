"""The run-scoped telemetry hub: structured spans and events in virtual time.

One :class:`Telemetry` instance per run collects *causal* observability data
— tick and cluster-round spans, FaaS invocations (per attempt), player
migrations, shard kills and recoveries, degradation sheds, terrain requests —
each stamped with the simulation's **virtual** clock.  Because every value a
span carries is virtual-time data, two same-seed runs record byte-identical
traces; wall-clock profiling (see :mod:`repro.obs.profiling`) is opt-in and
kept strictly separate so it can never leak into the deterministic record.

The hub is designed to cost ~nothing when disabled: the engine carries a
shared :data:`NULL_TELEMETRY` null object whose ``enabled`` attribute is
``False``, and every instrumentation site is gated on exactly that one
attribute check::

    tel = self.engine.telemetry
    if tel.enabled:
        tel.span("tick", "tick", start_ms=..., duration_ms=..., track=...)

so a run without telemetry executes the same instruction stream it did before
the hooks existed (one attribute load and a failed branch per site).

This module deliberately imports nothing from the rest of the package so the
simulation engine can depend on it without cycles.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Mapping, Optional

from repro.obs.profiling import WallClockProfiler

#: span/event categories the built-in instrumentation emits (extensible —
#: the trace format carries arbitrary categories; these are the known ones)
KNOWN_CATEGORIES = (
    "tick",        # one GameServer tick (per shard, for clusters)
    "round",       # one cluster lockstep round
    "faas",        # one FaaS invocation attempt
    "migration",   # one cross-shard player handoff
    "fault",       # one injected fault / recovery event (FaultTimeline view)
    "terrain",     # one serverless terrain request (submit -> reply)
)

#: the Chrome trace-event phases the hub records ("X" = complete span,
#: "i" = instant event); exporters add "M" metadata events on top
SPAN_PHASE = "X"
INSTANT_PHASE = "i"


@dataclass(frozen=True)
class TraceEvent:
    """One recorded span or instant event, entirely in virtual time."""

    #: Chrome trace-event phase: "X" (complete span) or "i" (instant)
    phase: str
    #: subsystem category (see :data:`KNOWN_CATEGORIES`)
    category: str
    #: event name (e.g. "tick", the FaaS function name, the fault kind)
    name: str
    #: logical track the event renders on (shard name, "faas", "terrain", ...)
    track: str
    #: virtual start time, ms
    ts_ms: float
    #: virtual duration, ms (0 for instants)
    dur_ms: float = 0.0
    #: structured payload; values must be virtual-time data (no wall clock)
    args: Optional[Mapping[str, Any]] = None

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "ph": self.phase,
            "cat": self.category,
            "name": self.name,
            "track": self.track,
            "ts_ms": self.ts_ms,
        }
        if self.phase == SPAN_PHASE:
            out["dur_ms"] = self.dur_ms
        if self.args:
            out["args"] = {key: self.args[key] for key in sorted(self.args)}
        return out


class NullTelemetry:
    """The disabled hub: every operation is a no-op.

    Shared as :data:`NULL_TELEMETRY` and attached to every
    :class:`~repro.sim.engine.SimulationEngine` by default, so
    instrumentation sites never need a None check — only the single
    ``enabled`` attribute test.
    """

    enabled: bool = False
    #: wall-clock profiler, None unless profiling was opted into
    profiler: Optional[WallClockProfiler] = None

    def span(
        self,
        category: str,
        name: str,
        *,
        start_ms: float,
        duration_ms: float,
        track: str = "run",
        args: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Record a completed virtual-time span (no-op when disabled)."""

    def instant(
        self,
        category: str,
        name: str,
        *,
        track: str = "run",
        ts_ms: Optional[float] = None,
        args: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Record an instant event (no-op when disabled)."""

    def profile(self, section: str):
        """A wall-clock profiling context for ``section`` (no-op without one)."""
        return nullcontext()


#: the process-wide disabled hub (stateless, so sharing one instance is safe)
NULL_TELEMETRY = NullTelemetry()


class Telemetry(NullTelemetry):
    """The enabled hub: appends events to an in-memory, ordered record.

    Recording order is the simulation's execution order, which is itself
    deterministic, so the full event list — and any serialization of it — is
    reproducible from the seed.
    """

    enabled = True

    def __init__(self, engine: Any = None, profile: bool = False) -> None:
        #: the engine whose virtual clock stamps instants recorded without an
        #: explicit timestamp (duck-typed: anything with ``now_ms``)
        self.engine = engine
        self.events: list[TraceEvent] = []
        self.profiler = WallClockProfiler() if profile else None

    # -- recording ------------------------------------------------------------------

    def span(
        self,
        category: str,
        name: str,
        *,
        start_ms: float,
        duration_ms: float,
        track: str = "run",
        args: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.events.append(
            TraceEvent(
                phase=SPAN_PHASE,
                category=category,
                name=name,
                track=track,
                ts_ms=float(start_ms),
                dur_ms=float(duration_ms),
                args=args,
            )
        )

    def instant(
        self,
        category: str,
        name: str,
        *,
        track: str = "run",
        ts_ms: Optional[float] = None,
        args: Optional[Mapping[str, Any]] = None,
    ) -> None:
        if ts_ms is None:
            if self.engine is None:
                raise ValueError("instant() without ts_ms requires an engine")
            ts_ms = self.engine.now_ms
        self.events.append(
            TraceEvent(
                phase=INSTANT_PHASE,
                category=category,
                name=name,
                track=track,
                ts_ms=float(ts_ms),
                args=args,
            )
        )

    def profile(self, section: str):
        if self.profiler is None:
            return nullcontext()
        return self.profiler.section(section)

    # -- introspection --------------------------------------------------------------

    def spans(self, category: Optional[str] = None) -> list[TraceEvent]:
        """Recorded spans, optionally filtered by category."""
        return [
            event
            for event in self.events
            if event.phase == SPAN_PHASE
            and (category is None or event.category == category)
        ]

    def instants(self, category: Optional[str] = None) -> list[TraceEvent]:
        """Recorded instant events, optionally filtered by category."""
        return [
            event
            for event in self.events
            if event.phase == INSTANT_PHASE
            and (category is None or event.category == category)
        ]

    def categories(self) -> list[str]:
        return sorted({event.category for event in self.events})

    def virtual_digest(self) -> str:
        """A stable hash of the full virtual-time record.

        Wall-clock data lives only in :attr:`profiler`, never in
        :attr:`events`, so the digest is reproducible from the seed even for
        profiled runs.
        """
        import hashlib

        hasher = hashlib.sha256()
        for event in self.events:
            hasher.update(repr(event.to_dict()).encode("utf-8"))
            hasher.update(b";")
        return hasher.hexdigest()

    def __len__(self) -> int:
        return len(self.events)


@dataclass(frozen=True)
class TelemetryConfig:
    """The validated, losslessly round-tripping ``telemetry`` spec section."""

    KEYS = frozenset({"enabled", "profile", "trace_path", "metrics_path"})

    #: record spans/events (the section being present defaults this to True)
    enabled: bool = True
    #: also accumulate opt-in wall-clock profiling counters
    profile: bool = False
    #: write a Chrome trace-event JSON (Perfetto-loadable) here after the run
    trace_path: Optional[str] = None
    #: write a Prometheus-style text dump of the metric registry here
    metrics_path: Optional[str] = None

    def __post_init__(self) -> None:
        for flag, value in (("enabled", self.enabled), ("profile", self.profile)):
            if not isinstance(value, bool):
                raise ValueError(f"telemetry.{flag} must be a boolean, got {value!r}")
        for key, value in (
            ("trace_path", self.trace_path),
            ("metrics_path", self.metrics_path),
        ):
            if value is not None and (not isinstance(value, str) or not value):
                raise ValueError(
                    f"telemetry.{key} must be a non-empty string path, got {value!r}"
                )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TelemetryConfig":
        if not isinstance(data, Mapping):
            raise ValueError(
                f"telemetry must be a mapping, got {type(data).__name__}"
            )
        unknown = sorted(set(data) - cls.KEYS)
        if unknown:
            raise ValueError(
                f"unknown telemetry key(s) {unknown}; allowed keys: {sorted(cls.KEYS)}"
            )
        return cls(
            enabled=data.get("enabled", True),
            profile=data.get("profile", False),
            trace_path=data.get("trace_path"),
            metrics_path=data.get("metrics_path"),
        )

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"enabled": self.enabled}
        if self.profile:
            out["profile"] = True
        if self.trace_path is not None:
            out["trace_path"] = self.trace_path
        if self.metrics_path is not None:
            out["metrics_path"] = self.metrics_path
        return out


def install_telemetry(engine: Any, config: Optional[TelemetryConfig] = None):
    """Attach a telemetry hub to ``engine`` per ``config``.

    Returns the installed :class:`Telemetry`, or :data:`NULL_TELEMETRY` when
    the config is absent or disabled — in which case the engine is left with
    the null hub and the run is bit-identical to an uninstrumented one.
    """
    if config is None or not config.enabled:
        engine.telemetry = NULL_TELEMETRY
        return NULL_TELEMETRY
    hub = Telemetry(engine, profile=config.profile)
    engine.telemetry = hub
    return hub
