"""Trace loading, schema validation, and the Table-I-style breakdown report.

``repro report <trace.json>`` reads a Chrome trace written by
:mod:`repro.obs.export`, validates it against the trace-event schema subset
the exporters emit, and prints a per-subsystem breakdown — where the run's
virtual time went, by span category — in the spirit of the paper's Table I
service overview.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Optional

#: phases a valid exported trace may contain
_VALID_PHASES = ("X", "i", "M")


def load_trace(path: str) -> dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        trace = json.load(handle)
    if not isinstance(trace, dict):
        raise ValueError(f"{path}: a Chrome trace must be a JSON object")
    return trace


def validate_chrome_trace(trace: Any) -> list[str]:
    """Validate the trace-event schema subset we emit; returns problem strings.

    An empty list means the trace is loadable by ``chrome://tracing`` and
    Perfetto: ``traceEvents`` is a list of events with the phase-appropriate
    required fields, numeric non-negative timestamps/durations, and integer
    pid/tid.
    """
    problems: list[str] = []
    if not isinstance(trace, dict):
        return [f"trace must be a JSON object, got {type(trace).__name__}"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["trace.traceEvents must be a list"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _VALID_PHASES:
            problems.append(f"{where}: invalid phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing or empty name")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: {key} must be an integer")
        if phase == "M":
            if not isinstance(event.get("args"), dict):
                problems.append(f"{where}: metadata event without args")
            continue
        if not isinstance(event.get("cat"), str) or not event["cat"]:
            problems.append(f"{where}: missing category")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or not math.isfinite(ts) or ts < 0:
            problems.append(f"{where}: ts must be a finite non-negative number")
        if phase == "X":
            dur = event.get("dur")
            if (
                not isinstance(dur, (int, float))
                or isinstance(dur, bool)
                or not math.isfinite(dur)
                or dur < 0
            ):
                problems.append(f"{where}: dur must be a finite non-negative number")
        elif phase == "i":
            if event.get("s") not in ("t", "p", "g"):
                problems.append(f"{where}: instant event scope must be t/p/g")
    return problems


@dataclass(frozen=True)
class CategoryBreakdown:
    """Aggregated spans of one category (one subsystem row of the report)."""

    category: str
    count: int
    total_ms: float
    mean_ms: float
    max_ms: float
    p95_ms: float
    #: this category's fraction of all span time in the trace
    share: float


def _p95(sorted_values: list[float]) -> float:
    # Nearest-rank p95 — self-contained so the report needs no numpy.
    rank = max(0, math.ceil(0.95 * len(sorted_values)) - 1)
    return sorted_values[rank]


def trace_breakdown(
    trace: dict[str, Any],
) -> tuple[list[CategoryBreakdown], dict[str, int]]:
    """Aggregate a validated trace into per-category span stats + instant counts.

    Returns ``(span_rows, instant_counts)``: one row per span category sorted
    by descending total virtual time, and a ``{category: count}`` map of the
    instant events (faults, fallbacks).  Durations come back in virtual ms
    (the export stores microseconds).
    """
    durations: dict[str, list[float]] = {}
    instants: dict[str, int] = {}
    for event in trace.get("traceEvents", []):
        phase = event.get("ph")
        if phase == "X":
            durations.setdefault(event["cat"], []).append(event["dur"] / 1000.0)
        elif phase == "i":
            instants[event["cat"]] = instants.get(event["cat"], 0) + 1
    grand_total = sum(sum(values) for values in durations.values())
    rows = []
    for category in sorted(durations):
        values = sorted(durations[category])
        total = sum(values)
        rows.append(
            CategoryBreakdown(
                category=category,
                count=len(values),
                total_ms=total,
                mean_ms=total / len(values),
                max_ms=values[-1],
                p95_ms=_p95(values),
                share=(total / grand_total) if grand_total > 0 else 0.0,
            )
        )
    rows.sort(key=lambda row: (-row.total_ms, row.category))
    return rows, instants


def _render_table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * width for width in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_trace_report(trace: dict[str, Any], source: Optional[str] = None) -> str:
    """The printable per-subsystem report for one loaded trace."""
    spans, instants = trace_breakdown(trace)
    out: list[str] = []
    if source:
        out.append(f"trace: {source}")
    event_total = len(trace.get("traceEvents", []))
    out.append(f"events: {event_total} (virtual-time clock)")
    out.append("")
    out.append("per-subsystem span breakdown (virtual ms):")
    rows = [
        [
            row.category,
            str(row.count),
            f"{row.total_ms:.1f}",
            f"{row.mean_ms:.3f}",
            f"{row.p95_ms:.3f}",
            f"{row.max_ms:.3f}",
            f"{100.0 * row.share:.1f}%",
        ]
        for row in spans
    ]
    out.append(
        _render_table(
            ["category", "count", "total", "mean", "p95", "max", "share"], rows
        )
    )
    if instants:
        out.append("")
        out.append("instant events:")
        out.append(
            _render_table(
                ["category", "count"],
                [[category, str(count)] for category, count in sorted(instants.items())],
            )
        )
    profile = trace.get("wallProfile")
    if profile:
        out.append("")
        out.append("wall-clock profile (opt-in, NOT part of virtual results):")
        out.append(
            _render_table(
                ["section", "calls", "wall_s"],
                [
                    [name, str(int(stats["calls"])), f"{stats['wall_s']:.4f}"]
                    for name, stats in sorted(profile.items())
                ],
            )
        )
    return "\n".join(out)
