"""The 20 Hz game loop.

Each tick the server processes client messages, updates chunk management,
advances construct simulation through the configured backend, and records the
tick's virtual duration (from the cost model) in the engine's metrics.  The
virtual clock then advances by ``max(tick interval, tick duration)``: a server
that blows its 50 ms budget starts the next tick late, exactly like a real
game server under overload.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a runtime cycle
    from repro.cluster.parallel import ShardRoundExecutor

from repro.constructs.circuit import SimulatedConstruct
from repro.interest import InterestMap
from repro.net.message import Message, MessageKind
from repro.obs.records import RecordRing
from repro.server.chunkmanager import ChunkManager, ChunkTickReport, OwnershipRegion
from repro.server.config import GameConfig
from repro.server.costmodel import TickCostModel, TickWork
from repro.server.entities import Avatar
from repro.server.sc_engine import ConstructBackend, ConstructTickPlan
from repro.server.session import (
    BroadcastClock,
    PlayerSession,
    restore_avatar_state,
    snapshot_session,
)
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import (
    CONSISTENCY_ERROR_HISTOGRAM,
    CONSISTENCY_ERROR_SERIES,
    metric_name,
)
from repro.storage.base import StorageBackend, StorageOperation
from repro.world.block import BlockType
from repro.world.coords import BlockPos, ChunkPos, block_to_chunk
from repro.world.world import ChunkNotLoadedError, VoxelWorld


class ServerRuntime:
    """Base class for backend-specific runtime handles attached to a server.

    A server variant that wires extra services into the game server (e.g.
    Servo's serverless platform) attaches a typed handle here so experiments
    can inspect those services without resorting to dynamic attributes.
    """


@dataclass(frozen=True)
class TickRecord:
    """Summary of one executed tick."""

    index: int
    start_ms: float
    duration_ms: float
    players: int
    constructs: int
    chunks_integrated: int
    view_range_blocks: float


@dataclass
class TickInProgress:
    """A tick split at the construct-batch boundary (see ``tick_begin``).

    Holds everything ``tick_finish`` needs to complete the tick once the
    construct plan's pure batch has been stepped — by the server itself, or
    by a cluster coordinator's round executor.
    """

    start_ms: float
    work: TickWork
    chunk_report: ChunkTickReport
    construct_plan: ConstructTickPlan


class TickLoop:
    """Run-loop helpers shared by single servers and cluster coordinators.

    Subclasses provide ``tick()``, an ``engine`` and an append-only
    ``tick_records`` store (a :class:`~repro.obs.records.RecordRing`, list-
    compatible and optionally capped); the helpers drive ticks and invoke the
    optional ``before_tick(host, tick_index)`` workload callback before each
    one.
    """

    engine: SimulationEngine
    tick_records: RecordRing

    def tick(self) -> TickRecord:
        raise NotImplementedError

    def run_ticks(
        self, count: int, before_tick: Optional[Callable[["TickLoop", int], None]] = None
    ) -> list[TickRecord]:
        """Run ``count`` ticks, invoking ``before_tick(host, tick_index)`` first."""
        records = []
        for _ in range(int(count)):
            if before_tick is not None:
                before_tick(self, len(self.tick_records))
            records.append(self.tick())
        return records

    def run_for_seconds(
        self, seconds: float, before_tick: Optional[Callable[["TickLoop", int], None]] = None
    ) -> list[TickRecord]:
        """Run ticks until ``seconds`` of virtual time have elapsed."""
        deadline_ms = self.engine.now_ms + seconds * 1000.0
        records = []
        while self.engine.now_ms < deadline_ms:
            if before_tick is not None:
                before_tick(self, len(self.tick_records))
            records.append(self.tick())
        return records


@dataclass
class ServerStatistics:
    """Aggregate counters maintained across the server's lifetime."""

    ticks_executed: int = 0
    messages_processed: int = 0
    blocks_placed: int = 0
    blocks_broken: int = 0
    players_connected_total: int = 0


class GameServer(TickLoop):
    """One MVE server instance (one virtual world)."""

    def __init__(
        self,
        engine: SimulationEngine,
        config: GameConfig,
        world: VoxelWorld,
        chunk_manager: ChunkManager,
        construct_backend: ConstructBackend,
        cost_model: TickCostModel,
        storage: Optional[StorageBackend] = None,
        name: str = "server",
        runtime: Optional[ServerRuntime] = None,
        region: Optional[OwnershipRegion] = None,
        player_ids: Optional[Iterator[int]] = None,
        executor: Optional["ShardRoundExecutor"] = None,
        interest: Optional[InterestMap] = None,
    ) -> None:
        self.engine = engine
        self.config = config
        self.world = world
        self.chunks = chunk_manager
        self.constructs = construct_backend
        self.cost_model = cost_model
        self.storage = storage
        self.name = name
        #: steps this server's construct batches when set (``--workers`` knob);
        #: cluster shards leave this None — the coordinator's executor is used
        self.executor = executor
        #: typed handle to backend-specific services (e.g. ServoRuntime)
        self.runtime = runtime
        #: ownership region when this server is one shard of a cluster
        self.region = region
        self.sessions: dict[int, PlayerSession] = {}
        self.stats = ServerStatistics()
        self.tick_index = 0
        # Cluster shards share one id iterator so player ids are world-unique.
        self._player_ids = player_ids if player_ids is not None else itertools.count(1)
        self._rng = engine.rng(f"server:{name}")
        self._construct_cells: dict[BlockPos, int] = {}
        #: cell positions per construct, so removal is O(cells of that construct)
        self._construct_positions: dict[int, list[BlockPos]] = {}
        self._construct_pins: dict[int, list[ChunkPos]] = {}
        #: lazily rebuilt position -> construct id map covering cells and their
        #: 6-neighbour halo (the block-edit hot path probes it once per edit)
        self._edit_lookup: Optional[dict[BlockPos, int]] = None
        #: insertion-ordered ids of sessions with queued messages; sessions
        #: register themselves on their first enqueue, so the tick only
        #: touches players that actually sent something
        self._pending_messages: dict[int, None] = {}
        #: advanced once per tick; sessions derive updates_sent from it
        #: (legacy broadcast only — interest mode counts actual flushes)
        self._broadcast_clock = BroadcastClock()
        #: area-of-interest routing table; None = legacy observe-everything
        self.interest = interest
        if self.interest is None and config.interest_enabled:
            self.interest = InterestMap(
                radius_chunks=config.interest_radius_chunks,
                near_radius_chunks=config.interest_near_radius_chunks,
                max_staleness_ticks=config.interest_max_staleness_ticks,
                max_drift_blocks=config.interest_max_drift_blocks,
            )
        if self.interest is not None:
            # Subscription centers ride the chunk manager's existing
            # boundary-crossing detection.
            chunk_manager.center_listeners.append(self.interest.update_center)
        #: the most recent tick's flush report (None in legacy mode)
        self.last_interest_flush = None
        self._last_persist_ms = 0.0
        #: hooks called at the start of every tick (used by Servo services)
        self.pre_tick_hooks: list[Callable[[int], None]] = []
        self.tick_records = RecordRing(
            cap=config.tick_record_cap,
            duration_of="duration_ms",
            budget_ms=config.tick_interval_ms,
        )
        #: lossy client-message channel, set when a fault plan has net faults
        self.message_channel = None
        #: graceful-degradation controller, set when a fault plan enables it
        self.degradation = None
        #: the run's fault injector (timeline access), set when faults install
        self.fault_injector = None

    @property
    def servo(self) -> Optional[ServerRuntime]:
        """Backward-compatible alias for the typed :attr:`runtime` handle."""
        return self.runtime

    # -- player lifecycle -----------------------------------------------------------

    def connect_player(
        self,
        name: str | None = None,
        position: BlockPos | None = None,
        player_id: int | None = None,
        restore: bool = True,
    ) -> PlayerSession:
        """Connect a player, restoring persisted state when it exists.

        ``position`` overrides both the spawn position and any stored
        position (a migration hands the avatar over at its live position);
        ``player_id`` lets a cluster coordinator preserve a player's id across
        a shard handoff; ``restore=False`` skips the storage lookup entirely
        (the coordinator applies the authoritative migrated state itself, so
        a stale shard-local read would only pollute the load metrics).
        """
        if player_id is not None:
            player_id = int(player_id)
            if player_id in self.sessions:
                raise ValueError(f"player id {player_id} is already connected")
        else:
            player_id = next(self._player_ids)
            # Skip ids taken by explicit connects (e.g. migrated-in players).
            while player_id in self.sessions:
                player_id = next(self._player_ids)
        player_name = name or f"player-{player_id}"
        avatar = Avatar(
            player_id=player_id,
            name=player_name,
            position=position if position is not None else self.config.spawn_position,
        )
        session = PlayerSession(
            player_id=player_id,
            name=player_name,
            avatar=avatar,
            connected_at_ms=self.engine.now_ms,
        )
        if self.interest is None:
            session.attach_broadcast_clock(self._broadcast_clock)
        session.attach_pending_index(self._pending_messages)
        if self.message_channel is not None:
            session.attach_channel(self.message_channel)
        self.sessions[player_id] = session
        self.stats.players_connected_total += 1
        if self.interest is not None:
            self.interest.subscribe(session)
            # The arrival itself is a visible state change for nearby players.
            self.interest.note_dirty(
                self.interest.chunk_of(avatar.position), source_player_id=player_id
            )
        if self.storage is not None and restore:
            # Player data is loaded from persistent storage on connect (Figure 3).
            key = f"player_{player_name}"
            if self.storage.exists(key):
                operation = self.storage.read(key)
                self.engine.metrics.histogram("player_load_ms").record(operation.latency_ms)
                session.restore_latency_ms = operation.latency_ms
                restore_avatar_state(
                    avatar, operation.data or b"", restore_position=position is None
                )
            else:
                self.storage.write(key, snapshot_session(session))
        return session

    def disconnect_player(self, player_id: int, persist: bool = True) -> Optional[StorageOperation]:
        """Disconnect a player, persisting their state (unless ``persist=False``).

        Returns the storage write that saved the player's state, or ``None``
        when the server has no storage or persistence was skipped (a cluster
        migration serializes the state through the shared session store
        instead).
        """
        session = self.sessions.pop(player_id, None)
        if session is None:
            raise KeyError(f"no connected player with id {player_id}")
        session.disconnected = True
        session.detach_broadcast_clock()
        if self.interest is not None:
            self.interest.unsubscribe(player_id)
            self.interest.note_dirty(
                self.interest.chunk_of(session.avatar.position),
                source_player_id=player_id,
            )
        self._pending_messages.pop(player_id, None)
        operation = None
        if persist and self.storage is not None:
            operation = self.storage.write(f"player_{session.name}", snapshot_session(session))
            self.engine.metrics.histogram("player_save_ms").record(operation.latency_ms)
        self.chunks.forget_player(player_id)
        return operation

    @property
    def player_count(self) -> int:
        return len(self.sessions)

    # -- constructs -------------------------------------------------------------------

    def place_construct(self, construct: SimulatedConstruct) -> None:
        """Place a player-built construct into the world and register it."""
        self.constructs.register_construct(construct)
        positions = []
        for cell in construct.cells:
            self._construct_cells[cell.position] = construct.construct_id
            positions.append(cell.position)
            if self.world.block_loaded(cell.position):
                self.world.set_block(cell.position, cell.block_type)
        self._construct_positions[construct.construct_id] = positions
        self._edit_lookup = None
        # Construct areas stay loaded so their simulation never pauses mid-experiment.
        pins = sorted({block_to_chunk(pos) for pos in positions})
        self._construct_pins[construct.construct_id] = pins
        self.chunks.protect(pins)

    def remove_construct(self, construct_id: int) -> None:
        self.constructs.remove_construct(construct_id)
        cells = self._construct_cells
        for position in self._construct_positions.pop(construct_id, []):
            # A later overlapping construct may have claimed this position;
            # only drop cells this construct still owns.
            if cells.get(position) == construct_id:
                del cells[position]
        self._edit_lookup = None
        # Release the eviction pins place_construct took for this construct.
        self.chunks.unprotect(self._construct_pins.pop(construct_id, []))

    @property
    def construct_count(self) -> int:
        return len(self.constructs.constructs())

    # -- message processing --------------------------------------------------------------

    def _process_message(self, session: PlayerSession, message: Message) -> None:
        avatar = session.avatar
        kind = message.kind
        if kind is MessageKind.MOVE:
            target = BlockPos(
                int(message.payload["x"]), int(message.payload["y"]), int(message.payload["z"])
            )
            distance = avatar.move_to(target)
            if self.interest is not None:
                self.interest.note_dirty(
                    self.interest.chunk_of(target),
                    drift=distance,
                    source_player_id=avatar.player_id,
                )
        elif kind is MessageKind.PLACE_BLOCK:
            target = BlockPos(
                int(message.payload["x"]), int(message.payload["y"]), int(message.payload["z"])
            )
            block = BlockType(int(message.payload.get("block", int(BlockType.STONE))))
            try:
                self.world.set_block(target, block)
                avatar.blocks_placed += 1
                self.stats.blocks_placed += 1
            except ChunkNotLoadedError:
                pass  # placing into unloaded terrain is ignored, as in the real games
            self._notify_construct_edit(target)
            self._notify_interest_edit(target, avatar.player_id)
        elif kind is MessageKind.BREAK_BLOCK:
            target = BlockPos(
                int(message.payload["x"]), int(message.payload["y"]), int(message.payload["z"])
            )
            try:
                self.world.set_block(target, BlockType.AIR)
                avatar.blocks_broken += 1
                self.stats.blocks_broken += 1
            except ChunkNotLoadedError:
                pass
            self._notify_construct_edit(target)
            self._notify_interest_edit(target, avatar.player_id)
        elif kind is MessageKind.CHAT:
            avatar.chat_messages_sent += 1
        elif kind is MessageKind.SET_INVENTORY:
            avatar.inventory_item = str(message.payload.get("item", "stone"))
        elif kind is MessageKind.TOGGLE_CONSTRUCT:
            target = BlockPos(
                int(message.payload["x"]), int(message.payload["y"]), int(message.payload["z"])
            )
            self._notify_construct_edit(target)
            self._notify_interest_edit(target, avatar.player_id)
        elif kind is MessageKind.IDLE:
            pass
        else:  # pragma: no cover - defensive
            raise ValueError(f"unhandled message kind {kind!r}")

    def _build_edit_lookup(self) -> dict[BlockPos, int]:
        """Precompute the construct hit by an edit at any sensitive position.

        Covers every construct cell (mapped to its owner) plus the cells'
        6-neighbour halo: a halo position maps to the construct the original
        probe order (``position.neighbours()``, first hit wins) would find.
        Rebuilt only when a construct is placed or removed; the block-edit
        hot path then costs one dict probe instead of up to 7.
        """
        cells = self._construct_cells
        lookup: dict[BlockPos, int] = {}
        for cell_position in cells:
            for halo in cell_position.neighbours():
                if halo in cells or halo in lookup:
                    continue
                for probe in halo.neighbours():
                    owner = cells.get(probe)
                    if owner is not None:
                        lookup[halo] = owner
                        break
        lookup.update(cells)
        return lookup

    def _notify_construct_edit(self, position: BlockPos) -> None:
        """Tell the construct backend that a player touched a construct (or nearby).

        Edits adjacent to a construct also invalidate its speculation.
        """
        lookup = self._edit_lookup
        if lookup is None:
            lookup = self._edit_lookup = self._build_edit_lookup()
        construct_id = lookup.get(position)
        if construct_id is not None:
            self.constructs.on_player_modify(construct_id, position)

    def _notify_interest_edit(self, position: BlockPos, player_id: int) -> None:
        """Mark a block edit dirty for interest routing (no-op in legacy mode)."""
        if self.interest is not None:
            self.interest.note_dirty(
                self.interest.chunk_of(position),
                drift=1.0,
                source_player_id=player_id,
            )

    # -- the tick -------------------------------------------------------------------------

    def tick_begin(self) -> TickInProgress:
        """Run the first half of a tick, up to the construct batch.

        Everything that interacts with shared simulation services (hooks,
        client messages, chunk management, construct phase 1) runs here, in
        place; what remains in the returned progress is the construct plan's
        *pure* batch, which the caller may step anywhere before handing the
        flags to :meth:`tick_finish`.
        """
        start_ms = self.engine.now_ms
        work = TickWork(players=self.player_count)

        for hook in self.pre_tick_hooks:
            hook(self.tick_index)

        # 1. Process queued client messages.  Only sessions in the pending
        # index are drained (idle players cost one membership probe), and the
        # whole section is skipped when nothing arrived.  Iteration stays in
        # sessions-dict order so cross-player processing order is exactly the
        # pre-index behaviour.
        pending = self._pending_messages
        if pending:
            for player_id, session in self.sessions.items():
                if player_id not in pending:
                    continue
                for message in session.drain():
                    self._process_message(session, message)
                    work.actions += 1
                    self.stats.messages_processed += 1

        # 2. Chunk management.
        chunk_report = self.chunks.update([session.avatar for session in self.sessions.values()])
        work.chunks_integrated = chunk_report.chunks_integrated
        work.local_generations_completed = chunk_report.local_generations_completed
        work.generation_backlog = chunk_report.generation_backlog
        work.chunks_streamed = chunk_report.chunks_streamed
        work.loaded_chunks = self.world.loaded_chunk_count

        # 3a. Construct simulation, up to the pure batch step.
        construct_plan = self.constructs.begin_tick(self.tick_index)
        return TickInProgress(
            start_ms=start_ms,
            work=work,
            chunk_report=chunk_report,
            construct_plan=construct_plan,
        )

    def tick_finish(
        self,
        progress: TickInProgress,
        fixed_points: Optional[list[bool]] = None,
        advance_clock: bool = True,
    ) -> TickRecord:
        """Complete a tick started by :meth:`tick_begin`.

        ``fixed_points`` are the construct batch's per-circuit fixed-point
        flags when the caller stepped the batch itself (a cluster round);
        ``None`` steps the batch inline.
        """
        start_ms = progress.start_ms
        work = progress.work
        chunk_report = progress.chunk_report
        if fixed_points is None:
            fixed_points = progress.construct_plan.step_inline()

        # 3b. Construct bookkeeping after the batch step.
        construct_report = progress.construct_plan.finish(fixed_points)
        work.constructs_total = construct_report.total_constructs
        work.constructs_simulated_locally = construct_report.simulated_locally
        work.constructs_merged = construct_report.merged_speculative
        work.construct_tick = construct_report.construct_tick

        # 4. Broadcast state updates.  Legacy mode advances the shared clock
        # (one update per player per tick, accounted by the cost model's
        # per-player term); interest mode routes dirty chunks through the
        # subscription index and flushes zoned delta batches instead.
        flush = None
        if self.interest is None:
            self._broadcast_clock.advance()
        else:
            if construct_report.construct_tick:
                # Each construct that actually stepped produces one dirty
                # entry at its anchor chunk, visible to nearby subscribers.
                for positions in self._construct_positions.values():
                    if positions:
                        self.interest.note_dirty(self.interest.chunk_of(positions[0]))
            shed_far = (
                self.degradation.shed_flush_count if self.degradation is not None else None
            )
            flush = self.interest.flush(self.tick_index, shed_far=shed_far)
            self.last_interest_flush = flush
            work.interest_enabled = True
            work.update_entries_flushed = flush.entries_encoded
            work.update_flushes = flush.flushes
            work.update_flushes_shed = flush.flushes_shed

        # 5. Periodic persistence (off the critical path).
        if (
            self.storage is not None
            and (start_ms - self._last_persist_ms) >= self.config.persistence_interval_s * 1000.0
        ):
            self.chunks.persist_dirty()
            self._last_persist_ms = start_ms

        # 6. Account the tick's virtual duration and advance the clock.
        # Graceful degradation: when the previous tick blew the budget, shed
        # part of this tick's broadcast work before costing the tick.
        # In interest mode shedding already happened inside the flush (far
        # batches deferred), so the legacy per-player shed must stay zero.
        if self.degradation is not None and self.interest is None:
            work.broadcast_players_shed = self.degradation.shed_count(work.players)
        duration_ms = self.cost_model.duration_ms(work, self._rng)
        if self.degradation is not None:
            self.degradation.observe(duration_ms)
        metrics = self.engine.metrics
        metrics.histogram(metric_name("tick_duration_ms")).record(duration_ms)
        if self.region is not None:
            # Cluster shards share one metric registry; keep a per-shard view.
            metrics.histogram(
                metric_name("tick_duration_ms", shard=self.name)
            ).record(duration_ms)
        metrics.series("tick_duration_over_time").record(start_ms, duration_ms)
        metrics.series("view_range_over_time").record(start_ms, chunk_report.min_view_range_blocks)
        metrics.series("players_over_time").record(start_ms, self.player_count)
        if flush is not None:
            metrics.increment("interest_entries_flushed", flush.entries_encoded)
            metrics.increment("interest_flushes", flush.flushes)
            if flush.flushes_shed:
                metrics.increment("interest_flushes_shed", flush.flushes_shed)
            if flush.flushes:
                # The consistency_error metric is the proof the dyconit
                # bounds held: per-tick max staleness observed at flush.
                metrics.histogram(metric_name(CONSISTENCY_ERROR_HISTOGRAM)).record(
                    float(flush.staleness_max)
                )
                if self.region is not None:
                    metrics.histogram(
                        metric_name(CONSISTENCY_ERROR_HISTOGRAM, shard=self.name)
                    ).record(float(flush.staleness_max))
                metrics.series(CONSISTENCY_ERROR_SERIES).record(
                    start_ms, float(flush.staleness_max)
                )

        record = TickRecord(
            index=self.tick_index,
            start_ms=start_ms,
            duration_ms=duration_ms,
            players=self.player_count,
            constructs=work.constructs_total,
            chunks_integrated=work.chunks_integrated,
            view_range_blocks=chunk_report.min_view_range_blocks,
        )
        self.tick_records.append(record)
        telemetry = self.engine.telemetry
        if telemetry.enabled:
            telemetry.span(
                "tick",
                "tick",
                start_ms=start_ms,
                duration_ms=duration_ms,
                track=self.name,
                args={
                    "index": record.index,
                    "players": record.players,
                    "constructs": record.constructs,
                    "chunks_integrated": record.chunks_integrated,
                },
            )
            if flush is not None and flush.flushes:
                telemetry.instant(
                    "interest",
                    "interest.flush",
                    track=self.name,
                    ts_ms=start_ms + duration_ms,
                    args={
                        "entries": flush.entries_encoded,
                        "flushes": flush.flushes,
                        "near": flush.near_flushes,
                        "far": flush.far_flushes,
                        "shed": flush.flushes_shed,
                        "staleness_max": flush.staleness_max,
                    },
                )
        self.tick_index += 1
        self.stats.ticks_executed += 1

        # The next tick starts after the tick budget, or immediately after an
        # overlong tick (the server falls behind, it does not skip work).
        if advance_clock:
            self.engine.advance_to(start_ms + max(self.config.tick_interval_ms, duration_ms))
        return record

    def tick(self, advance_clock: bool = True) -> TickRecord:
        """Execute one simulation tick and advance the virtual clock.

        A cluster coordinator passes ``advance_clock=False`` so every shard
        ticks at the same virtual start time; the coordinator then advances
        the shared clock once by the slowest shard's duration (lockstep).
        The coordinator drives :meth:`tick_begin`/:meth:`tick_finish`
        directly instead of this method, interposing its round executor at
        the construct-batch boundary.
        """
        telemetry = self.engine.telemetry
        if telemetry.enabled and telemetry.profiler is not None:
            with telemetry.profile("server.tick"):
                return self._tick(advance_clock)
        return self._tick(advance_clock)

    def _tick(self, advance_clock: bool) -> TickRecord:
        progress = self.tick_begin()
        fixed_points = None
        if self.executor is not None:
            fixed_points = self.executor.step_circuits(progress.construct_plan.circuits)
        return self.tick_finish(progress, fixed_points, advance_clock=advance_clock)

    # -- reporting ---------------------------------------------------------------------------

    def tick_durations_ms(self) -> list[float]:
        return [record.duration_ms for record in self.tick_records]

    def fraction_of_ticks_over_budget(self, budget_ms: float = 50.0) -> float:
        if len(self.tick_records) == 0:
            raise ValueError("no ticks have been executed yet")
        # The ring answers exactly while uncapped (the default) and from its
        # incremental counter once capped runs start evicting records.
        return self.tick_records.over_budget_fraction(budget_ms)
