"""Composable assembly of game servers.

Every server variant — the Opencraft/Minecraft baselines, Servo, and the
shards of a zone-partitioned cluster — is the same :class:`GameServer` with
different services plugged in: a terrain provider, a construct backend, a
storage backend and a cost model.  :class:`ServerBuilder` is the one place
that wires those parts together, so variants differ only in which services
they register, not in construction logic.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.cluster.parallel import ShardRoundExecutor, make_executor
from repro.interest import InterestMap
from repro.server.chunkmanager import (
    ChunkManager,
    LocalTerrainProvider,
    OwnershipRegion,
    TerrainProvider,
)
from repro.server.config import GameConfig
from repro.server.costmodel import OPENCRAFT_COST_MODEL, TickCostModel
from repro.server.gameloop import GameServer, ServerRuntime
from repro.server.sc_engine import ConstructBackend, LocalConstructBackend
from repro.sim.engine import SimulationEngine
from repro.storage.base import StorageBackend
from repro.storage.local import LocalDiskStorage
from repro.world.terrain import make_terrain_generator
from repro.world.world import VoxelWorld


class ServerBuilder:
    """Fluent assembly of one :class:`GameServer` from pluggable services.

    Unset services fall back to the all-local baseline parts: local disk
    storage, a local terrain worker pool, a local construct backend and the
    Opencraft cost model.  Builders are single-use: :meth:`build` consumes the
    configuration and returns the server.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        config: GameConfig | None = None,
        name: str = "server",
    ) -> None:
        self.engine = engine
        self.config = config or GameConfig()
        self.name = name
        self._cost_model: TickCostModel = OPENCRAFT_COST_MODEL
        self._storage: Optional[StorageBackend] = None
        self._use_default_storage = True
        self._terrain_provider: Optional[TerrainProvider] = None
        self._construct_backend: Optional[ConstructBackend] = None
        self._generation_workers = 2
        self._executor: Optional[ShardRoundExecutor] = None
        self._region: Optional[OwnershipRegion] = None
        self._runtime: Optional[ServerRuntime] = None
        self._player_ids: Optional[Iterator[int]] = None
        self._interest: Optional[InterestMap] = None

    # -- services -------------------------------------------------------------------

    def with_cost_model(self, cost_model: TickCostModel) -> "ServerBuilder":
        self._cost_model = cost_model
        return self

    def with_storage(self, storage: Optional[StorageBackend]) -> "ServerBuilder":
        """Use a specific storage backend (``None`` disables persistence)."""
        self._storage = storage
        self._use_default_storage = False
        return self

    def with_terrain_provider(self, provider: TerrainProvider) -> "ServerBuilder":
        self._terrain_provider = provider
        return self

    def with_generation_workers(self, workers: int) -> "ServerBuilder":
        """Worker count for the default local terrain provider."""
        self._generation_workers = int(workers)
        return self

    def with_construct_backend(self, backend: ConstructBackend) -> "ServerBuilder":
        self._construct_backend = backend
        return self

    def with_workers(self, workers: Optional[int]) -> "ServerBuilder":
        """Host worker processes for the round executor (``None``/1 = inline).

        Wall-clock only: virtual results are bit-identical for every value
        (see :mod:`repro.cluster.parallel`).
        """
        if workers is not None:
            self._executor = make_executor(workers)
        return self

    def with_executor(self, executor: Optional[ShardRoundExecutor]) -> "ServerBuilder":
        """Use a specific round executor (cluster shards share the coordinator's)."""
        self._executor = executor
        return self

    # -- cluster / runtime ----------------------------------------------------------

    def with_region(self, region: Optional[OwnershipRegion]) -> "ServerBuilder":
        """Restrict the server to an ownership zone (cluster shards)."""
        self._region = region
        return self

    def with_runtime(self, runtime: Optional[ServerRuntime]) -> "ServerBuilder":
        """Attach a typed handle to backend-specific services."""
        self._runtime = runtime
        return self

    def with_player_ids(self, player_ids: Optional[Iterator[int]]) -> "ServerBuilder":
        """Share a player-id iterator across cluster shards."""
        self._player_ids = player_ids
        return self

    def with_interest(self, interest: Optional[InterestMap]) -> "ServerBuilder":
        """Use a pre-built area-of-interest map (tests, custom budgets).

        Without this, :meth:`build` derives one from the config's
        ``interest_radius_chunks`` knobs; a ``None`` radius keeps the legacy
        observe-everything broadcast.
        """
        self._interest = interest
        return self

    # -- assembly -------------------------------------------------------------------

    def build(self) -> GameServer:
        config = self.config
        interest = self._interest
        if interest is None and config.interest_enabled:
            interest = InterestMap(
                radius_chunks=config.interest_radius_chunks,
                near_radius_chunks=config.interest_near_radius_chunks,
                max_staleness_ticks=config.interest_max_staleness_ticks,
                max_drift_blocks=config.interest_max_drift_blocks,
            )
        generator = make_terrain_generator(config.world_type, seed=config.world_seed)
        world = VoxelWorld()
        storage = self._storage
        if storage is None and self._use_default_storage:
            storage = LocalDiskStorage(rng=self.engine.rng(f"{self.name}-disk"))
        provider = self._terrain_provider or LocalTerrainProvider(
            self.engine,
            generator,
            workers=self._generation_workers,
            executor=self._executor,
        )
        backend = self._construct_backend or LocalConstructBackend(
            interval=self._cost_model.construct_tick_interval
        )
        chunk_manager = ChunkManager(
            engine=self.engine,
            world=world,
            generator=generator,
            provider=provider,
            storage=storage,
            view_distance_blocks=config.view_distance_blocks,
            max_integrations_per_tick=config.max_chunk_integrations_per_tick,
            region=self._region,
        )
        return GameServer(
            engine=self.engine,
            config=config,
            world=world,
            chunk_manager=chunk_manager,
            construct_backend=backend,
            cost_model=self._cost_model,
            storage=storage,
            name=self.name,
            runtime=self._runtime,
            region=self._region,
            player_ids=self._player_ids,
            executor=self._executor,
            interest=interest,
        )
