"""Game server configuration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.world.coords import BlockPos


@dataclass(frozen=True)
class GameConfig:
    """Static configuration of one MVE server instance.

    Defaults follow the paper's setup: a 20 Hz simulation rate (50 ms tick
    budget) and a 128-block view distance.
    """

    #: simulation rate R in ticks per second
    simulation_rate_hz: float = 20.0
    #: player view distance in blocks (the paper's default is 128)
    view_distance_blocks: float = 128.0
    #: world type: "default" (procedural) or "flat"
    world_type: str = "default"
    #: world generation seed
    world_seed: int = 0
    #: where newly connected players spawn
    spawn_position: BlockPos = BlockPos(8, 65, 8)
    #: how often dirty terrain is written back to persistent storage
    persistence_interval_s: float = 30.0
    #: maximum number of chunks integrated into the world per tick
    max_chunk_integrations_per_tick: int = 8
    #: retain only the newest N tick/migration records (None = unbounded, the
    #: historical behaviour); run-wide summaries stay exact either way
    tick_record_cap: Optional[int] = None
    #: area-of-interest radius in chunks around each player's avatar; ``None``
    #: or 0 keeps the legacy observe-everything broadcast (bit-identical to
    #: the pre-interest behaviour)
    interest_radius_chunks: Optional[int] = None
    #: chunks within this Chebyshev distance of the subscriber's center are
    #: the *near* zone: their updates flush every tick
    interest_near_radius_chunks: int = 1
    #: dyconit staleness budget: a far-zone delta batch is flushed before any
    #: of its entries becomes older than this many ticks
    interest_max_staleness_ticks: int = 5
    #: dyconit numerical-error budget: accumulated positional drift (blocks)
    #: in a far zone that forces a flush before the staleness budget expires
    interest_max_drift_blocks: float = 8.0

    def __post_init__(self) -> None:
        if self.simulation_rate_hz <= 0:
            raise ValueError("simulation_rate_hz must be positive")
        if self.view_distance_blocks <= 0:
            raise ValueError("view_distance_blocks must be positive")
        if self.world_type not in ("default", "flat"):
            raise ValueError(f"unknown world type {self.world_type!r}")
        if self.max_chunk_integrations_per_tick < 1:
            raise ValueError("max_chunk_integrations_per_tick must be at least 1")
        if self.tick_record_cap is not None and self.tick_record_cap < 1:
            raise ValueError("tick_record_cap must be at least 1 (or None)")
        if self.interest_radius_chunks is not None and self.interest_radius_chunks < 0:
            raise ValueError("interest_radius_chunks must be non-negative (or None)")
        if self.interest_near_radius_chunks < 0:
            raise ValueError("interest_near_radius_chunks must be non-negative")
        if self.interest_enabled and (
            self.interest_near_radius_chunks > self.interest_radius_chunks
        ):
            raise ValueError(
                "interest_near_radius_chunks must not exceed interest_radius_chunks"
            )
        if self.interest_max_staleness_ticks < 1:
            raise ValueError("interest_max_staleness_ticks must be at least 1")
        if self.interest_max_drift_blocks <= 0:
            raise ValueError("interest_max_drift_blocks must be positive")

    @property
    def interest_enabled(self) -> bool:
        """True when area-of-interest broadcast is on (radius ``None``/0 = legacy)."""
        return bool(self.interest_radius_chunks)

    @property
    def tick_interval_ms(self) -> float:
        """The tick budget 1/R in milliseconds (50 ms at 20 Hz)."""
        return 1000.0 / self.simulation_rate_hz
