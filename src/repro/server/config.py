"""Game server configuration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.world.coords import BlockPos


@dataclass(frozen=True)
class GameConfig:
    """Static configuration of one MVE server instance.

    Defaults follow the paper's setup: a 20 Hz simulation rate (50 ms tick
    budget) and a 128-block view distance.
    """

    #: simulation rate R in ticks per second
    simulation_rate_hz: float = 20.0
    #: player view distance in blocks (the paper's default is 128)
    view_distance_blocks: float = 128.0
    #: world type: "default" (procedural) or "flat"
    world_type: str = "default"
    #: world generation seed
    world_seed: int = 0
    #: where newly connected players spawn
    spawn_position: BlockPos = BlockPos(8, 65, 8)
    #: how often dirty terrain is written back to persistent storage
    persistence_interval_s: float = 30.0
    #: maximum number of chunks integrated into the world per tick
    max_chunk_integrations_per_tick: int = 8
    #: retain only the newest N tick/migration records (None = unbounded, the
    #: historical behaviour); run-wide summaries stay exact either way
    tick_record_cap: Optional[int] = None

    def __post_init__(self) -> None:
        if self.simulation_rate_hz <= 0:
            raise ValueError("simulation_rate_hz must be positive")
        if self.view_distance_blocks <= 0:
            raise ValueError("view_distance_blocks must be positive")
        if self.world_type not in ("default", "flat"):
            raise ValueError(f"unknown world type {self.world_type!r}")
        if self.max_chunk_integrations_per_tick < 1:
            raise ValueError("max_chunk_integrations_per_tick must be at least 1")
        if self.tick_record_cap is not None and self.tick_record_cap < 1:
            raise ValueError("tick_record_cap must be at least 1 (or None)")

    @property
    def tick_interval_ms(self) -> float:
        """The tick budget 1/R in milliseconds (50 ms at 20 Hz)."""
        return 1000.0 / self.simulation_rate_hz
