"""Player sessions: the server-side endpoint of one connected client."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.message import Message, MessageKind
from repro.server.entities import Avatar


@dataclass
class PlayerSession:
    """One connected player: avatar plus the inbound message queue."""

    player_id: int
    name: str
    avatar: Avatar
    connected_at_ms: float
    _inbox: list[Message] = field(default_factory=list)
    #: state updates sent to this client (a proxy for outbound bandwidth)
    updates_sent: int = 0
    disconnected: bool = False

    def enqueue(self, message: Message) -> None:
        """Queue a client message for processing in the next tick."""
        if message.player_id != self.player_id:
            raise ValueError(
                f"message for player {message.player_id} enqueued on session {self.player_id}"
            )
        if self.disconnected:
            raise RuntimeError(f"session {self.player_id} is disconnected")
        self._inbox.append(message)

    def drain(self) -> list[Message]:
        """Remove and return every queued message (called once per tick)."""
        messages, self._inbox = self._inbox, []
        return messages

    @property
    def pending_messages(self) -> int:
        return len(self._inbox)

    def move(self, x: int, y: int, z: int) -> None:
        """Convenience wrapper: queue a MOVE message."""
        self.enqueue(Message(MessageKind.MOVE, self.player_id, {"x": x, "y": y, "z": z}))

    def chat(self, text: str) -> None:
        self.enqueue(Message(MessageKind.CHAT, self.player_id, {"text": text}))
