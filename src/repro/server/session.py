"""Player sessions: the server-side endpoint of one connected client.

Besides the live session object this module defines the serialized form of a
player's state: :func:`snapshot_session` turns a session into bytes suitable
for persistent storage, and :func:`restore_avatar_state` applies stored bytes
back onto a (fresh) avatar.  The same format is used for ordinary
disconnect/reconnect persistence and for cross-shard player migration in a
cluster, where the snapshot travels through the shared storage service.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from repro.net.message import Message, MessageKind
from repro.server.entities import Avatar
from repro.world.coords import BlockPos


class BroadcastClock:
    """A shared count of state-update broadcast rounds (one per server tick).

    Instead of bumping an ``updates_sent`` integer on every session every
    tick (an O(players) loop on the tick's hot path), the server advances
    this clock once per tick; each session derives its ``updates_sent`` from
    the ticks elapsed since it attached.  Sessions detach (freezing their
    count) when the player disconnects or migrates away.
    """

    __slots__ = ("ticks",)

    def __init__(self) -> None:
        self.ticks = 0

    def advance(self) -> None:
        self.ticks += 1


@dataclass
class PlayerSession:
    """One connected player: avatar plus the inbound message queue."""

    player_id: int
    name: str
    avatar: Avatar
    connected_at_ms: float
    _inbox: list[Message] = field(default_factory=list)
    disconnected: bool = False
    #: latency of the storage read that restored this session's state (0 if none)
    restore_latency_ms: float = 0.0
    #: updates accounted before/outside the attached broadcast clock
    _updates_sent_base: int = 0
    _broadcast_clock: Optional[BroadcastClock] = None
    _broadcast_attach_ticks: int = 0
    #: ordered index of player ids with queued messages, shared with the server
    _pending_index: Optional[dict[int, None]] = None
    #: lossy message channel (fault injection); None means a perfect wire
    _channel: Optional[object] = None

    # -- outbound accounting ---------------------------------------------------------

    @property
    def updates_sent(self) -> int:
        """State updates sent to this client (a proxy for outbound bandwidth)."""
        if self._broadcast_clock is None:
            return self._updates_sent_base
        return self._updates_sent_base + (
            self._broadcast_clock.ticks - self._broadcast_attach_ticks
        )

    @updates_sent.setter
    def updates_sent(self, value: int) -> None:
        if self._broadcast_clock is not None:
            self._broadcast_attach_ticks = self._broadcast_clock.ticks
        self._updates_sent_base = int(value)

    def record_updates(self, count: int = 1) -> None:
        """Account ``count`` actually-sent updates (interest-managed flushes).

        With area-of-interest broadcast the session receives delta batches,
        not one update per tick, so ``updates_sent`` is derived from the
        flushes that really happened; no broadcast clock is attached.  The
        count freezes on disconnect/migration exactly as in legacy mode —
        the base value simply stops growing.
        """
        self._updates_sent_base += int(count)

    def attach_broadcast_clock(self, clock: BroadcastClock) -> None:
        """Start deriving ``updates_sent`` from a server's broadcast clock."""
        self._broadcast_clock = clock
        self._broadcast_attach_ticks = clock.ticks

    def detach_broadcast_clock(self) -> None:
        """Freeze ``updates_sent`` at its current value (disconnect/migration)."""
        self._updates_sent_base = self.updates_sent
        self._broadcast_clock = None

    # -- inbound queue ---------------------------------------------------------------

    def attach_pending_index(self, index: dict[int, None]) -> None:
        """Register this session in a server's pending-message index."""
        self._pending_index = index
        if self._inbox:
            index[self.player_id] = None

    def attach_channel(self, channel: object) -> None:
        """Route future client messages through a (lossy) message channel."""
        self._channel = channel

    def enqueue(self, message: Message) -> None:
        """Queue a client message for processing in the next tick.

        With a fault channel attached, fresh client messages (no ``sequence``
        stamp yet) go through the channel, which may drop, duplicate or delay
        them; stamped messages — channel deliveries and server-internal
        requeues such as a migration handing over undrained messages — are
        appended directly, so they are never faulted (or deduplicated) twice.
        """
        if message.player_id != self.player_id:
            raise ValueError(
                f"message for player {message.player_id} enqueued on session {self.player_id}"
            )
        if self.disconnected:
            raise RuntimeError(f"session {self.player_id} is disconnected")
        if self._channel is not None and message.sequence is None:
            self._channel.send(self, message)
            return
        if not self._inbox and self._pending_index is not None:
            self._pending_index[self.player_id] = None
        self._inbox.append(message)

    def drain(self) -> list[Message]:
        """Remove and return every queued message (called once per tick)."""
        messages, self._inbox = self._inbox, []
        if messages and self._pending_index is not None:
            self._pending_index.pop(self.player_id, None)
        return messages

    @property
    def pending_messages(self) -> int:
        return len(self._inbox)

    def move(self, x: int, y: int, z: int) -> None:
        """Convenience wrapper: queue a MOVE message."""
        self.enqueue(Message(MessageKind.MOVE, self.player_id, {"x": x, "y": y, "z": z}))

    def chat(self, text: str) -> None:
        self.enqueue(Message(MessageKind.CHAT, self.player_id, {"text": text}))


# -- serialized player state -------------------------------------------------------


def snapshot_session(session: PlayerSession) -> bytes:
    """Serialize the persistent part of a session (the avatar's state)."""
    avatar = session.avatar
    state = {
        "name": session.name,
        "position": [avatar.position.x, avatar.position.y, avatar.position.z],
        "distance_travelled": avatar.distance_travelled,
        "inventory_item": avatar.inventory_item,
        "chat_messages_sent": avatar.chat_messages_sent,
        "blocks_placed": avatar.blocks_placed,
        "blocks_broken": avatar.blocks_broken,
    }
    return json.dumps(state, sort_keys=True).encode("utf-8")


def restore_avatar_state(avatar: Avatar, data: bytes, restore_position: bool = True) -> bool:
    """Apply a stored snapshot onto ``avatar``; returns False for unreadable data.

    ``restore_position`` is disabled when the caller already knows the
    authoritative position (e.g. a migration hands the avatar over at its live
    position, which may be newer than the stored one).
    """
    try:
        state = json.loads(data.decode("utf-8"))
        if not isinstance(state, dict):
            return False
        # Parse every field before touching the avatar, so a snapshot with a
        # corrupt field leaves the avatar untouched instead of half-restored.
        position = state.get("position")
        parsed_position = (
            BlockPos(int(position[0]), int(position[1]), int(position[2]))
            if isinstance(position, list) and len(position) == 3
            else None
        )
        distance_travelled = float(state.get("distance_travelled", avatar.distance_travelled))
        inventory_item = str(state.get("inventory_item", avatar.inventory_item))
        chat_messages_sent = int(state.get("chat_messages_sent", avatar.chat_messages_sent))
        blocks_placed = int(state.get("blocks_placed", avatar.blocks_placed))
        blocks_broken = int(state.get("blocks_broken", avatar.blocks_broken))
    except (UnicodeDecodeError, json.JSONDecodeError, TypeError, ValueError):
        return False
    if restore_position and parsed_position is not None:
        avatar.position = parsed_position
    avatar.distance_travelled = distance_travelled
    avatar.inventory_item = inventory_item
    avatar.chat_messages_sent = chat_messages_sent
    avatar.blocks_placed = blocks_placed
    avatar.blocks_broken = blocks_broken
    return True
