"""Tick cost models.

The reproduction computes the *functional* state of the world for real (block
edits, construct states, generated chunks), but the *duration* of a tick is
produced by a calibrated cost model: virtual milliseconds per unit of work
done in the tick, plus multiplicative noise and rare spikes.  This keeps the
experiments deterministic and laptop-scale while reproducing the relationships
the paper measures (tick-duration distributions as a function of players,
constructs and terrain churn).

Calibration targets (see DESIGN.md §6 and EXPERIMENTS.md):

* Opencraft supports ~200 players with no constructs, ~10 with 100 constructs,
  0 with 200 (Figure 7a), with a bimodal tick distribution because constructs
  are simulated every other tick.
* Minecraft supports ~110 players with no constructs, ~90 with 100, 0 with 200.
* Servo supports ~190 / ~150 / ~120 players for 0 / 100 / 200 constructs, with
  a narrow unimodal distribution close to Opencraft's lower mode (Figure 7b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np


@dataclass
class TickWork:
    """Everything a single tick had to do (inputs of the cost model)."""

    #: number of connected players
    players: int = 0
    #: client messages processed this tick
    actions: int = 0
    #: constructs simulated locally this tick (baseline path or Servo fallback)
    constructs_simulated_locally: int = 0
    #: constructs whose speculative state sequences were applied (Servo merge path)
    constructs_merged: int = 0
    #: total constructs registered on the server (loaded in the world)
    constructs_total: int = 0
    #: chunks integrated into the world this tick (from generation or storage)
    chunks_integrated: int = 0
    #: chunks whose generation completed on a *local* worker this tick
    local_generations_completed: int = 0
    #: chunk generations queued but not finished (local providers only)
    generation_backlog: int = 0
    #: chunks sent to clients this tick (terrain streaming)
    chunks_streamed: int = 0
    #: loaded chunks (ambient world upkeep: entities, random ticks)
    loaded_chunks: int = 0
    #: True when this tick is one of the every-N construct simulation ticks
    construct_tick: bool = False
    #: players whose state-update broadcast was shed (graceful degradation)
    broadcast_players_shed: int = 0
    #: True when the broadcast went through area-of-interest delta batches;
    #: the cost model then charges per flushed entry/batch instead of the
    #: legacy per-player full fan-out
    interest_enabled: bool = False
    #: delta entries encoded into update batches this tick (each dirty entry
    #: is serialized once and shared by every subscriber's batch)
    update_entries_flushed: int = 0
    #: per-subscriber batch sends this tick (near flushes plus due far flushes)
    update_flushes: int = 0
    #: due far-zone flushes deferred by graceful degradation this tick
    update_flushes_shed: int = 0


@dataclass(frozen=True)
class TickCostModel:
    """Turns :class:`TickWork` into a virtual tick duration in milliseconds."""

    name: str
    #: fixed per-tick cost (scheduling, bookkeeping)
    base_ms: float
    #: cost per connected player per tick (state updates, connection upkeep)
    per_player_ms: float
    #: cost per processed client message
    per_action_ms: float
    #: aggregate cost of simulating n constructs locally in one tick
    construct_cost: Callable[[int], float]
    #: constructs are simulated every N ticks (2 for the baselines => bimodal)
    construct_tick_interval: int
    #: cost of applying one construct's speculative states (Servo merge path)
    per_merge_ms: float
    #: cost of integrating one newly loaded/generated chunk into the world
    per_chunk_integration_ms: float
    #: interference of one locally completed chunk generation (same-host CPU)
    per_local_generation_ms: float
    #: interference per queued (not yet generated) chunk on local providers
    per_backlog_chunk_ms: float
    #: cap on the backlog interference per tick
    backlog_interference_cap_ms: float
    #: cost of streaming one chunk to one client
    per_chunk_streamed_ms: float
    #: ambient upkeep per loaded chunk
    per_loaded_chunk_ms: float
    #: cost of encoding one delta entry into an update batch (interest mode;
    #: encode-on-write, so an entry is charged once however many subscribers
    #: receive it)
    per_update_entry_ms: float = 0.030
    #: cost of sending one already-encoded batch to one subscriber (interest
    #: mode)
    per_update_flush_ms: float = 0.040
    #: multiplicative lognormal noise sigma
    noise_sigma: float = 0.03
    #: probability of a latency spike (GC pause and similar)
    spike_probability: float = 0.004
    #: median spike magnitude in ms
    spike_median_ms: float = 35.0

    def duration_ms(self, work: TickWork, rng: np.random.Generator) -> float:
        """The virtual duration of a tick that performed ``work``."""
        duration = self.base_ms
        if work.interest_enabled:
            # Delta-batch broadcast: each dirty entry is encoded once, each
            # subscriber receives one batch per flushed tier.  Far-zone
            # batches accumulate across ticks (dyconit staleness budgets), so
            # both terms are far below the legacy full fan-out.
            duration += self.per_update_entry_ms * work.update_entries_flushed
            duration += self.per_update_flush_ms * work.update_flushes
        else:
            duration += self.per_player_ms * (work.players - work.broadcast_players_shed)
        duration += self.per_action_ms * work.actions
        if work.constructs_simulated_locally > 0:
            duration += self.construct_cost(work.constructs_simulated_locally)
        duration += self.per_merge_ms * work.constructs_merged
        duration += self.per_chunk_integration_ms * work.chunks_integrated
        duration += self.per_local_generation_ms * work.local_generations_completed
        duration += min(
            self.per_backlog_chunk_ms * work.generation_backlog,
            self.backlog_interference_cap_ms,
        )
        duration += self.per_chunk_streamed_ms * work.chunks_streamed
        duration += self.per_loaded_chunk_ms * work.loaded_chunks
        # Multiplicative noise around the deterministic cost.
        duration *= float(rng.lognormal(mean=0.0, sigma=self.noise_sigma))
        # Rare spikes (garbage collection, page faults).
        if rng.random() < self.spike_probability:
            duration += float(rng.lognormal(mean=np.log(self.spike_median_ms), sigma=0.4))
        return float(duration)


def _opencraft_construct_cost(constructs: int) -> float:
    """Opencraft's local construct engine: mildly superlinear in construct count.

    ~0.107 * n^1.3 ms per construct-simulation tick: ~42 ms at 100 constructs,
    ~104 ms at 200, which yields the paper's ~10 supported players at 100
    constructs and 0 at 200.
    """
    return 0.1065 * constructs ** 1.3


def _minecraft_construct_cost(constructs: int) -> float:
    """Minecraft's construct engine: strongly superlinear in construct count.

    ~6.1e-5 * n^2.56 ms: ~8 ms at 100 constructs (90 players supported) but
    ~47 ms at 200 (no players supported), matching Figure 7a.
    """
    return 6.07e-5 * constructs ** 2.56


def _servo_fallback_construct_cost(constructs: int) -> float:
    """Cost of Servo's local fallback simulation (linear; only a few at a time)."""
    return 0.45 * constructs


OPENCRAFT_COST_MODEL = TickCostModel(
    name="opencraft",
    base_ms=2.0,
    per_player_ms=0.210,
    per_action_ms=0.013,
    construct_cost=_opencraft_construct_cost,
    construct_tick_interval=2,
    per_merge_ms=0.0,
    per_chunk_integration_ms=5.0,
    per_local_generation_ms=17.0,
    per_backlog_chunk_ms=0.035,
    backlog_interference_cap_ms=25.0,
    per_chunk_streamed_ms=2.2,
    per_loaded_chunk_ms=0.001,
    per_update_entry_ms=0.030,
    per_update_flush_ms=0.040,
)

MINECRAFT_COST_MODEL = TickCostModel(
    name="minecraft",
    base_ms=3.0,
    per_player_ms=0.380,
    per_action_ms=0.015,
    construct_cost=_minecraft_construct_cost,
    construct_tick_interval=2,
    per_merge_ms=0.0,
    per_chunk_integration_ms=6.0,
    per_local_generation_ms=19.0,
    per_backlog_chunk_ms=0.04,
    backlog_interference_cap_ms=28.0,
    per_chunk_streamed_ms=2.6,
    per_loaded_chunk_ms=0.0013,
    per_update_entry_ms=0.045,
    per_update_flush_ms=0.065,
)

SERVO_COST_MODEL = TickCostModel(
    name="servo",
    base_ms=2.2,
    per_player_ms=0.220,
    per_action_ms=0.014,
    construct_cost=_servo_fallback_construct_cost,
    construct_tick_interval=1,
    per_merge_ms=0.078,
    per_chunk_integration_ms=4.5,
    per_local_generation_ms=0.0,
    per_backlog_chunk_ms=0.0,
    backlog_interference_cap_ms=0.0,
    per_chunk_streamed_ms=2.2,
    per_loaded_chunk_ms=0.001,
    per_update_entry_ms=0.030,
    per_update_flush_ms=0.042,
)
