"""Construct backends: who simulates the simulated constructs.

The game loop delegates construct simulation to a pluggable backend:

* :class:`LocalConstructBackend` — the baseline behaviour of Opencraft and
  Minecraft: every construct is simulated on the server, every other tick
  (which is what makes their tick-duration distributions bimodal).
* Servo's speculative/offloading backend lives in
  :mod:`repro.core.speculative` and implements the same interface.

Backends really advance construct state (using
:class:`repro.constructs.ConstructSimulator`), so block/lamp states are
functionally correct in every variant; the *cost* of the work they report is
translated into tick time by the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constructs.circuit import SimulatedConstruct
from repro.constructs.simulator import ConstructSimulator
from repro.constructs.state import ConstructState
from repro.world.coords import BlockPos


@dataclass
class ConstructTickReport:
    """What the construct backend did during one tick."""

    total_constructs: int = 0
    simulated_locally: int = 0
    merged_speculative: int = 0
    #: constructs that advanced one step this tick (by any path)
    advanced: int = 0
    #: True if this tick was a construct-simulation tick for the backend
    construct_tick: bool = False


class ConstructBackend:
    """Interface the game loop uses to drive construct simulation."""

    def register_construct(self, construct: SimulatedConstruct) -> None:
        raise NotImplementedError

    def remove_construct(self, construct_id: int) -> None:
        raise NotImplementedError

    def constructs(self) -> list[SimulatedConstruct]:
        raise NotImplementedError

    def on_player_modify(self, construct_id: int, position: BlockPos) -> None:
        """Called when a player modifies a construct (or terrain adjacent to it)."""
        raise NotImplementedError

    def tick(self, tick_index: int) -> ConstructTickReport:
        """Advance construct simulation for one game tick."""
        raise NotImplementedError


class LocalConstructBackend(ConstructBackend):
    """Simulate every construct on the server, every ``interval`` ticks.

    Identical constructs (same structure and state) share one functional
    simulation: their state sequences are provably equal, so the backend
    simulates one representative per equivalence class and applies the result
    to all members.  The *cost* reported still counts every construct, because
    the baseline servers do the work per construct.
    """

    def __init__(self, interval: int = 2) -> None:
        if interval < 1:
            raise ValueError("construct simulation interval must be at least 1")
        self.interval = int(interval)
        self._constructs: dict[int, SimulatedConstruct] = {}
        self._simulator = ConstructSimulator()
        self._groups: list[list[int]] = []
        self._groups_dirty = True

    # -- registry -------------------------------------------------------------------

    def register_construct(self, construct: SimulatedConstruct) -> None:
        self._constructs[construct.construct_id] = construct
        self._groups_dirty = True

    def remove_construct(self, construct_id: int) -> None:
        self._constructs.pop(construct_id, None)
        self._groups_dirty = True

    def constructs(self) -> list[SimulatedConstruct]:
        return [self._constructs[key] for key in sorted(self._constructs)]

    def on_player_modify(self, construct_id: int, position: BlockPos) -> None:
        construct = self._constructs.get(construct_id)
        if construct is not None:
            construct.player_modify(position)
            self._groups_dirty = True

    # -- simulation -----------------------------------------------------------------

    def _equivalence_key(self, construct: SimulatedConstruct) -> tuple:
        anchor = construct.anchor()
        return tuple(
            (
                cell.position.x - anchor.x,
                cell.position.y - anchor.y,
                cell.position.z - anchor.z,
                cell.component.value,
                cell.state,
                tuple(sorted(cell.properties.items())),
            )
            for cell in construct.cells
        )

    def _rebuild_groups(self) -> None:
        """Group identical constructs: their state sequences are provably equal.

        Grouping is recomputed only when a construct is added, removed or
        modified by a player; members of a group evolve in lockstep otherwise.
        """
        groups: dict[tuple, list[int]] = {}
        for construct in self.constructs():
            groups.setdefault(self._equivalence_key(construct), []).append(
                construct.construct_id
            )
        self._groups = list(groups.values())
        self._groups_dirty = False

    def tick(self, tick_index: int) -> ConstructTickReport:
        report = ConstructTickReport(total_constructs=len(self._constructs))
        if tick_index % self.interval != 0:
            return report
        report.construct_tick = True
        if not self._constructs:
            return report
        if self._groups_dirty:
            self._rebuild_groups()

        for members in self._groups:
            representative = self._constructs[members[0]]
            self._simulator.step(representative)
            for construct_id in members[1:]:
                self._constructs[construct_id].copy_state_from(representative)
        report.simulated_locally = len(self._constructs)
        report.advanced = len(self._constructs)
        return report
