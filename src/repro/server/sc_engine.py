"""Construct backends: who simulates the simulated constructs.

The game loop delegates construct simulation to a pluggable backend:

* :class:`LocalConstructBackend` — the baseline behaviour of Opencraft and
  Minecraft: every construct is simulated on the server, every other tick
  (which is what makes their tick-duration distributions bimodal).
* Servo's speculative/offloading backend lives in
  :mod:`repro.core.speculative` and implements the same interface.

Backends really advance construct state (using
:class:`repro.constructs.ConstructSimulator`), so block/lamp states are
functionally correct in every variant; the *cost* of the work they report is
translated into tick time by the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.constructs.batched import BatchedCircuitStepper
from repro.constructs.circuit import SimulatedConstruct
from repro.constructs.compiled import CompiledCircuit, compile_circuit
from repro.constructs.simulator import ConstructSimulator
from repro.constructs.state import ConstructState
from repro.world.coords import BlockPos


@dataclass
class ConstructTickReport:
    """What the construct backend did during one tick.

    ``simulated_locally`` / ``merged_speculative`` report the work the
    *simulated server* performed — the cost model's inputs — so they keep
    counting quiescent constructs whose re-simulation the host skipped.
    ``skipped_quiescent`` separately reports how many of those advances were
    satisfied by the fixed-point skip (a wall-clock optimisation of the
    simulator host, invisible in virtual time).
    """

    total_constructs: int = 0
    simulated_locally: int = 0
    merged_speculative: int = 0
    #: constructs that advanced one step this tick (by any path)
    advanced: int = 0
    #: advances satisfied without re-simulation (state vector at a fixed point)
    skipped_quiescent: int = 0
    #: True if this tick was a construct-simulation tick for the backend
    construct_tick: bool = False


@dataclass
class ConstructTickPlan:
    """A backend tick split at its pure-compute boundary.

    ``circuits`` is the batch of independent compiled circuits the tick must
    advance by exactly one step — pure integer compute with no randomness, so
    a :class:`~repro.cluster.parallel.ShardRoundExecutor` may run it anywhere
    (inline, scattered over worker processes) as long as the resulting
    fixed-point flags are handed to ``finish`` in circuit order.  Everything
    that touches shared simulation state (RNG streams, metrics, speculation
    records) stays inside ``begin_tick``/``finish`` on the coordinator side.
    """

    circuits: list[CompiledCircuit]
    finish: Callable[[list[bool]], ConstructTickReport]
    #: the backend's own stepper, for inline execution outside a cluster round
    stepper: Optional[BatchedCircuitStepper] = None

    def step_inline(self) -> list[bool]:
        """Advance the plan's circuits locally (the non-cluster path)."""
        if not self.circuits:
            return []
        if self.stepper is not None:
            return self.stepper.step_batch(self.circuits)
        return [circuit.step() for circuit in self.circuits]


class ConstructBackend:
    """Interface the game loop uses to drive construct simulation."""

    def register_construct(self, construct: SimulatedConstruct) -> None:
        raise NotImplementedError

    def remove_construct(self, construct_id: int) -> None:
        raise NotImplementedError

    def constructs(self) -> list[SimulatedConstruct]:
        raise NotImplementedError

    def on_player_modify(self, construct_id: int, position: BlockPos) -> None:
        """Called when a player modifies a construct (or terrain adjacent to it)."""
        raise NotImplementedError

    def tick(self, tick_index: int) -> ConstructTickReport:
        """Advance construct simulation for one game tick."""
        raise NotImplementedError

    def begin_tick(self, tick_index: int) -> ConstructTickPlan:
        """Split the tick at its pure-compute boundary (see ConstructTickPlan).

        Backends that cannot split simply run the whole tick now and return
        an empty plan; backends with a batchable step override this so a
        cluster round can execute the batch through its executor.
        """
        report = self.tick(tick_index)
        return ConstructTickPlan(circuits=[], finish=lambda _flags: report)


class LocalConstructBackend(ConstructBackend):
    """Simulate every construct on the server, every ``interval`` ticks.

    Identical constructs (same structure and state) share one functional
    simulation: their state sequences are provably equal, so the backend
    simulates one representative per equivalence class and applies the result
    to all members.  The *cost* reported still counts every construct, because
    the baseline servers do the work per construct.
    """

    def __init__(self, interval: int = 2) -> None:
        if interval < 1:
            raise ValueError("construct simulation interval must be at least 1")
        self.interval = int(interval)
        self._constructs: dict[int, SimulatedConstruct] = {}
        self._simulator = ConstructSimulator()
        self._stepper = BatchedCircuitStepper()
        self._groups: list[list[int]] = []
        self._groups_dirty = True
        #: construct ids whose state vector reached a fixed point; they are
        #: not re-simulated until a player edit wakes them
        self._quiescent: set[int] = set()

    # -- registry -------------------------------------------------------------------

    def register_construct(self, construct: SimulatedConstruct) -> None:
        self._constructs[construct.construct_id] = construct
        # Compile eagerly: registration is the cold path, ticks are the hot one.
        compile_circuit(construct)
        # A re-used construct id (removed, then re-placed) must never inherit
        # the old construct's fixed-point status.
        self._quiescent.discard(construct.construct_id)
        self._groups_dirty = True

    def remove_construct(self, construct_id: int) -> None:
        self._constructs.pop(construct_id, None)
        self._quiescent.discard(construct_id)
        self._groups_dirty = True

    def constructs(self) -> list[SimulatedConstruct]:
        return [self._constructs[key] for key in sorted(self._constructs)]

    def on_player_modify(self, construct_id: int, position: BlockPos) -> None:
        construct = self._constructs.get(construct_id)
        if construct is not None:
            construct.player_modify(position)
            self._quiescent.discard(construct_id)
            self._groups_dirty = True

    # -- simulation -----------------------------------------------------------------

    def _equivalence_key(self, construct: SimulatedConstruct) -> tuple:
        anchor = construct.anchor()
        return tuple(
            (
                cell.position.x - anchor.x,
                cell.position.y - anchor.y,
                cell.position.z - anchor.z,
                cell.component.value,
                cell.state,
                tuple(sorted(cell.properties.items())),
            )
            for cell in construct.cells
        )

    def _rebuild_groups(self) -> None:
        """Group identical constructs: their state sequences are provably equal.

        Grouping is recomputed only when a construct is added, removed or
        modified by a player; members of a group evolve in lockstep otherwise.
        """
        groups: dict[tuple, list[int]] = {}
        for construct in self.constructs():
            groups.setdefault(self._equivalence_key(construct), []).append(
                construct.construct_id
            )
        self._groups = list(groups.values())
        self._groups_dirty = False
        # Representatives may have changed; re-detect fixed points from scratch
        # (costs one extra simulated step per group, only after a change).
        self._quiescent.clear()

    def begin_tick(self, tick_index: int) -> ConstructTickPlan:
        """Phase 1 of the tick: quiescent skips and batch collection.

        Returns the active representatives' circuits as the plan's pure
        batch; ``finish`` applies the fixed-point flags and propagates the
        representatives' states to their group members.
        """
        report = ConstructTickReport(total_constructs=len(self._constructs))
        if tick_index % self.interval != 0 or not self._constructs:
            report.construct_tick = tick_index % self.interval == 0
            return ConstructTickPlan(circuits=[], finish=lambda _flags: report)
        report.construct_tick = True
        if self._groups_dirty:
            self._rebuild_groups()

        constructs = self._constructs
        quiescent = self._quiescent
        active_groups: list[list[int]] = []
        for members in self._groups:
            if members[0] in quiescent:
                # Fixed point: the states are provably what re-simulation
                # would produce, so only the step counters advance.
                representative = constructs[members[0]]
                representative.step += 1
                for construct_id in members[1:]:
                    constructs[construct_id].step = representative.step
                report.skipped_quiescent += len(members)
            else:
                active_groups.append(members)
        # One vectorised step for every active representative; groups are
        # independent, so batching them is equivalent to stepping in order.
        circuits = [
            compile_circuit(constructs[members[0]]) for members in active_groups
        ]

        def finish(fixed_points: list[bool]) -> ConstructTickReport:
            for members, fixed_point in zip(active_groups, fixed_points):
                if fixed_point:
                    quiescent.add(members[0])
                representative = constructs[members[0]]
                for construct_id in members[1:]:
                    constructs[construct_id].copy_state_from(representative)
            # The simulated baseline server does this work for every
            # construct; the cost model must keep seeing it (virtual time is
            # unchanged by the host-side skip).
            report.simulated_locally = len(constructs)
            report.advanced = len(constructs)
            return report

        return ConstructTickPlan(circuits=circuits, finish=finish, stepper=self._stepper)

    def tick(self, tick_index: int) -> ConstructTickReport:
        plan = self.begin_tick(tick_index)
        return plan.finish(plan.step_inline())
