"""Avatars and entities."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.world.coords import BlockPos


@dataclass
class Avatar:
    """A player's in-world representation."""

    player_id: int
    name: str
    position: BlockPos
    #: blocks travelled since connecting (useful for workload statistics)
    distance_travelled: float = 0.0
    inventory_item: str = "stone"
    chat_messages_sent: int = 0
    blocks_placed: int = 0
    blocks_broken: int = 0

    def move_to(self, new_position: BlockPos) -> float:
        """Move the avatar and return the horizontal distance covered."""
        distance = self.position.horizontal_distance_to(new_position)
        self.position = new_position
        self.distance_travelled += distance
        return distance


@dataclass
class EntityPopulation:
    """Non-player entities in the world (mobs, items).

    The paper's workloads do not exercise entities directly, but the server
    models their presence because the baseline games spend a small amount of
    tick time on them proportional to the loaded area.
    """

    entities_per_chunk: float = 0.8
    _extra: int = 0

    def spawn_extra(self, count: int) -> None:
        if count < 0:
            raise ValueError("count must be non-negative")
        self._extra += count

    def count_for(self, loaded_chunks: int) -> int:
        return int(loaded_chunks * self.entities_per_chunk) + self._extra
