"""Chunk management: loading, generation, integration and eviction.

The chunk manager keeps the voxel world populated around the players.  Every
tick it:

1. determines the set of chunks required by the players' view distances
   (tracked incrementally: a player's required set only changes when the
   player crosses a chunk boundary),
2. requests missing chunks — from persistent storage if they exist there,
   otherwise from the terrain provider (local worker threads for the
   baselines, serverless functions for Servo),
3. integrates chunks whose load/generation completed (bounded per tick, since
   integrating a chunk costs tick time),
4. periodically evicts chunks far outside every player's view, persisting
   dirty ones.

It also produces the "distance to the closest missing terrain" metric of
Figure 10a.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.server.entities import Avatar
from repro.sim.engine import SimulationEngine
from repro.storage.base import StorageBackend
from repro.world.chunk import Chunk
from repro.world.coords import CHUNK_SIZE, BlockPos, ChunkPos, block_to_chunk, chunk_origin
from repro.world.serialization import chunk_from_bytes, chunk_to_bytes
from repro.world.terrain import TerrainGenerator
from repro.world.world import VoxelWorld

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.parallel import ShardRoundExecutor

#: virtual milliseconds of on-server work to generate one default-world chunk
CHUNK_GENERATION_WORK_MS = 250.0


@lru_cache(maxsize=32)
def _ring_offsets(radius_chunks: int) -> tuple[tuple[int, int], ...]:
    """Chunk offsets within ``radius_chunks`` of the origin (circular footprint)."""
    offsets = []
    for dx in range(-radius_chunks, radius_chunks + 1):
        for dz in range(-radius_chunks, radius_chunks + 1):
            if math.hypot(dx, dz) <= radius_chunks + 0.5:
                offsets.append((dx, dz))
    return tuple(offsets)


@lru_cache(maxsize=8192)
def _ring_chunks(center_cx: int, center_cz: int, radius_chunks: int) -> frozenset[ChunkPos]:
    """The ring footprint translated to a center chunk, as a reusable frozenset.

    Frozensets carry their elements' hashes, so ``set.update`` on a cached
    ring skips re-hashing every ``ChunkPos`` — the dominant cost of building
    eviction keep-sets and per-player view sets from scratch each time.
    """
    return frozenset(
        ChunkPos(center_cx + dx, center_cz + dz)
        for dx, dz in _ring_offsets(radius_chunks)
    )


@dataclass(frozen=True)
class GenerationResult:
    """Metadata describing how a chunk became available."""

    position: ChunkPos
    latency_ms: float
    source: str  # "local-generation", "faas-generation", or "storage"
    consumed_local_cpu: bool


class OwnershipRegion:
    """Interface for a server's ownership region in a partitioned world.

    A single-server deployment owns everything (``region=None``); a cluster
    shard owns one zone and must never load, generate or tick chunks outside
    it — the chunk manager filters every required-chunk computation through
    this predicate.
    """

    def contains(self, position: ChunkPos) -> bool:
        raise NotImplementedError


class TerrainProvider:
    """Interface for components that produce newly generated chunks."""

    name: str = "abstract"

    def request(
        self, position: ChunkPos, callback: Callable[[Chunk, GenerationResult], None]
    ) -> None:
        """Start generating ``position``; ``callback`` fires in virtual time when done."""
        raise NotImplementedError

    def pending_count(self) -> int:
        raise NotImplementedError


class LocalTerrainProvider(TerrainProvider):
    """Terrain generation on the game server's own machine.

    A fixed pool of worker threads generates chunks sequentially; each chunk
    takes ``work_ms`` of virtual time, so the provider's throughput is
    ``workers / work_ms`` chunks per millisecond.  This is the bottleneck that
    makes Opencraft unable to keep up with fast-moving players (Figure 10a),
    and completions interfere with the game loop (accounted by the cost
    model's ``per_local_generation_ms``).
    """

    name = "local"

    def __init__(
        self,
        engine: SimulationEngine,
        generator: TerrainGenerator,
        workers: int = 2,
        work_ms: float | None = None,
        executor: "ShardRoundExecutor | None" = None,
    ) -> None:
        if workers < 1:
            raise ValueError("a local terrain provider needs at least one worker")
        self.engine = engine
        self.generator = generator
        self.workers = int(workers)
        self.work_ms = float(
            work_ms
            if work_ms is not None
            else CHUNK_GENERATION_WORK_MS * generator.generation_work_units()
        )
        self._worker_free_at_ms = [0.0] * self.workers
        self._pending = 0
        self._rng = engine.rng("local-terrain")
        #: optional round executor: chunk content is then computed in a worker
        #: process between the virtual request and completion times (identical
        #: bytes — generation is pure in seed and position)
        self.executor = executor

    def request(
        self, position: ChunkPos, callback: Callable[[Chunk, GenerationResult], None]
    ) -> None:
        now = self.engine.now_ms
        worker_index = min(
            range(self.workers), key=lambda index: self._worker_free_at_ms[index]
        )
        start = max(now, self._worker_free_at_ms[worker_index])
        duration = self.work_ms * float(self._rng.lognormal(0.0, 0.15))
        finish = start + duration
        self._worker_free_at_ms[worker_index] = finish
        self._pending += 1
        task = (
            self.executor.submit_terrain(self.generator, position)
            if self.executor is not None
            else None
        )

        def complete() -> None:
            self._pending -= 1
            chunk = (
                task.resolve() if task is not None else self.generator.generate_chunk(position)
            )
            result = GenerationResult(
                position=position,
                latency_ms=finish - now,
                source="local-generation",
                consumed_local_cpu=True,
            )
            callback(chunk, result)

        self.engine.schedule_at(finish, complete, name=f"local-gen:{position.key()}")

    def pending_count(self) -> int:
        return self._pending


@dataclass
class ChunkTickReport:
    """What the chunk manager did during one tick."""

    chunks_requested: int = 0
    chunks_integrated: int = 0
    local_generations_completed: int = 0
    chunks_streamed: int = 0
    chunks_evicted: int = 0
    #: chunk generations requested but not yet completed by the provider
    generation_backlog: int = 0
    #: minimum over players of the distance to the closest missing chunk (blocks)
    min_view_range_blocks: float = 0.0


@dataclass
class _ReadyChunk:
    chunk: Chunk
    result: GenerationResult


class ChunkManager:
    """Keeps the world loaded around the players."""

    def __init__(
        self,
        engine: SimulationEngine,
        world: VoxelWorld,
        generator: TerrainGenerator,
        provider: TerrainProvider,
        storage: Optional[StorageBackend] = None,
        view_distance_blocks: float = 128.0,
        unload_margin_blocks: float = 64.0,
        max_integrations_per_tick: int = 8,
        eviction_interval_ticks: int = 40,
        persist_on_evict: bool = True,
        region: Optional[OwnershipRegion] = None,
    ) -> None:
        self.engine = engine
        self.world = world
        self.generator = generator
        self.provider = provider
        self.storage = storage
        self.view_distance_blocks = float(view_distance_blocks)
        self.unload_margin_blocks = float(unload_margin_blocks)
        self.max_integrations_per_tick = int(max_integrations_per_tick)
        self.eviction_interval_ticks = int(eviction_interval_ticks)
        self.persist_on_evict = persist_on_evict
        self.region = region
        self._view_radius_chunks = int(math.ceil(self.view_distance_blocks / CHUNK_SIZE))
        self._keep_radius_chunks = int(
            math.ceil((self.view_distance_blocks + self.unload_margin_blocks) / CHUNK_SIZE)
        )
        self._pending: set[ChunkPos] = set()
        self._ready: list[_ReadyChunk] = []
        #: pin counts: how many protectors (e.g. constructs) pin each chunk
        self._protected: dict[ChunkPos, int] = {}
        #: per-player cached (chunk coordinates, required chunk set)
        self._player_views: dict[int, tuple[tuple[int, int], frozenset[ChunkPos]]] = {}
        #: reference counts: how many players currently require each chunk
        self._chunk_refcounts: dict[ChunkPos, int] = {}
        #: required chunks that are not resident (maintained incrementally so
        #: the steady state — everything loaded — costs nothing per tick)
        self._unavailable: set[ChunkPos] = set()
        #: per-center-chunk required set after ownership filtering (per shard)
        self._required_cache: dict[tuple[int, int], frozenset[ChunkPos]] = {}
        #: chunks already streamed to each player (clients cache terrain)
        self._player_sent: dict[int, set[ChunkPos]] = {}
        #: chunks queued for streaming to each player (sent a few per tick)
        self._player_send_queue: dict[int, list[ChunkPos]] = {}
        #: maximum chunks streamed to one player in one tick
        self.stream_cap_per_player = 3
        self._tick_counter = 0
        self.metrics = engine.metrics
        #: called with (player_id, new_center_chunk) whenever a player
        #: crosses a chunk boundary — the manager already detects crossings
        #: for its own view caches, so interest subscriptions piggyback on
        #: the same incremental signal instead of re-deriving it
        self.center_listeners: list[Callable[[int, tuple[int, int]], None]] = []

    # -- startup ---------------------------------------------------------------------

    def preload_area(self, center: BlockPos, radius_blocks: float) -> int:
        """Synchronously generate and load an area (used for spawn setup).

        Startup loading happens before players connect, so it bypasses the
        asynchronous pipeline and does not produce latency samples.
        """
        radius_chunks = int(math.ceil(radius_blocks / CHUNK_SIZE))
        center_chunk = block_to_chunk(center)
        loaded = 0
        for dx, dz in _ring_offsets(radius_chunks):
            position = ChunkPos(center_chunk.cx + dx, center_chunk.cz + dz)
            if not self._owns(position) or self.world.is_loaded(position):
                continue
            self.world.add_chunk(self.generator.generate_chunk(position))
            self._unavailable.discard(position)
            loaded += 1
        return loaded

    def _owns(self, position: ChunkPos) -> bool:
        return self.region is None or self.region.contains(position)

    def protect(self, positions: list[ChunkPos]) -> None:
        """Pin chunks that must never be evicted (e.g. construct areas).

        Pins are reference-counted: protecting the same chunk twice (two
        overlapping constructs) requires two :meth:`unprotect` calls before
        the chunk becomes evictable again.
        """
        for position in positions:
            self._protected[position] = self._protected.get(position, 0) + 1

    @staticmethod
    def _decref(counts: dict[ChunkPos, int], position: ChunkPos) -> None:
        """Decrement a chunk's reference count, dropping the entry at zero."""
        count = counts.get(position, 0) - 1
        if count <= 0:
            counts.pop(position, None)
        else:
            counts[position] = count

    def unprotect(self, positions: list[ChunkPos]) -> None:
        """Release pins taken by :meth:`protect`; the last release unpins."""
        for position in positions:
            self._decref(self._protected, position)

    def _release_required(self, position: ChunkPos) -> None:
        """Drop one player's requirement on a chunk, untracking it at zero."""
        count = self._chunk_refcounts.get(position, 0) - 1
        if count <= 0:
            self._chunk_refcounts.pop(position, None)
            self._unavailable.discard(position)
        else:
            self._chunk_refcounts[position] = count

    @property
    def protected_chunks(self) -> set[ChunkPos]:
        """The chunks currently pinned against eviction."""
        return set(self._protected)

    # -- asynchronous completion ---------------------------------------------------------

    def _on_chunk_available(self, chunk: Chunk, result: GenerationResult) -> None:
        self._pending.discard(chunk.position)
        self._ready.append(_ReadyChunk(chunk=chunk, result=result))
        self.metrics.histogram("terrain_retrieval_ms").record(result.latency_ms)
        if result.source == "storage":
            self.metrics.increment("chunks_loaded_from_storage")
        else:
            self.metrics.increment("chunks_generated")

    def _request_chunk(self, position: ChunkPos) -> None:
        self._pending.add(position)
        key = position.key()
        if self.storage is not None and self.storage.exists(key):
            operation = self.storage.read(key)
            completion_ms = self.engine.now_ms + operation.latency_ms

            def complete(op=operation, pos=position) -> None:
                try:
                    chunk = chunk_from_bytes(op.data or b"")
                except Exception:
                    # A corrupt stored chunk falls back to regeneration.
                    self.provider.request(pos, self._on_chunk_available)
                    return
                self._on_chunk_available(
                    chunk,
                    GenerationResult(
                        position=pos,
                        latency_ms=op.latency_ms,
                        source="storage",
                        consumed_local_cpu=False,
                    ),
                )

            self.engine.schedule_at(completion_ms, complete, name=f"storage-load:{key}")
        else:
            self.provider.request(position, self._on_chunk_available)

    # -- per-tick update -------------------------------------------------------------------

    def _required_for_center(self, center: tuple[int, int]) -> frozenset[ChunkPos]:
        """The ownership-filtered required set for a player centered on ``center``.

        Players repeatedly revisit the same center chunks, so the filtered
        set is cached per shard (the ownership region never changes after
        construction).
        """
        cached = self._required_cache.get(center)
        if cached is not None:
            return cached
        ring = _ring_chunks(center[0], center[1], self._view_radius_chunks)
        # In-view chunks outside the ownership region are the neighbor
        # shard's responsibility (a sharded deployment serves them to the
        # client from their owner), so this shard neither loads them nor
        # counts them against its view-range metric.
        if self.region is not None:
            contains = self.region.contains
            ring = frozenset(position for position in ring if contains(position))
        self._required_cache[center] = ring
        return ring

    def _refresh_player_view(self, avatar: Avatar) -> None:
        """Update the avatar's required chunk set; cheap unless it crossed a chunk."""
        position = avatar.position
        current_chunk = (position.x // CHUNK_SIZE, position.z // CHUNK_SIZE)
        cached = self._player_views.get(avatar.player_id)
        if cached is not None and cached[0] == current_chunk:
            return
        required = self._required_for_center(current_chunk)
        old_required = cached[1] if cached is not None else frozenset()
        refcounts = self._chunk_refcounts
        for position in sorted(required - old_required):
            count = refcounts.get(position, 0)
            refcounts[position] = count + 1
            if count == 0 and not self.world.is_loaded(position):
                self._unavailable.add(position)
        for position in sorted(old_required - required):
            self._release_required(position)
        self._player_views[avatar.player_id] = (current_chunk, required)
        if cached is not None:
            # A genuine boundary crossing (first sight is handled by the
            # subscription itself at connect time).
            for listener in self.center_listeners:
                listener(avatar.player_id, current_chunk)
        # Chunks that entered the view and were never sent to this client must
        # be streamed (a few per tick); clients cache terrain, so chunks sent
        # earlier are never re-sent.  The initial view download on connect is
        # not charged to the game loop: real servers push it from the join
        # screen, outside the latency-critical path.
        if cached is None:
            self._player_sent[avatar.player_id] = set(required)
            self._player_send_queue.setdefault(avatar.player_id, [])
            return
        sent = self._player_sent.setdefault(avatar.player_id, set())
        queue = self._player_send_queue.setdefault(avatar.player_id, [])
        queued = set(queue)
        for position in sorted(required - old_required):
            if position not in sent and position not in queued:
                queue.append(position)

    def forget_player(self, player_id: int) -> None:
        """Drop cached view state for a disconnected player."""
        self._player_sent.pop(player_id, None)
        self._player_send_queue.pop(player_id, None)
        cached = self._player_views.pop(player_id, None)
        if cached is None:
            return
        for position in cached[1]:
            self._release_required(position)

    def _stream_to_players(self) -> int:
        """Send queued, loaded chunks to clients (a few per player per tick)."""
        streamed = 0
        for player_id, queue in self._player_send_queue.items():
            if not queue:
                continue
            sent = self._player_sent.setdefault(player_id, set())
            remaining: list[ChunkPos] = []
            budget = self.stream_cap_per_player
            for position in queue:
                if budget > 0 and self.world.is_loaded(position):
                    sent.add(position)
                    streamed += 1
                    budget -= 1
                else:
                    remaining.append(position)
            self._player_send_queue[player_id] = remaining
        return streamed

    def update(self, avatars: list[Avatar]) -> ChunkTickReport:
        """Run one tick of chunk management and report the work done."""
        self._tick_counter += 1
        report = ChunkTickReport()

        # 1. Determine required chunks and request missing ones.  The
        # unavailable set is maintained incrementally, so in the steady state
        # (everything resident) this step touches nothing.
        for avatar in avatars:
            self._refresh_player_view(avatar)
        required_union = self._chunk_refcounts
        if self._unavailable:
            # Prune entries loaded outside the integration path (preloads).
            is_loaded = self.world.is_loaded
            self._unavailable = {p for p in self._unavailable if not is_loaded(p)}
            missing = sorted(self._unavailable - self._pending)
            for position in missing:
                self._request_chunk(position)
            report.chunks_requested = len(missing)

        # 2. Integrate ready chunks (bounded per tick).
        if self._ready:
            to_integrate = self._ready[: self.max_integrations_per_tick]
            self._ready = self._ready[self.max_integrations_per_tick:]
            for ready in to_integrate:
                if not self.world.is_loaded(ready.chunk.position):
                    self.world.add_chunk(ready.chunk)
                self._unavailable.discard(ready.chunk.position)
                report.chunks_integrated += 1
                if ready.result.consumed_local_cpu:
                    report.local_generations_completed += 1

        # 3. Stream newly visible terrain to clients.
        report.chunks_streamed = self._stream_to_players()

        # 4. Periodic eviction of chunks far outside every player's view.
        if avatars and self._tick_counter % self.eviction_interval_ticks == 0:
            report.chunks_evicted = self._evict(avatars)

        # 5. View-range metric: distance to the closest missing required chunk.
        report.generation_backlog = self.provider.pending_count()
        report.min_view_range_blocks = self._view_range(avatars, required_union)
        return report

    def _evict(self, avatars: list[Avatar]) -> int:
        keep: set[ChunkPos] = set(self._protected)
        for avatar in avatars:
            position = avatar.position
            keep.update(
                _ring_chunks(
                    position.x // CHUNK_SIZE,
                    position.z // CHUNK_SIZE,
                    self._keep_radius_chunks,
                )
            )
        evicted = 0
        for position in list(self.world.loaded_chunk_positions):
            if position in keep:
                continue
            chunk = self.world.remove_chunk(position)
            if position in self._chunk_refcounts:
                self._unavailable.add(position)
            evicted += 1
            if self.persist_on_evict and self.storage is not None and chunk.dirty:
                self.storage.write(position.key(), chunk_to_bytes(chunk))
        return evicted

    def _view_range(
        self, avatars: list[Avatar], required_union: dict[ChunkPos, int] | set[ChunkPos]
    ) -> float:
        if not avatars or not self._unavailable:
            return self.view_distance_blocks
        # Broadcast avatars against unavailable chunk centers instead of a
        # Python double loop — this runs every tick while terrain is in flight.
        unavailable = sorted(self._unavailable)
        centers_x = np.fromiter(
            (pos.cx * CHUNK_SIZE + 8 for pos in unavailable),
            dtype=np.float64,
            count=len(unavailable),
        )
        centers_z = np.fromiter(
            (pos.cz * CHUNK_SIZE + 8 for pos in unavailable),
            dtype=np.float64,
            count=len(unavailable),
        )
        avatars_x = np.fromiter(
            (avatar.position.x for avatar in avatars), dtype=np.float64, count=len(avatars)
        )
        avatars_z = np.fromiter(
            (avatar.position.z for avatar in avatars), dtype=np.float64, count=len(avatars)
        )
        dx = avatars_x[:, None] - centers_x[None, :]
        dz = avatars_z[:, None] - centers_z[None, :]
        closest = math.sqrt(float((dx * dx + dz * dz).min()))
        return min(self.view_distance_blocks, closest)

    # -- persistence --------------------------------------------------------------------

    def persist_dirty(self) -> int:
        """Write every dirty loaded chunk to storage (periodic write-back)."""
        if self.storage is None:
            return 0
        written = 0
        for chunk in self.world.dirty_chunks():
            self.storage.write(chunk.position.key(), chunk_to_bytes(chunk))
            chunk.dirty = False
            written += 1
        return written

    @property
    def pending_chunks(self) -> int:
        return len(self._pending)

    @property
    def ready_backlog(self) -> int:
        return len(self._ready)
