"""MVE game-server substrate.

A tick-based (20 Hz) Minecraft-like game server: it owns the voxel world,
avatars and player sessions, processes client messages, manages chunk loading
and generation through a pluggable terrain provider, simulates player-built
constructs through a pluggable construct backend, and records tick-duration
metrics through a per-variant cost model.

The two baselines of the paper are assembled here (:func:`make_opencraft` and
:func:`make_minecraft`); Servo is assembled in :mod:`repro.core` by plugging
its serverless services into the same server.
"""

from repro.server.builder import ServerBuilder
from repro.server.chunkmanager import (
    ChunkManager,
    LocalTerrainProvider,
    OwnershipRegion,
    TerrainProvider,
)
from repro.server.config import GameConfig
from repro.server.costmodel import (
    MINECRAFT_COST_MODEL,
    OPENCRAFT_COST_MODEL,
    SERVO_COST_MODEL,
    TickCostModel,
    TickWork,
)
from repro.server.entities import Avatar
from repro.server.gameloop import GameServer, ServerRuntime, TickRecord
from repro.server.sc_engine import ConstructBackend, ConstructTickReport, LocalConstructBackend
from repro.server.session import PlayerSession
from repro.server.variants import make_minecraft, make_opencraft

__all__ = [
    "GameConfig",
    "Avatar",
    "PlayerSession",
    "TickWork",
    "TickCostModel",
    "OPENCRAFT_COST_MODEL",
    "MINECRAFT_COST_MODEL",
    "SERVO_COST_MODEL",
    "ConstructBackend",
    "ConstructTickReport",
    "LocalConstructBackend",
    "TerrainProvider",
    "LocalTerrainProvider",
    "OwnershipRegion",
    "ChunkManager",
    "ServerBuilder",
    "GameServer",
    "ServerRuntime",
    "TickRecord",
    "make_opencraft",
    "make_minecraft",
]
