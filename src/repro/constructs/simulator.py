"""Synchronous step simulator for simulated constructs.

The simulator advances a construct one step at a time: every cell's new state
is computed from the *previous* step's outputs of its neighbours, which makes
the update order-independent and deterministic.  The same simulator code runs
on the game server (baseline / fallback path) and inside the offload function
(Servo's speculative path), so both produce identical state sequences.

Two implementations exist:

* :class:`ConstructSimulator` — the production simulator.  It steps through
  the construct's cached :class:`~repro.constructs.compiled.CompiledCircuit`
  (index-based arrays, integer component codes), which is the wall-clock hot
  path at cluster scale.
* :class:`ReferenceConstructSimulator` — the original, dict-based
  formulation that dispatches every cell through ``components.py``.  It is
  the executable specification: the equivalence test suite asserts the
  compiled path produces bit-identical state sequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constructs.circuit import SimulatedConstruct
from repro.constructs.compiled import compile_circuit
from repro.constructs.components import next_state, output_power
from repro.constructs.state import ConstructState


@dataclass
class SimulationTrace:
    """The result of simulating a construct for several steps."""

    construct_id: int
    start_step: int
    states: list[ConstructState] = field(default_factory=list)
    #: total number of cell updates performed (work measure for cost models)
    cell_updates: int = 0

    @property
    def steps(self) -> int:
        return len(self.states)

    def final_state(self) -> ConstructState:
        if not self.states:
            raise ValueError("simulation trace is empty")
        return self.states[-1]


class ConstructSimulator:
    """Steps simulated constructs forward in time (compiled hot path)."""

    def step(self, construct: SimulatedConstruct) -> ConstructState:
        """Advance the construct by one step, mutating it, and return the snapshot."""
        compile_circuit(construct).step()
        return construct.snapshot()

    def run(self, construct: SimulatedConstruct, steps: int) -> SimulationTrace:
        """Advance the construct ``steps`` times, collecting every snapshot."""
        if steps < 0:
            raise ValueError("steps must be non-negative")
        trace = SimulationTrace(construct_id=construct.construct_id, start_step=construct.step)
        compiled = compile_circuit(construct)
        for _ in range(int(steps)):
            compiled.step()
            trace.states.append(construct.snapshot())
            trace.cell_updates += construct.block_count
        return trace

    def simulate_detached(self, construct: SimulatedConstruct, steps: int) -> SimulationTrace:
        """Simulate ``steps`` ahead on a copy, leaving the construct untouched.

        This is what the offload function does: it receives the construct's
        current state, works ahead speculatively and returns the state
        sequence without mutating the server-side construct.
        """
        clone = clone_construct(construct)
        return self.run(clone, steps)


class ReferenceConstructSimulator(ConstructSimulator):
    """The dict-based reference formulation (executable specification).

    Kept verbatim from the original implementation; the compiled simulator
    must match it bit for bit on every construct and step.
    """

    def step(self, construct: SimulatedConstruct) -> ConstructState:
        cells = construct.cells
        adjacency = construct.adjacency()
        outputs = {
            cell.position: output_power(cell.component, cell.state, cell.properties)
            for cell in cells
        }
        new_states: dict = {}
        for cell in cells:
            neighbours = adjacency[cell.position]
            input_power = 0
            for neighbour_pos in neighbours:
                power = outputs[neighbour_pos]
                if power > input_power:
                    input_power = power
            new_states[cell.position] = next_state(
                cell.component, cell.state, input_power, cell.properties
            )
        for cell in cells:
            cell.state = new_states[cell.position]
        construct.step += 1
        return construct.snapshot()

    def run(self, construct: SimulatedConstruct, steps: int) -> SimulationTrace:
        if steps < 0:
            raise ValueError("steps must be non-negative")
        trace = SimulationTrace(construct_id=construct.construct_id, start_step=construct.step)
        for _ in range(int(steps)):
            trace.states.append(self.step(construct))
            trace.cell_updates += construct.block_count
        return trace


def clone_construct(construct: SimulatedConstruct) -> SimulatedConstruct:
    """Deep-copy a construct (same id, independent cell states)."""
    from repro.constructs.circuit import Cell  # local import to avoid cycle at module load

    cells = [
        Cell(
            position=cell.position,
            component=cell.component,
            state=cell.state,
            properties=dict(cell.properties),
        )
        for cell in construct.cells
    ]
    clone = SimulatedConstruct(cells, name=construct.name, construct_id=construct.construct_id)
    clone.step = construct.step
    clone.modification_counter = construct.modification_counter
    return clone
