"""Compiled construct circuits: the simulator's index-based hot path.

``ConstructSimulator.step`` originally rebuilt two ``BlockPos``-keyed dicts
per step (neighbour outputs and new states) and dispatched every cell through
the :func:`~repro.constructs.components.output_power` /
:func:`~repro.constructs.components.next_state` functions, paying enum
comparisons, dict hashing of frozen dataclasses and ``properties.get`` calls
on every cell of every step.  At cluster scale (hundreds of constructs over
thousands of ticks) that made the simulator itself the wall-clock bottleneck.

A :class:`CompiledCircuit` flattens a construct once into parallel,
index-aligned lists — integer component codes, precomputed per-cell
parameters (clock period, repeater delay/mask) and neighbour *index* tuples —
so stepping becomes tight integer loops over small lists.  The compiled form
is cached on the construct (the cell set of a :class:`SimulatedConstruct`
never changes after construction) and shared by every consumer: the local
backend, Servo's speculative fallback and the offload function.  Per-cell
parameters are refreshed whenever the construct's modification counter moves,
so sanctioned player edits are always honoured; cell *states* are read from
and written back to the live ``Cell`` objects on every step, which keeps the
construct the single source of truth for everyone else (snapshots,
equivalence grouping, offload payloads).

The compiled step is semantically bit-identical to the reference simulator:
every arithmetic branch below mirrors ``components.py`` exactly, and the
equivalence test suite asserts identical :class:`ConstructState` sequences
across the construct library.

As a byproduct of writing states back, :meth:`CompiledCircuit.step` reports
whether the step was a *fixed point* (no cell changed state).  Because a
step is a pure function of the state vector, a fixed point persists until a
player edit — which is what lets backends skip re-simulating quiescent
circuits entirely.
"""

from __future__ import annotations

import hashlib

from repro.constructs.components import MAX_POWER, ComponentType

# Integer component codes (list indices beat enum identity checks in the hot
# loop).  The numeric values are internal to this module.
_POWER_SOURCE = 0
_LEVER = 1
_WIRE = 2
_LAMP = 3
_TORCH = 4
_REPEATER = 5
_PISTON = 6
_HOPPER = 7
_COMPARATOR = 8
_CLOCK = 9

_CODE_BY_COMPONENT = {
    ComponentType.POWER_SOURCE: _POWER_SOURCE,
    ComponentType.LEVER: _LEVER,
    ComponentType.WIRE: _WIRE,
    ComponentType.LAMP: _LAMP,
    ComponentType.TORCH: _TORCH,
    ComponentType.REPEATER: _REPEATER,
    ComponentType.PISTON: _PISTON,
    ComponentType.HOPPER: _HOPPER,
    ComponentType.COMPARATOR: _COMPARATOR,
    ComponentType.CLOCK: _CLOCK,
}

#: attribute under which the compiled form is cached on the construct
_CACHE_ATTRIBUTE = "_compiled_circuit"


class CompiledCircuit:
    """An index-based, steppable view of one :class:`SimulatedConstruct`."""

    __slots__ = (
        "construct",
        "_cells",
        "_codes",
        "_params",
        "_masks",
        "_neighbours",
        "_digest_prefixes",
        "_params_modification",
    )

    def __init__(self, construct) -> None:
        self.construct = construct
        cells = construct.cells  # sorted by position, fixed for the lifetime
        self._cells = cells
        self._codes = [_CODE_BY_COMPONENT[cell.component] for cell in cells]
        index_of = {cell.position: index for index, cell in enumerate(cells)}
        adjacency = construct.adjacency()
        self._neighbours = [
            tuple(index_of[pos] for pos in adjacency[cell.position]) for cell in cells
        ]
        # Byte prefixes for the content digest, identical to state_hash():
        # "x,y,z=" per cell in sorted-position order.
        self._digest_prefixes = [
            f"{cell.position.x},{cell.position.y},{cell.position.z}=".encode("ascii")
            for cell in cells
        ]
        self._params: list[int] = []
        self._masks: list[int] = []
        self._refresh_params()

    def _refresh_params(self) -> None:
        """Precompute per-cell parameters from the cells' property dicts.

        Mirrors the defaulting/clamping in ``components.py``.  Re-run whenever
        the construct's modification counter moves, so player edits that touch
        properties are picked up.
        """
        # Snapshot the counter once, before reading any properties: if an edit
        # lands mid-refresh, the stored value stays behind the live counter and
        # the next step() triggers another refresh instead of recording
        # half-updated parameters as current.  This also makes the compiled
        # form safe to serialize while the owning construct is being edited.
        modification = self.construct.modification_counter
        params = []
        masks = []
        for code, cell in zip(self._codes, self._cells):
            if code == _CLOCK:
                params.append(max(2, int(cell.properties.get("period", 8))))
                masks.append(0)
            elif code == _REPEATER:
                delay = max(1, int(cell.properties.get("delay", 1)))
                params.append(delay)
                masks.append((1 << delay) - 1)
            else:
                params.append(0)
                masks.append(0)
        self._params = params
        self._masks = masks
        self._params_modification = modification

    @property
    def cell_count(self) -> int:
        return len(self._cells)

    def step(self) -> bool:
        """Advance the construct one step; return True on a fixed point.

        States are read from and written back to the live cells, and the
        construct's step counter advances — exactly like the reference
        simulator, minus the per-step dict rebuilding.
        """
        construct = self.construct
        if construct.modification_counter != self._params_modification:
            self._refresh_params()
        cells = self._cells
        codes = self._codes
        params = self._params
        count = len(cells)

        states = [cell.state for cell in cells]
        outputs = [0] * count
        for index in range(count):
            code = codes[index]
            state = states[index]
            if code == _WIRE or code == _COMPARATOR:
                outputs[index] = (
                    MAX_POWER if state > MAX_POWER else (state if state > 0 else 0)
                )
            elif code == _LAMP or code == _PISTON or code == _HOPPER:
                pass  # consumers emit nothing
            elif code == _TORCH or code == _LEVER:
                outputs[index] = MAX_POWER if state > 0 else 0
            elif code == _REPEATER:
                outputs[index] = MAX_POWER if (state & 1) else 0
            elif code == _CLOCK:
                period = params[index]
                outputs[index] = (
                    MAX_POWER if (state % period) < period // 2 else 0
                )
            else:  # _POWER_SOURCE
                outputs[index] = MAX_POWER

        fixed_point = True
        neighbours = self._neighbours
        masks = self._masks
        for index in range(count):
            input_power = 0
            for neighbour in neighbours[index]:
                power = outputs[neighbour]
                if power > input_power:
                    input_power = power
            code = codes[index]
            state = states[index]
            if code == _WIRE:
                new_state = input_power - 1 if input_power > 1 else 0
            elif code == _LAMP:
                new_state = 1 if input_power > 0 else 0
            elif code == _TORCH:
                new_state = MAX_POWER if input_power == 0 else 0
            elif code == _CLOCK:
                new_state = (state + 1) % params[index]
            elif code == _HOPPER:
                new_state = (state + 1) % 65536 if input_power > 0 else state
            elif code == _REPEATER:
                bit = 1 if input_power > 0 else 0
                new_state = ((state >> 1) | (bit << (params[index] - 1))) & masks[index]
            elif code == _COMPARATOR:
                new_state = input_power
            elif code == _PISTON:
                new_state = 1 if input_power > 0 else 0
            elif code == _LEVER:
                new_state = state
            else:  # _POWER_SOURCE
                new_state = MAX_POWER
            if new_state != state:
                fixed_point = False
                cells[index].state = new_state

        construct.step += 1
        return fixed_point

    def run(self, steps: int) -> bool:
        """Advance ``steps`` steps; return True if the last step was a fixed point."""
        fixed_point = False
        for _ in range(int(steps)):
            fixed_point = self.step()
        return fixed_point

    def digest(self) -> str:
        """The construct's current content hash.

        Identical to ``state_hash(construct.snapshot().states)`` but computed
        straight from the (already position-sorted) cells, without building
        and re-sorting a snapshot dict.
        """
        hasher = hashlib.sha256()
        for prefix, cell in zip(self._digest_prefixes, self._cells):
            hasher.update(prefix)
            hasher.update(f"{int(cell.state)};".encode("ascii"))
        return hasher.hexdigest()


def compile_circuit(construct) -> CompiledCircuit:
    """The construct's compiled form, built once and cached on the construct.

    Safe to call from any consumer (local backend, speculative fallback,
    offload function): they all share the same compiled representation, and
    the cell set of a construct never changes after construction.
    """
    compiled = getattr(construct, _CACHE_ATTRIBUTE, None)
    if compiled is None:
        compiled = CompiledCircuit(construct)
        setattr(construct, _CACHE_ATTRIBUTE, compiled)
    return compiled
