"""Library of construct builders.

These factories build the constructs the experiments use: periodic clocks and
torch oscillators (exercising loop detection), wire lines and lamp grids
(signal propagation), hopper farms (monotonically counting constructs that do
*not* loop), and the ~252-block and ~484-block constructs of Section IV-G.
"""

from __future__ import annotations

from repro.constructs.circuit import Cell, SimulatedConstruct
from repro.constructs.components import ComponentType
from repro.world.coords import BlockPos


def build_clock(period: int = 8, origin: BlockPos = BlockPos(0, 64, 0), lamps: int = 2) -> SimulatedConstruct:
    """A clock driving a short wire and ``lamps`` lamps: loops with the clock period."""
    if period < 2:
        raise ValueError("clock period must be at least 2")
    cells = [Cell(origin, ComponentType.CLOCK, properties={"period": int(period)})]
    for i in range(1, lamps + 1):
        cells.append(Cell(origin.offset(dx=i), ComponentType.WIRE))
    for i in range(lamps):
        cells.append(Cell(origin.offset(dx=i + 1, dz=1), ComponentType.LAMP))
    return SimulatedConstruct(cells, name=f"clock-{period}")


def build_oscillator(origin: BlockPos = BlockPos(0, 64, 0)) -> SimulatedConstruct:
    """Two torches feeding each other through wires: a classic 4-step oscillator."""
    cells = [
        Cell(origin, ComponentType.TORCH, state=15),
        Cell(origin.offset(dx=1), ComponentType.WIRE),
        Cell(origin.offset(dx=2), ComponentType.TORCH),
        Cell(origin.offset(dx=2, dz=1), ComponentType.WIRE),
        Cell(origin.offset(dx=1, dz=1), ComponentType.LAMP),
    ]
    return SimulatedConstruct(cells, name="oscillator")


def build_wire_line(length: int, origin: BlockPos = BlockPos(0, 64, 0), powered: bool = True) -> SimulatedConstruct:
    """A power source feeding a straight line of ``length`` wires ending in a lamp."""
    if length < 1:
        raise ValueError("wire line length must be at least 1")
    source = ComponentType.POWER_SOURCE if powered else ComponentType.LEVER
    cells = [Cell(origin, source)]
    for i in range(1, length + 1):
        cells.append(Cell(origin.offset(dx=i), ComponentType.WIRE))
    cells.append(Cell(origin.offset(dx=length + 1), ComponentType.LAMP))
    return SimulatedConstruct(cells, name=f"wire-line-{length}")


def build_lamp_grid(width: int, depth: int, origin: BlockPos = BlockPos(0, 64, 0)) -> SimulatedConstruct:
    """A clock powering a serpentine wire that threads a ``width x depth`` lamp grid."""
    if width < 1 or depth < 1:
        raise ValueError("lamp grid dimensions must be positive")
    cells = [Cell(origin, ComponentType.CLOCK, properties={"period": 8})]
    for row in range(depth):
        for col in range(1, width + 1):
            x = col if row % 2 == 0 else width + 1 - col
            cells.append(Cell(origin.offset(dx=x, dz=row), ComponentType.WIRE))
        for col in range(1, width + 1):
            cells.append(Cell(origin.offset(dx=col, dz=row, dy=1), ComponentType.LAMP))
    return SimulatedConstruct(cells, name=f"lamp-grid-{width}x{depth}")


def build_piston_door(origin: BlockPos = BlockPos(0, 64, 0), wire_run: int = 3) -> SimulatedConstruct:
    """A lever-operated piston door: lever -> wire run -> two pistons + lamp.

    With the lever off the circuit settles to a fixed point (a quiescent
    construct); toggling the lever wakes it, the signal runs down the wires
    and the pistons extend.
    """
    if wire_run < 1:
        raise ValueError("the door needs at least one wire between lever and pistons")
    cells = [Cell(origin, ComponentType.LEVER)]
    for i in range(1, wire_run + 1):
        cells.append(Cell(origin.offset(dx=i), ComponentType.WIRE))
    cells.append(Cell(origin.offset(dx=wire_run + 1), ComponentType.PISTON))
    cells.append(Cell(origin.offset(dx=wire_run, dz=1), ComponentType.PISTON))
    cells.append(Cell(origin.offset(dx=wire_run + 1, dz=1), ComponentType.LAMP))
    return SimulatedConstruct(cells, name="piston-door")


def build_adder(origin: BlockPos = BlockPos(0, 64, 0)) -> SimulatedConstruct:
    """A two-lever arithmetic circuit mixing comparators, repeaters and a torch.

    Two lever inputs feed wire runs into a comparator stage; a repeater
    (delay 2) echoes one input late and a torch inverts the other, driving
    separate sum/carry lamps.  It is not a textbook binary adder — signal
    combination here is strongest-neighbour — but it exercises every
    "logic" component (lever, comparator, repeater, torch) in one circuit,
    settles to a fixed point for constant inputs, and reacts to lever edits.
    """
    cells = [
        # input A: lever -> wires -> comparator -> sum lamp
        Cell(origin, ComponentType.LEVER),
        Cell(origin.offset(dx=1), ComponentType.WIRE),
        Cell(origin.offset(dx=2), ComponentType.COMPARATOR),
        Cell(origin.offset(dx=3), ComponentType.LAMP),
        # input B: lever -> wire -> repeater (delay 2) -> carry lamp
        Cell(origin.offset(dz=2), ComponentType.LEVER),
        Cell(origin.offset(dx=1, dz=2), ComponentType.WIRE),
        Cell(origin.offset(dx=2, dz=2), ComponentType.REPEATER, properties={"delay": 2}),
        Cell(origin.offset(dx=3, dz=2), ComponentType.LAMP),
        # crossover: the comparator also feeds a torch that inverts into a wire
        Cell(origin.offset(dx=2, dz=1), ComponentType.TORCH),
        Cell(origin.offset(dx=1, dz=1), ComponentType.WIRE),
    ]
    return SimulatedConstruct(cells, name="adder")


def build_counter_farm(hoppers: int = 4, origin: BlockPos = BlockPos(0, 64, 0)) -> SimulatedConstruct:
    """A clock driving ``hoppers`` hoppers: a resource farm whose state never loops.

    Because the hoppers count activations, the construct's state sequence is
    aperiodic, which is the case the loop detector must *not* truncate.
    """
    if hoppers < 1:
        raise ValueError("a counter farm needs at least one hopper")
    cells = [Cell(origin, ComponentType.CLOCK, properties={"period": 4})]
    for i in range(1, hoppers + 1):
        cells.append(Cell(origin.offset(dx=i), ComponentType.WIRE))
        cells.append(Cell(origin.offset(dx=i, dz=1), ComponentType.HOPPER))
    return SimulatedConstruct(cells, name=f"counter-farm-{hoppers}")


def build_sized_construct(
    target_blocks: int, origin: BlockPos = BlockPos(0, 64, 0), looping: bool = True
) -> SimulatedConstruct:
    """A construct of approximately ``target_blocks`` stateful blocks.

    Used for the Section IV-G experiment, which measures speculative
    simulation rates for constructs of 252 and 484 blocks.  The construct is a
    clock-driven serpentine of wires with a lamp row: it is periodic, spans
    multiple chunks for large sizes, and its per-step cost grows with the
    block count.  With ``looping=False`` one cell is a hopper (an activation
    counter), which makes the state sequence aperiodic — the case the loop
    detector must not truncate, used by the latency-hiding experiments.
    """
    if target_blocks < 4:
        raise ValueError("sized constructs need at least 4 blocks")
    # Layout: 1 clock + rows of (width wires + width lamps).  Choose a roughly
    # square footprint.
    width = max(2, int(round((target_blocks / 2) ** 0.5)))
    cells = [Cell(origin, ComponentType.CLOCK, properties={"period": 16})]
    placed = 1
    row = 0
    while placed < target_blocks:
        for col in range(1, width + 1):
            if placed >= target_blocks:
                break
            x = col if row % 2 == 0 else width + 1 - col
            cells.append(Cell(origin.offset(dx=x, dz=row), ComponentType.WIRE))
            placed += 1
            if placed >= target_blocks:
                break
            cells.append(Cell(origin.offset(dx=x, dz=row, dy=1), ComponentType.LAMP))
            placed += 1
        row += 1
    if not looping:
        # Replace the first wire's neighbour lamp with a hopper so the state
        # sequence counts activations and never repeats.
        for index, cell in enumerate(cells):
            if cell.component is ComponentType.LAMP:
                cells[index] = Cell(cell.position, ComponentType.HOPPER)
                break
    suffix = "" if looping else "-aperiodic"
    return SimulatedConstruct(cells, name=f"sized-{target_blocks}{suffix}")


def standard_construct(index: int, origin: BlockPos | None = None) -> SimulatedConstruct:
    """The construct used by the scalability workloads (Figures 1 and 7).

    Every construct in those experiments is a medium clock-driven circuit;
    ``index`` spreads them over the world so each lands in its own area.
    """
    if origin is None:
        spacing = 48
        origin = BlockPos((index % 16) * spacing, 64, (index // 16) * spacing)
    construct = build_lamp_grid(width=6, depth=4, origin=origin)
    construct.name = f"workload-sc-{index}"
    return construct
