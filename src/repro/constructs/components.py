"""Component behaviour of stateful blocks.

Each stateful block type has a *state* (an integer) and an *output power*
derived from that state.  The simulator updates all cells synchronously: new
states are computed from the previous tick's outputs, which is how
Minecraft-like "redstone" behaves at the granularity this reproduction needs
(signal propagation one block per tick, inverters with a one-tick delay,
repeaters with configurable delay).
"""

from __future__ import annotations

from enum import Enum

from repro.world.block import BlockType

MAX_POWER = 15


class ComponentType(Enum):
    """Behavioural classes of stateful blocks."""

    POWER_SOURCE = "power_source"
    LEVER = "lever"
    WIRE = "wire"
    LAMP = "lamp"
    TORCH = "torch"
    REPEATER = "repeater"
    PISTON = "piston"
    HOPPER = "hopper"
    COMPARATOR = "comparator"
    CLOCK = "clock"


_BLOCK_TO_COMPONENT = {
    BlockType.POWER_SOURCE: ComponentType.POWER_SOURCE,
    BlockType.LEVER: ComponentType.LEVER,
    BlockType.WIRE: ComponentType.WIRE,
    BlockType.LAMP: ComponentType.LAMP,
    BlockType.TORCH: ComponentType.TORCH,
    BlockType.REPEATER: ComponentType.REPEATER,
    BlockType.PISTON: ComponentType.PISTON,
    BlockType.HOPPER: ComponentType.HOPPER,
    BlockType.COMPARATOR: ComponentType.COMPARATOR,
}

_COMPONENT_TO_BLOCK = {component: block for block, component in _BLOCK_TO_COMPONENT.items()}
# A clock is built from a power source block whose cell carries clock behaviour.
_COMPONENT_TO_BLOCK[ComponentType.CLOCK] = BlockType.POWER_SOURCE


def component_from_block(block_type: BlockType) -> ComponentType:
    """Map a stateful block type to its component behaviour."""
    if block_type not in _BLOCK_TO_COMPONENT:
        raise ValueError(f"block type {block_type!r} is not a stateful construct block")
    return _BLOCK_TO_COMPONENT[block_type]


def block_for_component(component: ComponentType) -> BlockType:
    """The block type placed in the world for a component."""
    return _COMPONENT_TO_BLOCK[component]


def output_power(component: ComponentType, state: int, properties: dict) -> int:
    """Output power (0..15) of a cell given its current state."""
    if component in (ComponentType.POWER_SOURCE,):
        return MAX_POWER
    if component is ComponentType.LEVER:
        return MAX_POWER if state > 0 else 0
    if component is ComponentType.WIRE:
        return max(0, min(MAX_POWER, state))
    if component is ComponentType.TORCH:
        return MAX_POWER if state > 0 else 0
    if component is ComponentType.REPEATER:
        # State encodes a shift register; the output is its lowest bit times max power.
        return MAX_POWER if (state & 1) else 0
    if component is ComponentType.COMPARATOR:
        return max(0, min(MAX_POWER, state))
    if component is ComponentType.CLOCK:
        period = max(2, int(properties.get("period", 8)))
        return MAX_POWER if (state % period) < period // 2 else 0
    # Lamps, pistons and hoppers consume power but do not emit it.
    return 0


def next_state(
    component: ComponentType,
    state: int,
    input_power: int,
    properties: dict,
) -> int:
    """New state of a cell given the strongest neighbouring output power."""
    if component is ComponentType.POWER_SOURCE:
        return MAX_POWER
    if component is ComponentType.LEVER:
        # Levers only change when a player toggles them; simulation keeps state.
        return state
    if component is ComponentType.WIRE:
        return max(0, input_power - 1)
    if component is ComponentType.LAMP:
        return 1 if input_power > 0 else 0
    if component is ComponentType.TORCH:
        # Inverter with a one-tick delay.
        return MAX_POWER if input_power == 0 else 0
    if component is ComponentType.REPEATER:
        delay = max(1, int(properties.get("delay", 1)))
        register = (state >> 1) | ((1 if input_power > 0 else 0) << (delay - 1))
        return register & ((1 << delay) - 1)
    if component is ComponentType.PISTON:
        return 1 if input_power > 0 else 0
    if component is ComponentType.HOPPER:
        # Hoppers count activations; this is the building block of item farms.
        return (state + 1) % 65536 if input_power > 0 else state
    if component is ComponentType.COMPARATOR:
        return input_power
    if component is ComponentType.CLOCK:
        period = max(2, int(properties.get("period", 8)))
        return (state + 1) % period
    raise ValueError(f"unknown component type {component!r}")
