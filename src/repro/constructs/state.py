"""Construct state snapshots and hashing.

A construct's state is the mapping from cell positions to integer states.  The
loop detector (Section III-C1 of the paper) hashes each step's state to detect
repeating cycles; speculation compares states by hash to know whether a
speculative sequence is still valid.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.world.coords import BlockPos


def state_hash(states: Mapping[BlockPos, int]) -> str:
    """A stable content hash of a construct state.

    The hash is independent of dict insertion order and stable across
    processes (unlike the built-in ``hash``), so a state hashed inside a
    (simulated) serverless function matches the server-side hash.
    """
    hasher = hashlib.sha256()
    for pos in sorted(states):
        hasher.update(f"{pos.x},{pos.y},{pos.z}={int(states[pos])};".encode("ascii"))
    return hasher.hexdigest()


@dataclass(frozen=True)
class ConstructState:
    """An immutable snapshot of a construct's cell states at one step."""

    step: int
    states: Mapping[BlockPos, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "states", dict(self.states))

    def value(self, pos: BlockPos) -> int:
        return int(self.states[pos])

    def digest(self) -> str:
        return state_hash(self.states)

    def __iter__(self) -> Iterator[BlockPos]:
        return iter(self.states)

    def __len__(self) -> int:
        return len(self.states)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConstructState):
            return NotImplemented
        return self.step == other.step and dict(self.states) == dict(other.states)

    def same_values(self, other: "ConstructState") -> bool:
        """True if the cell states match, regardless of the step counter."""
        return dict(self.states) == dict(other.states)
