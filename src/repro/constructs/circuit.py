"""Simulated constructs: collections of stateful cells.

A :class:`SimulatedConstruct` is the unit Servo offloads: it owns a set of
cells (stateful blocks with a component behaviour, optional properties and an
integer state) and a monotonically increasing *modification counter* that
serves as the logical timestamp the paper uses to invalidate stale speculative
results after a player edits the construct.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.constructs.components import ComponentType, block_for_component
from repro.constructs.state import ConstructState
from repro.world.block import BlockType
from repro.world.coords import BlockPos

_construct_ids = itertools.count(1)


@dataclass
class Cell:
    """One stateful block inside a construct."""

    position: BlockPos
    component: ComponentType
    state: int = 0
    properties: dict = field(default_factory=dict)

    @property
    def block_type(self) -> BlockType:
        return block_for_component(self.component)


class SimulatedConstruct:
    """A player-built construct of stateful blocks."""

    def __init__(
        self,
        cells: Iterable[Cell],
        name: str = "",
        construct_id: int | None = None,
    ) -> None:
        self.construct_id = int(construct_id) if construct_id is not None else next(_construct_ids)
        self.name = name or f"construct-{self.construct_id}"
        self._cells: dict[BlockPos, Cell] = {}
        for cell in cells:
            if cell.position in self._cells:
                raise ValueError(f"duplicate cell at {cell.position} in construct {self.name}")
            self._cells[cell.position] = cell
        if not self._cells:
            raise ValueError("a simulated construct must contain at least one cell")
        #: logical timestamp, incremented whenever a player modifies the construct
        self.modification_counter = 0
        #: simulation step counter (how many ticks this construct has been simulated)
        self.step = 0
        # The cell set never changes after construction, so the sorted cell
        # list and the adjacency map are computed once and reused by the
        # simulator's hot loop.
        self._sorted_cells = [self._cells[pos] for pos in sorted(self._cells)]
        self._adjacency: dict[BlockPos, list[BlockPos]] | None = None

    # -- structure ----------------------------------------------------------------

    @property
    def cells(self) -> list[Cell]:
        return self._sorted_cells

    def adjacency(self) -> dict[BlockPos, list[BlockPos]]:
        """Neighbour positions (within the construct) per cell, cached."""
        if self._adjacency is None:
            self._adjacency = {
                pos: [p for p in pos.neighbours() if p in self._cells]
                for pos in self._cells
            }
        return self._adjacency

    @property
    def positions(self) -> list[BlockPos]:
        return sorted(self._cells)

    @property
    def block_count(self) -> int:
        return len(self._cells)

    def cell_at(self, pos: BlockPos) -> Cell:
        if pos not in self._cells:
            raise KeyError(f"construct {self.name} has no cell at {pos}")
        return self._cells[pos]

    def contains(self, pos: BlockPos) -> bool:
        return pos in self._cells

    def neighbours_of(self, pos: BlockPos) -> list[Cell]:
        """Cells adjacent (6-connectivity) to ``pos`` within this construct."""
        return [self._cells[p] for p in pos.neighbours() if p in self._cells]

    def bounding_box(self) -> tuple[BlockPos, BlockPos]:
        xs = [p.x for p in self._cells]
        ys = [p.y for p in self._cells]
        zs = [p.z for p in self._cells]
        return BlockPos(min(xs), min(ys), min(zs)), BlockPos(max(xs), max(ys), max(zs))

    def anchor(self) -> BlockPos:
        """A representative position (minimum corner) used for chunk assignment."""
        return self.bounding_box()[0]

    # -- state --------------------------------------------------------------------

    def snapshot(self) -> ConstructState:
        """An immutable snapshot of the current cell states."""
        return ConstructState(step=self.step, states={p: c.state for p, c in self._cells.items()})

    def apply_state(self, state: ConstructState | Mapping[BlockPos, int], step: int | None = None) -> None:
        """Overwrite cell states from a snapshot (used when applying speculation)."""
        if isinstance(state, ConstructState):
            values: Mapping[BlockPos, int] = state.states
            new_step = state.step if step is None else step
        else:
            values = state
            if step is None:
                raise ValueError("step must be provided when applying a raw state mapping")
            new_step = step
        unknown = set(values) - set(self._cells)
        if unknown:
            raise KeyError(f"state refers to positions not in construct {self.name}: {sorted(unknown)[:3]}")
        for pos, value in values.items():
            self._cells[pos].state = int(value)
        self.step = int(new_step)

    def apply_state_unchecked(self, values: Mapping[BlockPos, int], step: int) -> None:
        """Overwrite cell states without validating the position set.

        Internal fast path for the speculative merge loop, which applies states
        that were produced from this construct's own structure and therefore
        cannot reference unknown positions.  Everyone else should use
        :meth:`apply_state`.
        """
        cells = self._cells
        for pos, value in values.items():
            cells[pos].state = value
        self.step = int(step)

    def apply_values(self, values: list[int], step: int) -> None:
        """Overwrite cell states from a list aligned with :attr:`cells` order.

        The fastest merge path: callers that repeatedly re-apply the same
        snapshots (looping speculative sequences) align the values once and
        skip the per-cell position hashing of :meth:`apply_state_unchecked`.
        """
        for cell, value in zip(self._sorted_cells, values):
            cell.state = value
        self.step = step

    def copy_state_from(self, other: "SimulatedConstruct") -> None:
        """Copy cell states (and the step counter) from a structurally identical construct.

        Cells are matched by their sorted order, so the two constructs may sit
        at different world positions as long as their shapes match.  Used to
        share one functional simulation between identical constructs.
        """
        if other.block_count != self.block_count:
            raise ValueError(
                f"cannot copy state between constructs of different sizes "
                f"({other.block_count} vs {self.block_count})"
            )
        for own_cell, other_cell in zip(self.cells, other.cells):
            if own_cell.component is not other_cell.component:
                raise ValueError("cannot copy state between structurally different constructs")
            own_cell.state = other_cell.state
        self.step = other.step

    # -- player interaction ---------------------------------------------------------

    def player_modify(self, pos: BlockPos, new_state: int | None = None) -> int:
        """Record a player modification of the construct.

        Returns the new modification counter (the logical timestamp attached
        to subsequent offload requests).  If ``new_state`` is given the cell's
        state is changed (e.g. toggling a lever); otherwise only the timestamp
        advances (e.g. the player changed nearby terrain).
        """
        if new_state is not None:
            self.cell_at(pos).state = int(new_state)
        elif pos not in self._cells:
            # Terrain edits adjacent to the construct still invalidate speculation.
            pass
        self.modification_counter += 1
        return self.modification_counter

    def toggle_lever(self, pos: BlockPos) -> int:
        """Toggle a lever cell and advance the modification counter."""
        cell = self.cell_at(pos)
        if cell.component is not ComponentType.LEVER:
            raise ValueError(f"cell at {pos} is a {cell.component.value}, not a lever")
        return self.player_modify(pos, 0 if cell.state > 0 else 1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulatedConstruct(id={self.construct_id}, name={self.name!r}, "
            f"blocks={self.block_count}, step={self.step})"
        )
