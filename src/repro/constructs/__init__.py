"""Simulated constructs (SCs).

Simulated constructs are the player-built "programs" of an MVE: collections of
stateful blocks (power sources, wires, lamps, torches, repeaters, pistons,
hoppers) whose state evolves every simulation step.  They are the dominant
source of server load in the paper's key experiment and the unit of
computation Servo offloads to serverless functions.

The package provides the component behaviour rules, the construct container,
a synchronous step simulator, state snapshots/hashing, and a library of
construct builders (clocks, oscillators, wire lines, lamp grids, farms and the
sized constructs of Section IV-G).
"""

from repro.constructs.circuit import Cell, SimulatedConstruct
from repro.constructs.compiled import CompiledCircuit, compile_circuit
from repro.constructs.components import ComponentType, component_from_block
from repro.constructs.library import (
    build_adder,
    build_clock,
    build_counter_farm,
    build_lamp_grid,
    build_oscillator,
    build_piston_door,
    build_sized_construct,
    build_wire_line,
    standard_construct,
)
from repro.constructs.simulator import (
    ConstructSimulator,
    ReferenceConstructSimulator,
    SimulationTrace,
)
from repro.constructs.state import ConstructState, state_hash

__all__ = [
    "ComponentType",
    "component_from_block",
    "Cell",
    "SimulatedConstruct",
    "CompiledCircuit",
    "compile_circuit",
    "ConstructSimulator",
    "ReferenceConstructSimulator",
    "SimulationTrace",
    "ConstructState",
    "state_hash",
    "build_adder",
    "build_clock",
    "build_oscillator",
    "build_piston_door",
    "build_wire_line",
    "build_lamp_grid",
    "build_counter_farm",
    "build_sized_construct",
    "standard_construct",
]
