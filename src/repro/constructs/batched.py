"""Batched circuit stepping: every active circuit in one numpy step.

:class:`~repro.constructs.compiled.CompiledCircuit` made a *single* construct
step a tight integer loop; backends still pay that loop once per circuit per
tick.  The :class:`BatchedCircuitStepper` packs the state vectors of *all*
circuits it is handed into one flat ``int64`` batch and advances every circuit
with a fixed number of vectorised numpy operations, independent of the circuit
count.  Fixed points (quiescence) are detected per circuit, so the backends'
skip logic keeps working unchanged.

Bit-identity is the contract: every arithmetic branch below mirrors
``CompiledCircuit.step`` (which itself mirrors ``components.py``) on plain
int64 integers, so a batched step produces exactly the state bytes a
per-circuit step would — the equivalence suite pins this against the
reference simulator.  Circuits whose batch is too small to amortise the numpy
call overhead fall back to the per-circuit compiled path, which stays fully
supported.

Layout: cells of all circuits are concatenated into one flat vector (no
padding — circuit sizes in real worlds vary by an order of magnitude, so a
rectangular batch would be mostly padding).  Per-component *index arrays* are
precomputed so each vectorised operation touches only the cells it applies
to; neighbour inputs come from a single flat gather against an output vector
with one trailing sentinel slot that always holds 0 (cells with fewer than
the maximum neighbour count point their spare slots there).  The packed
layout is cached while the circuit set and modification counters are
unchanged; cell *states* are re-read from the live cells on every step, which
keeps the construct the single source of truth exactly as the compiled path
does.

The arithmetic itself lives in :func:`advance_states`, a pure function of a
:class:`CircuitBatchLayout` (arrays only, picklable) and a state vector.
That split is what lets :mod:`repro.cluster.parallel` ship slices of a batch
to worker processes: the workers run the exact same kernel, so a scattered
step is bit-identical to a local one by construction.
"""

from __future__ import annotations

import numpy as np

from repro.constructs.compiled import (
    _CLOCK,
    _COMPARATOR,
    _HOPPER,
    _LAMP,
    _LEVER,
    _PISTON,
    _POWER_SOURCE,
    _REPEATER,
    _TORCH,
    _WIRE,
    CompiledCircuit,
)
from repro.constructs.components import MAX_POWER
from repro.lint.markers import pure_kernel

#: below this many circuits a batched step costs more than it saves
DEFAULT_MIN_BATCH = 8


def _batch_signature(circuits: list[CompiledCircuit]) -> tuple:
    """Identity + modification fingerprint of a circuit batch.

    Circuit objects are cached on their constructs for the construct's
    lifetime, so ``id`` is a stable identity while the batch holds strong
    references to the circuits.
    """
    return tuple(
        (id(circuit), circuit.construct.modification_counter) for circuit in circuits  # det: allow[DET005] identity key compared only for equality, never ordered or persisted; the batch holds strong refs
    )


class CircuitBatchLayout:
    """The state-independent arrays of one packed batch (picklable).

    Holds only numpy arrays and scalars — no cells, constructs or circuits —
    so a layout can be pickled to a worker process once and reused there.
    """

    __slots__ = (
        "total",
        "row_starts",
        "flat_gather",
        "wirelike_idx",
        "binary_idx",
        "repeater_idx",
        "repeater_shift",
        "repeater_mask",
        "clock_idx",
        "clock_period",
        "power_idx",
        "wire_idx",
        "switch_idx",
        "torch_idx",
        "hopper_idx",
        "comparator_idx",
    )

    def __init__(self, circuits: list[CompiledCircuit]) -> None:
        codes_list: list[int] = []
        params_list: list[int] = []
        masks_list: list[int] = []
        row_starts = []
        neighbour_lists: list[tuple[int, ...]] = []
        offset = 0
        for circuit in circuits:
            row_starts.append(offset)
            codes_list.extend(circuit._codes)
            params_list.extend(circuit._params)
            masks_list.extend(circuit._masks)
            neighbour_lists.extend(
                tuple(offset + index for index in neighbours)
                for neighbours in circuit._neighbours
            )
            offset += len(circuit._cells)
        total = offset
        self.total = total
        self.row_starts = np.asarray(row_starts, dtype=np.int64)

        degree = max((len(n) for n in neighbour_lists), default=0)
        degree = max(degree, 1)
        # Spare neighbour slots point at the sentinel output (index ``total``),
        # which is always 0, so a plain max over the gather axis is correct.
        gather = np.full((total, degree), total, dtype=np.int64)
        for index, neighbours in enumerate(neighbour_lists):
            gather[index, : len(neighbours)] = neighbours
        self.flat_gather = gather

        codes = np.asarray(codes_list, dtype=np.int64)
        params = np.asarray(params_list, dtype=np.int64)
        masks = np.asarray(masks_list, dtype=np.int64)
        self.wirelike_idx = np.nonzero((codes == _WIRE) | (codes == _COMPARATOR))[0]
        self.binary_idx = np.nonzero((codes == _TORCH) | (codes == _LEVER))[0]
        self.repeater_idx = np.nonzero(codes == _REPEATER)[0]
        self.repeater_shift = params[self.repeater_idx] - 1
        self.repeater_mask = masks[self.repeater_idx]
        self.clock_idx = np.nonzero(codes == _CLOCK)[0]
        self.clock_period = params[self.clock_idx]
        self.power_idx = np.nonzero(codes == _POWER_SOURCE)[0]
        self.wire_idx = np.nonzero(codes == _WIRE)[0]
        self.switch_idx = np.nonzero((codes == _LAMP) | (codes == _PISTON))[0]
        self.torch_idx = np.nonzero(codes == _TORCH)[0]
        self.hopper_idx = np.nonzero(codes == _HOPPER)[0]
        self.comparator_idx = np.nonzero(codes == _COMPARATOR)[0]


@pure_kernel
def advance_states(layout: CircuitBatchLayout, states: np.ndarray) -> np.ndarray:
    """One synchronous step of every packed circuit: pure integer numpy math.

    A pure function of (layout, states): no construct access, no randomness,
    no global state — safe to execute in a worker process and bit-identical
    to running ``CompiledCircuit.step`` on each circuit individually.
    """
    # Output pass (mirrors the first loop of CompiledCircuit.step).
    outputs = np.zeros(layout.total + 1, dtype=np.int64)
    idx = layout.wirelike_idx
    outputs[idx] = np.clip(states[idx], 0, MAX_POWER)
    idx = layout.binary_idx
    outputs[idx] = np.where(states[idx] > 0, MAX_POWER, 0)
    idx = layout.repeater_idx
    outputs[idx] = np.where(states[idx] & 1, MAX_POWER, 0)
    idx = layout.clock_idx
    period = layout.clock_period
    outputs[idx] = np.where((states[idx] % period) < period // 2, MAX_POWER, 0)
    outputs[layout.power_idx] = MAX_POWER

    # Neighbour max via one flat gather (sentinel slot stays 0).
    input_power = outputs[layout.flat_gather].max(axis=1)

    # Next-state pass (mirrors the second loop of CompiledCircuit.step).
    # Lever cells keep their state, so the copy is their default.
    new_states = states.copy()
    idx = layout.wire_idx
    power = input_power[idx]
    new_states[idx] = np.where(power > 1, power - 1, 0)
    idx = layout.switch_idx
    new_states[idx] = (input_power[idx] > 0).astype(np.int64)
    idx = layout.torch_idx
    new_states[idx] = np.where(input_power[idx] == 0, MAX_POWER, 0)
    idx = layout.clock_idx
    new_states[idx] = (states[idx] + 1) % period
    idx = layout.hopper_idx
    new_states[idx] = np.where(
        input_power[idx] > 0, (states[idx] + 1) % 65536, states[idx]
    )
    idx = layout.repeater_idx
    bit = (input_power[idx] > 0).astype(np.int64)
    new_states[idx] = (
        (states[idx] >> 1) | (bit << layout.repeater_shift)
    ) & layout.repeater_mask
    idx = layout.comparator_idx
    new_states[idx] = input_power[idx]
    new_states[layout.power_idx] = MAX_POWER
    return new_states


class _PackedBatch:
    """A cached layout plus the live-cell bindings of one circuit batch."""

    __slots__ = ("signature", "circuits", "flat_cells", "layout")

    def __init__(self, circuits: list[CompiledCircuit]) -> None:
        self.circuits = circuits
        self.signature = _batch_signature(circuits)
        flat_cells = []
        for circuit in circuits:
            flat_cells.extend(circuit._cells)
        self.flat_cells = flat_cells
        self.layout = CircuitBatchLayout(circuits)


class BatchedCircuitStepper:
    """Steps many compiled circuits at once with vectorised integer math."""

    def __init__(self, min_batch_circuits: int = DEFAULT_MIN_BATCH) -> None:
        self.min_batch_circuits = int(min_batch_circuits)
        self._packed: _PackedBatch | None = None
        #: how many circuit-steps ran vectorised vs through the fallback path
        self.batched_steps = 0
        self.fallback_steps = 0

    def pack(self, circuits: list[CompiledCircuit]) -> _PackedBatch:
        """The cached packed form of ``circuits``, params refreshed.

        Honours pending player edits exactly like ``CompiledCircuit.step()``
        before fingerprinting, so an edit always forces a repack.
        """
        for circuit in circuits:
            if circuit.construct.modification_counter != circuit._params_modification:
                circuit._refresh_params()
        packed = self._packed
        if packed is None or packed.signature != _batch_signature(circuits):
            packed = _PackedBatch(circuits)
            self._packed = packed
        return packed

    @staticmethod
    def read_states(packed: _PackedBatch) -> np.ndarray:
        """The batch's current state vector, read from the live cells."""
        return np.fromiter(
            (cell.state for cell in packed.flat_cells),
            dtype=np.int64,
            count=packed.layout.total,
        )

    def apply_new_states(
        self, packed: _PackedBatch, states: np.ndarray, new_states: np.ndarray
    ) -> list[bool]:
        """Write a computed step back to the cells; return fixed-point flags.

        Writes back only the cells that changed (usually few) and advances
        every construct's step counter, exactly like the per-circuit path.
        """
        changed = new_states != states
        # Per-circuit fixed-point flags: any changed cell in the segment.
        row_changed = np.logical_or.reduceat(changed, packed.layout.row_starts)

        changed_positions = np.nonzero(changed)[0]
        if changed_positions.size:
            flat_cells = packed.flat_cells
            changed_values = new_states[changed_positions].tolist()
            for position, value in zip(changed_positions.tolist(), changed_values):
                flat_cells[position].state = value
        for circuit in packed.circuits:
            circuit.construct.step += 1
        self.batched_steps += len(packed.circuits)
        return np.logical_not(row_changed).tolist()

    def step_batch(self, circuits: list[CompiledCircuit]) -> list[bool]:
        """Advance every circuit one step; returns per-circuit fixed-point flags.

        Semantically identical to calling ``circuit.step()`` on each circuit
        in order (the circuits are independent, so the order cannot matter).
        """
        if len(circuits) < self.min_batch_circuits:
            self.fallback_steps += len(circuits)
            return [circuit.step() for circuit in circuits]
        packed = self.pack(circuits)
        states = self.read_states(packed)
        new_states = advance_states(packed.layout, states)
        return self.apply_new_states(packed, states, new_states)
