"""Assembly of zone-partitioned clusters.

A cluster is N shards built from the same parts as the single-server variants
(via :class:`~repro.server.builder.ServerBuilder`), each restricted to one
zone of a :class:`~repro.cluster.partition.WorldPartitioner`:

* ``build_servo_cluster`` — Servo shards sharing one FaaS platform and one
  blob store; player migrations serialize through the shared blob (paying its
  real round-trip latency), while each shard keeps its own cache, prefetcher
  and speculation state.
* ``build_opencraft_cluster`` — baseline shards sharing one disk store (a
  shared network disk), the natural multi-server deployment of Opencraft.

All shards share the caller's :class:`~repro.sim.SimulationEngine` and a
player-id iterator, so player ids are unique across the whole world.
"""

from __future__ import annotations

import itertools

from repro.api.hosts import register_host
from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.parallel import make_executor
from repro.cluster.partition import WorldPartitioner
from repro.core.config import ServoConfig
from repro.core.servo import build_servo_server, make_servo_blob, make_servo_platform
from repro.server.builder import ServerBuilder
from repro.server.config import GameConfig
from repro.server.costmodel import OPENCRAFT_COST_MODEL
from repro.sim.engine import SimulationEngine
from repro.storage.local import LocalDiskStorage

#: zone strip width used by the cluster experiments (16 chunks = 256 blocks)
DEFAULT_ZONE_WIDTH_CHUNKS = 16


@register_host("servo-cluster", cluster=True)
def build_servo_cluster(
    engine: SimulationEngine,
    game_config: GameConfig | None = None,
    servo_config: ServoConfig | None = None,
    shards: int = 2,
    zone_width_chunks: int = DEFAULT_ZONE_WIDTH_CHUNKS,
    workers: int = 1,
) -> ClusterCoordinator:
    """Build a Servo cluster: N zone shards over one platform and blob store.

    ``workers`` > 1 runs each round's pure compute (construct batches, chunk
    content) on a process pool; virtual results are bit-identical for every
    value (see :mod:`repro.cluster.parallel`).
    """
    game_config = game_config or GameConfig()
    servo_config = servo_config or ServoConfig()
    partitioner = WorldPartitioner(shards, zone_width_chunks=zone_width_chunks)
    executor = make_executor(workers)
    platform = make_servo_platform(engine, servo_config, executor=executor)
    blob = make_servo_blob(engine, servo_config)
    player_ids = itertools.count(1)

    def shard_factory(zone: int, generation: int) -> "GameServer":
        """A (replacement) shard for ``zone``; generation 0 is the original.

        Replacements share the cluster's platform, blob store and player-id
        iterator, exactly like the originals — a respawned shard rejoins the
        same serverless substrate the crashed one used.
        """
        suffix = f"-r{generation}" if generation else ""
        return build_servo_server(
            engine,
            game_config,
            servo_config,
            platform=platform,
            blob=blob,
            name=f"servo-shard-{zone}{suffix}",
            region=partitioner.region(zone),
            player_ids=player_ids,
        )

    servers = [shard_factory(zone, 0) for zone in range(partitioner.shard_count)]
    return ClusterCoordinator(
        engine=engine,
        shards=servers,
        partitioner=partitioner,
        config=game_config,
        session_store=blob,
        name="servo-cluster",
        executor=executor,
        shard_factory=shard_factory,
    )


@register_host("opencraft-cluster", cluster=True)
def build_opencraft_cluster(
    engine: SimulationEngine,
    game_config: GameConfig | None = None,
    shards: int = 2,
    zone_width_chunks: int = DEFAULT_ZONE_WIDTH_CHUNKS,
    workers: int = 1,
) -> ClusterCoordinator:
    """Build an Opencraft cluster: N all-local zone shards over one shared disk."""
    game_config = game_config or GameConfig()
    partitioner = WorldPartitioner(shards, zone_width_chunks=zone_width_chunks)
    executor = make_executor(workers)
    shared_disk = LocalDiskStorage(rng=engine.rng("cluster-disk"))
    player_ids = itertools.count(1)

    def shard_factory(zone: int, generation: int) -> "GameServer":
        suffix = f"-r{generation}" if generation else ""
        return (
            ServerBuilder(engine, game_config, name=f"opencraft-shard-{zone}{suffix}")
            .with_cost_model(OPENCRAFT_COST_MODEL)
            .with_storage(shared_disk)
            .with_region(partitioner.region(zone))
            .with_player_ids(player_ids)
            # Shards share the coordinator's executor (terrain content may
            # come from the pool); in cluster rounds the coordinator drives
            # stepping.
            .with_executor(executor)
            .build()
        )

    servers = [shard_factory(zone, 0) for zone in range(partitioner.shard_count)]
    return ClusterCoordinator(
        engine=engine,
        shards=servers,
        partitioner=partitioner,
        config=game_config,
        session_store=shared_disk,
        name="opencraft-cluster",
        executor=executor,
        shard_factory=shard_factory,
    )
