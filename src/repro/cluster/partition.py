"""World partitioning: grid zones over chunk coordinates.

A cluster splits the (horizontally unbounded) voxel world into vertical
strips of chunks along the ``cx`` axis.  Each strip is one *zone*, owned by
exactly one shard.  The two outermost zones extend to infinity so every chunk
in the world has exactly one owner.

Zone-edge determinism: a chunk whose ``cx`` lies exactly on a zone boundary
belongs to the zone on the *right* (floor division), so an avatar landing
exactly on a zone edge always has a well-defined owner and two runs with the
same seed produce the same migration schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.server.chunkmanager import OwnershipRegion
from repro.world.coords import CHUNK_SIZE, BlockPos, ChunkPos, block_to_chunk


@dataclass(frozen=True)
class ZoneRegion(OwnershipRegion):
    """One shard's ownership zone: a strip of chunks along the x axis.

    ``min_cx`` is inclusive, ``max_cx`` exclusive; ``None`` means unbounded
    (the outermost zones own everything beyond the last boundary).
    """

    zone_id: int
    min_cx: Optional[int]
    max_cx: Optional[int]

    def contains(self, position: ChunkPos) -> bool:
        if self.min_cx is not None and position.cx < self.min_cx:
            return False
        if self.max_cx is not None and position.cx >= self.max_cx:
            return False
        return True

    def contains_block(self, position: BlockPos) -> bool:
        return self.contains(block_to_chunk(position))


class WorldPartitioner:
    """Partitions the world into ``shard_count`` contiguous chunk strips.

    Interior boundaries sit at ``origin_cx + i * zone_width_chunks`` for
    ``i in 1..shard_count-1``; zone 0 extends to ``-inf`` and the last zone to
    ``+inf``.  With one shard there is a single unbounded zone (the cluster
    degenerates to the paper's single-server deployment).
    """

    def __init__(
        self,
        shard_count: int,
        zone_width_chunks: int = 16,
        origin_cx: int = 0,
    ) -> None:
        if shard_count < 1:
            raise ValueError("a cluster needs at least one shard")
        if zone_width_chunks < 1:
            raise ValueError("zone_width_chunks must be at least one chunk")
        self.shard_count = int(shard_count)
        self.zone_width_chunks = int(zone_width_chunks)
        self.origin_cx = int(origin_cx)

    # -- ownership -------------------------------------------------------------------

    def zone_of(self, position: ChunkPos) -> int:
        """The zone owning a chunk (clamped: outer zones are unbounded)."""
        if self.shard_count == 1:
            return 0
        index = (position.cx - self.origin_cx) // self.zone_width_chunks
        return max(0, min(self.shard_count - 1, index))

    def zone_of_block(self, position: BlockPos) -> int:
        """The zone owning a block position."""
        return self.zone_of(block_to_chunk(position))

    def region(self, zone_id: int) -> ZoneRegion:
        """The ownership region of one zone."""
        if not 0 <= zone_id < self.shard_count:
            raise ValueError(
                f"zone_id must be in [0, {self.shard_count}), got {zone_id}"
            )
        if self.shard_count == 1:
            return ZoneRegion(zone_id=0, min_cx=None, max_cx=None)
        min_cx = None if zone_id == 0 else self.origin_cx + zone_id * self.zone_width_chunks
        max_cx = (
            None
            if zone_id == self.shard_count - 1
            else self.origin_cx + (zone_id + 1) * self.zone_width_chunks
        )
        return ZoneRegion(zone_id=zone_id, min_cx=min_cx, max_cx=max_cx)

    def regions(self) -> list[ZoneRegion]:
        return [self.region(zone_id) for zone_id in range(self.shard_count)]

    # -- spawn placement -------------------------------------------------------------

    def zone_spawn(self, zone_id: int, base: BlockPos) -> BlockPos:
        """A spawn position near the interior center of a zone.

        Unbounded outer zones use the same width-``W`` cell adjacent to their
        inner boundary, so spawns stay near the populated middle of the world.
        """
        if not 0 <= zone_id < self.shard_count:
            raise ValueError(
                f"zone_id must be in [0, {self.shard_count}), got {zone_id}"
            )
        if self.shard_count == 1:
            return base
        center_cx = self.origin_cx + zone_id * self.zone_width_chunks + self.zone_width_chunks // 2
        return BlockPos(center_cx * CHUNK_SIZE + CHUNK_SIZE // 2, base.y, base.z)

    def boundary_spawn(self, boundary_index: int, base: BlockPos) -> BlockPos:
        """A spawn position just left of an interior zone boundary.

        Bots spawned here wander across the boundary under the paper's
        bounded-area behaviour, exercising the player-migration protocol.
        There are ``shard_count - 1`` interior boundaries.
        """
        if self.shard_count < 2:
            raise ValueError("a single-shard world has no interior boundaries")
        if not 0 <= boundary_index < self.shard_count - 1:
            raise ValueError(
                f"boundary_index must be in [0, {self.shard_count - 1}), got {boundary_index}"
            )
        boundary_cx = self.origin_cx + (boundary_index + 1) * self.zone_width_chunks
        return BlockPos(boundary_cx * CHUNK_SIZE - 2, base.y, base.z)

    def boundary_count(self) -> int:
        return self.shard_count - 1
