"""Zone-partitioned multi-server clusters.

The paper raises the ceiling of *one* MVE server by offloading constructs,
terrain and storage to serverless services; this layer raises the ceiling of
the *world* by partitioning it into zones served by cooperating game servers
that share one simulation engine and (for Servo) one FaaS platform and blob
store:

* :mod:`repro.cluster.partition` — grid zones over chunk coordinates and the
  per-shard ownership regions derived from them.
* :mod:`repro.cluster.coordinator` — virtual-time lockstep ticking of all
  shards and the player-migration protocol (session state serialized through
  the shared storage service when an avatar crosses a zone boundary).
* :mod:`repro.cluster.assembly` — cluster construction for the Servo and
  Opencraft variants, built from the same :class:`~repro.server.ServerBuilder`
  parts as the single-server stack.
"""

from repro.cluster.assembly import (
    DEFAULT_ZONE_WIDTH_CHUNKS,
    build_opencraft_cluster,
    build_servo_cluster,
)
from repro.cluster.coordinator import (
    ClusterChunks,
    ClusterCoordinator,
    ClusterSession,
    MigrationRecord,
)
from repro.cluster.partition import WorldPartitioner, ZoneRegion

__all__ = [
    "WorldPartitioner",
    "ZoneRegion",
    "ClusterChunks",
    "ClusterCoordinator",
    "ClusterSession",
    "MigrationRecord",
    "build_servo_cluster",
    "build_opencraft_cluster",
    "DEFAULT_ZONE_WIDTH_CHUNKS",
]
