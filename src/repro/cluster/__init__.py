"""Zone-partitioned multi-server clusters.

The paper raises the ceiling of *one* MVE server by offloading constructs,
terrain and storage to serverless services; this layer raises the ceiling of
the *world* by partitioning it into zones served by cooperating game servers
that share one simulation engine and (for Servo) one FaaS platform and blob
store:

* :mod:`repro.cluster.partition` — grid zones over chunk coordinates and the
  per-shard ownership regions derived from them.
* :mod:`repro.cluster.coordinator` — virtual-time lockstep ticking of all
  shards and the player-migration protocol (session state serialized through
  the shared storage service when an avatar crosses a zone boundary).
* :mod:`repro.cluster.assembly` — cluster construction for the Servo and
  Opencraft variants, built from the same :class:`~repro.server.ServerBuilder`
  parts as the single-server stack.
* :mod:`repro.cluster.parallel` — the round executors (serial and
  process-pool) cluster rounds run their pure compute on.

The re-exports resolve lazily (PEP 562): :mod:`repro.cluster.parallel` has no
dependency on the server layer and is imported *by* it, so eagerly importing
:mod:`repro.cluster.assembly` here would close an import cycle through
``repro.server``.
"""

_EXPORTS = {
    "WorldPartitioner": "repro.cluster.partition",
    "ZoneRegion": "repro.cluster.partition",
    "ClusterChunks": "repro.cluster.coordinator",
    "ClusterCoordinator": "repro.cluster.coordinator",
    "ClusterSession": "repro.cluster.coordinator",
    "MigrationRecord": "repro.cluster.coordinator",
    "build_servo_cluster": "repro.cluster.assembly",
    "build_opencraft_cluster": "repro.cluster.assembly",
    "DEFAULT_ZONE_WIDTH_CHUNKS": "repro.cluster.assembly",
    "ShardRoundExecutor": "repro.cluster.parallel",
    "SerialExecutor": "repro.cluster.parallel",
    "ParallelExecutor": "repro.cluster.parallel",
    "TerrainTask": "repro.cluster.parallel",
    "make_executor": "repro.cluster.parallel",
}

__all__ = list(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
