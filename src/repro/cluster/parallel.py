"""Parallel wall-clock execution of cluster rounds, determinism-gated.

A :class:`ShardRoundExecutor` is the host-side engine a
:class:`~repro.cluster.coordinator.ClusterCoordinator` (or a single
:class:`~repro.server.gameloop.GameServer`) runs its per-round **pure
compute** on:

* the construct batches the backends expose through
  :class:`~repro.server.sc_engine.ConstructTickPlan` (integer circuit
  stepping — no randomness, no shared state), and
* terrain chunk generation, which is a pure function of
  ``(world type, seed, chunk position)``.

Two implementations share that surface.  :class:`SerialExecutor` runs
everything inline and is byte-for-byte the pre-executor behaviour.
:class:`ParallelExecutor` keeps a persistent fork-based process pool of
``workers`` processes: construct batches are scattered in contiguous,
order-preserving slices across the pool and the flags merged back in shard
order, and terrain chunks are pre-generated in the pool between the virtual
request and completion times, overlapping generation with simulation.

Why only pure compute?  The shards of a cluster share named RNG streams (the
FaaS platform, the blob store, the cluster disk, the local terrain latency
stream), and the simulation's determinism contract hashes every tick
duration: any reordering of draws across shards changes virtual results.  A
full shard-per-worker fan-out would interleave those draws
nondeterministically, so every draw stays on the coordinator, in serial
shard order, and the workers only ever execute closed-form functions of
their inputs.  That is what makes the determinism gate hold *by
construction*: ``workers=1`` and ``workers=N`` run the same kernels on the
same inputs and must produce identical hashes, which the cluster benchmark
and CI assert on every run.

Small inputs are not worth a round-trip through pickling and the pool:
batches below :data:`MIN_CIRCUITS_TO_SCATTER` circuits (and all batches on a
single-worker executor) step inline through the same
:class:`~repro.constructs.batched.BatchedCircuitStepper` the serial path
uses, so enabling workers on a small world costs almost nothing.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Optional

from repro.constructs.batched import BatchedCircuitStepper, advance_states
from repro.lint.markers import pure_kernel
from repro.world.chunk import Chunk
from repro.world.coords import ChunkPos
from repro.world.terrain import TerrainGenerator, make_terrain_generator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from concurrent.futures import Future

    from repro.constructs.compiled import CompiledCircuit

#: scattering fewer circuits than this costs more in pickling than it saves
MIN_CIRCUITS_TO_SCATTER = 16

# -- worker-side tasks (module level so they pickle by reference) --------------------

#: per-process generator cache, mirroring a warm worker reusing its generator
_WORKER_GENERATORS: dict[tuple[str, int], TerrainGenerator] = {}


def _worker_generator(world_type: str, seed: int) -> TerrainGenerator:
    key = (world_type, seed)
    generator = _WORKER_GENERATORS.get(key)
    if generator is None:
        generator = _WORKER_GENERATORS[key] = make_terrain_generator(world_type, seed=seed)  # det: allow[DET004] per-process warm-generator memo; every chunk is a pure function of (world_type, seed, position)
    return generator


@pure_kernel
def _generate_chunk_task(world_type: str, seed: int, cx: int, cz: int) -> Chunk:
    """Generate one chunk in a worker: pure in (world type, seed, position)."""
    return _worker_generator(world_type, seed).generate_chunk(ChunkPos(cx, cz))


@pure_kernel
def _advance_batch_task(layout, states):
    """Step one packed batch slice in a worker: pure in (layout, states)."""
    return advance_states(layout, states)


# -- terrain handles -----------------------------------------------------------------


class TerrainTask:
    """A chunk being produced by an executor, resolved when actually needed.

    Providers submit at (virtual) request time and resolve at completion
    time; with a process pool in between, the chunk is computed while the
    simulation keeps ticking.
    """

    def resolve(self) -> Chunk:
        raise NotImplementedError


class _InlineTerrainTask(TerrainTask):
    """Serial executor's handle: generation simply happens at resolve time."""

    __slots__ = ("_generator", "_position")

    def __init__(self, generator: TerrainGenerator, position: ChunkPos) -> None:
        self._generator = generator
        self._position = position

    def resolve(self) -> Chunk:
        return self._generator.generate_chunk(self._position)


class _PooledTerrainTask(TerrainTask):
    """Parallel executor's handle: a future, with an inline fallback."""

    __slots__ = ("_future", "_spec")

    def __init__(self, future: "Future", spec: tuple[str, int, int, int]) -> None:
        self._future = future
        self._spec = spec

    def resolve(self) -> Chunk:
        try:
            return self._future.result()
        except Exception:
            # A lost worker must not lose terrain: regenerate inline (the
            # content is pure, so the fallback chunk is identical).
            world_type, seed, cx, cz = self._spec
            return _generate_chunk_task(world_type, seed, cx, cz)


# -- executors -----------------------------------------------------------------------


class ShardRoundExecutor:
    """Where a round's pure compute runs: inline, or on a process pool."""

    #: worker process count (1 means everything runs inline)
    workers: int = 1

    def step_circuits(self, circuits: list["CompiledCircuit"], slot: int = 0) -> list[bool]:
        """Advance every circuit one step; returns per-circuit fixed-point flags.

        ``slot`` identifies the caller (one per cluster shard) so each
        shard's packed-batch cache survives between rounds instead of being
        evicted by the next shard's batch.
        """
        raise NotImplementedError

    def submit_terrain(self, generator: TerrainGenerator, position: ChunkPos) -> TerrainTask:
        """Start generating a chunk; the returned task resolves to it."""
        raise NotImplementedError

    def close(self) -> None:
        """Release worker processes (no-op for inline executors)."""


class SerialExecutor(ShardRoundExecutor):
    """Everything inline: exactly the behaviour of the pre-executor code."""

    workers = 1

    def __init__(self) -> None:
        self._steppers: dict[int, BatchedCircuitStepper] = {}

    def _stepper(self, slot: int) -> BatchedCircuitStepper:
        stepper = self._steppers.get(slot)
        if stepper is None:
            stepper = self._steppers[slot] = BatchedCircuitStepper()
        return stepper

    def step_circuits(self, circuits: list["CompiledCircuit"], slot: int = 0) -> list[bool]:
        if not circuits:
            return []
        return self._stepper(slot).step_batch(circuits)

    def submit_terrain(self, generator: TerrainGenerator, position: ChunkPos) -> TerrainTask:
        return _InlineTerrainTask(generator, position)


class ParallelExecutor(ShardRoundExecutor):
    """A persistent fork-based process pool for rounds' pure compute.

    The pool is created lazily on first use (forking early keeps the child
    images small, but creating it in ``__init__`` would pay the cost even
    for runs that never cross the scatter threshold).  Determinism does not
    depend on the pool at all: the workers run the same
    :func:`~repro.constructs.batched.advance_states` kernel and the same
    terrain generators as the serial path, on inputs fixed before
    submission, and results are merged in submission order.
    """

    def __init__(
        self,
        workers: int,
        min_circuits_to_scatter: int = MIN_CIRCUITS_TO_SCATTER,
        use_pool: Optional[bool] = None,
    ) -> None:
        if workers < 2:
            raise ValueError(f"ParallelExecutor needs at least 2 workers, got {workers}")
        self.workers = int(workers)
        self.min_circuits_to_scatter = int(min_circuits_to_scatter)
        # On a single-core host the pool is pure overhead — the workers
        # time-share the one core and every round-trip adds pickling and IPC
        # on top.  Degrade to inline execution there (results are identical
        # either way; that is the determinism contract).  ``use_pool`` forces
        # the decision for tests and for callers that know better.
        if use_pool is None:
            use_pool = (os.cpu_count() or 1) > 1
        self.pooling_enabled = bool(use_pool)
        self._pool = None
        #: per-(slot, slice) steppers so packed-batch caches persist per shard
        self._slice_steppers: dict[tuple[int, int], BatchedCircuitStepper] = {}
        self._inline = SerialExecutor()

    # -- pool lifecycle ---------------------------------------------------------------

    def _ensure_pool(self):
        if self._pool is None:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context("fork"),
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    # -- construct batches ------------------------------------------------------------

    def _slice_stepper(self, slot: int, index: int) -> BatchedCircuitStepper:
        key = (slot, index)
        stepper = self._slice_steppers.get(key)
        if stepper is None:
            stepper = self._slice_steppers[key] = BatchedCircuitStepper()
        return stepper

    def step_circuits(self, circuits: list["CompiledCircuit"], slot: int = 0) -> list[bool]:
        if not circuits:
            return []
        if not self.pooling_enabled or len(circuits) < self.min_circuits_to_scatter:
            return self._inline.step_circuits(circuits, slot=slot)
        pool = self._ensure_pool()

        # Contiguous, order-preserving slices: concatenating the slices'
        # flags in slice order reproduces the unscattered flag order, and
        # stable fleets keep hitting each slice's packed-batch cache.
        count = len(circuits)
        slices = min(self.workers, count)
        bounds = [(count * i) // slices for i in range(slices + 1)]
        submitted = []
        for index in range(slices):
            part = circuits[bounds[index]:bounds[index + 1]]
            stepper = self._slice_stepper(slot, index)
            packed = stepper.pack(part)
            states = stepper.read_states(packed)
            future = pool.submit(_advance_batch_task, packed.layout, states)
            submitted.append((stepper, packed, states, future))

        flags: list[bool] = []
        for stepper, packed, states, future in submitted:
            try:
                new_states = future.result()
            except Exception:
                # A lost worker falls back to the identical local kernel.
                new_states = advance_states(packed.layout, states)
            flags.extend(stepper.apply_new_states(packed, states, new_states))
        return flags

    # -- terrain ----------------------------------------------------------------------

    def submit_terrain(self, generator: TerrainGenerator, position: ChunkPos) -> TerrainTask:
        if not self.pooling_enabled:
            return _InlineTerrainTask(generator, position)
        spec = (generator.world_type, generator.seed, position.cx, position.cz)
        try:
            future = self._ensure_pool().submit(_generate_chunk_task, *spec)
        except Exception:
            return _InlineTerrainTask(generator, position)
        return _PooledTerrainTask(future, spec)


def make_executor(workers: int) -> ShardRoundExecutor:
    """The executor for a ``workers`` knob value (validated eagerly)."""
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"workers must be at least 1, got {workers}")
    if workers == 1:
        return SerialExecutor()
    return ParallelExecutor(workers)
