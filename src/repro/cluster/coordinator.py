"""Cluster coordination: lockstep shard ticking and player migration.

A :class:`ClusterCoordinator` owns N :class:`~repro.server.GameServer` shards
that share one :class:`~repro.sim.SimulationEngine` (and, for Servo, one FaaS
platform and blob store).  It presents the same driving surface as a single
server — ``connect_player``, ``place_construct``, ``run_for_seconds``,
``tick_records`` — so workloads and scenarios address the cluster exactly as
they address one server; which shard serves a player is an implementation
detail hidden behind :class:`ClusterSession`.

Each cluster *round* ticks every shard at the same virtual start time and
then advances the shared clock once by the slowest shard's duration: the
cluster runs in lockstep and the round duration is the cluster's effective
tick time.  After the shards tick, avatars that crossed a zone boundary are
handed off to the owning shard: the session state is serialized through the
shared session store (write on the source, read on the target), the measured
storage latencies are recorded in the ``migration_ms`` histogram, and the
player keeps its id, avatar state and pending messages across the handoff.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.cluster.parallel import SerialExecutor, ShardRoundExecutor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import ShardKill
from repro.cluster.partition import WorldPartitioner
from repro.constructs.circuit import SimulatedConstruct
from repro.net.message import Message
from repro.obs.records import RecordRing
from repro.server.config import GameConfig
from repro.server.gameloop import GameServer, TickLoop, TickRecord
from repro.server.session import PlayerSession, restore_avatar_state, snapshot_session
from repro.sim.engine import SimulationEngine
from repro.storage.base import StorageBackend
from repro.world.coords import BlockPos


@dataclass(frozen=True)
class ShardRecoveryRecord:
    """One completed shard crash-recovery cycle (kill through respawn)."""

    shard_index: int
    shard_name: str
    killed_round: int
    killed_ms: float
    respawned_round: int
    respawned_ms: float
    #: rounds the zone was down — the recovery's MTTR, in ticks
    downtime_rounds: int
    sessions_recovered: int
    sessions_lost: int
    #: queued-but-unprocessed client messages that died with the shard
    messages_lost: int
    constructs_recovered: int
    #: player-ticks not served while the zone was down
    lost_player_ticks: int


@dataclass
class _DeadShard:
    """Book-keeping for a killed shard awaiting respawn."""

    kill: "ShardKill"
    shard_name: str
    killed_round: int
    killed_ms: float
    lost_player_ticks: int = field(default=0)


@dataclass(frozen=True)
class MigrationRecord:
    """One completed player handoff between shards."""

    round_index: int
    time_ms: float
    player_id: int
    player_name: str
    from_shard: int
    to_shard: int
    latency_ms: float


class ClusterSession:
    """A stable client-facing session handle that survives shard handoffs.

    Bots (and real clients) hold one of these; the coordinator rebinds it to
    a new shard-local :class:`PlayerSession` whenever the player migrates, so
    the client never observes the handoff beyond the recorded latency.
    """

    def __init__(self, session: PlayerSession, shard_index: int) -> None:
        self.player_id = session.player_id
        self.name = session.name
        self.shard_index = shard_index
        self.migrations = 0
        self._session = session
        self._disconnected = False
        #: updates sent through sessions retired by earlier migrations
        self._updates_sent_before = 0

    @property
    def avatar(self):
        return self._session.avatar

    @property
    def disconnected(self) -> bool:
        return self._disconnected

    @property
    def updates_sent(self) -> int:
        return self._updates_sent_before + self._session.updates_sent

    def enqueue(self, message: Message) -> None:
        self._session.enqueue(message)

    def move(self, x: int, y: int, z: int) -> None:
        self._session.move(x, y, z)

    def chat(self, text: str) -> None:
        self._session.chat(text)

    def _rebind(self, session: PlayerSession, shard_index: int) -> None:
        self._updates_sent_before += self._session.updates_sent
        self._session = session
        self.shard_index = shard_index
        self.migrations += 1


class ClusterChunks:
    """Chunk-management facade so scenarios can preload a cluster's world."""

    def __init__(self, coordinator: "ClusterCoordinator") -> None:
        self._coordinator = coordinator

    def preload_area(self, center: BlockPos, radius_blocks: float) -> int:
        """Preload ``radius_blocks`` around every spawn point, per owning shard.

        Each shard's chunk manager filters the area through its ownership
        region, so a chunk is generated exactly once, by its owner.
        """
        loaded = 0
        points = [center] + self._coordinator.spawn_points()
        for shard in self._coordinator.shards:
            for point in points:
                loaded += shard.chunks.preload_area(point, radius_blocks)
        return loaded

    @property
    def pending_chunks(self) -> int:
        return sum(shard.chunks.pending_chunks for shard in self._coordinator.shards)


class ClusterCoordinator(TickLoop):
    """Drives a zone-partitioned multi-server world in virtual-time lockstep."""

    def __init__(
        self,
        engine: SimulationEngine,
        shards: list[GameServer],
        partitioner: WorldPartitioner,
        config: GameConfig,
        session_store: Optional[StorageBackend] = None,
        name: str = "cluster",
        boundary_spawn_every: int = 4,
        executor: Optional[ShardRoundExecutor] = None,
        shard_factory: Optional[Callable[[int, int], GameServer]] = None,
    ) -> None:
        if len(shards) != partitioner.shard_count:
            raise ValueError(
                f"partitioner defines {partitioner.shard_count} zones "
                f"but {len(shards)} shards were provided"
            )
        self.engine = engine
        self.shards = shards
        self.partitioner = partitioner
        self.config = config
        self.session_store = session_store
        self.name = name
        #: where each round's pure compute runs (construct batches); shards
        #: tick through the coordinator's executor rather than their own
        self.executor = executor if executor is not None else SerialExecutor()
        #: every Nth player spawns near a zone boundary (0 disables); the
        #: bounded-area workloads then wander across it, exercising migration
        self.boundary_spawn_every = int(boundary_spawn_every)
        self.sessions: dict[int, ClusterSession] = {}
        self.tick_records = RecordRing(
            cap=config.tick_record_cap,
            duration_of="duration_ms",
            budget_ms=config.tick_interval_ms,
        )
        self.migration_records = RecordRing(
            cap=config.tick_record_cap, duration_of="latency_ms"
        )
        self.chunks = ClusterChunks(self)
        self.round_index = 0
        self._players_connected = 0
        self._round_robin = 0
        self._construct_homes: dict[int, int] = {}
        #: builds a replacement shard for (zone, generation); required for
        #: shard crash-recovery (the registered cluster assemblies provide it)
        self.shard_factory = shard_factory
        #: supplies scheduled shard kills; set by installing a fault plan
        self.fault_injector: Optional["FaultInjector"] = None
        #: callbacks run on every respawned shard (fault wiring re-attachment)
        self.shard_wirers: list[Callable[[GameServer], None]] = []
        self._dead: dict[int, _DeadShard] = {}
        self._generations: dict[int, int] = {}
        self.recovery_records: list[ShardRecoveryRecord] = []
        # With interest management on, shards log their dirty events so the
        # coordinator can relay edits near zone boundaries to the shards whose
        # players subscribe to those chunks from across the boundary.
        self._interest_routing = len(shards) > 1 and any(
            shard.interest is not None for shard in shards
        )
        if self._interest_routing:
            for shard in shards:
                if shard.interest is not None:
                    shard.interest.record_dirty_log = True

    # -- cluster shape ---------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    @property
    def player_count(self) -> int:
        return sum(shard.player_count for shard in self.shards)

    @property
    def construct_count(self) -> int:
        return sum(shard.construct_count for shard in self.shards)

    def spawn_points(self) -> list[BlockPos]:
        """Every spawn position the coordinator hands out (for preloading)."""
        base = self.config.spawn_position
        points = [
            self.partitioner.zone_spawn(zone, base) for zone in range(self.shard_count)
        ]
        points.extend(
            self.partitioner.boundary_spawn(index, base)
            for index in range(self.partitioner.boundary_count())
        )
        return points

    # -- player lifecycle ------------------------------------------------------------

    def _next_spawn(self) -> tuple[int, Optional[BlockPos]]:
        index = self._players_connected
        base = self.config.spawn_position
        if self.shard_count == 1:
            return 0, None
        if self.boundary_spawn_every and (index + 1) % self.boundary_spawn_every == 0:
            boundary = (index // self.boundary_spawn_every) % self.partitioner.boundary_count()
            position = self.partitioner.boundary_spawn(boundary, base)
            return self.partitioner.zone_of_block(position), position
        zone = self._round_robin % self.shard_count
        self._round_robin += 1
        return zone, self.partitioner.zone_spawn(zone, base)

    def _shard_alive(self, zone: int) -> bool:
        return zone not in self._dead

    def _next_alive_zone(self, zone: int) -> int:
        """The first alive zone at or after ``zone`` (wrapping)."""
        for offset in range(self.shard_count):
            candidate = (zone + offset) % self.shard_count
            if self._shard_alive(candidate):
                return candidate
        raise RuntimeError("every shard of the cluster is down")

    def connect_player(self, name: str | None = None) -> ClusterSession:
        """Connect a player to the shard owning its (spread) spawn position.

        While a zone's shard is down, players bound for it spawn on the next
        alive zone instead (they migrate home once the zone respawns).
        """
        zone, position = self._next_spawn()
        self._players_connected += 1
        if not self._shard_alive(zone):
            zone = self._next_alive_zone(zone)
            position = self.partitioner.zone_spawn(zone, self.config.spawn_position)
        session = self.shards[zone].connect_player(name, position=position)
        proxy = ClusterSession(session, shard_index=zone)
        self.sessions[proxy.player_id] = proxy
        return proxy

    def disconnect_player(self, player_id: int) -> None:
        proxy = self.sessions.get(player_id)
        if proxy is None or proxy.disconnected:
            raise KeyError(f"no connected player with id {player_id}")
        self.shards[proxy.shard_index].disconnect_player(player_id)
        proxy._disconnected = True

    # -- constructs ------------------------------------------------------------------

    def shard_for_block(self, position: BlockPos) -> GameServer:
        """The shard owning a block position."""
        return self.shards[self.partitioner.zone_of_block(position)]

    def place_construct(self, construct: SimulatedConstruct) -> None:
        """Route a construct to the shard owning its anchor (minimum) cell."""
        zone = self.partitioner.zone_of_block(construct.positions[0])
        self._construct_homes[construct.construct_id] = zone
        self.shards[zone].place_construct(construct)

    def remove_construct(self, construct_id: int) -> None:
        zone = self._construct_homes.pop(construct_id, None)
        if zone is None:
            raise KeyError(f"no construct with id {construct_id} in the cluster")
        self.shards[zone].remove_construct(construct_id)

    # -- migration -------------------------------------------------------------------

    def _migrate(self, proxy: ClusterSession, target_zone: int) -> None:
        if proxy.disconnected or proxy._session.disconnected:
            # The player disconnected under the migration's feet (e.g. between
            # rounds); migrating a dead session would resurrect it on the
            # target shard.
            return
        source = self.shards[proxy.shard_index]
        target = self.shards[target_zone]
        old_session = proxy._session
        position = old_session.avatar.position
        pending = old_session.drain()
        state = snapshot_session(old_session)
        key = f"session_{proxy.name}"

        # Handoff: serialize through the shared session store; the write on
        # the source and the read on the target are the migration's latency.
        latency_ms = 0.0
        if self.session_store is not None:
            write_op = self.session_store.write(key, state)
            read_op = self.session_store.read(key)
            state = read_op.data or state
            latency_ms = write_op.latency_ms + read_op.latency_ms
        # Pending interest deltas travel with the player: export before the
        # source unsubscribes, import after the target re-subscribes, so a
        # far-tier budget already half-spent stays spent across the handoff.
        interest_state = None
        if source.interest is not None:
            interest_state = source.interest.export_state(proxy.player_id)
        source.disconnect_player(proxy.player_id, persist=False)
        session = target.connect_player(
            proxy.name, position=position, player_id=proxy.player_id, restore=False
        )
        restore_avatar_state(session.avatar, state, restore_position=False)
        if interest_state is not None and target.interest is not None:
            target.interest.import_state(proxy.player_id, interest_state)
        for message in pending:
            session.enqueue(message)

        record = MigrationRecord(
            round_index=self.round_index,
            time_ms=self.engine.now_ms,
            player_id=proxy.player_id,
            player_name=proxy.name,
            from_shard=proxy.shard_index,
            to_shard=target_zone,
            latency_ms=latency_ms,
        )
        self.migration_records.append(record)
        proxy._rebind(session, target_zone)
        metrics = self.engine.metrics
        metrics.histogram("migration_ms").record(latency_ms)
        metrics.increment("migrations")
        telemetry = self.engine.telemetry
        if telemetry.enabled:
            telemetry.span(
                "migration",
                f"migrate:{proxy.name}",
                start_ms=record.time_ms,
                duration_ms=latency_ms,
                track="migrations",
                args={
                    "player_id": record.player_id,
                    "from_shard": record.from_shard,
                    "to_shard": record.to_shard,
                    "round": record.round_index,
                },
            )

    def _migrate_crossed_players(self) -> int:
        migrated = 0
        for proxy in list(self.sessions.values()):
            if proxy.disconnected or not self._shard_alive(proxy.shard_index):
                continue
            target_zone = self.partitioner.zone_of_block(proxy.avatar.position)
            if target_zone != proxy.shard_index:
                if not self._shard_alive(target_zone):
                    # The owning shard is down: the player stays where it is
                    # and the handoff is retried once the zone respawns.
                    self.engine.metrics.increment("migrations_deferred")
                    continue
                self._migrate(proxy, target_zone)
                migrated += 1
        return migrated

    @property
    def migration_count(self) -> int:
        return len(self.migration_records)

    def _route_cross_shard_updates(self) -> None:
        """Relay this round's dirty events to subscribers on other shards.

        Interest makes cross-shard traffic *selective*: an edit is relayed to
        a neighbouring shard only when at least one of that shard's players
        actually subscribes to the edited chunk — shards with no interested
        player never hear about it.  Relayed events land after the target
        shard's flush, so they are flushed next round (one round of relay
        latency, identical for every same-seed run).
        """
        events_relayed = 0
        for slot, shard in enumerate(self.shards):
            if shard.interest is None or slot in self._dead:
                continue
            for chunk, entries, drift, source_player_id in shard.interest.drain_dirty_log():
                for other_slot, other in enumerate(self.shards):
                    if other_slot == slot or other.interest is None or other_slot in self._dead:
                        continue
                    if other.interest.has_subscribers(chunk):
                        other.interest.note_external(
                            chunk, entries, drift, source_player_id
                        )
                        events_relayed += 1
        if events_relayed:
            self.engine.metrics.increment("interest_cross_shard_events", events_relayed)

    # -- shard crash-recovery --------------------------------------------------------

    def _apply_shard_faults(self) -> None:
        """Apply due respawns, then due kills (polled at round boundaries).

        Kills never fire mid-round: a shard dies *between* rounds, exactly at
        a virtual round boundary, which keeps two same-seed runs' fault
        timelines identical.
        """
        now_ms = self.engine.now_ms
        for slot, dead in sorted(self._dead.items()):
            if now_ms >= dead.killed_ms + dead.kill.respawn_after_ms:
                self._respawn_shard(slot, dead)
        for kill in self.fault_injector.shard_kills_due(now_ms):
            self._kill_shard(kill)

    def _kill_shard(self, kill: "ShardKill") -> None:
        slot = kill.shard
        injector = self.fault_injector
        if slot >= self.shard_count or slot in self._dead:
            injector.record("shard.kill.ignored", f"shard={slot} reason=unknown-or-dead")
            return
        if len(self._dead) + 1 >= self.shard_count:
            # Refusing to kill the last alive shard keeps the cluster able to
            # serve (and eventually recover) its players.
            injector.record("shard.kill.ignored", f"shard={slot} reason=last-alive")
            return
        if self.shard_factory is None:
            raise RuntimeError(
                "shard kills require a cluster built with a shard_factory "
                "(the registered cluster assemblies provide one)"
            )
        shard = self.shards[slot]
        self._dead[slot] = _DeadShard(
            kill=kill,
            shard_name=shard.name,
            killed_round=self.round_index,
            killed_ms=self.engine.now_ms,
        )
        self.engine.metrics.increment("shard_kills")
        injector.record("shard.kill", f"shard={slot} name={shard.name}")

    def _respawn_shard(self, slot: int, dead: _DeadShard) -> None:
        """Bring up a replacement shard and evacuate the dead one into it.

        Every session stranded on the dead shard is recovered through the
        same snapshot/restore protocol an ordinary cross-shard migration
        uses: serialize the session, round-trip it through the shared session
        store, reconnect on the replacement, restore the avatar state, rebind
        the client-facing proxy.  The zone's constructs are re-registered on
        the replacement (their state survives in the shared world/blob
        state); queued-but-unprocessed client messages died with the shard
        and are counted as lost.
        """
        del self._dead[slot]
        generation = self._generations[slot] = self._generations.get(slot, 0) + 1
        old = self.shards[slot]
        replacement = self.shard_factory(slot, generation)
        for wire in self.shard_wirers:
            wire(replacement)
        if self._interest_routing and replacement.interest is not None:
            replacement.interest.record_dirty_log = True
        self.shards[slot] = replacement

        constructs_recovered = 0
        for construct in old.constructs.constructs():
            replacement.place_construct(construct)
            constructs_recovered += 1

        recovered = 0
        messages_lost = 0
        for proxy in self.sessions.values():
            if proxy.disconnected or proxy.shard_index != slot:
                continue
            old_session = proxy._session
            messages_lost += len(old_session.drain())
            old_session.disconnected = True
            old_session.detach_broadcast_clock()
            position = old_session.avatar.position
            state = snapshot_session(old_session)
            if self.session_store is not None:
                key = f"session_{proxy.name}"
                write_op = self.session_store.write(key, state)
                read_op = self.session_store.read(key)
                state = read_op.data or state
            session = replacement.connect_player(
                proxy.name, position=position, player_id=proxy.player_id, restore=False
            )
            restore_avatar_state(session.avatar, state, restore_position=False)
            proxy._rebind(session, slot)
            recovered += 1

        downtime_rounds = self.round_index - dead.killed_round
        record = ShardRecoveryRecord(
            shard_index=slot,
            shard_name=dead.shard_name,
            killed_round=dead.killed_round,
            killed_ms=dead.killed_ms,
            respawned_round=self.round_index,
            respawned_ms=self.engine.now_ms,
            downtime_rounds=downtime_rounds,
            sessions_recovered=recovered,
            sessions_lost=0,
            messages_lost=messages_lost,
            constructs_recovered=constructs_recovered,
            lost_player_ticks=dead.lost_player_ticks,
        )
        self.recovery_records.append(record)
        metrics = self.engine.metrics
        metrics.histogram("shard_mttr_ticks").record(downtime_rounds)
        metrics.increment("shards_recovered")
        metrics.increment("sessions_recovered", recovered)
        if messages_lost:
            metrics.increment("shard_messages_lost", messages_lost)
        if dead.lost_player_ticks:
            metrics.increment("lost_player_ticks", dead.lost_player_ticks)
        self.fault_injector.record(
            "shard.respawn",
            f"shard={slot} name={replacement.name} sessions={recovered} "
            f"mttr_ticks={downtime_rounds}",
        )

    # -- the lockstep round ----------------------------------------------------------

    def tick(self) -> TickRecord:
        """Execute one cluster round: tick every shard, migrate, advance once.

        Shards tick strictly in shard order, each begin/step/finish in full
        before the next begins: they share named RNG streams (platform, blob,
        disk, terrain latency), so interleaving phases across shards would
        reorder draws and change virtual results.  Only the construct batch —
        pure integer compute between ``tick_begin`` and ``tick_finish`` — is
        handed to the round executor, which may scatter it across worker
        processes without touching the draw order.
        """
        telemetry = self.engine.telemetry
        if telemetry.enabled and telemetry.profiler is not None:
            with telemetry.profile("cluster.round"):
                return self._tick_round()
        return self._tick_round()

    def _tick_round(self) -> TickRecord:
        if self.fault_injector is not None:
            self._apply_shard_faults()
        start_ms = self.engine.now_ms
        executor = self.executor
        shard_records = []
        for slot, shard in enumerate(self.shards):
            dead = self._dead.get(slot)
            if dead is not None:
                # A dead zone serves nobody this round; its stranded players'
                # unserved ticks are the outage's lost player-ticks.
                dead.lost_player_ticks += sum(
                    1
                    for proxy in self.sessions.values()
                    if not proxy.disconnected and proxy.shard_index == slot
                )
                continue
            progress = shard.tick_begin()
            fixed_points = executor.step_circuits(
                progress.construct_plan.circuits, slot=slot
            )
            shard_records.append(
                shard.tick_finish(progress, fixed_points, advance_clock=False)
            )
        if self._interest_routing:
            self._route_cross_shard_updates()
        self._migrate_crossed_players()

        if shard_records:
            duration_ms = max(record.duration_ms for record in shard_records)
        else:  # pragma: no cover - kills never take the last alive shard
            duration_ms = self.config.tick_interval_ms
        record = TickRecord(
            index=self.round_index,
            start_ms=start_ms,
            duration_ms=duration_ms,
            players=sum(r.players for r in shard_records),
            constructs=sum(r.constructs for r in shard_records),
            chunks_integrated=sum(r.chunks_integrated for r in shard_records),
            view_range_blocks=min(
                (r.view_range_blocks for r in shard_records), default=0.0
            ),
        )
        self.tick_records.append(record)
        self.engine.metrics.histogram("cluster_round_ms").record(duration_ms)
        telemetry = self.engine.telemetry
        if telemetry.enabled:
            telemetry.span(
                "round",
                "round",
                start_ms=start_ms,
                duration_ms=duration_ms,
                track=self.name,
                args={
                    "index": record.index,
                    "players": record.players,
                    "shards_alive": len(shard_records),
                },
            )
        self.round_index += 1

        # Lockstep: the cluster's next round starts when the slowest shard is
        # done (or after the tick budget, whichever is later).
        self.engine.advance_to(start_ms + max(self.config.tick_interval_ms, duration_ms))
        return record

    # -- reporting -------------------------------------------------------------------

    def tick_durations_ms(self) -> list[float]:
        return [record.duration_ms for record in self.tick_records]

    def shard_tick_durations_ms(self, since_index: int = 0) -> dict[str, list[float]]:
        """Per-shard tick durations from round ``since_index`` onwards."""
        return {
            shard.name: [r.duration_ms for r in shard.tick_records[since_index:]]
            for shard in self.shards
        }
