"""`repro bench`: quick wall-clock benchmark with a determinism check.

Runs a small, fixed set of representative specs (a construct-heavy single
server and a 2-shard Servo cluster), each twice back to back, and reports
ticks per wall-clock second.  The two runs of each spec must produce
identical deterministic summaries — wall-clock performance work must never
change virtual-time results — so the bench doubles as a fast regression
gate.  The heavyweight, figure-producing benchmarks remain under
``benchmarks/``; this is the always-available smoke version.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.api.run import run_spec
from repro.api.spec import RunSpec

#: the representative workloads `repro bench` measures
BENCH_SPECS: dict[str, dict[str, Any]] = {
    "construct-heavy": {
        "host": {"game": "opencraft", "game_config": {"world_type": "flat"}},
        "workload": {
            "scenario": "behaviour_a",
            "params": {"players": 20, "constructs": 40},
        },
        "seed": 42,
        "warmup_s": 1.0,
    },
    "servo-cluster-2shard": {
        "host": {
            "game": "servo-cluster",
            "shards": 2,
            "game_config": {"world_type": "flat"},
        },
        "workload": {"scenario": "behaviour_a", "params": {"players": 30}},
        "seed": 42,
        "warmup_s": 1.0,
    },
}


def _summary_digest(summary: dict) -> str:
    payload = json.dumps(summary, sort_keys=True).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def run_bench(
    duration_s: float = 5.0, repeats: int = 2, workers: int | None = None
) -> dict[str, Any]:
    """Run every bench spec ``repeats`` times; report rates and determinism.

    With ``workers`` set, every cluster scenario runs once more with that
    worker count, and its summary digest enters the same determinism check:
    the parallel run must be bit-identical to the serial ones.
    """
    if repeats < 2:
        raise ValueError("repeats must be at least 2 to check determinism")
    report: dict[str, Any] = {"duration_s": duration_s, "scenarios": {}}
    if workers is not None:
        report["workers"] = workers
    for name, base in BENCH_SPECS.items():
        spec = RunSpec.from_dict({**base, "duration_s": duration_s})
        results = [run_spec(spec) for _ in range(repeats)]
        if workers is not None and "shards" in base["host"]:
            parallel_host = {**base["host"], "workers": workers}
            results.append(
                run_spec(
                    RunSpec.from_dict(
                        {**base, "host": parallel_host, "duration_s": duration_s}
                    )
                )
            )
        digests = {_summary_digest(result.summary()) for result in results}
        ticks = [len(result.host.tick_records) for result in results]
        best_wall = min(result.wall_seconds for result in results)
        report["scenarios"][name] = {
            "ticks_per_s": (min(ticks) / best_wall) if best_wall > 0 else float("inf"),
            "wall_s_best": best_wall,
            "ticks": min(ticks),
            "deterministic": len(digests) == 1,
            "summary_digest": sorted(digests)[0],
        }
    report["deterministic"] = all(
        row["deterministic"] for row in report["scenarios"].values()
    )
    return report


def format_bench(report: dict[str, Any]) -> str:
    from repro.experiments.harness import format_table

    rows = [
        [
            name,
            f"{row['ticks_per_s']:.1f}",
            f"{row['wall_s_best']:.2f}",
            str(row["ticks"]),
            "ok" if row["deterministic"] else "DRIFT",
            row["summary_digest"][:12],
        ]
        for name, row in sorted(report["scenarios"].items())
    ]
    table = format_table(
        ["scenario", "ticks/s", "best wall (s)", "ticks", "determinism", "digest"], rows
    )
    verdict = (
        "all scenarios bit-identical across repeats"
        if report["deterministic"]
        else "DETERMINISM DRIFT DETECTED — virtual results changed between repeats"
    )
    return f"{table}\n{verdict}"
