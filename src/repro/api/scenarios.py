"""The scenario registry: named workload families, instantiated from params.

A registered scenario is a factory that returns a
:class:`~repro.workload.scenarios.Scenario` from keyword parameters::

    @register_scenario("behaviour_a")
    def behaviour_a(players, constructs=0, duration_s=30.0):
        ...

:func:`build_scenario` instantiates one by name, validating the parameters
against the factory's signature so an unknown or missing parameter is a
``ValueError`` naming the accepted parameters instead of a bare ``TypeError``
deep in a call stack.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable

from repro.api.registry import Registry

def _load_builtin_scenarios() -> None:
    """Import the module whose decorators register the paper's workloads."""
    import repro.workload.scenarios  # noqa: F401


SCENARIOS = Registry("scenario", loader=_load_builtin_scenarios)


def register_scenario(name: str, *, replace: bool = False):
    """Decorator registering a scenario factory under ``name``."""

    def decorator(factory: Callable[..., Any]) -> Callable[..., Any]:
        SCENARIOS.register(name, factory, replace=replace)
        return factory

    return decorator


def scenario_factory(name: str) -> Callable[..., Any]:
    """Look up a registered scenario factory (importing the built-ins first)."""
    return SCENARIOS.get(name)


def scenario_names() -> list[str]:
    return SCENARIOS.names()


def scenario_parameters(name: str) -> list[str]:
    """The keyword parameters a registered scenario accepts."""
    return list(inspect.signature(scenario_factory(name)).parameters)


def build_scenario(name: str, /, **params):
    """Instantiate a registered scenario from keyword parameters.

    Parameters are bound against the factory signature first, so both unknown
    and missing parameters fail with a ``ValueError`` that lists what the
    scenario accepts.  ``name`` is positional-only, so a scenario may itself
    take a ``name`` parameter (the ``custom`` scenario does).
    """
    factory = scenario_factory(name)
    signature = inspect.signature(factory)
    try:
        bound = signature.bind(**params)
    except TypeError as error:
        raise ValueError(
            f"invalid params for scenario {name!r}: {error}; "
            f"accepted params: {list(signature.parameters)}"
        ) from None
    return factory(*bound.args, **bound.kwargs)
