"""Typed run results.

A :class:`RunResult` pairs the workload measurements
(:class:`~repro.workload.scenarios.ScenarioResult`) with the host-side
metrics of the run (every counter the simulation recorded, and the final
virtual clock).  ``summary()``/``to_json()`` expose only virtual-time
quantities, so two runs of the same spec and seed serialize identically —
the property the determinism tests pin.  Wall-clock time is reported
separately because it varies run to run by construction.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.sim.metrics import BoxplotStats
from repro.workload.scenarios import TICK_BUDGET_MS, ScenarioResult


@dataclass
class RunResult:
    """Everything one :func:`~repro.api.run.run_spec` call produced."""

    #: the spec that produced this result (already validated)
    spec: Any
    scenario: ScenarioResult
    host_name: str
    #: virtual clock at the end of the run (ms)
    end_virtual_ms: float
    #: every metric counter the engine recorded, by name
    counters: dict[str, float] = field(default_factory=dict)
    #: wall-clock seconds the run took (not part of the deterministic summary)
    wall_seconds: float = 0.0
    #: the live host, for post-run inspection (not serialized)
    host: Optional[Any] = field(default=None, repr=False, compare=False)
    #: the run's telemetry hub when the spec enabled one (not serialized —
    #: export it via :mod:`repro.obs.export`); None otherwise
    telemetry: Optional[Any] = field(default=None, repr=False, compare=False)

    def tick_stats(self) -> BoxplotStats:
        return self.scenario.tick_stats()

    def fraction_over_budget(self, budget_ms: float = TICK_BUDGET_MS) -> float:
        return self.scenario.fraction_over_budget(budget_ms)

    def meets_qos(self) -> bool:
        return self.scenario.meets_qos()

    def summary(self) -> dict[str, Any]:
        """Deterministic summary: identical for identical spec + seed."""
        stats = self.tick_stats()
        return {
            "scenario": self.scenario.scenario_name,
            "host": self.host_name,
            "players": self.scenario.players,
            "constructs": self.scenario.constructs,
            "duration_s": self.scenario.duration_s,
            "ticks_measured": len(self.scenario.tick_durations_ms),
            "end_virtual_ms": self.end_virtual_ms,
            "tick_ms": stats.as_dict(),
            "fraction_over_budget": self.fraction_over_budget(),
            "meets_qos": self.meets_qos(),
            "counters": {name: self.counters[name] for name in sorted(self.counters)},
        }

    def to_dict(self) -> dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "summary": self.summary(),
            "wall_seconds": self.wall_seconds,
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def format_summary(self) -> str:
        """Human-readable tick-stats report (what the CLI prints)."""
        stats = self.tick_stats()
        lines = [
            f"{self.scenario.scenario_name} on {self.host_name}: "
            f"{self.scenario.players} players, {self.scenario.constructs} constructs, "
            f"{self.scenario.duration_s:g}s measured "
            f"({len(self.scenario.tick_durations_ms)} ticks)",
            "tick durations (ms): "
            f"median {stats.median:.2f}  p95 {stats.p95:.2f}  max {stats.maximum:.2f}",
            f"ticks over the {TICK_BUDGET_MS:.0f} ms budget: "
            f"{100 * self.fraction_over_budget():.2f} %  "
            f"(QoS {'met' if self.meets_qos() else 'NOT met'})",
            f"virtual end time: {self.end_virtual_ms:.0f} ms"
            f"   wall time: {self.wall_seconds:.2f} s",
        ]
        return "\n".join(lines)
