"""The ``repro`` command line interface (also ``python -m repro``).

Commands:

* ``repro run <spec.json>`` / ``repro run --game servo --scenario behaviour_a
  --players 20 ...`` — execute one :class:`~repro.api.spec.RunSpec` and print
  its tick-stats summary (``--json`` writes the full
  :class:`~repro.api.result.RunResult`).  Flags override the spec file when
  both are given.
* ``repro experiments list`` — every registered experiment id.
* ``repro experiments run <id>`` — run one experiment and print its report.
* ``repro bench`` — quick wall-clock benchmark with a determinism check.
* ``repro spec <file>`` — validate a spec file and print its canonical JSON
  (``--check`` additionally asserts dict/JSON round-trips, for CI).
* ``repro report <trace.json>`` — validate a ``--trace`` file against the
  Chrome trace-event schema and print the per-subsystem virtual-time
  breakdown.
* ``repro lint`` — statically enforce the determinism contract (rules
  DET001–DET005) over the package source; non-zero exit on any unsuppressed
  finding, ``--format json`` for CI.
* ``repro --version`` — the package version.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Optional, Sequence

from repro.version import __version__


def _parse_param(raw: str) -> tuple[str, Any]:
    """Parse a ``--param key=value`` pair; values are JSON when they parse."""
    key, separator, value = raw.partition("=")
    if not separator or not key:
        raise argparse.ArgumentTypeError(
            f"expected key=value, got {raw!r} (e.g. --param players=20)"
        )
    try:
        return key, json.loads(value)
    except json.JSONDecodeError:
        return key, value  # bare strings need no quoting


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Declarative runner for the Servo (ICDCS'23) reproduction.",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser(
        "run", help="run one spec (from a JSON file, flags, or both)"
    )
    run.add_argument("spec", nargs="?", help="path to a RunSpec JSON file")
    run.add_argument("--game", help="registered host name (e.g. servo, servo-cluster)")
    run.add_argument("--scenario", help="registered scenario name (e.g. behaviour_a)")
    run.add_argument("--players", type=int, help="shorthand for --param players=N")
    run.add_argument("--constructs", type=int, help="shorthand for --param constructs=N")
    run.add_argument(
        "--param",
        action="append",
        default=[],
        type=_parse_param,
        metavar="KEY=VALUE",
        help="scenario parameter (repeatable; value parsed as JSON when possible)",
    )
    run.add_argument("--shards", type=int, help="shard count for cluster hosts")
    run.add_argument(
        "--workers",
        type=int,
        help="host worker processes for parallel round execution "
        "(wall-clock only; virtual results are identical)",
    )
    run.add_argument("--world-type", choices=("default", "flat"), help="game world type")
    run.add_argument(
        "--interest-radius",
        type=int,
        metavar="CHUNKS",
        help="area-of-interest subscription radius in chunks "
        "(0 = legacy observe-everything broadcast)",
    )
    run.add_argument("--provider", choices=("aws", "azure"), help="Servo cloud provider")
    run.add_argument("--seed", type=int, help="simulation seed")
    run.add_argument("--duration-s", type=float, help="measured virtual seconds")
    run.add_argument("--warmup-s", type=float, help="warm-up virtual seconds")
    run.add_argument(
        "--faults",
        metavar="PLAN",
        help="fault plan: a JSON file path, inline JSON (starts with '{'), or "
        "'none' to disable the scenario's own faults",
    )
    run.add_argument(
        "--trace",
        metavar="PATH",
        help="enable telemetry and write a Chrome trace-event JSON here "
        "(virtual-time clock; open with ui.perfetto.dev)",
    )
    run.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="enable telemetry and write a Prometheus-style metric dump here",
    )
    run.add_argument(
        "--profile",
        action="store_true",
        help="also collect opt-in wall-clock profiling counters (kept out of "
        "the deterministic virtual results)",
    )
    run.add_argument("--json", metavar="PATH", help="write the full RunResult JSON here")
    run.set_defaults(handler=_cmd_run)

    experiments = commands.add_parser("experiments", help="list or run experiments")
    experiment_commands = experiments.add_subparsers(dest="subcommand", required=True)
    listing = experiment_commands.add_parser("list", help="list registered experiments")
    listing.set_defaults(handler=_cmd_experiments_list)
    exp_run = experiment_commands.add_parser("run", help="run one experiment by id")
    exp_run.add_argument("id", help="experiment id (see `repro experiments list`)")
    exp_run.add_argument(
        "--scale", choices=("quick", "paper"), default="quick",
        help="settings scale (default: quick)",
    )
    exp_run.add_argument("--seed", type=int, help="override the settings seed")
    exp_run.add_argument(
        "--duration-s", type=float, help="override the measured duration"
    )
    exp_run.add_argument(
        "--repetitions", type=int, help="override the repetition count"
    )
    exp_run.set_defaults(handler=_cmd_experiments_run)

    bench = commands.add_parser(
        "bench", help="quick wall-clock benchmark (determinism-checked)"
    )
    bench.add_argument(
        "--duration-s", type=float, default=5.0, help="virtual seconds per scenario"
    )
    bench.add_argument(
        "--repeats", type=int, default=2, help="runs per scenario (>= 2)"
    )
    bench.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the cluster scenario (determinism-checked "
        "against the serial run)",
    )
    bench.add_argument("--out", metavar="PATH", help="write the JSON report here")
    bench.set_defaults(handler=_cmd_bench)

    spec = commands.add_parser(
        "spec", help="validate a spec file and print its canonical JSON"
    )
    spec.add_argument("file", help="path to a RunSpec JSON file")
    spec.add_argument(
        "--check",
        action="store_true",
        help="assert dict and JSON round-trips; print OK instead of the spec",
    )
    spec.set_defaults(handler=_cmd_spec)

    report = commands.add_parser(
        "report",
        help="validate a trace file and print its per-subsystem breakdown",
    )
    report.add_argument("trace", help="path to a Chrome trace JSON (from --trace)")
    report.set_defaults(handler=_cmd_report)

    lint = commands.add_parser(
        "lint",
        help="statically enforce the determinism contract (rules DET001-DET005)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="package source directories to lint (default: the installed repro package)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (json includes the full finding schema, for CI)",
    )
    lint.add_argument("--config", metavar="PATH", help="explicit lint.toml path")
    lint.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print pragma- and quarantine-suppressed findings with their reasons",
    )
    lint.set_defaults(handler=_cmd_lint)

    return parser


# -- command handlers ---------------------------------------------------------------------


def _faults_from_arg(raw: str) -> dict:
    """Parse a ``--faults`` value: inline JSON, 'none', or a JSON file path."""
    stripped = raw.strip()
    if stripped == "none":
        return {}  # the empty plan explicitly disables the scenario's faults
    if stripped.startswith("{"):
        plan = json.loads(stripped)
    else:
        with open(raw, "r", encoding="utf-8") as handle:
            plan = json.load(handle)
    if not isinstance(plan, dict):
        raise ValueError(f"--faults must hold a JSON object, got {type(plan).__name__}")
    return plan


def _spec_dict_from_args(args: argparse.Namespace) -> dict:
    """Merge the spec file (if any) with the flag overrides."""
    data: dict = {}
    if args.spec:
        with open(args.spec, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    host = dict(data.get("host", {}))
    workload = dict(data.get("workload", {}))
    game_config = dict(host.get("game_config", {}))
    servo_config = dict(host.get("servo_config") or {})
    params = dict(workload.get("params", {}))

    if args.game is not None:
        host["game"] = args.game
    if args.shards is not None:
        host["shards"] = args.shards
    if args.workers is not None:
        host["workers"] = args.workers
    if args.world_type is not None:
        game_config["world_type"] = args.world_type
    if args.interest_radius is not None:
        # 0 maps to None: both mean the legacy full broadcast.
        game_config["interest_radius_chunks"] = args.interest_radius or None
    if args.provider is not None:
        servo_config["provider"] = args.provider
    if args.scenario is not None:
        workload["scenario"] = args.scenario
    if args.players is not None:
        params["players"] = args.players
    if args.constructs is not None:
        params["constructs"] = args.constructs
    for key, value in args.param:
        params[key] = value
    for key, value in (
        ("seed", args.seed), ("duration_s", args.duration_s), ("warmup_s", args.warmup_s)
    ):
        if value is not None:
            data[key] = value
    if args.faults is not None:
        data["faults"] = _faults_from_arg(args.faults)
    telemetry = dict(data.get("telemetry") or {})
    if args.trace is not None:
        telemetry["trace_path"] = args.trace
    if args.metrics_out is not None:
        telemetry["metrics_path"] = args.metrics_out
    if args.profile:
        telemetry["profile"] = True
    if telemetry:
        data["telemetry"] = telemetry

    if game_config:
        host["game_config"] = game_config
    if servo_config:
        host["servo_config"] = servo_config
    if params:
        workload["params"] = params
    data["host"] = host
    data["workload"] = workload
    if "game" not in host:
        raise ValueError("no host game given: pass a spec file or --game")
    if "scenario" not in workload:
        raise ValueError("no scenario given: pass a spec file or --scenario")
    return data


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.api.run import run_spec
    from repro.api.spec import RunSpec

    spec = RunSpec.from_dict(_spec_dict_from_args(args))
    result = run_spec(spec)
    print(result.format_summary())
    telemetry = (spec.telemetry or {}) if spec.telemetry is not None else {}
    if telemetry.get("trace_path"):
        print(f"trace written to {telemetry['trace_path']}")
    if telemetry.get("metrics_path"):
        print(f"metrics written to {telemetry['metrics_path']}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(result.to_json())
        print(f"full result written to {args.json}")
    return 0


def _cmd_experiments_list(args: argparse.Namespace) -> int:
    from repro.experiments.harness import format_table
    from repro.experiments.registry import EXPERIMENTS

    rows = [
        [entry.experiment_id, entry.description]
        for _, entry in sorted(EXPERIMENTS.items())
    ]
    print(format_table(["id", "description"], rows))
    return 0


def _cmd_experiments_run(args: argparse.Namespace) -> int:
    from repro.experiments.harness import settings_for_scale
    from repro.experiments.registry import run_experiment

    settings = settings_for_scale(args.scale)
    overrides = {
        name: value
        for name, value in (
            ("seed", args.seed),
            ("duration_s", args.duration_s),
            ("repetitions", args.repetitions),
        )
        if value is not None
    }
    if overrides:
        settings = settings.scaled(**overrides)
    _, report = run_experiment(args.id, settings)
    print(report)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.api.bench import format_bench, run_bench

    report = run_bench(
        duration_s=args.duration_s, repeats=args.repeats, workers=args.workers
    )
    print(format_bench(report))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"JSON report written to {args.out}")
    return 0 if report["deterministic"] else 1


def _cmd_spec(args: argparse.Namespace) -> int:
    from repro.api.spec import RunSpec

    spec = RunSpec.from_file(args.file)
    if args.check:
        if RunSpec.from_dict(spec.to_dict()) != spec:
            print("spec dict round-trip FAILED", file=sys.stderr)
            return 1
        if RunSpec.from_json(spec.to_json()) != spec:
            print("spec JSON round-trip FAILED", file=sys.stderr)
            return 1
        print(f"OK: {args.file} is valid and round-trips")
        return 0
    print(spec.to_json())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.report import format_trace_report, load_trace, validate_chrome_trace

    trace = load_trace(args.trace)
    problems = validate_chrome_trace(trace)
    if problems:
        for problem in problems[:20]:
            print(f"schema problem: {problem}", file=sys.stderr)
        if len(problems) > 20:
            print(f"... and {len(problems) - 20} more", file=sys.stderr)
        return 1
    print(format_trace_report(trace, source=args.trace))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.engine import run_lint

    return run_lint(
        paths=args.paths,
        output_format=args.format,
        config_path=args.config,
        show_suppressed=args.show_suppressed,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:
        return 0  # e.g. `repro experiments list | head`
    except (ValueError, TypeError, OSError) as error:
        # TypeError covers mistyped values that pass JSON parsing but fail
        # downstream validation (e.g. --param players=abc).
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
