"""Execute a :class:`~repro.api.spec.RunSpec`: the one way runs happen.

``run_spec`` resolves the spec's names against the host and scenario
registries, builds a fresh :class:`~repro.sim.SimulationEngine` from the
spec's seed, runs the scenario against the host and wraps the measurements
in a :class:`~repro.api.result.RunResult`.  Everything the examples, the CLI
and the tests run goes through here.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Union

from repro.api.hosts import build_host
from repro.api.result import RunResult
from repro.api.scenarios import build_scenario
from repro.api.spec import RunSpec
from repro.sim.engine import SimulationEngine


def run_spec(spec: Union[RunSpec, dict, str, os.PathLike]) -> RunResult:
    """Run one spec end to end and return its :class:`RunResult`.

    Accepts a :class:`RunSpec`, a plain dict (``RunSpec.from_dict`` is
    applied) or a path to a spec JSON file (``str`` or ``os.PathLike``).
    """
    if isinstance(spec, (str, os.PathLike)):
        spec = RunSpec.from_file(spec)
    elif isinstance(spec, dict):
        spec = RunSpec.from_dict(spec)

    engine = SimulationEngine(seed=spec.seed)
    host = build_host(
        spec.host.game,
        engine,
        spec.host.build_game_config(),
        servo_config=spec.host.build_servo_config(),
        shards=spec.host.shards,
        workers=spec.host.workers,
    )
    scenario = build_scenario(spec.workload.scenario, **spec.workload.params)
    overrides = {}
    if spec.duration_s is not None:
        overrides["duration_s"] = spec.duration_s
    if spec.warmup_s is not None:
        overrides["warmup_s"] = spec.warmup_s
    if spec.faults is not None:
        # A spec-level plan replaces the scenario's own; an explicit {} turns
        # the scenario's faults off (the empty plan installs nothing).
        overrides["faults"] = spec.faults
    if overrides:
        scenario = dataclasses.replace(scenario, **overrides)

    started = time.perf_counter()
    scenario_result = scenario.run(host)
    wall_seconds = time.perf_counter() - started

    counters = {
        name: engine.metrics.counter(name) for name in engine.metrics.counter_names
    }
    return RunResult(
        spec=spec,
        scenario=scenario_result,
        host_name=host.name,
        end_virtual_ms=engine.now_ms,
        counters=counters,
        wall_seconds=wall_seconds,
        host=host,
    )
