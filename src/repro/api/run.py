"""Execute a :class:`~repro.api.spec.RunSpec`: the one way runs happen.

``run_spec`` resolves the spec's names against the host and scenario
registries, builds a fresh :class:`~repro.sim.SimulationEngine` from the
spec's seed, runs the scenario against the host and wraps the measurements
in a :class:`~repro.api.result.RunResult`.  Everything the examples, the CLI
and the tests run goes through here.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Union

from repro.api.hosts import build_host
from repro.api.result import RunResult
from repro.api.scenarios import build_scenario
from repro.api.spec import RunSpec
from repro.sim.engine import SimulationEngine


def run_spec(spec: Union[RunSpec, dict, str, os.PathLike]) -> RunResult:
    """Run one spec end to end and return its :class:`RunResult`.

    Accepts a :class:`RunSpec`, a plain dict (``RunSpec.from_dict`` is
    applied) or a path to a spec JSON file (``str`` or ``os.PathLike``).

    When the spec carries a ``telemetry`` section, a
    :class:`~repro.obs.telemetry.Telemetry` hub is installed on the engine
    before the host is built (so every subsystem's hooks see it), the hub is
    attached to the result, and any configured trace/metrics files are
    written after the run.  Without one, the engine keeps its null hub and
    the run is bit-identical to an uninstrumented one.
    """
    if isinstance(spec, (str, os.PathLike)):
        spec = RunSpec.from_file(spec)
    elif isinstance(spec, dict):
        spec = RunSpec.from_dict(spec)

    engine = SimulationEngine(seed=spec.seed)
    telemetry_config = None
    if spec.telemetry is not None:
        from repro.obs.telemetry import TelemetryConfig, install_telemetry

        telemetry_config = TelemetryConfig.from_dict(spec.telemetry)
        install_telemetry(engine, telemetry_config)
    host = build_host(
        spec.host.game,
        engine,
        spec.host.build_game_config(),
        servo_config=spec.host.build_servo_config(),
        shards=spec.host.shards,
        workers=spec.host.workers,
    )
    scenario = build_scenario(spec.workload.scenario, **spec.workload.params)
    overrides = {}
    if spec.duration_s is not None:
        overrides["duration_s"] = spec.duration_s
    if spec.warmup_s is not None:
        overrides["warmup_s"] = spec.warmup_s
    if spec.faults is not None:
        # A spec-level plan replaces the scenario's own; an explicit {} turns
        # the scenario's faults off (the empty plan installs nothing).
        overrides["faults"] = spec.faults
    if overrides:
        scenario = dataclasses.replace(scenario, **overrides)

    started = time.perf_counter()  # det: allow[DET001] run-level wall timing; reported beside, never inside, the virtual results
    scenario_result = scenario.run(host)
    wall_seconds = time.perf_counter() - started  # det: allow[DET001] run-level wall timing; reported beside, never inside, the virtual results

    telemetry = engine.telemetry if engine.telemetry.enabled else None
    if telemetry_config is not None and telemetry is not None:
        if telemetry_config.trace_path is not None:
            from repro.obs.export import write_chrome_trace

            write_chrome_trace(telemetry_config.trace_path, telemetry, engine.metrics)
        if telemetry_config.metrics_path is not None:
            from repro.obs.export import write_prometheus

            write_prometheus(telemetry_config.metrics_path, engine.metrics)

    counters = {
        name: engine.metrics.counter(name) for name in engine.metrics.counter_names
    }
    return RunResult(
        spec=spec,
        scenario=scenario_result,
        host_name=host.name,
        end_virtual_ms=engine.now_ms,
        counters=counters,
        wall_seconds=wall_seconds,
        host=host,
        telemetry=telemetry,
    )
