"""`repro.api` — the public front door of the reproduction.

One declarative entry point for everything the repository can run:

* :class:`RunSpec` — a JSON-serializable description of one run (host
  topology + workload + seed/duration/warm-up) with ``from_dict``/``to_dict``
  round-tripping and eager validation.
* :func:`run_spec` — execute a spec and get a typed :class:`RunResult`
  (scenario measurements + host metrics, ``to_json``-able, deterministic
  summaries).
* :func:`register_host` / :func:`register_scenario` — self-registering
  registries.  Game variants and workload families plug in by decorator;
  nothing in the build path branches on names.
* The experiment layer re-exported lazily (``run_experiment``,
  ``EXPERIMENTS``, ``ExperimentSettings``, ``find_max_players``,
  ``format_table``, ``settings_for_scale``) so examples and scripts need a
  single import.
* ``python -m repro`` / the ``repro`` console script — the CLI over all of
  the above (see :mod:`repro.api.cli`).

Attributes resolve lazily (PEP 562): importing :mod:`repro.api` — which the
self-registration decorators in lower layers do transitively — stays cheap
and cycle-free.
"""

from __future__ import annotations

from importlib import import_module
from typing import Any

#: public name -> defining module, resolved on first attribute access
_EXPORTS = {
    # registries
    "Registry": "repro.api.registry",
    "UnknownNameError": "repro.api.registry",
    "unknown_name_error": "repro.api.registry",
    # hosts
    "HOSTS": "repro.api.hosts",
    "HostEntry": "repro.api.hosts",
    "register_host": "repro.api.hosts",
    "build_host": "repro.api.hosts",
    "host_names": "repro.api.hosts",
    "cluster_host_names": "repro.api.hosts",
    "GameFactoryView": "repro.api.hosts",
    # scenarios
    "SCENARIOS": "repro.api.scenarios",
    "register_scenario": "repro.api.scenarios",
    "build_scenario": "repro.api.scenarios",
    "scenario_names": "repro.api.scenarios",
    "scenario_parameters": "repro.api.scenarios",
    # specs, results, execution
    "RunSpec": "repro.api.spec",
    "HostSpec": "repro.api.spec",
    "WorkloadSpec": "repro.api.spec",
    "RunResult": "repro.api.result",
    "run_spec": "repro.api.run",
    # observability (see repro.obs for the full exporter/report surface)
    "Telemetry": "repro.obs.telemetry",
    "TelemetryConfig": "repro.obs.telemetry",
    "install_telemetry": "repro.obs.telemetry",
    # experiment layer (lazy keeps repro.api importable from lower layers)
    "ExperimentSettings": "repro.experiments.harness",
    "QUICK_SETTINGS": "repro.experiments.harness",
    "PAPER_SETTINGS": "repro.experiments.harness",
    "settings_for_scale": "repro.experiments.harness",
    "format_table": "repro.experiments.harness",
    "build_game_server": "repro.experiments.harness",
    "EXPERIMENTS": "repro.experiments.registry",
    "run_experiment": "repro.experiments.registry",
    "find_max_players": "repro.experiments.max_players",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    value = getattr(import_module(module_name), name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
