"""The host registry: every runnable game topology, looked up by name.

A *host* is anything satisfying the :class:`~repro.workload.bots.GameHost`
surface — a single :class:`~repro.server.gameloop.GameServer` or a
:class:`~repro.cluster.coordinator.ClusterCoordinator`.  Variants register
themselves with :func:`register_host` where they are defined::

    @register_host("servo")
    def build_servo_server(engine, game_config=None, servo_config=None, ...):
        ...

:func:`build_host` then constructs any variant by name, passing only the
optional knobs (``servo_config``, ``shards``, ``workers``) the factory's
signature accepts
— there is no per-name branching anywhere.  Passing a knob a host does not
accept is an error that names the host and the knob, rather than a silent
no-op.

Third-party variants plug in the same way: define a factory in your module,
decorate it, and import the module before building (the built-in variants are
imported automatically on first lookup).
"""

from __future__ import annotations

import inspect
from collections.abc import Mapping, Set
from dataclasses import dataclass
from typing import Any, Callable

from repro.api.registry import Registry

#: the optional keyword knobs a host factory may accept, in canonical order
HOST_KNOBS = ("servo_config", "shards", "workers")


def _load_builtin_hosts() -> None:
    """Import the modules whose decorators register the built-in variants."""
    import repro.cluster.assembly  # noqa: F401  (registers *-cluster)
    import repro.core.servo  # noqa: F401  (registers servo)
    import repro.server.variants  # noqa: F401  (registers opencraft, minecraft)


HOSTS = Registry("host", loader=_load_builtin_hosts)


@dataclass(frozen=True)
class HostEntry:
    """One registered host variant."""

    name: str
    factory: Callable[..., Any]
    #: True when the factory builds a multi-shard cluster coordinator
    cluster: bool
    #: which of :data:`HOST_KNOBS` the factory's signature accepts
    knobs: frozenset[str]

    def build(self, engine, game_config=None, **knobs) -> Any:
        """Invoke the factory with exactly the knobs it accepts.

        Knobs with value ``None`` are dropped (the factory's defaults apply);
        a non-``None`` knob the factory does not accept raises ``ValueError``.
        """
        kwargs = {}
        for knob, value in knobs.items():
            if knob not in HOST_KNOBS:
                raise ValueError(
                    f"unknown host knob {knob!r}; expected one of {list(HOST_KNOBS)}"
                )
            if value is None:
                continue
            if knob not in self.knobs:
                raise ValueError(
                    f"host {self.name!r} does not accept the {knob!r} knob"
                    f" (accepted: {sorted(self.knobs) or 'none'})"
                )
            kwargs[knob] = value
        return self.factory(engine, game_config, **kwargs)


def register_host(name: str, *, cluster: bool = False, replace: bool = False):
    """Class/function decorator registering a host factory under ``name``.

    The factory must accept ``(engine, game_config=None)`` positionally; the
    optional knobs it supports (``servo_config``, ``shards``, ``workers``) are discovered
    from its signature, so :func:`build_host` can delegate uniformly.
    """

    def decorator(factory: Callable[..., Any]) -> Callable[..., Any]:
        parameters = inspect.signature(factory).parameters
        knobs = frozenset(knob for knob in HOST_KNOBS if knob in parameters)
        HOSTS.register(name, HostEntry(name, factory, cluster, knobs), replace=replace)
        return factory

    return decorator


def host_entry(name: str) -> HostEntry:
    """Look up a registered host (importing the built-ins first)."""
    return HOSTS.get(name)


def host_names() -> list[str]:
    return HOSTS.names()


def cluster_host_names() -> frozenset[str]:
    """The registered names that build multi-shard clusters."""
    return frozenset(name for name, entry in HOSTS.items() if entry.cluster)


def build_host(
    name: str,
    engine,
    game_config=None,
    *,
    servo_config=None,
    shards: int | None = None,
    workers: int | None = None,
):
    """Build a registered host by name.

    ``servo_config``, ``shards`` and ``workers`` are forwarded only when
    given (not ``None``); giving one to a host that does not accept it is a
    ``ValueError``.
    """
    return host_entry(name).build(
        engine, game_config, servo_config=servo_config, shards=shards, workers=workers
    )


class GameFactoryView(Mapping):
    """Live, read-only mapping view of the host registry, keyed by host name.

    Kept for backward compatibility with the historical ``GAME_FACTORIES``
    dict (``items()``/``values()``/``get()`` and friends come from
    :class:`~collections.abc.Mapping`): each value is a callable
    ``(engine, game_config, *, servo_config=None, shards=None, workers=None)``
    that delegates to the registered factory with whatever knobs it accepts.
    """

    def __getitem__(self, name: str) -> Callable[..., Any]:
        entry = host_entry(name)

        def factory(engine, game_config=None, *, servo_config=None, shards=None, workers=None):
            return entry.build(
                engine,
                game_config,
                servo_config=servo_config,
                shards=shards,
                workers=workers,
            )

        factory.__name__ = f"build_{name.replace('-', '_')}"
        factory.__doc__ = f"Build the {name!r} host (registered via @register_host)."
        return factory

    def __iter__(self):
        return iter(host_names())

    def __len__(self) -> int:
        return len(HOSTS)

    def __repr__(self) -> str:
        return f"GameFactoryView({host_names()})"


class ClusterGameView(Set):
    """Live, read-only set view of the registered cluster host names.

    Tracks the registry (unlike a frozen snapshot), so third-party clusters
    registered after import are still classified correctly.
    """

    def __contains__(self, name: object) -> bool:
        return name in cluster_host_names()

    def __iter__(self):
        return iter(sorted(cluster_host_names()))

    def __len__(self) -> int:
        return len(cluster_host_names())

    def __repr__(self) -> str:
        return f"ClusterGameView({sorted(cluster_host_names())})"
