"""Generic name registries and the shared unknown-name error.

Hosts, scenarios and experiments are all looked up by name; this module
provides the one :class:`Registry` container they share and the one error
shape every failed lookup produces, so a typo anywhere in the public surface
yields the same actionable message: what kind of name was wrong, and which
names are actually registered.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional


class UnknownNameError(KeyError, ValueError):
    """Raised when a name is not present in a registry.

    Inherits from both :class:`ValueError` (the documented contract for every
    registry lookup) and :class:`KeyError` (what the experiment registry and
    Table I lookups historically raised), so callers written against either
    contract keep working.
    """

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.message = message

    def __str__(self) -> str:  # KeyError.__str__ would repr-quote the message
        return self.message


def unknown_name_error(kind: str, name: object, registered: "list[str] | tuple[str, ...] | Registry") -> UnknownNameError:
    """Build the shared lookup error: unknown ``kind`` plus the registered names."""
    names = sorted(registered.names() if isinstance(registered, Registry) else registered)
    listing = ", ".join(repr(entry) for entry in names) if names else "(none)"
    return UnknownNameError(f"unknown {kind} {name!r}; registered {kind}s: {listing}")


class Registry:
    """A by-name registry with decorator-friendly registration.

    ``kind`` names what is being registered ("host", "scenario", "experiment")
    and appears in lookup-failure messages.

    ``loader``, when given, imports the modules whose decorators register the
    built-in entries.  It runs at most once, lazily, before any lookup or
    listing — and, best-effort, before a registration, so a user registration
    colliding with a built-in name fails at the user's site rather than
    poisoning the lazy import on the next lookup.  The loader is re-entrant:
    while it runs, the built-ins' own registrations skip it (the modules being
    imported sit partially-initialised in ``sys.modules``), and if it fails it
    is retried on the next call.
    """

    def __init__(self, kind: str, loader: Optional[Callable[[], None]] = None) -> None:
        self.kind = kind
        self._entries: dict[str, Any] = {}
        self._loader = loader
        self._loader_state = "pending"  # -> "loading" -> "loaded"

    def load_builtins(self) -> None:
        """Run the built-in loader once (no-op while it is already running)."""
        if self._loader is None or self._loader_state != "pending":
            return
        self._loader_state = "loading"
        try:
            self._loader()
        except BaseException:
            self._loader_state = "pending"
            raise
        self._loader_state = "loaded"

    def register(self, name: str, entry: Any, *, replace: bool = False) -> Any:
        # Best-effort: while the package's own import chains are in flight the
        # loader can hit partially-initialised modules — then registration
        # proceeds and the built-ins finish loading lazily at first lookup.
        try:
            self.load_builtins()
        except ImportError:
            pass
        if not name or not isinstance(name, str):
            raise ValueError(f"{self.kind} names must be non-empty strings, got {name!r}")
        if name in self._entries and not replace:
            raise ValueError(f"{self.kind} {name!r} is already registered")
        self._entries[name] = entry
        return entry

    def unregister(self, name: str) -> None:
        """Remove an entry (used by tests to keep the global registries clean)."""
        self._entries.pop(name, None)

    def get(self, name: str) -> Any:
        self.load_builtins()
        try:
            return self._entries[name]
        except KeyError:
            raise unknown_name_error(self.kind, name, self) from None

    def names(self) -> list[str]:
        self.load_builtins()
        return sorted(self._entries)

    def items(self) -> list[tuple[str, Any]]:
        self.load_builtins()
        return sorted(self._entries.items())

    def __contains__(self, name: object) -> bool:
        self.load_builtins()
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        self.load_builtins()
        return iter(sorted(self._entries))

    def __len__(self) -> int:
        self.load_builtins()
        return len(self._entries)
