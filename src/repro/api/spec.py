"""Declarative run specifications.

A :class:`RunSpec` is the JSON-serializable description of one run: a host
topology (game name, optional shard count, :class:`~repro.server.config.GameConfig`
and :class:`~repro.core.config.ServoConfig` knob overrides), a workload
(scenario name plus parameters) and the run controls (seed, duration,
warm-up).  Specs round-trip through ``to_dict``/``from_dict`` and
``to_json``/``from_json`` without loss, and are validated on construction:
unknown keys, unknown config knobs and out-of-range values all raise
``ValueError`` immediately, not mid-run.

The config fields hold *overrides* (only the knobs the spec mentions), so a
spec stays small, round-trips exactly, and keeps tracking the dataclass
defaults as they evolve.
"""

from __future__ import annotations

import dataclasses
import json
import warnings
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro.core.config import ServoConfig
from repro.server.config import GameConfig
from repro.world.coords import BlockPos

_GAME_CONFIG_KNOBS = frozenset(f.name for f in dataclasses.fields(GameConfig))
_SERVO_CONFIG_KNOBS = frozenset(f.name for f in dataclasses.fields(ServoConfig))


def _require_mapping(value: Any, what: str) -> dict:
    if not isinstance(value, Mapping):
        raise ValueError(f"{what} must be a mapping, got {type(value).__name__}")
    return dict(value)


def _check_keys(data: Mapping, allowed: frozenset[str], what: str) -> None:
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise ValueError(
            f"unknown {what} key(s) {unknown}; allowed keys: {sorted(allowed)}"
        )


def _check_config_overrides(overrides: Mapping, knobs: frozenset[str], what: str) -> None:
    _require_mapping(overrides, what)
    _check_keys(overrides, knobs, what)


def _require_number(value: Any, what: str) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"{what} must be a number, got {value!r}")


def game_config_from_overrides(overrides: Mapping[str, Any]) -> GameConfig:
    """Materialise a :class:`GameConfig` from a spec's override mapping."""
    _check_config_overrides(overrides, _GAME_CONFIG_KNOBS, "game_config")
    kwargs = dict(overrides)
    spawn = kwargs.get("spawn_position")
    if spawn is not None and not isinstance(spawn, BlockPos):
        kwargs["spawn_position"] = BlockPos(*(int(axis) for axis in spawn))
    return GameConfig(**kwargs)


def servo_config_from_overrides(overrides: Mapping[str, Any]) -> ServoConfig:
    """Materialise a :class:`ServoConfig` from a spec's override mapping."""
    _check_config_overrides(overrides, _SERVO_CONFIG_KNOBS, "servo_config")
    return ServoConfig(**overrides)


@dataclass(frozen=True)
class HostSpec:
    """The host half of a spec: which topology to build, with which knobs."""

    KEYS = frozenset({"game", "shards", "workers", "game_config", "servo_config"})

    game: str
    shards: Optional[int] = None
    #: host worker processes for parallel round execution (wall-clock only;
    #: virtual results are identical for every value)
    workers: Optional[int] = None
    game_config: dict = field(default_factory=dict)
    servo_config: Optional[dict] = None

    def __post_init__(self) -> None:
        if not self.game or not isinstance(self.game, str):
            raise ValueError(f"host.game must be a non-empty string, got {self.game!r}")
        if self.shards is not None and (
            isinstance(self.shards, bool) or not isinstance(self.shards, int) or self.shards < 1
        ):
            raise ValueError(f"host.shards must be a positive integer, got {self.shards!r}")
        if self.workers is not None and (
            isinstance(self.workers, bool) or not isinstance(self.workers, int) or self.workers < 1
        ):
            raise ValueError(f"host.workers must be a positive integer, got {self.workers!r}")
        if (
            self.workers is not None
            and self.shards is not None
            and self.workers > self.shards
        ):
            warnings.warn(
                f"host.workers={self.workers} exceeds host.shards={self.shards}; "
                "extra workers beyond the per-round compute rarely help",
                stacklevel=2,
            )
        if self.game_config is None:  # mirror the host factories' game_config=None default
            object.__setattr__(self, "game_config", {})
        _check_config_overrides(self.game_config, _GAME_CONFIG_KNOBS, "game_config")
        if self.servo_config is not None:
            _check_config_overrides(self.servo_config, _SERVO_CONFIG_KNOBS, "servo_config")

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "HostSpec":
        data = _require_mapping(data, "host")
        _check_keys(data, cls.KEYS, "host")
        if "game" not in data:
            raise ValueError("host requires a 'game' name")
        game_config = _require_mapping(data.get("game_config", {}), "host.game_config")
        servo_config = data.get("servo_config")
        if servo_config is not None:
            servo_config = _require_mapping(servo_config, "host.servo_config")
        return cls(
            game=data["game"],
            shards=data.get("shards"),
            workers=data.get("workers"),
            game_config=game_config,
            servo_config=servo_config,
        )

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"game": self.game}
        if self.shards is not None:
            out["shards"] = self.shards
        if self.workers is not None:
            out["workers"] = self.workers
        if self.game_config:
            out["game_config"] = dict(self.game_config)
        if self.servo_config is not None:
            out["servo_config"] = dict(self.servo_config)
        return out

    def build_game_config(self) -> GameConfig:
        return game_config_from_overrides(self.game_config)

    def build_servo_config(self) -> Optional[ServoConfig]:
        if self.servo_config is None:
            return None
        return servo_config_from_overrides(self.servo_config)


@dataclass(frozen=True)
class WorkloadSpec:
    """The workload half of a spec: which scenario to run, with which params."""

    KEYS = frozenset({"scenario", "params"})

    scenario: str
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.scenario or not isinstance(self.scenario, str):
            raise ValueError(
                f"workload.scenario must be a non-empty string, got {self.scenario!r}"
            )
        if self.params is None:
            object.__setattr__(self, "params", {})
        _require_mapping(self.params, "workload.params")

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadSpec":
        data = _require_mapping(data, "workload")
        _check_keys(data, cls.KEYS, "workload")
        if "scenario" not in data:
            raise ValueError("workload requires a 'scenario' name")
        return cls(
            scenario=data["scenario"],
            params=_require_mapping(data.get("params", {}), "workload.params"),
        )

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"scenario": self.scenario}
        if self.params:
            out["params"] = dict(self.params)
        return out


@dataclass(frozen=True)
class RunSpec:
    """A complete, serializable description of one run."""

    KEYS = frozenset(
        {"host", "workload", "seed", "duration_s", "warmup_s", "faults", "telemetry"}
    )

    host: HostSpec
    workload: WorkloadSpec
    seed: int = 42
    #: overrides the scenario's measurement duration when set
    duration_s: Optional[float] = None
    #: overrides the scenario's warm-up duration when set
    warmup_s: Optional[float] = None
    #: fault-plan overrides (see :mod:`repro.faults.plan`); None inherits the
    #: scenario's plan, ``{}`` explicitly disables faults (the empty plan)
    faults: Optional[dict] = None
    #: telemetry configuration (see :mod:`repro.obs.telemetry`); None keeps
    #: telemetry off entirely — the run is bit-identical to today
    telemetry: Optional[dict] = None

    def __post_init__(self) -> None:
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise ValueError(f"seed must be an integer, got {self.seed!r}")
        if self.seed < 0:
            raise ValueError(f"seed must be non-negative, got {self.seed!r}")
        if self.duration_s is not None:
            _require_number(self.duration_s, "duration_s")
            if not self.duration_s > 0:
                raise ValueError(f"duration_s must be positive, got {self.duration_s!r}")
        if self.warmup_s is not None:
            _require_number(self.warmup_s, "warmup_s")
            if self.warmup_s < 0:
                raise ValueError(f"warmup_s must be non-negative, got {self.warmup_s!r}")
        if self.faults is not None:
            _require_mapping(self.faults, "faults")
            # Validate eagerly (unknown keys, bad rates) but store the plain
            # dict so the spec round-trips losslessly.
            from repro.faults.plan import FaultPlan

            FaultPlan.from_dict(self.faults)
        if self.telemetry is not None:
            _require_mapping(self.telemetry, "telemetry")
            # Same pattern as faults: eager validation, plain-dict storage.
            from repro.obs.telemetry import TelemetryConfig

            TelemetryConfig.from_dict(self.telemetry)

    # -- serialization --------------------------------------------------------------

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunSpec":
        data = _require_mapping(data, "run spec")
        _check_keys(data, cls.KEYS, "run spec")
        for required in ("host", "workload"):
            if required not in data:
                raise ValueError(f"run spec requires a {required!r} section")
        return cls(
            host=HostSpec.from_dict(data["host"]),
            workload=WorkloadSpec.from_dict(data["workload"]),
            seed=data.get("seed", 42),
            duration_s=data.get("duration_s"),
            warmup_s=data.get("warmup_s"),
            faults=data.get("faults"),
            telemetry=data.get("telemetry"),
        )

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "host": self.host.to_dict(),
            "workload": self.workload.to_dict(),
            "seed": self.seed,
        }
        if self.duration_s is not None:
            out["duration_s"] = self.duration_s
        if self.warmup_s is not None:
            out["warmup_s"] = self.warmup_s
        if self.faults is not None:
            out["faults"] = dict(self.faults)
        if self.telemetry is not None:
            out["telemetry"] = dict(self.telemetry)
        return out

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        return cls.from_dict(json.loads(text))

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_file(cls, path) -> "RunSpec":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))
