"""``python -m repro`` — entry point for the :mod:`repro.api.cli` interface."""

import sys

from repro.api.cli import main

if __name__ == "__main__":
    sys.exit(main())
