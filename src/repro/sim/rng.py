"""Named, reproducible random streams.

Experiments need several independent sources of randomness (player behaviour,
FaaS latency, storage latency, cold starts, tick noise).  Drawing them from a
single generator couples unrelated subsystems: adding one extra sample in the
storage model would perturb player behaviour.  ``RandomStreams`` derives one
:class:`numpy.random.Generator` per named stream from a root seed so each
subsystem has its own stable stream.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RandomStreams:
    """Factory of named, independent random generators."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed all streams are derived from."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same (seed, name) pair always yields an identical sequence.
        """
        if name not in self._streams:
            digest = hashlib.sha256(f"{self._seed}:{name}".encode("utf-8")).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            self._streams[name] = np.random.default_rng(child_seed)
        return self._streams[name]

    def fork(self, name: str) -> "RandomStreams":
        """Derive a new :class:`RandomStreams` whose root seed depends on ``name``.

        Used for experiment repetitions: ``streams.fork("rep-3")`` gives a
        fully independent but reproducible set of streams.
        """
        digest = hashlib.sha256(f"{self._seed}/{name}".encode("utf-8")).digest()
        return RandomStreams(int.from_bytes(digest[:8], "little"))

    def reset(self) -> None:
        """Drop all derived streams so they restart from their initial state."""
        self._streams.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(seed={self._seed}, streams={sorted(self._streams)})"
