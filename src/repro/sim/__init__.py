"""Discrete-event simulation substrate.

Everything in the reproduction runs on *virtual* time.  The substrate provides:

* :class:`~repro.sim.clock.SimulationClock` — a monotonically advancing
  millisecond clock.
* :class:`~repro.sim.events.EventQueue` — a priority queue of timed callbacks.
* :class:`~repro.sim.engine.SimulationEngine` — clock + queue + RNG streams.
* :mod:`repro.sim.rng` — named, reproducible random streams.
* :mod:`repro.sim.latency` — latency distribution models (lognormal, shifted
  exponential, empirical) and a cold-start process.
* :mod:`repro.sim.metrics` — histograms, time series, percentile/boxplot/ICDF
  helpers used by every experiment.
"""

from repro.sim.clock import SimulationClock
from repro.sim.engine import SimulationEngine
from repro.sim.events import Event, EventQueue
from repro.sim.latency import (
    ColdStartModel,
    ConstantLatency,
    EmpiricalLatency,
    LatencyModel,
    LogNormalLatency,
    ShiftedExponentialLatency,
)
from repro.sim.metrics import (
    Histogram,
    MetricRegistry,
    TimeSeries,
    boxplot_stats,
    inverse_cdf,
    percentile,
)
from repro.sim.rng import RandomStreams

__all__ = [
    "SimulationClock",
    "SimulationEngine",
    "Event",
    "EventQueue",
    "LatencyModel",
    "ConstantLatency",
    "LogNormalLatency",
    "ShiftedExponentialLatency",
    "EmpiricalLatency",
    "ColdStartModel",
    "Histogram",
    "TimeSeries",
    "MetricRegistry",
    "percentile",
    "boxplot_stats",
    "inverse_cdf",
    "RandomStreams",
]
