"""Timed event queue for the discrete-event simulation.

The queue stores callbacks keyed by their virtual due time.  Ties are broken by
insertion order so the simulation stays deterministic regardless of Python's
heap internals.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional


@dataclass(order=True)
class _QueueEntry:
    due_ms: float
    sequence: int
    event: "Event" = field(compare=False)


@dataclass
class Event:
    """A scheduled callback.

    Attributes:
        due_ms: Virtual time at which the event fires.
        callback: Zero-argument callable executed when the event fires.
        name: Optional label used in debugging and metrics.
        cancelled: Cancelled events are skipped when popped.
    """

    due_ms: float
    callback: Callable[[], Any]
    name: str = ""
    cancelled: bool = False

    def cancel(self) -> None:
        """Mark the event so it is skipped when its due time arrives."""
        self.cancelled = True


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[_QueueEntry] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def schedule(self, due_ms: float, callback: Callable[[], Any], name: str = "") -> Event:
        """Schedule ``callback`` to fire at virtual time ``due_ms``."""
        event = Event(due_ms=float(due_ms), callback=callback, name=name)
        heapq.heappush(self._heap, _QueueEntry(event.due_ms, next(self._counter), event))
        self._live += 1
        return event

    def peek_due_ms(self) -> Optional[float]:
        """Return the due time of the earliest pending event, or None if empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0].due_ms

    def pop_due(self, now_ms: float) -> Iterator[Event]:
        """Yield (and remove) every event due at or before ``now_ms``, in order."""
        while True:
            self._drop_cancelled()
            if not self._heap or self._heap[0].due_ms > now_ms + 1e-9:
                return
            entry = heapq.heappop(self._heap)
            self._live -= 1
            yield entry.event

    def clear(self) -> None:
        """Remove every pending event."""
        self._heap.clear()
        self._live = 0

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].event.cancelled:
            heapq.heappop(self._heap)
            self._live -= 1
