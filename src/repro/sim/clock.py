"""Virtual simulation clock.

All latencies, tick durations and storage delays in the reproduction are
expressed in *virtual milliseconds*.  The clock only moves forward when the
simulation explicitly advances it, which makes every experiment deterministic
and independent of the host machine's speed.
"""

from __future__ import annotations


class ClockError(RuntimeError):
    """Raised when the clock would be moved backwards."""


class SimulationClock:
    """A monotonically advancing millisecond clock.

    The clock starts at ``start_ms`` (default 0).  Use :meth:`advance` to move
    time forward by a delta and :meth:`advance_to` to jump to an absolute
    time.  Both refuse to move the clock backwards.
    """

    def __init__(self, start_ms: float = 0.0) -> None:
        self._now_ms = float(start_ms)

    @property
    def now_ms(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now_ms

    @property
    def now_s(self) -> float:
        """Current virtual time in seconds."""
        return self._now_ms / 1000.0

    def advance(self, delta_ms: float) -> float:
        """Advance the clock by ``delta_ms`` milliseconds and return the new time."""
        if delta_ms < 0:
            raise ClockError(f"cannot advance clock by negative delta {delta_ms!r}")
        self._now_ms += float(delta_ms)
        return self._now_ms

    def advance_to(self, time_ms: float) -> float:
        """Advance the clock to the absolute time ``time_ms``.

        Advancing to the current time is a no-op; advancing to an earlier time
        raises :class:`ClockError`.
        """
        if time_ms < self._now_ms - 1e-9:
            raise ClockError(
                f"cannot move clock backwards from {self._now_ms!r} to {time_ms!r}"
            )
        self._now_ms = max(self._now_ms, float(time_ms))
        return self._now_ms

    def reset(self, start_ms: float = 0.0) -> None:
        """Reset the clock to ``start_ms`` (used between experiment repetitions)."""
        self._now_ms = float(start_ms)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimulationClock(now_ms={self._now_ms:.3f})"
