"""Latency distribution models.

Every remote interaction in the reproduction (FaaS invocation, blob download,
network hop) samples its duration from one of these models.  The parameters of
the concrete distributions are fitted to the values the paper reports; the
fits are documented where the models are instantiated (``repro.faas`` and
``repro.storage``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np


class LatencyModel:
    """Base class for latency models.

    Subclasses implement :meth:`sample`, which draws one latency in
    milliseconds using the provided generator.
    """

    def sample(self, rng: np.random.Generator) -> float:
        raise NotImplementedError

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` latencies; the default implementation loops over sample()."""
        return np.array([self.sample(rng) for _ in range(int(n))], dtype=float)


@dataclass
class ConstantLatency(LatencyModel):
    """A fixed latency, useful in tests and as a degenerate baseline."""

    value_ms: float

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.value_ms)

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.full(int(n), float(self.value_ms))


@dataclass
class LogNormalLatency(LatencyModel):
    """Lognormal latency with an optional additive floor.

    ``median_ms`` and ``sigma`` parameterise the lognormal body; ``floor_ms``
    is an irreducible minimum (e.g. network round-trip) added to every sample;
    ``cap_ms`` truncates pathological samples.
    """

    median_ms: float
    sigma: float = 0.5
    floor_ms: float = 0.0
    cap_ms: float = float("inf")

    def sample(self, rng: np.random.Generator) -> float:
        body = rng.lognormal(mean=np.log(max(self.median_ms, 1e-9)), sigma=self.sigma)
        return float(min(self.floor_ms + body, self.cap_ms))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        body = rng.lognormal(
            mean=np.log(max(self.median_ms, 1e-9)), sigma=self.sigma, size=int(n)
        )
        return np.minimum(self.floor_ms + body, self.cap_ms)


@dataclass
class ShiftedExponentialLatency(LatencyModel):
    """Minimum latency plus an exponential tail.

    A good fit for storage services: a deterministic service floor with a
    memoryless tail caused by queueing and throttling.
    """

    floor_ms: float
    mean_tail_ms: float
    cap_ms: float = float("inf")

    def sample(self, rng: np.random.Generator) -> float:
        return float(min(self.floor_ms + rng.exponential(self.mean_tail_ms), self.cap_ms))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.minimum(
            self.floor_ms + rng.exponential(self.mean_tail_ms, size=int(n)), self.cap_ms
        )


@dataclass
class EmpiricalLatency(LatencyModel):
    """Resamples from a fixed set of observed latencies (with jitter)."""

    samples_ms: Sequence[float]
    jitter_fraction: float = 0.05

    def __post_init__(self) -> None:
        if len(self.samples_ms) == 0:
            raise ValueError("EmpiricalLatency requires at least one sample")
        self._values = np.asarray(self.samples_ms, dtype=float)

    def sample(self, rng: np.random.Generator) -> float:
        base = float(rng.choice(self._values))
        jitter = rng.normal(0.0, self.jitter_fraction * max(base, 1e-9))
        return float(max(0.0, base + jitter))


@dataclass
class MixtureLatency(LatencyModel):
    """A weighted mixture of latency models (e.g. fast path + slow tail)."""

    components: Sequence[LatencyModel]
    weights: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.components) != len(self.weights):
            raise ValueError("components and weights must have the same length")
        total = float(sum(self.weights))
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        self._probs = np.asarray(self.weights, dtype=float) / total

    def sample(self, rng: np.random.Generator) -> float:
        index = int(rng.choice(len(self.components), p=self._probs))
        return self.components[index].sample(rng)


@dataclass
class ColdStartModel:
    """Warm/cold behaviour of a FaaS function's execution environments.

    The model tracks, per function, when its warm environments were last used.
    An invocation arriving more than ``keep_alive_ms`` after the previous one
    pays a cold-start penalty drawn from ``penalty``.  This reproduces the
    paper's observation that providers start deallocating function resources
    within minutes, producing temporally correlated outliers.
    """

    keep_alive_ms: float = 5 * 60 * 1000.0
    penalty: LatencyModel = field(
        default_factory=lambda: LogNormalLatency(median_ms=1800.0, sigma=0.35, floor_ms=400.0)
    )
    initial_cold: bool = True

    def __post_init__(self) -> None:
        self._last_use_ms: float | None = None if self.initial_cold else float("-inf")

    def penalty_ms(self, now_ms: float, rng: np.random.Generator) -> float:
        """Return the cold-start penalty for an invocation at ``now_ms`` (0 if warm)."""
        cold = (
            self._last_use_ms is None
            or (now_ms - self._last_use_ms) > self.keep_alive_ms
        )
        self._last_use_ms = now_ms
        if cold:
            return float(self.penalty.sample(rng))
        return 0.0

    def is_warm(self, now_ms: float) -> bool:
        """True if an invocation at ``now_ms`` would hit a warm environment."""
        return (
            self._last_use_ms is not None
            and (now_ms - self._last_use_ms) <= self.keep_alive_ms
        )

    def reset(self) -> None:
        """Forget warm state (used between experiment repetitions)."""
        self._last_use_ms = None if self.initial_cold else float("-inf")
