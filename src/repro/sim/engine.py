"""Simulation engine: clock + event queue + random streams + metrics.

Each experiment creates one :class:`SimulationEngine`.  The game server, FaaS
platform and storage services all share the engine so that their virtual times
and random streams are consistent within a run and reproducible across runs.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.obs.telemetry import NULL_TELEMETRY
from repro.sim.clock import SimulationClock
from repro.sim.events import Event, EventQueue
from repro.sim.metrics import MetricRegistry
from repro.sim.rng import RandomStreams


class SimulationEngine:
    """Shared simulation context for one run."""

    def __init__(self, seed: int = 0, start_ms: float = 0.0) -> None:
        self.clock = SimulationClock(start_ms=start_ms)
        self.events = EventQueue()
        self.random = RandomStreams(seed=seed)
        self.metrics = MetricRegistry()
        #: the run's telemetry hub; the shared null object until a run opts in
        #: (see :func:`repro.obs.telemetry.install_telemetry`).  Hot paths gate
        #: on its ``enabled`` attribute — one check, no other overhead.
        self.telemetry = NULL_TELEMETRY

    @property
    def now_ms(self) -> float:
        return self.clock.now_ms

    @property
    def now_s(self) -> float:
        return self.clock.now_s

    def rng(self, name: str):
        """Shorthand for ``engine.random.stream(name)``."""
        return self.random.stream(name)

    def schedule_at(self, due_ms: float, callback: Callable[[], Any], name: str = "") -> Event:
        """Schedule a callback at an absolute virtual time."""
        if due_ms < self.clock.now_ms - 1e-9:
            raise ValueError(
                f"cannot schedule event {name!r} in the past "
                f"({due_ms!r} < {self.clock.now_ms!r})"
            )
        return self.events.schedule(due_ms, callback, name=name)

    def schedule_in(self, delay_ms: float, callback: Callable[[], Any], name: str = "") -> Event:
        """Schedule a callback ``delay_ms`` after the current virtual time."""
        if delay_ms < 0:
            raise ValueError(f"cannot schedule event {name!r} with negative delay")
        return self.events.schedule(self.clock.now_ms + delay_ms, callback, name=name)

    def advance_to(self, time_ms: float) -> None:
        """Advance the clock to ``time_ms``, firing every event due on the way.

        Events are fired at their own due time (the clock is moved to each
        event's due time before its callback runs), which lets callbacks
        schedule follow-up events relative to their firing time.
        """
        while True:
            next_due = self.events.peek_due_ms()
            if next_due is None or next_due > time_ms + 1e-9:
                break
            self.clock.advance_to(next_due)
            for event in self.events.pop_due(self.clock.now_ms):
                event.callback()
        self.clock.advance_to(time_ms)

    def advance_by(self, delta_ms: float) -> None:
        """Advance the clock by ``delta_ms``, firing due events."""
        self.advance_to(self.clock.now_ms + delta_ms)

    def run_until_idle(self, max_time_ms: float | None = None) -> None:
        """Fire events until the queue is empty (or ``max_time_ms`` is reached)."""
        while True:
            next_due = self.events.peek_due_ms()
            if next_due is None:
                return
            if max_time_ms is not None and next_due > max_time_ms:
                self.clock.advance_to(max_time_ms)
                return
            self.advance_to(next_due)
