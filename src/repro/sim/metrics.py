"""Metric collection and summary statistics.

The experiments report tick-duration distributions, latency percentiles,
boxplot statistics and inverse CDFs.  This module provides small, dependency
free containers for collecting samples during a simulation and the summary
functions used when rendering paper-style tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np


def percentile(samples: Iterable[float], q: float) -> float:
    """Return the ``q``-th percentile (0-100) of ``samples``.

    Raises ``ValueError`` for empty input so callers cannot silently report a
    statistic over nothing.
    """
    values = np.asarray(list(samples), dtype=float)
    if values.size == 0:
        raise ValueError("cannot compute a percentile of an empty sample set")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q!r}")
    return float(np.percentile(values, q))


@dataclass(frozen=True)
class BoxplotStats:
    """The five summary values the paper's boxplots report, plus the mean/max."""

    minimum: float
    p5: float
    p25: float
    median: float
    p75: float
    p95: float
    maximum: float
    mean: float
    count: int

    def as_dict(self) -> dict[str, float]:
        return {
            "min": self.minimum,
            "p5": self.p5,
            "p25": self.p25,
            "median": self.median,
            "p75": self.p75,
            "p95": self.p95,
            "max": self.maximum,
            "mean": self.mean,
            "count": float(self.count),
        }


def boxplot_stats(samples: Iterable[float]) -> BoxplotStats:
    """Compute the boxplot summary used throughout the paper's figures."""
    values = np.asarray(list(samples), dtype=float)
    if values.size == 0:
        raise ValueError("cannot compute boxplot statistics of an empty sample set")
    return BoxplotStats(
        minimum=float(values.min()),
        p5=float(np.percentile(values, 5)),
        p25=float(np.percentile(values, 25)),
        median=float(np.percentile(values, 50)),
        p75=float(np.percentile(values, 75)),
        p95=float(np.percentile(values, 95)),
        maximum=float(values.max()),
        mean=float(values.mean()),
        count=int(values.size),
    )


def inverse_cdf(samples: Iterable[float], latencies_ms: Iterable[float]) -> list[tuple[float, float]]:
    """Return (latency, fraction of samples >= latency) pairs.

    This is the inverse cumulative distribution the paper plots in Figure 13:
    for each latency threshold, the fraction of operations at or above it.
    """
    values = np.sort(np.asarray(list(samples), dtype=float))
    if values.size == 0:
        raise ValueError("cannot compute an inverse CDF of an empty sample set")
    points: list[tuple[float, float]] = []
    for threshold in latencies_ms:
        above = float(np.count_nonzero(values >= threshold)) / values.size
        points.append((float(threshold), above))
    return points


def fraction_exceeding(samples: Iterable[float], threshold: float) -> float:
    """Fraction of samples strictly greater than ``threshold``.

    The paper's definition of "supported players" uses the fraction of tick
    durations exceeding the 50 ms budget.
    """
    values = np.asarray(list(samples), dtype=float)
    if values.size == 0:
        raise ValueError("cannot compute exceedance of an empty sample set")
    return float(np.count_nonzero(values > threshold)) / values.size


@dataclass
class Histogram:
    """An append-only collection of scalar samples with summary helpers."""

    name: str = ""
    _samples: list[float] = field(default_factory=list)

    def record(self, value: float) -> None:
        self._samples.append(float(value))

    def extend(self, values: Iterable[float]) -> None:
        self._samples.extend(float(v) for v in values)

    @property
    def samples(self) -> list[float]:
        return list(self._samples)

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self) -> Iterator[float]:
        return iter(self._samples)

    def percentile(self, q: float) -> float:
        return percentile(self._samples, q)

    def mean(self) -> float:
        if not self._samples:
            raise ValueError(f"histogram {self.name!r} is empty")
        return float(np.mean(self._samples))

    def maximum(self) -> float:
        if not self._samples:
            raise ValueError(f"histogram {self.name!r} is empty")
        return float(np.max(self._samples))

    def boxplot(self) -> BoxplotStats:
        return boxplot_stats(self._samples)

    def fraction_exceeding(self, threshold: float) -> float:
        return fraction_exceeding(self._samples, threshold)

    def clear(self) -> None:
        self._samples.clear()


@dataclass
class TimeSeries:
    """Timestamped samples, e.g. tick duration over time (Figure 10/12)."""

    name: str = ""
    _times_ms: list[float] = field(default_factory=list)
    _values: list[float] = field(default_factory=list)

    def record(self, time_ms: float, value: float) -> None:
        self._times_ms.append(float(time_ms))
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._values)

    @property
    def times_ms(self) -> list[float]:
        return list(self._times_ms)

    @property
    def values(self) -> list[float]:
        return list(self._values)

    def window(self, start_ms: float, end_ms: float) -> list[float]:
        """Values whose timestamp falls in [start_ms, end_ms)."""
        return [
            v
            for t, v in zip(self._times_ms, self._values)
            if start_ms <= t < end_ms
        ]

    def rolling(self, window_ms: float, step_ms: float | None = None) -> list[tuple[float, float, float, float]]:
        """Rolling (time, mean, p5, p95) tuples over ``window_ms`` windows.

        This matches the 2.5 s rolling bands the paper uses in Figures 10
        and 12.  Windows with no samples are skipped.
        """
        if not self._values:
            return []
        step = float(step_ms if step_ms is not None else window_ms)
        start = min(self._times_ms)
        end = max(self._times_ms)
        out: list[tuple[float, float, float, float]] = []
        t = start
        while t <= end + 1e-9:
            window = self.window(t, t + window_ms)
            if window:
                arr = np.asarray(window)
                out.append(
                    (
                        float(t + window_ms / 2.0),
                        float(arr.mean()),
                        float(np.percentile(arr, 5)),
                        float(np.percentile(arr, 95)),
                    )
                )
            t += step
        return out

    def clear(self) -> None:
        self._times_ms.clear()
        self._values.clear()


class MetricRegistry:
    """Named histograms, time series and counters for one simulation run."""

    def __init__(self) -> None:
        self._histograms: dict[str, Histogram] = {}
        self._series: dict[str, TimeSeries] = {}
        self._counters: dict[str, float] = {}

    def histogram(self, name: str) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name=name)
        return self._histograms[name]

    def series(self, name: str) -> TimeSeries:
        if name not in self._series:
            self._series[name] = TimeSeries(name=name)
        return self._series[name]

    def increment(self, name: str, amount: float = 1.0) -> float:
        self._counters[name] = self._counters.get(name, 0.0) + float(amount)
        return self._counters[name]

    def counter(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    @property
    def histogram_names(self) -> list[str]:
        return sorted(self._histograms)

    @property
    def series_names(self) -> list[str]:
        return sorted(self._series)

    @property
    def counter_names(self) -> list[str]:
        return sorted(self._counters)

    def clear(self) -> None:
        self._histograms.clear()
        self._series.clear()
        self._counters.clear()
