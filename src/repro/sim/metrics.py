"""Metric collection and summary statistics.

The experiments report tick-duration distributions, latency percentiles,
boxplot statistics and inverse CDFs.  This module provides small containers
for collecting samples during a simulation and the summary functions used
when rendering paper-style tables.

Collection is built on amortised-append numpy buffers rather than Python
lists: a cluster run records hundreds of thousands of samples across a dozen
histograms and series, and summary queries (percentiles, rolling windows)
repeat over the same data.  :class:`Histogram` memoises a sorted view for
repeated percentile queries, and :class:`TimeSeries` answers window and
rolling queries with ``searchsorted`` slices instead of rescanning every
sample per window — turning the rolling summary from O(n²) in the sample
count to O(windows · log n + n).  Every summary is numerically identical to
the original list-based implementation: the same float64 values are fed to
the same numpy reductions in the same order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

#: per-tick maximum staleness (ticks) observed across that tick's interest
#: flushes — the dyconit consistency-error metric; its maximum over a run
#: proves the configured staleness budget held
CONSISTENCY_ERROR_HISTOGRAM = "consistency_error_ticks"
#: the same per-tick maximum as a (virtual time, value) series
CONSISTENCY_ERROR_SERIES = "consistency_error_over_time"


def metric_name(base: str, shard: str | None = None) -> str:
    """The canonical name of a metric, optionally scoped to one shard.

    Cluster shards share one :class:`MetricRegistry`; per-shard views of a
    metric live under ``base:shard`` (e.g. ``tick_duration_ms:servo-shard-0``)
    while cluster-wide metrics use the bare ``base``.  Every producer and
    consumer goes through this helper (and :func:`split_metric_name`) instead
    of formatting the suffix ad hoc.
    """
    if shard is None:
        return base
    return f"{base}:{shard}"


def split_metric_name(name: str) -> tuple[str, str | None]:
    """Invert :func:`metric_name`: ``(base, shard-or-None)``."""
    base, separator, shard = name.partition(":")
    return (base, shard) if separator else (name, None)


def _as_float_array(samples: Iterable[float]) -> np.ndarray:
    """Materialise samples as float64, zero-copy for an existing float array."""
    if isinstance(samples, np.ndarray):
        return np.asarray(samples, dtype=float)
    return np.asarray(list(samples), dtype=float)


def percentile(samples: Iterable[float], q: float) -> float:
    """Return the ``q``-th percentile (0-100) of ``samples``.

    Raises ``ValueError`` for empty input so callers cannot silently report a
    statistic over nothing.
    """
    values = _as_float_array(samples)
    if values.size == 0:
        raise ValueError("cannot compute a percentile of an empty sample set")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q!r}")
    return float(np.percentile(values, q))


@dataclass(frozen=True)
class BoxplotStats:
    """The five summary values the paper's boxplots report, plus the mean/max."""

    minimum: float
    p5: float
    p25: float
    median: float
    p75: float
    p95: float
    maximum: float
    mean: float
    count: int

    def as_dict(self) -> dict[str, float]:
        return {
            "min": self.minimum,
            "p5": self.p5,
            "p25": self.p25,
            "median": self.median,
            "p75": self.p75,
            "p95": self.p95,
            "max": self.maximum,
            "mean": self.mean,
            "count": float(self.count),
        }


def boxplot_stats(samples: Iterable[float]) -> BoxplotStats:
    """Compute the boxplot summary used throughout the paper's figures."""
    values = _as_float_array(samples)
    if values.size == 0:
        raise ValueError("cannot compute boxplot statistics of an empty sample set")
    return BoxplotStats(
        minimum=float(values.min()),
        p5=float(np.percentile(values, 5)),
        p25=float(np.percentile(values, 25)),
        median=float(np.percentile(values, 50)),
        p75=float(np.percentile(values, 75)),
        p95=float(np.percentile(values, 95)),
        maximum=float(values.max()),
        mean=float(values.mean()),
        count=int(values.size),
    )


def inverse_cdf(samples: Iterable[float], latencies_ms: Iterable[float]) -> list[tuple[float, float]]:
    """Return (latency, fraction of samples >= latency) pairs.

    This is the inverse cumulative distribution the paper plots in Figure 13:
    for each latency threshold, the fraction of operations at or above it.
    The sorted input allows a single ``searchsorted`` per threshold instead
    of a full comparison scan.
    """
    values = np.sort(_as_float_array(samples))
    if values.size == 0:
        raise ValueError("cannot compute an inverse CDF of an empty sample set")
    points: list[tuple[float, float]] = []
    size = values.size
    for threshold in latencies_ms:
        # Count of samples >= threshold == size - first index at/above it.
        above = float(size - np.searchsorted(values, threshold, side="left")) / size
        points.append((float(threshold), above))
    return points


def fraction_exceeding(samples: Iterable[float], threshold: float) -> float:
    """Fraction of samples strictly greater than ``threshold``.

    The paper's definition of "supported players" uses the fraction of tick
    durations exceeding the 50 ms budget.
    """
    values = _as_float_array(samples)
    if values.size == 0:
        raise ValueError("cannot compute exceedance of an empty sample set")
    return float(np.count_nonzero(values > threshold)) / values.size


class _FloatBuffer:
    """An amortised-append float64 buffer with a memoised sorted view."""

    __slots__ = ("_data", "_size", "_sorted")

    def __init__(self, capacity: int = 64) -> None:
        self._data = np.empty(max(1, int(capacity)), dtype=np.float64)
        self._size = 0
        self._sorted: np.ndarray | None = None

    def __len__(self) -> int:
        return self._size

    def _reserve(self, extra: int) -> None:
        needed = self._size + extra
        capacity = len(self._data)
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        grown = np.empty(capacity, dtype=np.float64)
        grown[: self._size] = self._data[: self._size]
        self._data = grown

    def append(self, value: float) -> None:
        if self._size == len(self._data):
            self._reserve(1)
        self._data[self._size] = value
        self._size += 1
        self._sorted = None

    def extend(self, values: Iterable[float]) -> None:
        array = np.asarray(
            values if isinstance(values, np.ndarray) else list(values), dtype=np.float64
        )
        if array.size == 0:
            return
        self._reserve(array.size)
        self._data[self._size : self._size + array.size] = array
        self._size += array.size
        self._sorted = None

    def view(self) -> np.ndarray:
        """The recorded samples, in insertion order (a zero-copy view)."""
        return self._data[: self._size]

    def sorted_view(self) -> np.ndarray:
        """An ascending view, cached until the next append."""
        if self._sorted is None:
            self._sorted = np.sort(self._data[: self._size])
        return self._sorted

    def clear(self) -> None:
        self._size = 0
        self._sorted = None


@dataclass
class Histogram:
    """An append-only collection of scalar samples with summary helpers."""

    name: str = ""
    _samples: _FloatBuffer = field(default_factory=_FloatBuffer)

    def record(self, value: float) -> None:
        self._samples.append(float(value))

    def extend(self, values: Iterable[float]) -> None:
        self._samples.extend(values)

    @property
    def samples(self) -> list[float]:
        return self._samples.view().tolist()

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self) -> Iterator[float]:
        return iter(self._samples.view().tolist())

    def percentile(self, q: float) -> float:
        # The memoised sorted view makes repeated quantile queries cheap;
        # np.percentile returns identical values for sorted and raw input.
        return percentile(self._samples.sorted_view(), q)

    def mean(self) -> float:
        if len(self._samples) == 0:
            raise ValueError(f"histogram {self.name!r} is empty")
        return float(self._samples.view().mean())

    def maximum(self) -> float:
        if len(self._samples) == 0:
            raise ValueError(f"histogram {self.name!r} is empty")
        return float(self._samples.view().max())

    def boxplot(self) -> BoxplotStats:
        # Insertion-order view: the mean must see samples in recording order
        # (numpy's pairwise sum is order-sensitive) to stay bit-identical to
        # the list-based implementation.
        return boxplot_stats(self._samples.view())

    def fraction_exceeding(self, threshold: float) -> float:
        return fraction_exceeding(self._samples.view(), threshold)

    def clear(self) -> None:
        self._samples.clear()


@dataclass
class TimeSeries:
    """Timestamped samples, e.g. tick duration over time (Figure 10/12).

    Timestamps recorded in non-decreasing order (the only pattern the
    simulation produces) are answered with ``searchsorted`` slices; if a
    caller ever records out of order, queries fall back to the original
    linear scan, so results never change.
    """

    name: str = ""
    _times: _FloatBuffer = field(default_factory=_FloatBuffer)
    _values: _FloatBuffer = field(default_factory=_FloatBuffer)
    _monotonic: bool = True
    _last_time_ms: float = float("-inf")

    def record(self, time_ms: float, value: float) -> None:
        time_ms = float(time_ms)
        if time_ms < self._last_time_ms:
            self._monotonic = False
        self._last_time_ms = time_ms
        self._times.append(time_ms)
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._values)

    @property
    def times_ms(self) -> list[float]:
        return self._times.view().tolist()

    @property
    def values(self) -> list[float]:
        return self._values.view().tolist()

    def _window_slice(self, start_ms: float, end_ms: float) -> np.ndarray:
        times = self._times.view()
        low = int(np.searchsorted(times, start_ms, side="left"))
        high = int(np.searchsorted(times, end_ms, side="left"))
        return self._values.view()[low:high]

    def window(self, start_ms: float, end_ms: float) -> list[float]:
        """Values whose timestamp falls in [start_ms, end_ms)."""
        if self._monotonic:
            return self._window_slice(start_ms, end_ms).tolist()
        return [
            v
            for t, v in zip(self._times.view(), self._values.view())
            if start_ms <= t < end_ms
        ]

    def rolling(self, window_ms: float, step_ms: float | None = None) -> list[tuple[float, float, float, float]]:
        """Rolling (time, mean, p5, p95) tuples over ``window_ms`` windows.

        This matches the 2.5 s rolling bands the paper uses in Figures 10
        and 12.  Windows with no samples are skipped.
        """
        if not len(self._values):
            return []
        step = float(step_ms if step_ms is not None else window_ms)
        times = self._times.view()
        if self._monotonic:
            start = float(times[0])
            end = float(times[-1])
        else:
            start = float(times.min())
            end = float(times.max())
        out: list[tuple[float, float, float, float]] = []
        t = start
        while t <= end + 1e-9:
            if self._monotonic:
                window = self._window_slice(t, t + window_ms)
            else:
                window = np.asarray(self.window(t, t + window_ms))
            if window.size:
                out.append(
                    (
                        float(t + window_ms / 2.0),
                        float(window.mean()),
                        float(np.percentile(window, 5)),
                        float(np.percentile(window, 95)),
                    )
                )
            t += step
        return out

    def clear(self) -> None:
        self._times.clear()
        self._values.clear()
        self._monotonic = True
        self._last_time_ms = float("-inf")


class MetricRegistry:
    """Named histograms, time series and counters for one simulation run."""

    def __init__(self) -> None:
        self._histograms: dict[str, Histogram] = {}
        self._series: dict[str, TimeSeries] = {}
        self._counters: dict[str, float] = {}

    def histogram(self, name: str) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name=name)
        return self._histograms[name]

    def series(self, name: str) -> TimeSeries:
        if name not in self._series:
            self._series[name] = TimeSeries(name=name)
        return self._series[name]

    def increment(self, name: str, amount: float = 1.0) -> float:
        self._counters[name] = self._counters.get(name, 0.0) + float(amount)
        return self._counters[name]

    def counter(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    @property
    def histogram_names(self) -> list[str]:
        return sorted(self._histograms)

    @property
    def series_names(self) -> list[str]:
        return sorted(self._series)

    @property
    def counter_names(self) -> list[str]:
        return sorted(self._counters)

    def to_dict(self) -> dict[str, dict]:
        """A deterministic, JSON-serializable snapshot of every metric.

        Keys are sorted and every value is a virtual-time statistic, so the
        snapshot — like everything else derived from a run's metrics — is a
        pure function of the seed.  Histograms summarize as their boxplot
        stats (``{"count": 0.0}`` when empty), series as count/time-range/
        mean/last.
        """
        histograms: dict[str, dict[str, float]] = {}
        for name in self.histogram_names:
            histogram = self._histograms[name]
            if len(histogram) == 0:
                histograms[name] = {"count": 0.0}
            else:
                histograms[name] = histogram.boxplot().as_dict()
        series: dict[str, dict[str, float]] = {}
        for name in self.series_names:
            entry = self._series[name]
            if len(entry) == 0:
                series[name] = {"count": 0.0}
            else:
                values = entry._values.view()
                series[name] = {
                    "count": float(len(entry)),
                    "start_ms": float(entry._times.view()[0]),
                    "end_ms": float(entry._times.view()[-1]),
                    "mean": float(values.mean()),
                    "last": float(values[-1]),
                }
        return {
            "counters": {name: self._counters[name] for name in self.counter_names},
            "histograms": histograms,
            "series": series,
        }

    def clear(self) -> None:
        self._histograms.clear()
        self._series.clear()
        self._counters.clear()
